#!/usr/bin/env bash
# The full local CI gate: formatting, lints, release build, and every test.
# Run from anywhere; exits non-zero on the first failure.
#
# Formatting and lint gates cover the repo's own crates only — the vendored
# dependencies under vendor/ are third-party snapshots and keep their
# upstream style.
set -euo pipefail
cd "$(dirname "$0")/.."

GEOQP_PACKAGES=(
    geoqp geoqp-bench geoqp-cli geoqp-common geoqp-core geoqp-exec
    geoqp-expr geoqp-net geoqp-parser geoqp-plan geoqp-policy
    geoqp-runtime geoqp-server geoqp-storage geoqp-tpch
)
pkg_flags=()
for p in "${GEOQP_PACKAGES[@]}"; do pkg_flags+=(-p "$p"); done

echo "==> cargo fmt --check (geoqp crates)"
cargo fmt --check "${pkg_flags[@]}"

echo "==> cargo clippy --all-targets -- -D warnings (geoqp crates)"
cargo clippy "${pkg_flags[@]}" --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo build --release --benches (criterion + kernel microbenchmarks)"
cargo build --release "${pkg_flags[@]}" --benches

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> columnar differential suite: row vs vectorized engines," \
     "both runtimes, all fault schedules (release)"
cargo test -q -p geoqp-bench --release --test columnar_differential

echo "==> morsel differential suite: 1 vs 2 vs 4 workers per site," \
     "all fault schedules, bit-identical rows/transfers + merge-order" \
     "purity (release)"
cargo test -q -p geoqp-bench --release --test morsel_differential

echo "==> ad-hoc workload differential fuzz: generated queries," \
     "row vs columnar x sequential vs parallel, plus a fault slice" \
     "(GEOQP_ADHOC_N=${GEOQP_ADHOC_N:-200} queries, release)"
GEOQP_ADHOC_N="${GEOQP_ADHOC_N:-200}" \
    cargo test -q -p geoqp-bench --release --test adhoc_differential

echo "==> multi-tenant service smoke: closed-loop sessions through" \
     "admission, DRR scheduling, and the plan cache" \
     "(GEOQP_SERVICE_SESSIONS=${GEOQP_SERVICE_SESSIONS:-40} sessions, release)"
GEOQP_SERVICE_SESSIONS="${GEOQP_SERVICE_SESSIONS:-40}" \
    cargo test -q -p geoqp-bench --release --test service_smoke

echo "==> catalog replication + compaction property tests: 10k seeded" \
     "schedules, byte-identical replicas, snapshot-bootstrap ≡ replay-from-0" \
     "(release)"
cargo test -q -p geoqp-policy --release --test catalog_replication

echo "==> chaos soak: crash/partition + gray degrade/loss + catalog-churn" \
     "variants (fixed seeds, GEOQP_CHAOS_N=${GEOQP_CHAOS_N:-24} schedules each," \
     "odd rounds on the columnar engine with alternating 2/4-worker" \
     "morsel pools; churn round layers mid-query" \
     "revocations and catalog-plane partitions on the crash schedules;" \
     "bootstrap round adds replica-crash + snapshot-bootstrap + grant-retry" \
     "rescues with duplicate-execution determinism checks)"
GEOQP_CHAOS_N="${GEOQP_CHAOS_N:-24}" cargo test -q --test chaos_soak -- --nocapture

echo "CI OK"
