//! Quickstart: a two-site deployment with one dataflow policy.
//!
//! ```bash
//! cargo run --example quickstart
//! ```
//!
//! Builds an EU site holding personal data and a US site holding event
//! data, declares that emails may not leave the EU, and shows how the
//! compliance-based optimizer plans (or rejects) queries accordingly.

use geoqp::prelude::*;
use std::sync::Arc;

fn main() -> Result<()> {
    // ----- catalog: two sites, one table each -------------------------
    let mut catalog = Catalog::new();
    catalog.add_database("db-eu", Location::new("EU"))?;
    catalog.add_database("db-us", Location::new("US"))?;

    let users = catalog.add_table(
        "db-eu",
        "users",
        Schema::new(vec![
            Field::new("u_id", DataType::Int64),
            Field::new("u_name", DataType::Str),
            Field::new("u_email", DataType::Str),
        ])?,
        TableStats::new(4, 48.0),
    )?;
    let events = catalog.add_table(
        "db-us",
        "events",
        Schema::new(vec![
            Field::new("e_user", DataType::Int64),
            Field::new("e_kind", DataType::Str),
        ])?,
        TableStats::new(6, 16.0),
    )?;

    // ----- a little data ----------------------------------------------
    users.set_data(Table::new(
        Arc::clone(&users.schema),
        vec![
            vec![
                Value::Int64(1),
                Value::str("ada"),
                Value::str("ada@example.eu"),
            ],
            vec![
                Value::Int64(2),
                Value::str("grace"),
                Value::str("grace@example.eu"),
            ],
            vec![
                Value::Int64(3),
                Value::str("edsger"),
                Value::str("edsger@example.eu"),
            ],
            vec![
                Value::Int64(4),
                Value::str("barbara"),
                Value::str("barbara@example.eu"),
            ],
        ],
    )?)?;
    events.set_data(Table::new(
        Arc::clone(&events.schema),
        vec![
            vec![Value::Int64(1), Value::str("login")],
            vec![Value::Int64(1), Value::str("purchase")],
            vec![Value::Int64(2), Value::str("login")],
            vec![Value::Int64(3), Value::str("browse")],
            vec![Value::Int64(4), Value::str("login")],
            vec![Value::Int64(4), Value::str("refund")],
        ],
    )?)?;

    // ----- dataflow policies -------------------------------------------
    // Ids and names may cross the border; emails may not. Events are free.
    let mut policies = PolicyCatalog::new();
    for text in [
        "ship u_id, u_name from users to US",
        "ship * from events to *",
    ] {
        let e = geoqp::parser::parse_policy(text)?;
        let entry = catalog.resolve_one(&e.table)?;
        policies.register(e, &entry.schema)?;
        println!("policy: {text}");
    }

    let engine = Engine::new(
        Arc::new(catalog),
        Arc::new(policies),
        NetworkTopology::uniform(LocationSet::from_iter(["EU", "US"]), 80.0, 200.0),
    );

    // ----- a compliant query -------------------------------------------
    let sql = "SELECT u_name, e_kind FROM users, events WHERE u_id = e_user \
               ORDER BY u_name, e_kind";
    println!("\nquery: {sql}");
    let (optimized, result) = engine.run_sql(sql, OptimizerMode::Compliant, None)?;
    println!(
        "\ncompliant plan (result at {}):",
        optimized.result_location
    );
    print!(
        "{}",
        geoqp::plan::display::display_physical(&optimized.physical)
    );
    println!("result rows:");
    for row in result.rows.iter() {
        println!("  {} did {}", row[0], row[1]);
    }
    println!(
        "shipped {} bytes across borders in {} transfer(s), {:.1} ms simulated",
        result.transfers.total_bytes(),
        result.transfers.transfer_count(),
        result.transfers.total_cost_ms()
    );

    // ----- a non-compliant demand is rejected --------------------------
    let bad = "SELECT u_email, e_kind FROM users, events WHERE u_id = e_user";
    println!("\nquery: {bad} (result demanded in US)");
    match engine.optimize_sql(bad, OptimizerMode::Compliant, Some(Location::new("US"))) {
        Err(e) => println!("rejected as expected: {e}"),
        Ok(_) => println!("unexpectedly planned!"),
    }
    Ok(())
}
