//! Policy authoring and auditing walkthrough.
//!
//! ```bash
//! cargo run --example policy_audit
//! ```
//!
//! Shows the pieces a data officer and an engine operator interact with:
//! parsing policy expressions (Section 4), evaluating them against local
//! queries with Algorithm 1 (Section 5), and auditing hand-built physical
//! plans with the Definition-1 checker — including catching a plan that
//! smuggles restricted data through an intermediate site.

use geoqp::core::compliance::check_compliance;
use geoqp::plan::descriptor::describe_local;
use geoqp::plan::{PhysOp, PhysicalPlan};
use geoqp::prelude::*;
use std::sync::Arc;

fn main() -> Result<()> {
    // One table of patient data in Germany; sites in France and Japan.
    let mut catalog = Catalog::new();
    catalog.add_database("db-de", Location::new("DE"))?;
    catalog.add_location(Location::new("FR"));
    catalog.add_location(Location::new("JP"));
    let patients = catalog.add_table(
        "db-de",
        "patients",
        Schema::new(vec![
            Field::new("p_id", DataType::Int64),
            Field::new("p_age", DataType::Int64),
            Field::new("p_diagnosis", DataType::Str),
            Field::new("p_region", DataType::Str),
        ])?,
        TableStats::new(10_000, 64.0),
    )?;

    // The officer's policies: adult cohort statistics may go to the EU
    // partner; only aggregated ages may go to Japan.
    let mut policies = PolicyCatalog::new();
    for text in [
        "ship p_id, p_age, p_region from patients to FR where p_age >= 18",
        "ship p_age as aggregates avg, count from patients to FR, JP group by p_region",
    ] {
        let e = geoqp::parser::parse_policy(text)?;
        policies.register(e, &patients.schema)?;
        println!("registered: {text}");
    }

    // ---- Algorithm 1 by hand -----------------------------------------
    let universe = catalog.locations().clone();
    let evaluator = PolicyEvaluator::new(&policies, &universe);
    let scan = || {
        PlanBuilder::scan(
            TableRef::bare("patients"),
            Location::new("DE"),
            patients.schema.as_ref().clone(),
        )
    };

    let adult_ids = scan()
        .filter(ScalarExpr::col("p_age").gt_eq(ScalarExpr::lit(21i64)))?
        .project_columns(&["p_id", "p_region"])?
        .build();
    let avg_age = scan()
        .aggregate(
            &["p_region"],
            vec![AggCall::new(
                AggFunc::Avg,
                ScalarExpr::col("p_age"),
                "avg_age",
            )],
        )?
        .build();
    let raw_diagnosis = scan().project_columns(&["p_diagnosis"])?.build();

    for (what, plan) in [
        ("ids+regions of patients ≥ 21", &adult_ids),
        ("average age per region", &avg_age),
        ("raw diagnoses", &raw_diagnosis),
    ] {
        let q = describe_local(plan).expect("single-site query");
        println!("𝒜({what}) = {}", evaluator.evaluate_with_home(&q));
    }

    // ---- Definition-1 audits ------------------------------------------
    let scan_phys = Arc::new(PhysicalPlan::new(
        PhysOp::Scan {
            table: patients.table.clone(),
        },
        Arc::clone(&patients.schema),
        Location::new("DE"),
        vec![],
    )?);

    // Legal: masked + filtered, then shipped to France.
    let masked = Arc::new(PhysicalPlan::new(
        PhysOp::Filter {
            predicate: ScalarExpr::col("p_age").gt_eq(ScalarExpr::lit(18i64)),
        },
        Arc::clone(&patients.schema),
        Location::new("DE"),
        vec![Arc::clone(&scan_phys)],
    )?);
    let masked = Arc::new(PhysicalPlan::new(
        PhysOp::Project {
            exprs: vec![
                (ScalarExpr::col("p_id"), "p_id".into()),
                (ScalarExpr::col("p_region"), "p_region".into()),
            ],
        },
        Arc::new(Schema::new(vec![
            Field::new("p_id", DataType::Int64),
            Field::new("p_region", DataType::Str),
        ])?),
        Location::new("DE"),
        vec![masked],
    )?);
    let legal = PhysicalPlan::ship(masked, Location::new("FR"));
    println!(
        "\naudit(masked cohort → FR): {:?}",
        check_compliance(&legal, &evaluator, &catalog).map(|_| "compliant")
    );

    // Illegal: raw table shipped to France, even via a projection at the
    // destination — the SHIP itself is the violation.
    let smuggle = PhysicalPlan::ship(scan_phys, Location::new("FR"));
    let smuggle = Arc::new(PhysicalPlan::new(
        PhysOp::Project {
            exprs: vec![(ScalarExpr::col("p_id"), "p_id".into())],
        },
        Arc::new(Schema::new(vec![Field::new("p_id", DataType::Int64)])?),
        Location::new("FR"),
        vec![smuggle],
    )?);
    match check_compliance(&smuggle, &evaluator, &catalog) {
        Err(e) => println!("audit(raw table → FR, projected there): {e}"),
        Ok(()) => println!("audit unexpectedly passed!"),
    }

    // ---- negative policies (closed-world expansion) --------------------
    // The officer can also write what must NOT happen; `expand_denials`
    // turns denials into ordinary grants under the closed world assumption.
    println!(
        "
negative policies:"
    );
    let denials = vec![
        geoqp::parser::parse_denial("deny ship p_diagnosis from patients to *")?,
        geoqp::parser::parse_denial("deny ship * from patients to JP where p_age < 18")?,
    ];
    for d in &denials {
        println!("  {d}");
    }
    let grants = geoqp::policy::expand_denials(
        &TableRef::bare("patients"),
        &patients.schema,
        &denials,
        &universe,
    )?;
    println!("expanded into {} grant(s):", grants.len());
    let mut neg_catalog = PolicyCatalog::new();
    for g in grants {
        println!("  {g}");
        neg_catalog.register(g, &patients.schema)?;
    }
    let neg_eval = PolicyEvaluator::new(&neg_catalog, &universe);
    let adult_ages = scan()
        .filter(ScalarExpr::col("p_age").gt_eq(ScalarExpr::lit(18i64)))?
        .project_columns(&["p_id", "p_age"])?
        .build();
    let q = describe_local(&adult_ages).expect("single-site query");
    println!(
        "𝒜(ids+ages of adults, under denials) = {}",
        neg_eval.evaluate_with_home(&q)
    );
    let q = describe_local(&raw_diagnosis).expect("single-site query");
    println!(
        "𝒜(raw diagnoses, under denials) = {}",
        neg_eval.evaluate_with_home(&q)
    );
    Ok(())
}
