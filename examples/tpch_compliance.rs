//! Geo-distributed TPC-H under the paper's Table 2/Table 3 setup.
//!
//! ```bash
//! cargo run --release --example tpch_compliance            # Q3 by default
//! cargo run --release --example tpch_compliance -- Q10     # another query
//! ```
//!
//! Generates a small TPC-H deployment across five locations, registers the
//! Table 3 policy snippet plus the CR+A template set, and contrasts the
//! traditional and compliance-based optimizers on one of the evaluated
//! queries — including actually executing both plans and accounting every
//! cross-border byte.

use geoqp::prelude::*;
use geoqp::tpch;
use geoqp::tpch::policy_gen::PolicyTemplate;
use std::sync::Arc;

fn main() -> Result<()> {
    let query = std::env::args().nth(1).unwrap_or_else(|| "Q3".into());
    let sf = 0.002;

    // Table 2 deployment, populated with generated data.
    let catalog = Arc::new(tpch::paper_catalog(sf));
    tpch::populate(&catalog, sf, 7)?;
    println!("TPC-H at SF {sf} across 5 locations (Table 2):");
    for (loc, db, tables) in tpch::distribution::DISTRIBUTION {
        println!("  {loc} ({db}): {}", tables.join(", "));
    }

    // CR+A policies (10 expressions, Section 7.1).
    let policies = tpch::generate_policies(&catalog, PolicyTemplate::CRA, 10, 2021)?;
    println!("\npolicies ({}):", policies.len());
    for e in policies.expressions() {
        println!("  {e}");
    }

    let engine = Engine::new(
        Arc::clone(&catalog),
        Arc::new(policies),
        NetworkTopology::paper_wan(),
    );
    let plan = tpch::query_by_name(&catalog, &query)?;
    println!(
        "\n{query}: {} joins over {} locations",
        plan.join_count(),
        plan.source_locations().len()
    );

    for mode in [OptimizerMode::Traditional, OptimizerMode::Compliant] {
        let name = match mode {
            OptimizerMode::Traditional => "traditional",
            OptimizerMode::Compliant => "compliant",
        };
        match engine.optimize(&plan, mode, None) {
            Err(e) => println!("\n{name}: {e}"),
            Ok(opt) => {
                let exec = engine.execute(&opt.physical)?;
                let audit = match engine.audit(&opt.physical) {
                    Ok(()) => "compliant".to_string(),
                    Err(e) => format!("NON-COMPLIANT ({e})"),
                };
                println!(
                    "\n{name}: optimized in {:.2} ms (η={}), audit: {audit}",
                    opt.stats.total_ms, opt.stats.eta
                );
                println!(
                    "  {} result rows at {}; shipped {} bytes in {} transfers ({:.1} ms simulated)",
                    exec.rows.len(),
                    opt.result_location,
                    exec.transfers.total_bytes(),
                    exec.transfers.transfer_count(),
                    exec.transfers.total_cost_ms()
                );
                for t in exec.transfers.records() {
                    println!(
                        "    {} → {}: {} rows, {} bytes",
                        t.from, t.to, t.rows, t.bytes
                    );
                }
            }
        }
    }
    Ok(())
}
