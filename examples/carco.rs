//! The paper's running example (Section 2): CarCo, a transnational car
//! manufacturer with customer data in North America, orders in Europe, and
//! supply data in Asia, under the dataflow policies P_N, P_E, P_A.
//!
//! ```bash
//! cargo run --example carco            # plans + execution
//! cargo run --example carco -- --explain   # + Figure 4-style traits
//! ```
//!
//! Reproduces Figure 1: the traditional optimizer's plan violates P_N and
//! P_E, while the compliance-based optimizer masks the account balance via
//! projection, pre-aggregates Supply in Asia, and joins in Europe.

use geoqp::prelude::*;
use std::sync::Arc;

fn main() -> Result<()> {
    let explain = std::env::args().any(|a| a == "--explain");

    // ----- the three sites (Figure 2) ----------------------------------
    let mut catalog = Catalog::new();
    catalog.add_database("db-n", Location::new("N"))?;
    catalog.add_database("db-e", Location::new("E"))?;
    catalog.add_database("db-a", Location::new("A"))?;

    let customer = catalog.add_table(
        "db-n",
        "customer",
        Schema::new(vec![
            Field::new("c_custkey", DataType::Int64),
            Field::new("c_name", DataType::Str),
            Field::new("c_acctbal", DataType::Float64),
            Field::new("c_mktseg", DataType::Str),
        ])?,
        TableStats::new(3, 48.0).with_ndv("c_custkey", 3),
    )?;
    let orders = catalog.add_table(
        "db-e",
        "orders",
        Schema::new(vec![
            Field::new("o_custkey", DataType::Int64),
            Field::new("o_ordkey", DataType::Int64),
            Field::new("o_totprice", DataType::Float64),
        ])?,
        TableStats::new(4, 24.0).with_ndv("o_ordkey", 4),
    )?;
    let supply = catalog.add_table(
        "db-a",
        "supply",
        Schema::new(vec![
            Field::new("s_ordkey", DataType::Int64),
            Field::new("s_quantity", DataType::Int64),
            Field::new("s_extprice", DataType::Float64),
        ])?,
        TableStats::new(7, 20.0).with_ndv("s_ordkey", 4),
    )?;

    customer.set_data(Table::new(
        Arc::clone(&customer.schema),
        vec![
            vec![
                Value::Int64(1),
                Value::str("alice"),
                Value::Float64(120.0),
                Value::str("auto"),
            ],
            vec![
                Value::Int64(2),
                Value::str("bob"),
                Value::Float64(80.5),
                Value::str("machinery"),
            ],
            vec![
                Value::Int64(3),
                Value::str("carol"),
                Value::Float64(310.0),
                Value::str("auto"),
            ],
        ],
    )?)?;
    orders.set_data(Table::new(
        Arc::clone(&orders.schema),
        vec![
            vec![Value::Int64(1), Value::Int64(10), Value::Float64(55.0)],
            vec![Value::Int64(1), Value::Int64(11), Value::Float64(25.0)],
            vec![Value::Int64(2), Value::Int64(12), Value::Float64(40.0)],
            vec![Value::Int64(3), Value::Int64(13), Value::Float64(90.0)],
        ],
    )?)?;
    supply.set_data(Table::new(
        Arc::clone(&supply.schema),
        vec![
            vec![Value::Int64(10), Value::Int64(5), Value::Float64(1.5)],
            vec![Value::Int64(10), Value::Int64(2), Value::Float64(0.5)],
            vec![Value::Int64(11), Value::Int64(9), Value::Float64(2.0)],
            vec![Value::Int64(12), Value::Int64(4), Value::Float64(1.0)],
            vec![Value::Int64(12), Value::Int64(1), Value::Float64(3.0)],
            vec![Value::Int64(13), Value::Int64(7), Value::Float64(2.5)],
            vec![Value::Int64(13), Value::Int64(3), Value::Float64(0.75)],
        ],
    )?)?;

    // ----- the dataflow policies of Section 2 --------------------------
    println!("dataflow policies:");
    let mut policies = PolicyCatalog::new();
    for text in [
        // P_N: customer data leaves North America only without acctbal.
        "ship c_custkey, c_name, c_mktseg from db-n.customer to *",
        // P_E: only aggregated order data may reach Asia…
        "ship o_totprice as aggregates sum from db-e.orders to A group by o_custkey, o_ordkey",
        // …and order prices may not reach North America.
        "ship o_custkey, o_ordkey from db-e.orders to N, A",
        // P_A: only aggregated supply quantities/prices may reach Europe.
        "ship s_quantity, s_extprice as aggregates sum from db-a.supply to E group by s_ordkey",
    ] {
        let e = geoqp::parser::parse_policy(text)?;
        let entry = catalog.resolve_one(&e.table)?;
        policies.register(e, &entry.schema)?;
        println!("  {text}");
    }

    let engine = Engine::new(
        Arc::new(catalog),
        Arc::new(policies),
        NetworkTopology::uniform(LocationSet::from_iter(["N", "E", "A"]), 120.0, 100.0),
    );

    // ----- Q_ex ---------------------------------------------------------
    let sql = "SELECT c_name, SUM(o_totprice) AS sum_price, SUM(s_quantity) AS sum_qty \
               FROM customer, orders, supply \
               WHERE c_custkey = o_custkey AND o_ordkey = s_ordkey \
               GROUP BY c_name ORDER BY c_name";
    println!("\nQ_ex: {sql}\n");

    // The traditional optimizer's choice (Figure 1(a)'s role).
    let trad = engine.optimize_sql(sql, OptimizerMode::Traditional, Some(Location::new("E")))?;
    println!("traditional plan:");
    print!("{}", geoqp::plan::display::display_physical(&trad.physical));
    match engine.audit(&trad.physical) {
        Ok(()) => println!("audit: compliant\n"),
        Err(e) => println!("audit: {e}\n"),
    }

    // The compliance-based optimizer (Figure 1(b)).
    let (comp, result) = engine.run_sql(sql, OptimizerMode::Compliant, Some(Location::new("E")))?;
    println!("compliant plan:");
    print!("{}", geoqp::plan::display::display_physical(&comp.physical));
    engine.audit(&comp.physical)?;
    println!("audit: compliant");

    if explain {
        println!("\nannotated plan (execution trait ℰ, shipping trait 𝒮 — Figure 4):");
        print!(
            "{}",
            geoqp::core::explain::display_annotated(&comp.annotated)
        );
    }

    println!("\nresult (in Europe):");
    for row in result.rows.iter() {
        println!("  {}  price={}  qty={}", row[0], row[1], row[2]);
    }
    println!(
        "\ncross-border transfers: {} ({} bytes, {:.1} ms simulated)",
        result.transfers.transfer_count(),
        result.transfers.total_bytes(),
        result.transfers.total_cost_ms()
    );
    for t in result.transfers.records() {
        println!(
            "  {} → {}: {} rows, {} bytes",
            t.from, t.to, t.rows, t.bytes
        );
    }
    Ok(())
}
