//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` for documentation and
//! forward compatibility but never exercises serde's data model (the wire
//! format is hand-rolled in `geoqp-common`). These derives therefore only
//! need to accept the attribute grammar (`#[serde(...)]`) and emit nothing.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
