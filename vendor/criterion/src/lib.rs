//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! benchmark groups, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros — with a simple
//! median-of-samples wall-clock measurement printed to stdout instead of
//! criterion's statistical machinery.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level handle passed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _parent: self,
        }
    }

    /// Benchmark a single function.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, 10, &mut f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set how many samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmark `f` with a fixed input.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Benchmark `f` under this group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name);
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Finish the group (reporting happens eagerly; this is a no-op).
    pub fn finish(self) {}
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Compose an id from a function name and a parameter.
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Drives the measured closure.
pub struct Bencher {
    samples: Vec<Duration>,
    per_sample_iters: u64,
}

impl Bencher {
    /// Measure `f`, collecting one timing sample per configured round.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let iters = self.per_sample_iters;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.samples.push(start.elapsed() / iters as u32);
    }
}

fn run_one(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // Calibrate: run once to size per-sample iteration counts so that a
    // sample takes at least ~1ms without dragging slow benches forever.
    let mut bench = Bencher {
        samples: Vec::new(),
        per_sample_iters: 1,
    };
    f(&mut bench);
    let warm = bench.samples.first().copied().unwrap_or(Duration::ZERO);
    let per_sample_iters = if warm < Duration::from_micros(100) {
        (Duration::from_millis(1).as_nanos() / warm.as_nanos().max(1)).clamp(1, 10_000) as u64
    } else {
        1
    };

    let mut bench = Bencher {
        samples: Vec::with_capacity(sample_size),
        per_sample_iters,
    };
    for _ in 0..sample_size {
        f(&mut bench);
    }
    let mut samples = bench.samples;
    if samples.is_empty() {
        println!("{label:<40} (no samples: closure never called iter)");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let lo = samples[0];
    let hi = samples[samples.len() - 1];
    println!(
        "{label:<40} median {median:>12?}   [{lo:?} .. {hi:?}] ({} samples × {} iters)",
        samples.len(),
        per_sample_iters
    );
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_round_trips() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("f", 1), &2u64, |b, &n| {
            b.iter(|| n * n)
        });
        group.finish();
        c.bench_function("plain", |b| b.iter(|| 1 + 1));
    }
}
