//! String strategies: `&str` patterns as in proptest.
//!
//! Real proptest interprets a `&str` strategy as a full regex. This stub
//! implements the small subset the workspace's tests use: a sequence of
//! atoms (`.`, a character class `[...]`, or a literal character, each
//! optionally escaped) with optional `{a,b}`, `*`, `+`, or `?`
//! quantifiers. `.` draws from printable ASCII plus a few multi-byte
//! characters so UTF-8 boundaries get exercised.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Atom {
    Any,
    Literal(char),
    Class(Vec<(char, char)>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: u32,
    max: u32,
}

/// Characters `.` can produce. Mostly printable ASCII with a multi-byte
/// tail so encoders see 2-, 3-, and 4-byte UTF-8.
const DOT_EXTRAS: [char; 6] = ['é', 'λ', '中', '—', '🙂', 'ß'];

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::Any
            }
            '\\' if i + 1 < chars.len() => {
                i += 2;
                Atom::Literal(chars[i - 1])
            }
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| p + i)
                    .unwrap_or_else(|| panic!("unterminated class in pattern {pattern:?}"));
                let mut ranges = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        ranges.push((chars[j], chars[j + 2]));
                        j += 3;
                    } else {
                        ranges.push((chars[j], chars[j]));
                        j += 1;
                    }
                }
                i = close + 1;
                Atom::Class(ranges)
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| p + i)
                        .unwrap_or_else(|| panic!("unterminated quantifier in {pattern:?}"));
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((a, b)) => (
                            a.trim().parse().expect("bad quantifier"),
                            b.trim().parse().expect("bad quantifier"),
                        ),
                        None => {
                            let n = body.trim().parse().expect("bad quantifier");
                            (n, n)
                        }
                    }
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn gen_char(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::Any => {
            if rng.below(8) == 0 {
                DOT_EXTRAS[rng.below(DOT_EXTRAS.len() as u64) as usize]
            } else {
                char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap()
            }
        }
        Atom::Class(ranges) => {
            let (lo, hi) = ranges[rng.below(ranges.len() as u64) as usize];
            let span = (hi as u32).saturating_sub(lo as u32) + 1;
            char::from_u32(lo as u32 + rng.below(span as u64) as u32).unwrap_or(lo)
        }
    }
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse(self) {
            let n = piece.min + rng.below((piece.max - piece.min + 1) as u64) as u32;
            for _ in 0..n {
                out.push(gen_char(&piece.atom, rng));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_quantifier_bounds_length() {
        let mut rng = TestRng::from_seed(21);
        for _ in 0..300 {
            let s = ".{0,24}".generate(&mut rng);
            let n = s.chars().count();
            assert!(n <= 24, "{n} chars: {s:?}");
        }
    }

    #[test]
    fn literals_and_classes() {
        let mut rng = TestRng::from_seed(22);
        let s = "ab[0-9]c?".generate(&mut rng);
        assert!(s.starts_with("ab"));
        let digit = s.chars().nth(2).unwrap();
        assert!(digit.is_ascii_digit());
    }
}
