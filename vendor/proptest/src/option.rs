//! Optional-value strategies (`proptest::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing `Option<T>` from an inner strategy.
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        // Lean toward Some so the inner strategy gets exercised, while
        // keeping None common enough to cover the absent path.
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

/// `None` or a value drawn from `inner`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_both_variants_in_bounds() {
        let mut rng = TestRng::from_seed(31);
        let s = of(0i64..10);
        let mut some = 0;
        let mut none = 0;
        for _ in 0..400 {
            match s.generate(&mut rng) {
                Some(v) => {
                    assert!((0..10).contains(&v));
                    some += 1;
                }
                None => none += 1,
            }
        }
        assert!(some > 200, "some = {some}");
        assert!(none > 40, "none = {none}");
    }
}
