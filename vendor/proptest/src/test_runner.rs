//! Deterministic RNG and per-test configuration.

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// The generator RNG: xoshiro256++ seeded via splitmix64 from a test
/// name, so every run of a given test sees the same case stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Seed from a 64-bit value.
    pub fn from_seed(mut seed: u64) -> TestRng {
        TestRng {
            s: [
                splitmix64(&mut seed),
                splitmix64(&mut seed),
                splitmix64(&mut seed),
                splitmix64(&mut seed),
            ],
        }
    }

    /// Seed deterministically from a test's fully qualified name (FNV-1a).
    pub fn for_test(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng::from_seed(h)
    }

    /// Next uniform 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)` (widening-multiply method).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let wide = (x as u128) * (bound as u128);
            if (wide as u64) >= threshold {
                return (wide >> 64) as u64;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = TestRng::for_test("x::y");
        let mut b = TestRng::for_test("x::y");
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::for_test("x::z");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_is_in_bounds() {
        let mut rng = TestRng::from_seed(9);
        for bound in [1u64, 2, 3, 7, 1000] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
    }
}
