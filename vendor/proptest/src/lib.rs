//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use — `Strategy` with `prop_map`/`prop_recursive`, tuple and
//! range strategies, `Just`, `any`, `prop_oneof!` (weighted and
//! unweighted), `collection::vec`, `sample::subsequence`, a tiny
//! `.{a,b}`-style string pattern strategy, and the `proptest!` test macro
//! with `ProptestConfig::with_cases`.
//!
//! Differences from the real crate, by design:
//!
//! * **generate-only** — no shrinking. A failing case panics with the
//!   generated inputs in the assertion message instead of a minimized one.
//! * **deterministic** — each test's RNG is seeded from its module path
//!   and name, so a failure reproduces on every run.

pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert inside a property test (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Weighted or unweighted union of strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strategy:expr),+ $(,)?) => {
        $crate::strategy::union(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::union(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
}

/// The `proptest!` block: wraps `fn name(arg in strategy, ...)` items
/// into `#[test]` functions that run the body over many generated cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest! { @with_config ($config) $($rest)* }
    };
    (
        @with_config ($config:expr)
        $(
            $(#[$attr:meta])*
            fn $name:ident ( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let strat = ($($strategy,)+);
                let mut rng = $crate::test_runner::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..config.cases {
                    let ($($arg,)+) =
                        $crate::strategy::Strategy::generate(&strat, &mut rng);
                    let _ = case;
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            @with_config ($crate::test_runner::ProptestConfig::default())
            $($rest)*
        }
    };
}
