//! Generate-only strategies.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A source of random values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the test RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        let s = self;
        BoxedStrategy(Rc::new(move |rng| s.generate(rng)))
    }

    /// Build recursive values: `self` is the leaf strategy and `recurse`
    /// wraps an inner strategy into a composite one. `depth` bounds the
    /// nesting; the size/branch hints of the real API are accepted and
    /// ignored (generation is bounded by depth alone).
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let base = self.boxed();
        let mut current = base.clone();
        for _ in 0..depth {
            let deeper = recurse(current).boxed();
            // Lean toward composites so depth is actually exercised,
            // while keeping leaves reachable at every level.
            current = union(vec![(1, base.clone()), (2, deeper)]);
        }
        current
    }
}

/// A type-erased strategy. Clones share the generator.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> BoxedStrategy<T> {
    /// Wrap a generator function.
    pub fn from_fn(f: impl Fn(&mut TestRng) -> T + 'static) -> BoxedStrategy<T> {
        BoxedStrategy(Rc::new(f))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Weighted union over same-typed strategies (backs `prop_oneof!`).
pub fn union<T: 'static>(arms: Vec<(u32, BoxedStrategy<T>)>) -> BoxedStrategy<T> {
    assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
    let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
    assert!(total > 0, "prop_oneof! needs a positive total weight");
    BoxedStrategy::from_fn(move |rng| {
        let mut pick = rng.below(total);
        for (w, s) in &arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    })
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

// ---- tuples ---------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A/0);
impl_tuple_strategy!(A/0, B/1);
impl_tuple_strategy!(A/0, B/1, C/2);
impl_tuple_strategy!(A/0, B/1, C/2, D/3);
impl_tuple_strategy!(A/0, B/1, C/2, D/3, E/4);
impl_tuple_strategy!(A/0, B/1, C/2, D/3, E/4, F/5);

// ---- integer / float ranges ----------------------------------------------

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let off = below128(rng, span) as i128;
                ((self.start as i128) + off) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128).wrapping_sub(lo as i128) as u128 + 1;
                let off = below128(rng, span) as i128;
                ((lo as i128) + off) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

fn below128(rng: &mut TestRng, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span <= u64::MAX as u128 {
        rng.below(span as u64) as u128
    } else {
        loop {
            let x = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
            if x < span {
                return x;
            }
        }
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

// ---- any::<T>() -----------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy `any::<Self>()` returns.
    type Strategy: Strategy<Value = Self>;
    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Marker strategy behind [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Any<T> {
        Any(PhantomData)
    }
}

macro_rules! impl_any {
    ($t:ty, |$rng:ident| $gen:expr) => {
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, $rng: &mut TestRng) -> $t {
                $gen
            }
        }
        impl Arbitrary for $t {
            type Strategy = Any<$t>;
            fn arbitrary() -> Any<$t> {
                Any(PhantomData)
            }
        }
    };
}

impl_any!(bool, |rng| rng.next_u64() & 1 == 1);
impl_any!(u8, |rng| rng.next_u64() as u8);
impl_any!(u16, |rng| rng.next_u64() as u16);
impl_any!(u32, |rng| rng.next_u64() as u32);
impl_any!(u64, |rng| rng.next_u64());
impl_any!(usize, |rng| rng.next_u64() as usize);
impl_any!(i8, |rng| rng.next_u64() as i8);
impl_any!(i16, |rng| rng.next_u64() as i16);
impl_any!(i32, |rng| rng.next_u64() as i32);
impl_any!(i64, |rng| rng.next_u64() as i64);
impl_any!(isize, |rng| rng.next_u64() as isize);
// Full bit-pattern floats: infinities and NaN payloads included, like
// proptest's `any::<f64>()` — the wire-format tests rely on NaN cases.
impl_any!(f64, |rng| f64::from_bits(rng.next_u64()));
impl_any!(f32, |rng| f32::from_bits(rng.next_u64() as u32));
impl_any!(char, |rng| {
    loop {
        // Bias toward ASCII but cover the whole scalar-value space.
        let raw = if rng.next_u64() & 3 == 0 {
            (rng.below(0x110000)) as u32
        } else {
            (0x20 + rng.below(0x5f)) as u32
        };
        if let Some(c) = char::from_u32(raw) {
            break c;
        }
    }
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_maps() {
        let mut rng = TestRng::from_seed(1);
        let s = (0i64..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && (0..20).contains(&v));
        }
    }

    #[test]
    fn union_respects_weights() {
        let mut rng = TestRng::from_seed(2);
        let s = union(vec![
            (9, Just(1u8).boxed()),
            (1, Just(2u8).boxed()),
        ]);
        let ones = (0..1000).filter(|_| s.generate(&mut rng) == 1).count();
        assert!(ones > 800, "ones = {ones}");
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let leaf = (0i64..5).prop_map(Tree::Leaf);
        let tree = leaf.prop_recursive(4, 16, 2, |inner| {
            (inner.clone(), inner)
                .prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = TestRng::from_seed(3);
        let mut saw_node = false;
        for _ in 0..200 {
            let t = tree.generate(&mut rng);
            assert!(depth(&t) <= 4);
            saw_node |= matches!(t, Tree::Node(..));
        }
        assert!(saw_node, "recursion never produced a composite");
    }
}
