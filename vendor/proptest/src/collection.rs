//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// An inclusive size interval, convertible from the forms proptest
/// accepts: a fixed `usize`, `a..b`, and `a..=b`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Smallest allowed size.
    pub min: usize,
    /// Largest allowed size (inclusive).
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl SizeRange {
    /// Pick a size uniformly.
    pub fn pick(&self, rng: &mut TestRng) -> usize {
        self.min + rng.below((self.max - self.min + 1) as u64) as usize
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `proptest::collection::vec`: a vector whose length is drawn from
/// `size` and whose elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Just;

    #[test]
    fn sizes_are_respected() {
        let mut rng = TestRng::from_seed(5);
        let s = vec(Just(7u8), 2..5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..=4).contains(&v.len()));
            assert!(v.iter().all(|&x| x == 7));
        }
        let fixed = vec(Just(1u8), 3usize);
        assert_eq!(fixed.generate(&mut rng).len(), 3);
    }
}
