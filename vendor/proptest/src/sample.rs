//! Sampling strategies (`proptest::sample::subsequence`).

use crate::collection::SizeRange;
use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing order-preserving subsequences of a base vector.
#[derive(Debug, Clone)]
pub struct Subsequence<T: Clone> {
    base: Vec<T>,
    size: SizeRange,
}

impl<T: Clone> Strategy for Subsequence<T> {
    type Value = Vec<T>;
    fn generate(&self, rng: &mut TestRng) -> Vec<T> {
        let n = self.base.len();
        let want = self.size.pick(rng).min(n);
        // Floyd's algorithm for a uniform k-subset, then emit in order.
        let mut chosen = vec![false; n];
        for j in (n - want)..n {
            let t = rng.below((j + 1) as u64) as usize;
            if chosen[t] {
                chosen[j] = true;
            } else {
                chosen[t] = true;
            }
        }
        self.base
            .iter()
            .zip(&chosen)
            .filter(|(_, &c)| c)
            .map(|(v, _)| v.clone())
            .collect()
    }
}

/// A random subsequence of `base` whose length falls in `size`
/// (clamped to the base length), preserving element order.
pub fn subsequence<T: Clone>(
    base: Vec<T>,
    size: impl Into<SizeRange>,
) -> Subsequence<T> {
    Subsequence {
        base,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subsequences_preserve_order_and_bounds() {
        let mut rng = TestRng::from_seed(11);
        let s = subsequence(vec![1, 2, 3, 4, 5], 1..=3);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((1..=3).contains(&v.len()));
            assert!(v.windows(2).all(|w| w[0] < w[1]), "{v:?} out of order");
        }
    }

    #[test]
    fn oversized_request_clamps_to_full_set() {
        let mut rng = TestRng::from_seed(12);
        let s = subsequence(vec!["a", "b"], 2..=2);
        assert_eq!(s.generate(&mut rng), vec!["a", "b"]);
    }
}
