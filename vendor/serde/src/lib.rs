//! Offline stand-in for `serde`.
//!
//! The geoqp workspace never serializes through serde's data model — the
//! wire format is implemented directly in `geoqp-common::row`. The derives
//! exist on types for API documentation and downstream compatibility, so
//! this stub only provides the trait names and re-exports the no-op derive
//! macros. It carries the same feature names (`derive`, `rc`, ...) that the
//! real crate accepts so existing manifests keep working unchanged.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in the stub).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods in the stub).
pub trait Deserialize<'de> {}

/// Marker trait mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
impl<T: ?Sized> DeserializeOwned for T {}

/// Mirrors `serde::ser` far enough for `use serde::ser::Serialize` paths.
pub mod ser {
    pub use crate::Serialize;
}

/// Mirrors `serde::de` far enough for `use serde::de::Deserialize` paths.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}
