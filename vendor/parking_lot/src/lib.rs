//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Matches the subset of the API the workspace uses: infallible `lock` /
//! `read` / `write` accessors (parking_lot has no lock poisoning; the stub
//! recovers poisoned std locks to preserve that contract).

use std::sync::{self, PoisonError};

/// A reader-writer lock with parking_lot's poison-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create an unlocked lock holding `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(_) => panic!("RwLock poisoned with exclusive access"),
        }
    }
}

/// A mutex with parking_lot's poison-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create an unlocked mutex holding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
