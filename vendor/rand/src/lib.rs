//! Offline stand-in for `rand`, implementing the subset the workspace
//! uses: a seedable deterministic generator (`rngs::StdRng`), integer
//! `gen_range` over `Range`/`RangeInclusive`, `gen_bool`, and `gen` for
//! the common scalar types.
//!
//! The generator is xoshiro256++ seeded through splitmix64 — the same
//! construction the real `rand` crate documents for seeding — so streams
//! are deterministic, well distributed, and stable across runs and
//! platforms. (The exact streams differ from the real `StdRng`, which is
//! fine: everything in this workspace that consumes randomness treats the
//! seed as an opaque reproducibility handle.)

use std::ops::{Range, RangeInclusive};

/// Core RNG capability: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniform random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (via splitmix64 expansion).
    fn seed_from_u64(state: u64) -> Self;

    /// Build from OS entropy — the stub derives it from the system clock.
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E3779B97F4A7C15);
        Self::seed_from_u64(nanos)
    }
}

/// Values producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Sample one value from the full/unit distribution.
    fn sample(rng: &mut dyn RngCore) -> Self;
}

impl Standard for u64 {
    fn sample(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample(rng: &mut dyn RngCore) -> u32 {
        rng.next_u32()
    }
}

impl Standard for i64 {
    fn sample(rng: &mut dyn RngCore) -> i64 {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample(rng: &mut dyn RngCore) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample(rng: &mut dyn RngCore) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample uniformly from the range. Panics when empty.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

/// Rejection-free-enough uniform integer in `[0, span)` (Lemire-style
/// widening multiply; the tiny modulo bias of plain `% span` is avoided).
fn uniform_below(rng: &mut dyn RngCore, span: u128) -> u128 {
    debug_assert!(span > 0);
    // 128-bit widening of a 64-bit word covers every span the workspace
    // uses; for spans above 2^64 fall back to masking.
    if span <= u64::MAX as u128 {
        let span64 = span as u64;
        let threshold = span64.wrapping_neg() % span64;
        loop {
            let x = rng.next_u64();
            let wide = (x as u128) * (span64 as u128);
            if (wide as u64) >= threshold {
                return wide >> 64;
            }
        }
    } else {
        // The only span above u64::MAX a 64-bit range can produce is
        // exactly 2^64 (a full-width inclusive range), where every raw
        // word is already uniform.
        debug_assert!(span == (u64::MAX as u128) + 1);
        rng.next_u64() as u128
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let off = uniform_below(rng, span) as i128;
                ((self.start as i128) + off) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128).wrapping_sub(lo as i128) as u128 + 1;
                let off = uniform_below(rng, span) as i128;
                ((lo as i128) + off) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample from the type's standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand`'s
    /// ChaCha-based `StdRng`; same trait surface, different stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> StdRng {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the workspace treats SmallRng and StdRng identically.
    pub type SmallRng = StdRng;
}

/// A default-seeded convenience generator, mirroring `rand::thread_rng`.
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::from_entropy()
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&x));
            let y = rng.gen_range(0usize..7);
            assert!(y < 7);
            let z: f64 = rng.gen();
            assert!((0.0..1.0).contains(&z));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn full_width_ranges_do_not_overflow() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = rng.gen_range(i64::MIN..i64::MAX);
        assert!(x < i64::MAX);
        let y = rng.gen_range(u64::MIN..=u64::MAX);
        let _ = y;
    }
}
