//! End-to-end integration across all crates, through the `geoqp` facade:
//! TPC-H deployment → policies → optimization → distributed simulated
//! execution → compliance audit.

use geoqp::prelude::*;
use geoqp::tpch;
use geoqp::tpch::policy_gen::PolicyTemplate;
use std::sync::Arc;

const SF: f64 = 0.002;

fn engine(template: PolicyTemplate) -> Engine {
    let catalog = Arc::new(tpch::paper_catalog(SF));
    tpch::populate(&catalog, SF, 7).unwrap();
    let policies =
        tpch::generate_policies(&catalog, template, template.base_count(), 2021).unwrap();
    Engine::new(catalog, Arc::new(policies), NetworkTopology::paper_wan())
}

#[test]
fn all_six_queries_execute_compliantly_under_cra() {
    let eng = engine(PolicyTemplate::CRA);
    for (name, plan) in tpch::all_queries(eng.catalog()).unwrap() {
        let opt = eng
            .optimize(&plan, OptimizerMode::Compliant, None)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        eng.audit(&opt.physical)
            .unwrap_or_else(|e| panic!("{name} audit: {e}"));
        let exec = eng.execute(&opt.physical).unwrap();
        // Transfers recorded by execution mirror the plan's SHIP edges
        // (compared as multisets: execution is post-order, the plan
        // listing pre-order).
        let mut planned = opt.physical.transfers();
        planned.sort();
        let mut executed: Vec<_> = exec
            .transfers
            .records()
            .iter()
            .map(|r| (r.from.clone(), r.to.clone()))
            .collect();
        executed.sort();
        assert_eq!(executed, planned, "{name}: transfer endpoints");
    }
}

#[test]
fn requested_result_location_is_honored_or_rejected() {
    let eng = engine(PolicyTemplate::CRA);
    let plan = tpch::query_by_name(eng.catalog(), "Q3").unwrap();
    // L4 hosts lineitem and every other grant includes L4, so delivery
    // there must succeed.
    let opt = eng
        .optimize(&plan, OptimizerMode::Compliant, Some(Location::new("L4")))
        .unwrap();
    assert_eq!(opt.result_location, Location::new("L4"));
    eng.audit(&opt.physical).unwrap();

    // L2 (supplier site) is reachable by nothing Q3 needs; the demand is
    // rejected rather than violated.
    let res = eng.optimize(&plan, OptimizerMode::Compliant, Some(Location::new("L2")));
    match res {
        Err(e) => assert_eq!(e.kind(), "rejected"),
        Ok(opt) => {
            // If a plan exists it must still be compliant.
            eng.audit(&opt.physical).unwrap();
            assert_eq!(opt.result_location, Location::new("L2"));
        }
    }
}

#[test]
fn partitioned_tables_execute_through_unions() {
    let catalog = Arc::new(tpch::paper_catalog_partitioned(SF, 3).unwrap());
    tpch::populate(&catalog, SF, 7).unwrap();
    let policies = tpch::generate_policies(&catalog, PolicyTemplate::CRA, 10, 2021).unwrap();
    let eng = Engine::new(
        Arc::clone(&catalog),
        Arc::new(policies),
        NetworkTopology::paper_wan(),
    );
    let plan = tpch::query_by_name(&catalog, "Q3").unwrap();
    let opt = eng.optimize(&plan, OptimizerMode::Compliant, None).unwrap();
    eng.audit(&opt.physical).unwrap();
    let exec = eng.execute(&opt.physical).unwrap();

    // Reference: the same query on the unpartitioned deployment returns
    // the same rows (partitioning is transparent).
    let ref_catalog = Arc::new(tpch::paper_catalog(SF));
    tpch::populate(&ref_catalog, SF, 7).unwrap();
    let ref_policies =
        tpch::generate_policies(&ref_catalog, PolicyTemplate::CRA, 10, 2021).unwrap();
    let ref_eng = Engine::new(
        Arc::clone(&ref_catalog),
        Arc::new(ref_policies),
        NetworkTopology::paper_wan(),
    );
    let ref_plan = tpch::query_by_name(&ref_catalog, "Q3").unwrap();
    let ref_opt = ref_eng
        .optimize(&ref_plan, OptimizerMode::Compliant, None)
        .unwrap();
    let ref_exec = ref_eng.execute(&ref_opt.physical).unwrap();
    // Q3 sorts (revenue DESC, o_orderdate) and limits to 10; ties in the
    // sort key may legitimately order differently, so compare as sets of
    // the sort-relevant prefix.
    let key = |rows: &Rows| {
        let mut v: Vec<(String, String)> = rows
            .iter()
            .map(|r| (r[3].to_string(), r[1].to_string()))
            .collect();
        v.sort();
        v
    };
    assert_eq!(key(&exec.rows), key(&ref_exec.rows));
}

#[test]
fn sql_pipeline_runs_against_tpch_catalog() {
    let eng = engine(PolicyTemplate::CRA);
    let (opt, exec) = eng
        .run_sql(
            "SELECT n_name, COUNT(s_suppkey) AS suppliers \
             FROM nation, supplier WHERE n_nationkey = s_nationkey \
             GROUP BY n_name ORDER BY suppliers DESC, n_name LIMIT 5",
            OptimizerMode::Compliant,
            None,
        )
        .unwrap();
    eng.audit(&opt.physical).unwrap();
    assert!(exec.rows.len() <= 5);
    assert!(!exec.rows.is_empty());
}

#[test]
fn empty_policy_catalog_confines_every_query_to_single_sites() {
    let catalog = Arc::new(tpch::paper_catalog(SF));
    tpch::populate(&catalog, SF, 7).unwrap();
    let eng = Engine::new(
        Arc::clone(&catalog),
        Arc::new(PolicyCatalog::new()),
        NetworkTopology::paper_wan(),
    );
    // A cross-site join cannot be planned compliantly with no grants at
    // all (conservative disclosure model).
    let plan = tpch::query_by_name(&catalog, "Q3").unwrap();
    let err = eng
        .optimize(&plan, OptimizerMode::Compliant, None)
        .unwrap_err();
    assert_eq!(err.kind(), "rejected");

    // A single-site query still works.
    let (opt, exec) = eng
        .run_sql(
            "SELECT c_name FROM customer WHERE c_acctbal > 9000.0",
            OptimizerMode::Compliant,
            None,
        )
        .unwrap();
    eng.audit(&opt.physical).unwrap();
    assert_eq!(opt.result_location, Location::new("L1"));
    let _ = exec;
}
