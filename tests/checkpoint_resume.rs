//! Differential checkpoint/resume failover tests.
//!
//! For every TPC-H query and a grid of crash steps spanning the whole
//! run, a site is crashed permanently at that step and the identical
//! fault schedule is recovered twice: once from scratch (re-planning
//! only) and once resuming from checkpoints. Resume must be invisible
//! except in the traffic: the same row multiset, the same number of
//! re-plans, and recovery bytes no worse than scratch. Where scratch
//! recovery is impossible but resume succeeds, the resumed answer must
//! equal the fault-free reference and its plan must pass the
//! Definition-1 audit.

use geoqp::prelude::*;
use geoqp::tpch;
use geoqp::tpch::policy_gen::PolicyTemplate;
use std::sync::Arc;

const SF: f64 = 0.001;
const SEED: u64 = 2021;
const QUERIES: [&str; 6] = ["Q2", "Q3", "Q5", "Q8", "Q9", "Q10"];
const SITES: [&str; 5] = ["L1", "L2", "L3", "L4", "L5"];

fn engine(template: PolicyTemplate) -> Engine {
    let catalog = Arc::new(tpch::paper_catalog(SF));
    tpch::populate(&catalog, SF, 7).unwrap();
    let policies = tpch::generate_policies(&catalog, template, 10, SEED).unwrap();
    Engine::new(catalog, Arc::new(policies), NetworkTopology::paper_wan())
}

/// Rows in a canonical order: semantically equal results from
/// differently-placed plans compare as multisets.
fn multiset(rows: &Rows) -> Vec<String> {
    let mut v: Vec<String> = rows.iter().map(|r| format!("{r:?}")).collect();
    v.sort();
    v
}

/// The grid: for each query, crash each site at each of four steps
/// spread over the run (learned from a fault-free probe) for `horizon`
/// fault-clock steps (`u64::MAX` = permanently), and compare scratch
/// failover against checkpoint/resume failover on the identical
/// schedule.
fn differential_grid(template: PolicyTemplate, horizon: u64) -> (usize, usize, usize) {
    let eng = engine(template);
    let retry = RetryPolicy::default();
    let (mut both_ok, mut resume_only, mut both_err) = (0usize, 0usize, 0usize);
    for query in QUERIES {
        let plan = tpch::query_by_name(eng.catalog(), query).unwrap();
        let Ok(opt) = eng.optimize(&plan, OptimizerMode::Compliant, None) else {
            continue;
        };
        let probe = FaultPlan::new(SEED);
        let reference = eng
            .execute_resilient(&opt, &probe, &retry, 0)
            .expect("fault-free probe");
        let total = probe.step().max(4);
        for site in SITES {
            let dead = Location::new(site);
            if dead == opt.result_location {
                continue;
            }
            for crash_step in [0, total / 4, total / 2, 3 * total / 4] {
                let crash = || {
                    FaultPlan::new(SEED).with_crash(
                        dead.clone(),
                        StepWindow::new(crash_step, crash_step.saturating_add(horizon)),
                    )
                };
                let resumed = eng.execute_resilient_opts(
                    &opt,
                    &crash(),
                    &retry,
                    &FailoverOpts::new(SITES.len()),
                );
                let scratch = eng.execute_resilient_opts(
                    &opt,
                    &crash(),
                    &retry,
                    &FailoverOpts {
                        resume: false,
                        ..FailoverOpts::new(SITES.len())
                    },
                );
                match (&resumed, &scratch) {
                    (Ok(r), Ok(s)) => {
                        both_ok += 1;
                        assert_eq!(
                            multiset(&r.rows),
                            multiset(&s.rows),
                            "{query}/{site}@{crash_step}: resume changed the answer"
                        );
                        assert_eq!(
                            multiset(&r.rows),
                            multiset(&reference.rows),
                            "{query}/{site}@{crash_step}: failover changed the answer"
                        );
                        // The byte/replan comparison is exact only for a
                        // permanent crash, where both modes walk the same
                        // failover rounds; a bounded outage lets the two
                        // step schedules drift.
                        if horizon == u64::MAX {
                            assert_eq!(
                                r.replans, s.replans,
                                "{query}/{site}@{crash_step}: resume changed the \
                                 replan count"
                            );
                            assert!(
                                r.recomputed_bytes <= s.recomputed_bytes,
                                "{query}/{site}@{crash_step}: resume recovery shipped \
                                 {} bytes, scratch only {}",
                                r.recomputed_bytes,
                                s.recomputed_bytes
                            );
                            assert!(
                                r.transfers.total_bytes() <= s.transfers.total_bytes(),
                                "{query}/{site}@{crash_step}: resume shipped more in total"
                            );
                        }
                        eng.audit(&r.physical)
                            .expect("resumed placement must pass the Definition-1 audit");
                    }
                    (Ok(r), Err(_)) => {
                        // Resume is strictly more available than scratch:
                        // checkpoints can rescue crashes of base-table
                        // sites that no re-placement survives.
                        resume_only += 1;
                        assert_eq!(
                            multiset(&r.rows),
                            multiset(&reference.rows),
                            "{query}/{site}@{crash_step}: resume-only recovery \
                             changed the answer"
                        );
                        eng.audit(&r.physical)
                            .expect("resumed placement must pass the Definition-1 audit");
                    }
                    (Err(r), scratch) => {
                        both_err += 1;
                        assert!(
                            matches!(r.kind(), "rejected" | "unavailable"),
                            "{query}/{site}@{crash_step}: untyped resume failure {r}"
                        );
                        // Under a *permanent* crash, scratch must never
                        // out-recover resume. (A bounded outage can fall
                        // either way: the stitched plan replays fewer
                        // fault-clock steps, so the two modes reach the
                        // dead site at different simulated instants.)
                        assert!(
                            horizon != u64::MAX || scratch.is_err(),
                            "{query}/{site}@{crash_step}: scratch recovered where \
                             resume failed"
                        );
                    }
                }
            }
        }
    }
    (both_ok, resume_only, both_err)
}

/// The full permanent-crash grid under the paper's most restrictive
/// policies: every outcome class must actually occur, or the comparison
/// is vacuous.
#[test]
fn resume_and_scratch_agree_on_the_crash_grid_cra() {
    let (both_ok, _resume_only, both_err) = differential_grid(PolicyTemplate::CRA, u64::MAX);
    assert!(
        both_ok >= 3,
        "expected ≥3 grid cells where both recovery modes complete, got {both_ok}"
    );
    assert!(
        both_err >= 3,
        "expected ≥3 grid cells where both modes refuse, got {both_err}"
    );
}

/// The same grid under column-only policies with *bounded* outages:
/// resume's extra availability — riding out a blackout of a base-table
/// site from checkpoints, where re-placement alone is impossible — must
/// actually show up.
#[test]
fn resume_out_recovers_scratch_on_the_crash_grid_c() {
    let mut both_ok = 0;
    let mut resume_only = 0;
    for horizon in [1, 2, 4] {
        let (ok, ro, _) = differential_grid(PolicyTemplate::C, horizon);
        both_ok += ok;
        resume_only += ro;
    }
    assert!(
        both_ok >= 3,
        "expected ≥3 grid cells where both recovery modes complete, got {both_ok}"
    );
    assert!(
        resume_only >= 1,
        "expected ≥1 grid cell recoverable only with checkpoints, got {resume_only}"
    );
}
