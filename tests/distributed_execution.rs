//! Distributed-execution details: SHIP accounting, wire fidelity, and
//! network-cost consistency between the simulator and the executor.

use geoqp::prelude::*;
use geoqp::tpch;
use geoqp::tpch::policy_gen::PolicyTemplate;
use std::sync::Arc;

const SF: f64 = 0.002;

fn engine() -> Engine {
    let catalog = Arc::new(tpch::paper_catalog(SF));
    tpch::populate(&catalog, SF, 7).unwrap();
    let policies = tpch::generate_policies(&catalog, PolicyTemplate::CRA, 10, 2021).unwrap();
    Engine::new(catalog, Arc::new(policies), NetworkTopology::paper_wan())
}

#[test]
fn transfer_costs_match_the_message_cost_model() {
    let eng = engine();
    let plan = tpch::query_by_name(eng.catalog(), "Q5").unwrap();
    let opt = eng.optimize(&plan, OptimizerMode::Compliant, None).unwrap();
    let exec = eng.execute(&opt.physical).unwrap();
    let topo = NetworkTopology::paper_wan();
    for t in exec.transfers.records() {
        let expect = topo.ship_cost_ms(&t.from, &t.to, t.bytes as f64);
        assert!(
            (t.cost_ms - expect).abs() < 1e-9,
            "transfer {}→{} cost {} != α+β·b {}",
            t.from,
            t.to,
            t.cost_ms,
            expect
        );
    }
    let total: f64 = exec.transfers.records().iter().map(|t| t.cost_ms).sum();
    assert!((total - exec.transfers.total_cost_ms()).abs() < 1e-9);
}

#[test]
fn shipped_bytes_reflect_actual_row_encoding() {
    let eng = engine();
    let plan = tpch::query_by_name(eng.catalog(), "Q10").unwrap();
    let opt = eng.optimize(&plan, OptimizerMode::Compliant, None).unwrap();
    let exec = eng.execute(&opt.physical).unwrap();
    for t in exec.transfers.records() {
        // Every batch carries the 8-byte header plus per-row payloads; a
        // non-trivial transfer is strictly larger than its header.
        assert!(t.bytes >= 8, "batch smaller than its header");
        if t.rows > 0 {
            assert!(t.bytes > 8 + t.rows, "suspiciously small payload");
        }
    }
}

#[test]
fn execution_is_deterministic() {
    let eng = engine();
    let plan = tpch::query_by_name(eng.catalog(), "Q3").unwrap();
    let opt = eng.optimize(&plan, OptimizerMode::Compliant, None).unwrap();
    let a = eng.execute(&opt.physical).unwrap();
    let b = eng.execute(&opt.physical).unwrap();
    assert_eq!(a.rows, b.rows);
    assert_eq!(a.transfers.total_bytes(), b.transfers.total_bytes());
}

#[test]
fn intra_site_pipelines_ship_nothing() {
    // A query confined to one site moves zero bytes.
    let eng = engine();
    let (opt, exec) = eng
        .run_sql(
            "SELECT c_mktsegment, COUNT(c_custkey) AS n FROM customer \
             GROUP BY c_mktsegment",
            OptimizerMode::Compliant,
            Some(Location::new("L1")),
        )
        .unwrap();
    assert_eq!(opt.physical.ship_count(), 0);
    assert_eq!(exec.transfers.transfer_count(), 0);
    assert_eq!(exec.rows.len(), 5);
}
