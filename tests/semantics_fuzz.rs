//! Whole-stack semantics fuzzing.
//!
//! A deliberately naive, independent interpreter for logical plans (nested
//! -loop joins, straight-line aggregation — no hashing, no reordering, no
//! distribution) serves as the oracle. For a fleet of generated ad-hoc
//! queries, the full pipeline — normalization, memo exploration including
//! count-adjusted aggregation pushdown, trait annotation, site selection,
//! distributed execution with wire serialization — must produce exactly
//! the oracle's multiset of rows (floats compared with tolerance, since
//! legal plan rewrites reorder float additions).

use geoqp::prelude::*;
use geoqp::tpch;
use geoqp::tpch::adhoc::generate_adhoc;
use geoqp::tpch::policy_gen::{no_restriction_policies, PolicyTemplate};
use std::cmp::Ordering;
use std::sync::Arc;

const SF: f64 = 0.001;

// ------------------------------------------------------------ the oracle

fn naive_eval(plan: &LogicalPlan, catalog: &Catalog) -> Rows {
    use geoqp::expr::bind;
    match plan {
        LogicalPlan::TableScan {
            table, location, ..
        } => {
            let entries = catalog.resolve(table);
            let entry = entries
                .iter()
                .find(|e| e.location == *location)
                .expect("table registered");
            entry.data().expect("populated").to_rows()
        }
        LogicalPlan::Filter { input, predicate } => {
            let rows = naive_eval(input, catalog);
            let bound = bind(predicate, input.schema()).unwrap();
            rows.into_iter()
                .filter(|r| bound.eval(r).map(|v| v.is_true()).unwrap_or(false))
                .collect()
        }
        LogicalPlan::Project { input, exprs, .. } => {
            let rows = naive_eval(input, catalog);
            let bound: Vec<_> = exprs
                .iter()
                .map(|(e, _)| bind(e, input.schema()).unwrap())
                .collect();
            rows.into_iter()
                .map(|r| bound.iter().map(|b| b.eval(&r).unwrap()).collect())
                .collect()
        }
        LogicalPlan::Join {
            left,
            right,
            on,
            filter,
            schema,
        } => {
            let lrows = naive_eval(left, catalog);
            let rrows = naive_eval(right, catalog);
            let li: Vec<usize> = on
                .iter()
                .map(|(l, _)| left.schema().require_index(l).unwrap())
                .collect();
            let ri: Vec<usize> = on
                .iter()
                .map(|(_, r)| right.schema().require_index(r).unwrap())
                .collect();
            let bound_filter = filter.as_ref().map(|f| bind(f, schema).unwrap());
            let mut out = Rows::new();
            for lr in lrows.iter() {
                'probe: for rr in rrows.iter() {
                    for (a, b) in li.iter().zip(&ri) {
                        match lr[*a].sql_cmp(&rr[*b]) {
                            Some(Ordering::Equal) => {}
                            _ => continue 'probe,
                        }
                    }
                    let mut joined = lr.clone();
                    joined.extend(rr.iter().cloned());
                    if let Some(f) = &bound_filter {
                        if !f.eval(&joined).map(|v| v.is_true()).unwrap_or(false) {
                            continue;
                        }
                    }
                    out.push(joined);
                }
            }
            out
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
            ..
        } => {
            let rows = naive_eval(input, catalog);
            let gi: Vec<usize> = group_by
                .iter()
                .map(|g| input.schema().require_index(g).unwrap())
                .collect();
            // Straight-line aggregation: partition, then fold per group.
            let mut groups: Vec<(Row, Vec<Row>)> = Vec::new();
            for r in rows.iter() {
                let key: Row = gi.iter().map(|i| r[*i].clone()).collect();
                match groups.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, members)) => members.push(r.clone()),
                    None => groups.push((key, vec![r.clone()])),
                }
            }
            if groups.is_empty() && group_by.is_empty() {
                groups.push((vec![], vec![]));
            }
            let mut out = Rows::new();
            for (key, members) in groups {
                let mut row = key;
                for call in aggs {
                    row.push(naive_agg(call, &members, input.schema()));
                }
                out.push(row);
            }
            out
        }
        LogicalPlan::Union { inputs, .. } => {
            let mut out = Rows::new();
            for i in inputs {
                for r in naive_eval(i, catalog) {
                    out.push(r);
                }
            }
            out
        }
        LogicalPlan::Sort { input, .. } => naive_eval(input, catalog),
        LogicalPlan::Limit { input, fetch } => {
            let mut rows = naive_eval(input, catalog).into_rows();
            rows.truncate(*fetch);
            Rows::from_rows(rows)
        }
    }
}

fn naive_agg(call: &AggCall, members: &[Row], schema: &Schema) -> Value {
    use geoqp::expr::bind;
    let bound = call.arg.as_ref().map(|e| bind(e, schema).unwrap());
    let values: Vec<Value> = members
        .iter()
        .filter_map(|r| bound.as_ref().map(|b| b.eval(r).unwrap()))
        .filter(|v| !v.is_null())
        .collect();
    match call.func {
        AggFunc::Count => match &call.arg {
            None => Value::Int64(members.len() as i64),
            Some(_) => Value::Int64(values.len() as i64),
        },
        AggFunc::Sum => {
            if values.is_empty() {
                Value::Null
            } else if values.iter().all(|v| matches!(v, Value::Int64(_))) {
                Value::Int64(values.iter().map(|v| v.as_i64().unwrap()).sum())
            } else {
                Value::Float64(values.iter().map(|v| v.as_f64().unwrap()).sum())
            }
        }
        AggFunc::Avg => {
            if values.is_empty() {
                Value::Null
            } else {
                Value::Float64(
                    values.iter().map(|v| v.as_f64().unwrap()).sum::<f64>() / values.len() as f64,
                )
            }
        }
        AggFunc::Min => values
            .iter()
            .min_by(|a, b| a.total_cmp(b))
            .cloned()
            .unwrap_or(Value::Null),
        AggFunc::Max => values
            .iter()
            .max_by(|a, b| a.total_cmp(b))
            .cloned()
            .unwrap_or(Value::Null),
    }
}

// -------------------------------------------------------- row comparison

fn approx_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float64(x), Value::Float64(y)) => {
            let scale = x.abs().max(y.abs()).max(1.0);
            (x - y).abs() <= 1e-6 * scale
        }
        (Value::Int64(_), Value::Float64(_)) | (Value::Float64(_), Value::Int64(_)) => approx_eq(
            &Value::Float64(a.as_f64().unwrap()),
            &Value::Float64(b.as_f64().unwrap()),
        ),
        _ => a == b,
    }
}

fn canonical(rows: &Rows) -> Vec<Row> {
    let mut v: Vec<Row> = rows.rows().to_vec();
    v.sort_by(|a, b| {
        for (x, y) in a.iter().zip(b.iter()) {
            match x.total_cmp(y) {
                Ordering::Equal => {}
                other => return other,
            }
        }
        Ordering::Equal
    });
    v
}

fn rows_match(a: &Rows, b: &Rows) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let (ca, cb) = (canonical(a), canonical(b));
    ca.iter()
        .zip(&cb)
        .all(|(ra, rb)| ra.len() == rb.len() && ra.iter().zip(rb).all(|(x, y)| approx_eq(x, y)))
}

// -------------------------------------------------------------- the fuzz

fn run_fleet(template: Option<PolicyTemplate>, n: usize, seed: u64) {
    let catalog = Arc::new(tpch::paper_catalog(SF));
    tpch::populate(&catalog, SF, seed).unwrap();
    let policies = match template {
        None => no_restriction_policies(&catalog).unwrap(),
        Some(t) => tpch::generate_policies(&catalog, t, t.base_count(), seed).unwrap(),
    };
    let eng = Engine::new(
        Arc::clone(&catalog),
        Arc::new(policies),
        NetworkTopology::paper_wan(),
    );
    for q in generate_adhoc(&catalog, n, seed).unwrap() {
        let expected = naive_eval(&q.plan, &catalog);
        let opt = eng
            .optimize(&q.plan, OptimizerMode::Compliant, None)
            .unwrap_or_else(|e| panic!("query {} rejected: {e}", q.id));
        let got = eng.execute(&opt.physical).unwrap().rows;
        assert!(
            rows_match(&expected, &got),
            "query {} over {:?}: oracle {} rows, pipeline {} rows\nplan:\n{}",
            q.id,
            q.tables,
            expected.len(),
            got.len(),
            geoqp::plan::display::display_physical(&opt.physical)
        );
    }
}

#[test]
fn pipeline_matches_oracle_without_restrictions() {
    run_fleet(None, 30, 11);
}

#[test]
fn pipeline_matches_oracle_under_cra_policies() {
    run_fleet(Some(PolicyTemplate::CRA), 30, 23);
}

#[test]
fn pipeline_matches_oracle_under_cr_policies() {
    run_fleet(Some(PolicyTemplate::CR), 20, 37);
}

#[test]
fn six_tpch_queries_match_oracle() {
    let catalog = Arc::new(tpch::paper_catalog(SF));
    tpch::populate(&catalog, SF, 3).unwrap();
    let policies = no_restriction_policies(&catalog).unwrap();
    let eng = Engine::new(
        Arc::clone(&catalog),
        Arc::new(policies),
        NetworkTopology::paper_wan(),
    );
    for (name, plan) in tpch::all_queries(&catalog).unwrap() {
        // Q2/Q3/Q10 end in Sort+Limit; ties make the kept subset ambiguous,
        // so compare only cardinality there and full contents elsewhere.
        let expected = naive_eval(&plan, &catalog);
        let opt = eng.optimize(&plan, OptimizerMode::Compliant, None).unwrap();
        let got = eng.execute(&opt.physical).unwrap().rows;
        match name {
            "Q5" | "Q8" | "Q9" => assert!(
                rows_match(&expected, &got),
                "{name}: oracle {} vs pipeline {}",
                expected.len(),
                got.len()
            ),
            _ => assert_eq!(expected.len(), got.len(), "{name} cardinality"),
        }
    }
}
