//! Golden snapshot of the ad-hoc workload generator.
//!
//! The first 20 queries of the fixed seed 2021 against the paper's
//! Table 2 catalog are pinned as text (tables, aggregation flag, SQL),
//! so any drift in the generator — a changed distribution, a reordered
//! rng draw, a different SQL rendering — is a reviewed diff rather than
//! a silent re-seeding of every downstream benchmark.
//!
//! Refresh after an intentional change with:
//! `UPDATE_GOLDEN=1 cargo test --test golden_adhoc`

use geoqp::tpch;
use std::path::PathBuf;

const SEED: u64 = 2021;
const PINNED: usize = 20;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("adhoc_sample.txt")
}

fn render() -> String {
    let catalog = tpch::paper_catalog(1.0);
    let queries = tpch::adhoc::generate_adhoc(&catalog, PINNED, SEED).unwrap();
    let mut out = format!("ad-hoc generator sample: seed {SEED}, first {PINNED} queries\n\n");
    for q in &queries {
        out.push_str(&format!(
            "#{} tables={} agg={}\n  {}\n",
            q.id,
            q.tables.join("⋈"),
            q.aggregated,
            q.sql
        ));
    }
    out
}

#[test]
fn adhoc_sample_matches_its_snapshot() {
    let got = render();
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing snapshot {}; run UPDATE_GOLDEN=1 cargo test --test golden_adhoc",
            path.display()
        )
    });
    assert_eq!(
        got, want,
        "ad-hoc generator drifted (UPDATE_GOLDEN=1 refreshes intentional changes)"
    );
}
