//! The Section 7.4 parity properties:
//!
//! * under no-restriction policies the compliance-based optimizer produces
//!   the *same plan* as the traditional optimizer ("Our approach produced
//!   the same plans … whenever the latter produced a compliant plan"), and
//! * whatever plans the two optimizers choose, they compute identical
//!   results — the transformation rules (including count-adjusted
//!   aggregation pushdown) preserve query semantics.

use geoqp::prelude::*;
use geoqp::tpch;
use geoqp::tpch::policy_gen::{no_restriction_policies, PolicyTemplate};
use std::cmp::Ordering;
use std::sync::Arc;

const SF: f64 = 0.002;

fn sorted_rows(rows: &Rows) -> Vec<Row> {
    let mut v: Vec<Row> = rows.rows().to_vec();
    v.sort_by(|a, b| {
        for (x, y) in a.iter().zip(b.iter()) {
            match x.total_cmp(y) {
                Ordering::Equal => continue,
                other => return other,
            }
        }
        Ordering::Equal
    });
    v
}

#[test]
fn same_plans_under_no_restrictions() {
    let catalog = Arc::new(tpch::paper_catalog(10.0));
    let policies = no_restriction_policies(&catalog).unwrap();
    let eng = Engine::new(
        Arc::clone(&catalog),
        Arc::new(policies),
        NetworkTopology::paper_wan(),
    );
    for (name, plan) in tpch::all_queries(&catalog).unwrap() {
        let trad = eng
            .optimize(&plan, OptimizerMode::Traditional, None)
            .unwrap();
        let comp = eng.optimize(&plan, OptimizerMode::Compliant, None).unwrap();
        assert_eq!(
            trad.physical, comp.physical,
            "{name}: plans differ under no restrictions"
        );
        eng.audit(&comp.physical).unwrap();
    }
}

#[test]
fn both_optimizers_compute_identical_results() {
    let catalog = Arc::new(tpch::paper_catalog(SF));
    tpch::populate(&catalog, SF, 7).unwrap();
    let policies = tpch::generate_policies(&catalog, PolicyTemplate::CRA, 10, 2021).unwrap();
    let eng = Engine::new(
        Arc::clone(&catalog),
        Arc::new(policies),
        NetworkTopology::paper_wan(),
    );
    for (name, plan) in tpch::all_queries(&catalog).unwrap() {
        let trad = eng
            .optimize(&plan, OptimizerMode::Traditional, None)
            .unwrap();
        let comp = eng.optimize(&plan, OptimizerMode::Compliant, None).unwrap();
        let tr = eng.execute(&trad.physical).unwrap();
        let cr = eng.execute(&comp.physical).unwrap();
        // Q2/Q3/Q10 carry LIMIT under ties, so compare full sorted sets
        // only for the unlimited queries and sizes otherwise.
        match name {
            "Q5" | "Q8" | "Q9" => {
                assert_eq!(
                    sorted_rows(&tr.rows),
                    sorted_rows(&cr.rows),
                    "{name}: results diverge"
                );
            }
            _ => {
                assert_eq!(tr.rows.len(), cr.rows.len(), "{name}: cardinality diverges");
            }
        }
    }
}

#[test]
fn compliant_never_cheaper_than_traditional_in_phase1_cost_space() {
    // The compliant optimizer searches a *restricted* plan space, so its
    // simulated shipping cost is at least the baseline's whenever both
    // plans exist (the "scaled execution cost ≥ 1" property of Figures
    // 6(g,h)).
    let catalog = Arc::new(tpch::paper_catalog(SF));
    tpch::populate(&catalog, SF, 7).unwrap();
    let policies = tpch::generate_policies(&catalog, PolicyTemplate::CR, 10, 2021).unwrap();
    let eng = Engine::new(
        Arc::clone(&catalog),
        Arc::new(policies),
        NetworkTopology::paper_wan(),
    );
    for (name, plan) in tpch::all_queries(&catalog).unwrap() {
        let trad = eng
            .optimize(&plan, OptimizerMode::Traditional, None)
            .unwrap();
        let comp = eng.optimize(&plan, OptimizerMode::Compliant, None).unwrap();
        let t_cost = eng
            .execute(&trad.physical)
            .unwrap()
            .transfers
            .total_cost_ms();
        let c_cost = eng
            .execute(&comp.physical)
            .unwrap()
            .transfers
            .total_cost_ms();
        assert!(
            c_cost >= t_cost * 0.999,
            "{name}: compliant plan unexpectedly cheaper ({c_cost} < {t_cost})"
        );
    }
}
