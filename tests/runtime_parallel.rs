//! Differential and compliance testing of the concurrent pipelined
//! runtime against the sequential engine.
//!
//! The parallel runtime (`geoqp-runtime`) must be an *observable no-op*
//! relative to the sequential engine: for every plan it returns the same
//! row multiset and ships exactly the same bytes at exactly the same
//! total network cost — only the simulated completion time (the critical
//! path instead of the sum) may differ. These tests enforce that over
//! the six TPC-H queries and a fuzz fleet of generated ad-hoc queries,
//! with and without injected faults, and check the per-batch Definition-1
//! audit catches non-compliant (traditional-optimizer) plans at the
//! offending SHIP edge.

use geoqp::prelude::*;
use geoqp::tpch;
use geoqp::tpch::adhoc::generate_adhoc;
use geoqp::tpch::policy_gen::PolicyTemplate;
use geoqp::tpch::queries::all_queries;
use std::cmp::Ordering;
use std::sync::Arc;

const SF: f64 = 0.001;
const SEED: u64 = 2021;

fn engine(template: PolicyTemplate, seed: u64) -> (Engine, Arc<Catalog>) {
    let catalog = Arc::new(tpch::paper_catalog(SF));
    tpch::populate(&catalog, SF, seed).unwrap();
    let policies = tpch::generate_policies(&catalog, template, 10, seed).unwrap();
    let eng = Engine::new(
        Arc::clone(&catalog),
        Arc::new(policies),
        NetworkTopology::paper_wan(),
    );
    (eng, catalog)
}

fn canonical(rows: &Rows) -> Vec<Row> {
    let mut v: Vec<Row> = rows.rows().to_vec();
    v.sort_by(|a, b| {
        for (x, y) in a.iter().zip(b.iter()) {
            match x.total_cmp(y) {
                Ordering::Equal => {}
                other => return other,
            }
        }
        Ordering::Equal
    });
    v
}

/// Exact row-multiset equality (both runtimes execute the *same*
/// physical plan with the same operators, so even float results are
/// bit-identical).
fn same_rows(a: &Rows, b: &Rows) -> bool {
    canonical(a) == canonical(b)
}

/// Sequential vs parallel on one optimized plan: identical rows, bytes,
/// and total network cost.
fn assert_differential(eng: &Engine, optimized: &OptimizedQuery, label: &str) -> usize {
    let seq = eng.execute(&optimized.physical).unwrap();
    let par = eng.execute_parallel(&optimized.physical).unwrap();
    assert!(
        same_rows(&seq.rows, &par.rows),
        "{label}: row multisets diverged (sequential {}, parallel {})",
        seq.rows.len(),
        par.rows.len()
    );
    assert_eq!(
        seq.transfers.total_bytes(),
        par.transfers.total_bytes(),
        "{label}: shipped bytes diverged"
    );
    let (sc, pc) = (seq.transfers.total_cost_ms(), par.metrics.network_ms);
    assert!(
        (sc - pc).abs() <= 1e-6 * sc.max(1.0),
        "{label}: network cost diverged ({sc} vs {pc})"
    );
    assert!(
        par.metrics.completion_ms <= sc + 1e-6,
        "{label}: pipelined completion exceeds sequential total"
    );
    par.transfers.transfer_count()
}

#[test]
fn tpch_queries_differential() {
    let (eng, catalog) = engine(PolicyTemplate::CRA, SEED);
    let mut executed = 0;
    for (query, plan) in all_queries(&catalog).unwrap() {
        let Ok(optimized) = eng.optimize(&plan, OptimizerMode::Compliant, None) else {
            continue;
        };
        assert_differential(&eng, &optimized, query);
        executed += 1;
    }
    assert!(executed >= 4, "only {executed} TPC-H queries executed");
}

#[test]
fn adhoc_fuzz_differential() {
    let (eng, catalog) = engine(PolicyTemplate::CRA, 23);
    let mut executed = 0;
    for q in generate_adhoc(&catalog, 25, 23).unwrap() {
        let Ok(optimized) = eng.optimize(&q.plan, OptimizerMode::Compliant, None) else {
            continue;
        };
        assert_differential(&eng, &optimized, &format!("adhoc {}", q.id));
        executed += 1;
    }
    assert!(executed >= 10, "only {executed} ad-hoc queries executed");
}

#[test]
fn transient_faults_do_not_change_results() {
    let (eng, catalog) = engine(PolicyTemplate::CRA, SEED);
    // A flaky link and a delayed one on the paths most queries use.
    let faults = FaultPlan::parse(
        "flaky:L1-L4:0.4@0..6; delay:L2-L1:25; flaky:L4-L1:0.3@0..4",
        7,
    )
    .unwrap();
    let retry = RetryPolicy::default();
    let config = RuntimeConfig::default();
    let mut any_fault = false;
    for (query, plan) in all_queries(&catalog).unwrap() {
        let Ok(optimized) = eng.optimize(&plan, OptimizerMode::Compliant, None) else {
            continue;
        };
        let clean = eng.execute(&optimized.physical).unwrap();
        let faulty = eng
            .execute_parallel_opts(&optimized.physical, Some(&faults), &retry, &config)
            .unwrap_or_else(|e| panic!("{query}: transient faults not ridden out: {e}"));
        assert!(
            same_rows(&clean.rows, &faulty.rows),
            "{query}: faults changed the result"
        );
        assert_eq!(
            clean.transfers.total_bytes(),
            faulty.transfers.total_bytes(),
            "{query}: retries changed delivered bytes"
        );
        any_fault |= faulty.transfers.fault_count() > 0;
    }
    assert!(
        any_fault,
        "no fault event recorded — the plan is not consulted"
    );
}

#[test]
fn parallel_fault_runs_are_deterministic() {
    let (eng, catalog) = engine(PolicyTemplate::CRA, SEED);
    let faults = FaultPlan::parse("flaky:L1-L4:0.5@0..8; flaky:L2-L1:0.5@0..8", 13).unwrap();
    let retry = RetryPolicy::default();
    let config = RuntimeConfig {
        batch_rows: 16,
        channel_capacity: 2,
        columnar: false,
        ..RuntimeConfig::default()
    };
    let (_, plan) = all_queries(&catalog)
        .unwrap()
        .into_iter()
        .find(|(q, _)| *q == "Q3")
        .unwrap();
    let optimized = eng.optimize(&plan, OptimizerMode::Compliant, None).unwrap();
    let runs: Vec<_> = (0..3)
        .map(|_| {
            eng.execute_parallel_opts(&optimized.physical, Some(&faults), &retry, &config)
                .unwrap()
        })
        .collect();
    for r in &runs[1..] {
        assert_eq!(canonical(&runs[0].rows), canonical(&r.rows));
        assert_eq!(
            runs[0].transfers.records(),
            r.transfers.records(),
            "transfer logs diverged across identically-seeded runs"
        );
        assert_eq!(runs[0].transfers.fault_count(), r.transfers.fault_count());
        assert_eq!(runs[0].metrics.completion_ms, r.metrics.completion_ms);
    }
}

#[test]
fn permanent_crashes_survive_or_error_typed() {
    let (eng, catalog) = engine(PolicyTemplate::CRA, SEED);
    let retry = RetryPolicy::default();
    let config = RuntimeConfig::default();
    let sites: Vec<Location> = catalog.locations().iter().cloned().collect();
    let (mut survived, mut refused) = (0, 0);
    for (query, plan) in all_queries(&catalog).unwrap() {
        let Ok(optimized) = eng.optimize(&plan, OptimizerMode::Compliant, None) else {
            continue;
        };
        let clean = eng.execute(&optimized.physical).unwrap();
        for site in &sites {
            let faults = FaultPlan::new(0).with_crash(site.clone(), StepWindow::ALWAYS);
            match eng.execute_resilient_parallel(&optimized, &faults, &retry, 5, &config) {
                Ok((res, metrics)) => {
                    // Surviving a crash (with or without re-planning)
                    // must preserve the query's answer.
                    assert!(
                        same_rows(&clean.rows, &res.rows),
                        "{query} crash {site}: failover changed the result"
                    );
                    assert!(metrics.completion_ms.is_finite());
                    survived += 1;
                }
                Err(e) => {
                    assert!(
                        matches!(e.kind(), "rejected" | "unavailable"),
                        "{query} crash {site}: untyped failure {e}"
                    );
                    refused += 1;
                }
            }
        }
    }
    assert!(survived > 0, "no crash was survivable");
    assert!(refused > 0, "no crash bit a base-table site");
}

/// A crash of an expendable *relay* site: the cheapest compliant plan
/// joins at C, C dies, and the parallel runtime's resilient loop must
/// re-plan onto the (expensive but alive) direct placement at D —
/// exactly once, with the same answer, and without touching C again.
#[test]
fn parallel_failover_replans_around_crashed_relay() {
    use geoqp::net::topology::Link;
    use geoqp::storage::Table;

    let mut catalog = Catalog::new();
    for (db, loc) in [("db-a", "A"), ("db-b", "B"), ("db-c", "C"), ("db-d", "D")] {
        catalog.add_database(db, Location::new(loc)).unwrap();
    }
    let t1 = catalog
        .add_table(
            "db-a",
            "t1",
            Schema::new(vec![
                Field::new("u_id", DataType::Int64),
                Field::new("u_val", DataType::Str),
            ])
            .unwrap(),
            TableStats::new(2, 16.0),
        )
        .unwrap();
    let t2 = catalog
        .add_table(
            "db-b",
            "t2",
            Schema::new(vec![
                Field::new("v_id", DataType::Int64),
                Field::new("v_val", DataType::Int64),
            ])
            .unwrap(),
            TableStats::new(2, 16.0),
        )
        .unwrap();
    t1.set_data(
        Table::new(
            Arc::clone(&t1.schema),
            vec![
                vec![Value::Int64(1), Value::str("x")],
                vec![Value::Int64(2), Value::str("y")],
            ],
        )
        .unwrap(),
    )
    .unwrap();
    t2.set_data(
        Table::new(
            Arc::clone(&t2.schema),
            vec![
                vec![Value::Int64(1), Value::Int64(10)],
                vec![Value::Int64(3), Value::Int64(30)],
            ],
        )
        .unwrap(),
    )
    .unwrap();

    let mut policies = PolicyCatalog::new();
    for (text, table) in [
        ("ship * from t1 to C, D", "t1"),
        ("ship * from t2 to C, D", "t2"),
    ] {
        let expr = geoqp::parser::parse_policy(text).unwrap();
        let entry = catalog.resolve_one(&TableRef::bare(table)).unwrap();
        policies.register(expr, &entry.schema).unwrap();
    }

    // Direct links into D are brutally expensive, so the cheapest
    // compliant plan relays through C.
    let mut topo =
        NetworkTopology::uniform(LocationSet::from_iter(["A", "B", "C", "D"]), 50.0, 100.0);
    let dear = Link {
        alpha_ms: 1e7,
        beta_ms_per_byte: 1.0,
    };
    for from in ["A", "B"] {
        topo.set_link(Location::new(from), Location::new("D"), dear);
    }
    let eng = Engine::new(Arc::new(catalog), Arc::new(policies), topo);

    let sql = "SELECT u_val, v_val FROM t1, t2 WHERE u_id = v_id";
    let opt = eng
        .optimize_sql(sql, OptimizerMode::Compliant, Some(Location::new("D")))
        .unwrap();
    let baseline = eng.execute_parallel(&opt.physical).unwrap();
    assert_eq!(baseline.rows.len(), 1);
    assert!(
        baseline
            .transfers
            .records()
            .iter()
            .any(|t| t.to == Location::new("C")),
        "premise broken: the fault-free plan should relay through C"
    );

    let faults = FaultPlan::new(9).with_crash("C", StepWindow::ALWAYS);
    let (res, metrics) = eng
        .execute_resilient_parallel(
            &opt,
            &faults,
            &RetryPolicy::default(),
            3,
            &RuntimeConfig::default(),
        )
        .expect("a compliant alternative placement at D exists");
    assert_eq!(res.replans, 1, "exactly one re-plan should be needed");
    assert!(res.excluded.contains(&Location::new("C")));
    assert_eq!(canonical(&res.rows), canonical(&baseline.rows));
    assert!(
        res.transfers.fault_count() > 0,
        "the crash left no fault event"
    );
    assert!(metrics.completion_ms.is_finite());
    eng.audit(&res.physical)
        .expect("failover placement audits clean");
    for t in res.transfers.records() {
        assert!(
            t.from != Location::new("C") && t.to != Location::new("C"),
            "a delivery touched the crashed relay C"
        );
    }
}

#[test]
fn runtime_audit_catches_non_compliant_plans() {
    // Under a restrictive policy set the traditional optimizer emits
    // non-compliant plans (Figure 5a); the parallel runtime's per-batch
    // audit must refuse them at the offending SHIP edge.
    let (eng, catalog) = engine(PolicyTemplate::C, SEED);
    let mut caught = 0;
    for (query, plan) in all_queries(&catalog).unwrap() {
        let Ok(optimized) = eng.optimize(&plan, OptimizerMode::Traditional, None) else {
            continue;
        };
        if eng.audit(&optimized.physical).is_ok() {
            // Compliant by luck: the runtime must agree and execute it.
            let par = eng.execute_parallel(&optimized.physical).unwrap();
            let seq = eng.execute(&optimized.physical).unwrap();
            assert!(same_rows(&seq.rows, &par.rows), "{query}");
            continue;
        }
        let err = eng
            .execute_parallel(&optimized.physical)
            .expect_err("non-compliant plan must not execute");
        assert_eq!(err.kind(), "non-compliant", "{query}: {err}");
        caught += 1;
    }
    assert!(
        caught > 0,
        "no traditional plan was non-compliant under the C template"
    );
}
