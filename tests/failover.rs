//! Fault injection and compliant failover, end to end.
//!
//! The acceptance scenario of this suite: a TPC-H query runs while a
//! site crashes. The engine must either complete the query through a
//! re-planned, compliance-verified placement that avoids the dead site,
//! or surface a typed error — never a silent non-compliant answer. All
//! fault schedules are driven by a seedable [`FaultPlan`], so every run
//! here replays deterministically.

use geoqp::prelude::*;
use geoqp::tpch;
use geoqp::tpch::policy_gen::PolicyTemplate;
use std::sync::Arc;

const SF: f64 = 0.002;

fn engine() -> Engine {
    let catalog = Arc::new(tpch::paper_catalog(SF));
    tpch::populate(&catalog, SF, 7).unwrap();
    let policies = tpch::generate_policies(&catalog, PolicyTemplate::CRA, 10, 2021).unwrap();
    Engine::new(catalog, Arc::new(policies), NetworkTopology::paper_wan())
}

/// Rows in a canonical order, so results from differently-placed (but
/// semantically equal) plans compare as multisets.
fn canonical(rows: &Rows) -> Vec<String> {
    let mut v: Vec<String> = rows.iter().map(|r| format!("{r:?}")).collect();
    v.sort();
    v
}

/// The acceptance criterion: Q3 under a permanent crash of each site in
/// the paper's deployment. Every run either completes — with the answer
/// of the fault-free run, through a placement that passes the
/// Definition-1 audit and never touches the dead site — or returns a
/// typed error.
#[test]
fn tpch_query_survives_single_site_crash_or_fails_typed() {
    let eng = engine();
    let plan = tpch::query_by_name(eng.catalog(), "Q3").unwrap();
    let opt = eng.optimize(&plan, OptimizerMode::Compliant, None).unwrap();
    let baseline = eng.execute(&opt.physical).unwrap();

    let mut survived = 0;
    let mut refused = 0;
    for site in ["L1", "L2", "L3", "L4", "L5"] {
        let faults = FaultPlan::parse(&format!("crash:{site}"), 11).unwrap();
        match eng.execute_resilient(&opt, &faults, &RetryPolicy::default(), 5) {
            Ok(res) => {
                assert_eq!(
                    canonical(&res.rows),
                    canonical(&baseline.rows),
                    "failover changed the answer (crashed {site})"
                );
                eng.audit(&res.physical)
                    .expect("failover placement must pass the Definition-1 audit");
                let dead = Location::new(site);
                for t in res.transfers.records() {
                    assert!(
                        t.from != dead && t.to != dead,
                        "a delivery touched the crashed site {site}"
                    );
                }
                if res.replans > 0 {
                    assert!(
                        res.excluded.contains(&dead),
                        "re-planning did not exclude the crashed site {site}"
                    );
                }
                survived += 1;
            }
            Err(e) => {
                assert!(
                    matches!(e.kind(), "rejected" | "unavailable"),
                    "crash of {site} surfaced an untyped failure: {e}"
                );
                refused += 1;
            }
        }
    }
    // Q3 reads customer/orders (L1) and lineitem (L4): those crashes are
    // unsurvivable with single-homed tables and must refuse; the other
    // three sites must not take the query down with them.
    assert!(refused >= 2, "crashing a base-table site must refuse");
    assert!(survived >= 3, "crashes of unused sites must be survived");
}

/// Identical fault seeds replay identically: same rows, and a
/// byte-identical transfer log (deliveries, attempts, simulated costs,
/// and fault events all included).
#[test]
fn same_fault_seed_replays_identically() {
    let eng = engine();
    let plan = tpch::query_by_name(eng.catalog(), "Q5").unwrap();
    let opt = eng.optimize(&plan, OptimizerMode::Compliant, None).unwrap();
    let spec = "flaky:L1-L3:0.5; flaky:L2-L4:0.3; delay:L1-L2:25ms; crash:L5@0..2";

    let run = |seed: u64| {
        let faults = FaultPlan::parse(spec, seed).unwrap();
        eng.execute_resilient(&opt, &faults, &RetryPolicy::default(), 5)
            .expect("bounded faults under a generous retry budget")
    };

    let a = run(7);
    let b = run(7);
    assert_eq!(a.rows, b.rows, "same seed, different answers");
    assert_eq!(
        a.transfers, b.transfers,
        "same seed, different transfer logs"
    );
    assert_eq!(a.replans, b.replans);

    // A different seed flips different flaky-link coins: the schedule is
    // a function of the seed, not of ambient state.
    let c = run(8);
    assert_eq!(a.rows, c.rows, "the answer never depends on the seed");
    assert!(
        a.transfers != c.transfers || a.transfers.fault_count() == 0,
        "seeds 7 and 8 produced identical fault schedules — suspicious"
    );
}

/// A bounded crash window is transient: the retry loop rides it out
/// without ever re-planning.
#[test]
fn transient_crash_window_is_ridden_out_by_retries() {
    let eng = engine();
    let plan = tpch::query_by_name(eng.catalog(), "Q10").unwrap();
    let opt = eng.optimize(&plan, OptimizerMode::Compliant, None).unwrap();
    let faults = FaultPlan::parse("crash:L2@0..2", 3).unwrap();
    let res = eng
        .execute_resilient(&opt, &faults, &RetryPolicy::default(), 5)
        .expect("a two-step outage is inside the default retry budget");
    assert_eq!(res.replans, 0, "retries should absorb a transient window");
    assert!(res.excluded.is_empty());
}

/// If the site that must hold the result dies permanently, no compliant
/// failover exists: the engine refuses with a typed rejection instead of
/// delivering the answer elsewhere.
#[test]
fn permanent_crash_of_result_site_is_a_typed_rejection() {
    let eng = engine();
    let plan = tpch::query_by_name(eng.catalog(), "Q3").unwrap();
    let opt = eng.optimize(&plan, OptimizerMode::Compliant, None).unwrap();
    let result_site = opt.result_location.clone();
    let faults = FaultPlan::new(1).with_crash(result_site.clone(), StepWindow::ALWAYS);
    let err = eng
        .execute_resilient(&opt, &faults, &RetryPolicy::default(), 5)
        .unwrap_err();
    assert_eq!(err.kind(), "rejected", "got: {err}");
    assert!(
        err.message().contains(&result_site.to_string()),
        "the rejection should name the dead result site: {err}"
    );
}

/// A genuine failover: the join runs at a relay site C whose execution
/// trait also admits D. When C dies permanently, re-running Algorithm 2
/// with C excluded moves the join to D, the placement re-passes the
/// Definition-1 audit, and the query completes with the same answer.
#[test]
fn failover_replans_to_an_alternate_compliant_site() {
    use geoqp::net::topology::Link;
    use geoqp::storage::Table;

    let mut catalog = Catalog::new();
    for (db, loc) in [("db-a", "A"), ("db-b", "B"), ("db-c", "C"), ("db-d", "D")] {
        catalog.add_database(db, Location::new(loc)).unwrap();
    }
    let t1 = catalog
        .add_table(
            "db-a",
            "t1",
            Schema::new(vec![
                Field::new("u_id", DataType::Int64),
                Field::new("u_val", DataType::Str),
            ])
            .unwrap(),
            TableStats::new(2, 16.0),
        )
        .unwrap();
    let t2 = catalog
        .add_table(
            "db-b",
            "t2",
            Schema::new(vec![
                Field::new("v_id", DataType::Int64),
                Field::new("v_val", DataType::Int64),
            ])
            .unwrap(),
            TableStats::new(2, 16.0),
        )
        .unwrap();
    t1.set_data(
        Table::new(
            Arc::clone(&t1.schema),
            vec![
                vec![Value::Int64(1), Value::str("x")],
                vec![Value::Int64(2), Value::str("y")],
            ],
        )
        .unwrap(),
    )
    .unwrap();
    t2.set_data(
        Table::new(
            Arc::clone(&t2.schema),
            vec![
                vec![Value::Int64(1), Value::Int64(10)],
                vec![Value::Int64(3), Value::Int64(30)],
            ],
        )
        .unwrap(),
    )
    .unwrap();

    // Both tables may go to the relay C or the result site D.
    let mut policies = PolicyCatalog::new();
    for (text, table) in [
        ("ship * from t1 to C, D", "t1"),
        ("ship * from t2 to C, D", "t2"),
    ] {
        let expr = geoqp::parser::parse_policy(text).unwrap();
        let entry = catalog.resolve_one(&TableRef::bare(table)).unwrap();
        policies.register(expr, &entry.schema).unwrap();
    }

    // Direct links into D are brutally expensive, so the cheapest
    // compliant plan joins at C and ships only the result to D.
    let mut topo =
        NetworkTopology::uniform(LocationSet::from_iter(["A", "B", "C", "D"]), 50.0, 100.0);
    let dear = Link {
        alpha_ms: 1e7,
        beta_ms_per_byte: 1.0,
    };
    for from in ["A", "B"] {
        topo.set_link(Location::new(from), Location::new("D"), dear);
    }
    let eng = Engine::new(Arc::new(catalog), Arc::new(policies), topo);

    let sql = "SELECT u_val, v_val FROM t1, t2 WHERE u_id = v_id";
    let opt = eng
        .optimize_sql(sql, OptimizerMode::Compliant, Some(Location::new("D")))
        .unwrap();
    let baseline = eng.execute(&opt.physical).unwrap();
    assert_eq!(baseline.rows.len(), 1);
    assert!(
        baseline
            .transfers
            .records()
            .iter()
            .any(|t| t.to == Location::new("C")),
        "premise broken: the fault-free plan should relay through C"
    );

    let faults = FaultPlan::new(9).with_crash("C", StepWindow::ALWAYS);
    let res = eng
        .execute_resilient(&opt, &faults, &RetryPolicy::default(), 3)
        .expect("a compliant alternative placement at D exists");
    assert_eq!(res.replans, 1, "exactly one re-plan should be needed");
    assert!(res.excluded.contains(&Location::new("C")));
    assert_eq!(canonical(&res.rows), canonical(&baseline.rows));
    eng.audit(&res.physical)
        .expect("failover placement audits clean");
    for t in res.transfers.records() {
        assert!(
            t.from != Location::new("C") && t.to != Location::new("C"),
            "a delivery touched the crashed relay C"
        );
    }
}

/// Exhausting the retry budget on a permanently dead link surfaces the
/// typed `SiteUnavailable` naming the failing link when no failover
/// remains (max_replans = 0 forbids re-planning).
#[test]
fn exhausted_retries_surface_the_failing_link() {
    let eng = engine();
    let plan = tpch::query_by_name(eng.catalog(), "Q3").unwrap();
    let opt = eng.optimize(&plan, OptimizerMode::Compliant, None).unwrap();
    // Fault-free run to learn which links the plan actually uses.
    let baseline = eng.execute(&opt.physical).unwrap();
    let Some(t0) = baseline.transfers.records().first().cloned() else {
        panic!("Q3's compliant plan should ship at least once");
    };
    let faults = FaultPlan::new(5).with_drop(t0.from.clone(), t0.to.clone(), StepWindow::ALWAYS);
    let err = eng
        .execute_resilient(&opt, &faults, &RetryPolicy::default(), 0)
        .unwrap_err();
    assert_eq!(err.kind(), "unavailable", "got: {err}");
    assert_eq!(
        err.failed_link(),
        Some((&t0.from, &t0.to)),
        "the error must identify the dead link"
    );
}
