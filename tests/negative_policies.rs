//! Negative ("deny") policies through the whole engine: closed-world
//! expansion feeding the optimizer, Theorem-1 soundness intact.

use geoqp::parser::parse_denial;
use geoqp::policy::expand_denials;
use geoqp::prelude::*;
use std::sync::Arc;

fn deployment() -> (
    Catalog,
    Arc<geoqp::storage::TableEntry>,
    Arc<geoqp::storage::TableEntry>,
) {
    let mut catalog = Catalog::new();
    catalog.add_database("db-de", Location::new("DE")).unwrap();
    catalog.add_database("db-us", Location::new("US")).unwrap();
    let people = catalog
        .add_table(
            "db-de",
            "people",
            Schema::new(vec![
                Field::new("p_id", DataType::Int64),
                Field::new("p_name", DataType::Str),
                Field::new("p_ssn", DataType::Str),
            ])
            .unwrap(),
            TableStats::new(4, 32.0),
        )
        .unwrap();
    let visits = catalog
        .add_table(
            "db-us",
            "visits",
            Schema::new(vec![
                Field::new("v_person", DataType::Int64),
                Field::new("v_site", DataType::Str),
            ])
            .unwrap(),
            TableStats::new(6, 16.0),
        )
        .unwrap();
    people
        .set_data(
            Table::new(
                Arc::clone(&people.schema),
                (1..=4)
                    .map(|i| {
                        vec![
                            Value::Int64(i),
                            Value::str(format!("person{i}")),
                            Value::str(format!("ssn-{i}")),
                        ]
                    })
                    .collect(),
            )
            .unwrap(),
        )
        .unwrap();
    visits
        .set_data(
            Table::new(
                Arc::clone(&visits.schema),
                vec![
                    vec![Value::Int64(1), Value::str("a")],
                    vec![Value::Int64(1), Value::str("b")],
                    vec![Value::Int64(2), Value::str("a")],
                    vec![Value::Int64(3), Value::str("c")],
                    vec![Value::Int64(4), Value::str("a")],
                    vec![Value::Int64(4), Value::str("c")],
                ],
            )
            .unwrap(),
        )
        .unwrap();
    (catalog, people, visits)
}

#[test]
fn denial_expanded_engine_plans_around_the_denied_column() {
    let (catalog, people, visits) = deployment();
    let universe = catalog.locations().clone();

    // Only the SSN is restricted; everything else follows from the closed
    // world assumption.
    let denials = vec![parse_denial("deny ship p_ssn from people to *").unwrap()];
    let mut policies = PolicyCatalog::new();
    for g in expand_denials(
        &TableRef::bare("people"),
        &people.schema,
        &denials,
        &universe,
    )
    .unwrap()
    {
        policies.register(g, &people.schema).unwrap();
    }
    for g in expand_denials(&TableRef::bare("visits"), &visits.schema, &[], &universe).unwrap() {
        policies.register(g, &visits.schema).unwrap();
    }

    let engine = Engine::new(
        Arc::new(catalog),
        Arc::new(policies),
        NetworkTopology::uniform(universe, 50.0, 200.0),
    );

    // The join works compliantly: names may cross, SSNs may not — and the
    // optimizer masks them out before shipping.
    let (opt, result) = engine
        .run_sql(
            "SELECT p_name, v_site FROM people, visits WHERE p_id = v_person \
             ORDER BY p_name, v_site",
            OptimizerMode::Compliant,
            Some(Location::new("US")),
        )
        .unwrap();
    engine.audit(&opt.physical).unwrap();
    assert_eq!(result.rows.len(), 6);
    opt.physical.visit(&mut |p| {
        if matches!(p.op, geoqp::plan::PhysOp::Ship) {
            assert!(p.schema.index_of("p_ssn").is_none(), "SSN crossed a border");
        }
    });

    // Demanding SSNs in the US is rejected.
    let err = engine
        .optimize_sql(
            "SELECT p_ssn, v_site FROM people, visits WHERE p_id = v_person",
            OptimizerMode::Compliant,
            Some(Location::new("US")),
        )
        .unwrap_err();
    assert_eq!(err.kind(), "rejected");

    // But they remain queryable at home.
    assert!(engine
        .optimize_sql(
            "SELECT p_ssn FROM people",
            OptimizerMode::Compliant,
            Some(Location::new("DE")),
        )
        .is_ok());
}

#[test]
fn conditional_denial_interacts_with_query_predicates() {
    let (catalog, people, visits) = deployment();
    let universe = catalog.locations().clone();

    // People with id < 3 are confidential abroad.
    let denials = vec![parse_denial("deny ship * from people to US where p_id < 3").unwrap()];
    let mut policies = PolicyCatalog::new();
    for g in expand_denials(
        &TableRef::bare("people"),
        &people.schema,
        &denials,
        &universe,
    )
    .unwrap()
    {
        policies.register(g, &people.schema).unwrap();
    }
    for g in expand_denials(&TableRef::bare("visits"), &visits.schema, &[], &universe).unwrap() {
        policies.register(g, &visits.schema).unwrap();
    }
    let engine = Engine::new(
        Arc::new(catalog),
        Arc::new(policies),
        NetworkTopology::uniform(universe, 50.0, 200.0),
    );

    // Excluding the confidential rows satisfies the complement guard.
    let (opt, result) = engine
        .run_sql(
            "SELECT p_name, v_site FROM people, visits \
             WHERE p_id = v_person AND p_id >= 3",
            OptimizerMode::Compliant,
            Some(Location::new("US")),
        )
        .unwrap();
    engine.audit(&opt.physical).unwrap();
    assert_eq!(result.rows.len(), 3); // person3 ×1, person4 ×2

    // Without the exclusion, the only compliant shape is to bring visits
    // to DE — which a US result location forbids for people rows.
    let err = engine
        .optimize_sql(
            "SELECT p_name, v_site FROM people, visits WHERE p_id = v_person",
            OptimizerMode::Compliant,
            Some(Location::new("US")),
        )
        .unwrap_err();
    assert_eq!(err.kind(), "rejected");
}
