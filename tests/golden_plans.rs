//! Golden-plan regression snapshots.
//!
//! The annotated plan (with its AR1–AR4 execution/shipping traits) and
//! the sited physical plan for each of the six evaluated TPC-H queries,
//! under the CR+A template set, are pinned as text snapshots in
//! `tests/golden/`. Any optimizer change that silently re-places an
//! operator, widens/narrows a trait, or re-shapes a plan shows up as a
//! readable diff here.
//!
//! Refresh after an intentional change with:
//! `UPDATE_GOLDEN=1 cargo test --test golden_plans`

use geoqp::prelude::*;
use geoqp::tpch;
use geoqp::tpch::policy_gen::PolicyTemplate;
use std::path::PathBuf;
use std::sync::Arc;

const SF: f64 = 0.002;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

fn snapshot(eng: &Engine, query: &str) -> String {
    let plan = tpch::query_by_name(eng.catalog(), query).unwrap();
    match eng.optimize(&plan, OptimizerMode::Compliant, None) {
        Err(e) => format!("{query}: rejected ({e})\n"),
        Ok(opt) => format!(
            "{query}: result at {}\n\nannotated plan (ℰ = execution trait, 𝒮 = shipping trait):\n{}\nphysical plan:\n{}",
            opt.result_location,
            geoqp::core::explain::display_annotated(&opt.annotated),
            geoqp::plan::display::display_physical(&opt.physical),
        ),
    }
}

#[test]
fn annotated_and_physical_plans_match_their_snapshots() {
    let catalog = Arc::new(tpch::paper_catalog(SF));
    let policies = tpch::generate_policies(&catalog, PolicyTemplate::CRA, 10, 2021).unwrap();
    let eng = Engine::new(catalog, Arc::new(policies), NetworkTopology::paper_wan());

    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    let dir = golden_dir();
    if update {
        std::fs::create_dir_all(&dir).unwrap();
    }

    let mut diffs = Vec::new();
    for query in ["Q2", "Q3", "Q5", "Q8", "Q9", "Q10"] {
        let got = snapshot(&eng, query);
        let path = dir.join(format!("{query}.txt"));
        if update {
            std::fs::write(&path, &got).unwrap();
            continue;
        }
        let want = std::fs::read_to_string(&path).unwrap_or_else(|_| {
            panic!(
                "missing snapshot {}; run UPDATE_GOLDEN=1 cargo test --test golden_plans",
                path.display()
            )
        });
        if got != want {
            diffs.push(format!(
                "--- {query}: snapshot drift ---\nexpected:\n{want}\ngot:\n{got}"
            ));
        }
    }
    assert!(
        diffs.is_empty(),
        "plan snapshots drifted (UPDATE_GOLDEN=1 refreshes intentional changes):\n{}",
        diffs.join("\n")
    );
}

/// Breaker condemnation, pinned: for each query, its busiest gray link
/// (the link E7/E8 degrade) is priced at ∞ and Algorithm 2 re-runs over
/// the unchanged annotated plan — exactly the engine's soft-exclusion
/// re-plan. The snapshot pins the detoured physical plan, or records
/// that no compliant detour exists (the case the engine answers by
/// waiving the condemnation and riding the gray link). Any cost-model
/// or trait change that silently alters where the defense re-routes a
/// query shows up as a readable diff.
#[test]
fn breaker_replans_match_their_snapshot() {
    let catalog = Arc::new(tpch::paper_catalog(SF));
    let policies = tpch::generate_policies(&catalog, PolicyTemplate::CRA, 10, 2021).unwrap();
    let eng = Engine::new(catalog, Arc::new(policies), NetworkTopology::paper_wan());

    // Each query's busiest cross-site exchange edge under CR+A — the
    // link the gray-failure experiments degrade and condemn.
    let condemned: [(&str, (&str, &str)); 6] = [
        ("Q2", ("L2", "L3")),
        ("Q3", ("L1", "L4")),
        ("Q5", ("L1", "L4")),
        ("Q8", ("L4", "L3")),
        ("Q9", ("L4", "L3")),
        ("Q10", ("L1", "L4")),
    ];
    let mut got = String::new();
    for (query, (from, to)) in condemned {
        let plan = tpch::query_by_name(eng.catalog(), query).unwrap();
        let opt = match eng.optimize(&plan, OptimizerMode::Compliant, None) {
            Ok(opt) => opt,
            Err(e) => {
                got.push_str(&format!("{query}: rejected before any fault ({e})\n\n"));
                continue;
            }
        };
        let avoided = [(Location::new(from), Location::new(to))];
        let gray = eng.topology().avoiding_links(&avoided);
        got.push_str(&format!("{query}: condemned link {from}->{to}\n"));
        match geoqp::core::select_sites_with(
            &opt.annotated,
            &gray,
            Some(&opt.result_location),
            geoqp::core::Objective::TotalCost,
        ) {
            Ok(replan) => got.push_str(&format!(
                "re-planned physical plan (condemned link priced at ∞):\n{}\n",
                geoqp::plan::display::display_physical(&replan.physical),
            )),
            Err(e) => got.push_str(&format!(
                "no compliant detour: condemnation waived, query rides the gray link\n({e})\n\n",
            )),
        }
    }

    let path = golden_dir().join("breaker_replan.txt");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(&path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing snapshot {}; run UPDATE_GOLDEN=1 cargo test --test golden_plans",
            path.display()
        )
    });
    assert_eq!(
        got, want,
        "breaker re-plan snapshot drifted (UPDATE_GOLDEN=1 refreshes intentional changes)"
    );
}

/// The snapshots themselves must be deterministic: two optimizations in
/// the same process produce byte-identical renderings.
#[test]
fn snapshots_are_deterministic() {
    let catalog = Arc::new(tpch::paper_catalog(SF));
    let policies = tpch::generate_policies(&catalog, PolicyTemplate::CRA, 10, 2021).unwrap();
    let eng = Engine::new(catalog, Arc::new(policies), NetworkTopology::paper_wan());
    for query in ["Q2", "Q5", "Q10"] {
        assert_eq!(
            snapshot(&eng, query),
            snapshot(&eng, query),
            "{query}: non-deterministic plan rendering"
        );
    }
}
