//! Randomized validation of Theorem 1: *the compliance-based optimizer
//! never outputs a non-compliant query execution plan* — checked with the
//! independent Definition-1 auditor over generated workloads and policy
//! sets.

use geoqp::prelude::*;
use geoqp::tpch;
use geoqp::tpch::adhoc::generate_adhoc;
use geoqp::tpch::policy_gen::{generate_policies, PolicyTemplate};
use std::sync::Arc;

#[test]
fn compliant_plans_always_pass_the_audit() {
    let catalog = Arc::new(tpch::paper_catalog(10.0));
    for (seed, template) in [
        (1u64, PolicyTemplate::T),
        (2, PolicyTemplate::C),
        (3, PolicyTemplate::CR),
        (4, PolicyTemplate::CRA),
    ] {
        let policies = generate_policies(&catalog, template, 20, seed).unwrap();
        let eng = Engine::new(
            Arc::clone(&catalog),
            Arc::new(policies),
            NetworkTopology::paper_wan(),
        );
        for q in generate_adhoc(&catalog, 25, seed * 101).unwrap() {
            match eng.optimize(&q.plan, OptimizerMode::Compliant, None) {
                // Rejection is allowed by Theorem 1 (incompleteness);
                // emitting a violating plan is not.
                Err(e) => assert_eq!(e.kind(), "rejected", "query {}", q.id),
                Ok(opt) => {
                    eng.audit(&opt.physical).unwrap_or_else(|e| {
                        panic!(
                            "Theorem 1 violated for adhoc query {} under {}: {e}\n{}",
                            q.id,
                            template.name(),
                            geoqp::plan::display::display_physical(&opt.physical)
                        )
                    });
                }
            }
        }
    }
}

#[test]
fn crafted_sets_guarantee_compliant_plans_for_generated_workloads() {
    // The generator's documented guarantee: under the crafted base sets
    // every generated query retains at least one compliant plan.
    let catalog = Arc::new(tpch::paper_catalog(10.0));
    for template in [
        PolicyTemplate::T,
        PolicyTemplate::C,
        PolicyTemplate::CR,
        PolicyTemplate::CRA,
    ] {
        let policies = generate_policies(&catalog, template, template.base_count(), 2021).unwrap();
        let eng = Engine::new(
            Arc::clone(&catalog),
            Arc::new(policies),
            NetworkTopology::paper_wan(),
        );
        for q in generate_adhoc(&catalog, 40, 77).unwrap() {
            let opt = eng
                .optimize(&q.plan, OptimizerMode::Compliant, None)
                .unwrap_or_else(|e| {
                    panic!(
                        "no compliant plan for adhoc {} (tables {:?}) under {}: {e}",
                        q.id,
                        q.tables,
                        template.name()
                    )
                });
            eng.audit(&opt.physical).unwrap();
        }
        for (name, plan) in tpch::all_queries(&catalog).unwrap() {
            eng.optimize(&plan, OptimizerMode::Compliant, None)
                .unwrap_or_else(|e| panic!("{name} under {}: {e}", template.name()));
        }
    }
}

#[test]
fn audits_of_traditional_plans_never_panic() {
    // The auditor must classify any well-formed plan, compliant or not.
    let catalog = Arc::new(tpch::paper_catalog(10.0));
    let policies = generate_policies(&catalog, PolicyTemplate::CRA, 30, 9).unwrap();
    let eng = Engine::new(
        Arc::clone(&catalog),
        Arc::new(policies),
        NetworkTopology::paper_wan(),
    );
    let mut compliant = 0;
    let mut violating = 0;
    for q in generate_adhoc(&catalog, 40, 5).unwrap() {
        let opt = eng
            .optimize(&q.plan, OptimizerMode::Traditional, None)
            .unwrap();
        match eng.audit(&opt.physical) {
            Ok(()) => compliant += 1,
            Err(e) => {
                assert_eq!(e.kind(), "non-compliant");
                violating += 1;
            }
        }
    }
    // The experiment premise: the baseline violates sometimes, not always.
    assert!(compliant > 0, "baseline never compliant?");
    assert!(
        violating > 0,
        "baseline never violates — policies toothless?"
    );
}
