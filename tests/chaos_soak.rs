//! Fixed-seed chaos soak: randomized crash/partition schedules with
//! query deadlines, driven through the concurrent pipelined runtime.
//!
//! Every schedule is a pure function of the soak seed, so a failure
//! replays exactly. For each schedule the invariants are: no panic, no
//! leaked fragment worker, and — on every run that completes — the
//! fault-free answer through a placement that passes the Definition-1
//! audit. Runs that do not complete must fail with a *typed* error.
//!
//! `GEOQP_CHAOS_N` sets the number of schedules (default 8).

use geoqp::prelude::*;
use geoqp::tpch;
use geoqp::tpch::policy_gen::PolicyTemplate;
use std::sync::Arc;

const SF: f64 = 0.001;
const QUERIES: [&str; 6] = ["Q2", "Q3", "Q5", "Q8", "Q9", "Q10"];
const SITES: [&str; 5] = ["L1", "L2", "L3", "L4", "L5"];

/// splitmix64: the soak's only randomness, seeded and replayable.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Live threads in this process, from `/proc/self/status`.
fn live_threads() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|n| n.parse().ok())
        })
        .unwrap_or(1)
}

/// One randomized schedule: a site blackout, a link partition, a flaky
/// link, and (half the time) a simulated-clock deadline. Returned as the
/// `--faults` spec plus its seed so a round can rebuild the *same*
/// `FaultPlan` for a duplicate-execution determinism check.
fn schedule_spec(rng: &mut u64) -> (String, u64, Option<QueryDeadline>, String) {
    let seed = splitmix(rng);
    let crash_site = SITES[(splitmix(rng) % 5) as usize];
    let crash_at = splitmix(rng) % 12;
    let crash_len = 1 + splitmix(rng) % 6;
    let pair = |rng: &mut u64| {
        let a = (splitmix(rng) % 5) as usize;
        let b = (a + 1 + (splitmix(rng) % 4) as usize) % 5;
        (SITES[a], SITES[b])
    };
    let (pa, pb) = pair(rng);
    let part_at = splitmix(rng) % 12;
    let part_len = 1 + splitmix(rng) % 4;
    let (fa, fb) = pair(rng);
    let flake = (splitmix(rng) % 40) as f64 / 100.0;
    let deadline = match splitmix(rng) % 2 {
        0 => None,
        _ => Some(QueryDeadline::new(500.0 + (splitmix(rng) % 4000) as f64)),
    };
    let spec = format!(
        "crash:{crash_site}@{crash_at}..{}; drop:{pa}-{pb}@{part_at}..{}; \
         flaky:{fa}-{fb}:{flake}",
        crash_at + crash_len,
        part_at + part_len,
    );
    let label = format!(
        "seed={seed} spec=[{spec}] deadline={:?}",
        deadline.as_ref().map(|d| d.budget_ms)
    );
    (spec, seed, deadline, label)
}

fn schedule(rng: &mut u64) -> (FaultPlan, Option<QueryDeadline>, String) {
    let (spec, seed, deadline, label) = schedule_spec(rng);
    let faults = FaultPlan::parse(&spec, seed).expect("generated spec parses");
    (faults, deadline, label)
}

/// One randomized *gray* schedule: a degraded link, a loss burst on the
/// same wire, and (sometimes) a flaky second link — the slow-but-alive
/// failures the hedging defense exists for, expressed in the `--faults`
/// grammar so the soak also exercises the parser.
fn gray_schedule(rng: &mut u64) -> (FaultPlan, String) {
    let seed = splitmix(rng);
    let pair = |rng: &mut u64| {
        let a = (splitmix(rng) % 5) as usize;
        let b = (a + 1 + (splitmix(rng) % 4) as usize) % 5;
        (SITES[a], SITES[b])
    };
    let (ga, gb) = pair(rng);
    let factor = 2 + splitmix(rng) % 7; // 2x..8x
    let loss = (splitmix(rng) % 20) as f64 / 100.0; // 0..0.19
    let mut spec = format!("degrade:{ga}-{gb}:{factor}x; loss:{ga}-{gb}:{loss}");
    if splitmix(rng) % 2 == 1 {
        let (fa, fb) = pair(rng);
        let flake = (splitmix(rng) % 25) as f64 / 100.0;
        spec.push_str(&format!("; flaky:{fa}-{fb}:{flake}"));
    }
    let faults = FaultPlan::parse(&spec, seed).expect("generated gray spec parses");
    (faults, format!("seed={seed} spec=[{spec}]"))
}

/// Gray-failure soak: randomized degrade/loss schedules with the full
/// hedging defense on (health scoring, backups, breakers, condemnation
/// re-plans). Invariants per run: the fault-free answer through an
/// audit-clean placement, or a typed refusal — hedging buys latency,
/// never different rows and never a compliance hole.
#[test]
fn randomized_gray_schedules_stay_compliant_with_hedging_on() {
    let n: usize = std::env::var("GEOQP_CHAOS_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let catalog = Arc::new(tpch::paper_catalog(SF));
    tpch::populate(&catalog, SF, 7).unwrap();
    let policies = tpch::generate_policies(&catalog, PolicyTemplate::CRA, 10, 2021).unwrap();
    let eng = Engine::new(catalog, Arc::new(policies), NetworkTopology::paper_wan());
    let retry = RetryPolicy::default().with_jitter(0.3, 2021);

    let mut rng = 0x6772_6179_736f_616bu64; // fixed gray-soak seed
    let before = live_threads();
    let (mut completed, mut refused, mut hedged_runs) = (0usize, 0usize, 0usize);
    for round in 0..n {
        // Odd rounds soak the vectorized columnar path — same schedules,
        // same invariants, different inner loops.
        let config = RuntimeConfig {
            columnar: round % 2 == 1,
            // Columnar rounds alternate the morsel worker count so the
            // soak crosses every fault schedule with the work-stealing
            // pool engaged (even rounds are row-engine, workers inert).
            workers_per_site: if round % 4 == 1 { 2 } else { 4 },
            ..RuntimeConfig::default()
        };
        for query in QUERIES {
            let plan = tpch::query_by_name(eng.catalog(), query).unwrap();
            let Ok(opt) = eng.optimize(&plan, OptimizerMode::Compliant, None) else {
                continue;
            };
            let baseline = eng.execute_parallel(&opt.physical).unwrap();
            let (faults, label) = gray_schedule(&mut rng);
            let opts = FailoverOpts::new(SITES.len()).with_hedge(HedgeConfig::default());
            match eng.execute_resilient_parallel_opts(&opt, &faults, &retry, &opts, &config) {
                Ok((res, _metrics)) => {
                    completed += 1;
                    if res.hedges_launched > 0 {
                        hedged_runs += 1;
                    }
                    let mut got: Vec<String> = res.rows.iter().map(|r| format!("{r:?}")).collect();
                    let mut want: Vec<String> =
                        baseline.rows.iter().map(|r| format!("{r:?}")).collect();
                    got.sort();
                    want.sort();
                    assert_eq!(
                        got, want,
                        "round {round} {query} [{label}]: gray chaos changed the answer"
                    );
                    eng.audit(&res.physical).unwrap_or_else(|e| {
                        panic!(
                            "round {round} {query} [{label}]: completed through a \
                             non-compliant placement: {e}"
                        )
                    });
                }
                Err(e) => {
                    refused += 1;
                    assert!(
                        matches!(
                            e.kind(),
                            "rejected" | "unavailable" | "deadline" | "cancelled"
                        ),
                        "round {round} {query} [{label}]: untyped failure {e}"
                    );
                }
            }
        }
    }
    let mut after = live_threads();
    for _ in 0..50 {
        if after <= before {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
        after = live_threads();
    }
    assert!(
        after <= before + 4,
        "{before} threads before the gray soak, {after} after — fragment workers leaked"
    );
    assert!(
        completed >= 1,
        "the gray soak never completed a single run ({refused} refusals) — schedules too harsh"
    );
    assert!(
        hedged_runs >= 1,
        "the gray soak never launched a hedge across {completed} completions — \
         the defense was not exercised"
    );
}

/// Ad-hoc round: the soak's crash/partition schedules replayed over
/// *generated* queries instead of the named TPC-H six, so the chaos
/// surface tracks the workload generator's full shape space (2–5-way
/// joins, mixed aggregates). Same invariants: fault-free answer through
/// an audit-clean placement, or a typed refusal; no leaked workers.
#[test]
fn randomized_adhoc_round_stays_compliant_and_leak_free() {
    let n: usize = std::env::var("GEOQP_CHAOS_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let catalog = Arc::new(tpch::paper_catalog(SF));
    tpch::populate(&catalog, SF, 7).unwrap();
    let policies = tpch::generate_policies(&catalog, PolicyTemplate::CRA, 10, 2021).unwrap();
    let eng = Engine::new(catalog, Arc::new(policies), NetworkTopology::paper_wan());
    let retry = RetryPolicy::default().with_jitter(0.3, 2021);
    // Three generated queries per schedule round, one deterministic batch.
    let queries = tpch::adhoc::generate_adhoc(eng.catalog(), 3 * n, 2021).unwrap();

    let mut rng = 0x6164_686f_6373_6f61u64; // fixed adhoc-soak seed
    let before = live_threads();
    let (mut completed, mut refused) = (0usize, 0usize);
    for (round, chunk) in queries.chunks(3).enumerate() {
        let config = RuntimeConfig {
            columnar: round % 2 == 1,
            // Columnar rounds alternate the morsel worker count so the
            // soak crosses every fault schedule with the work-stealing
            // pool engaged (even rounds are row-engine, workers inert).
            workers_per_site: if round % 4 == 1 { 2 } else { 4 },
            ..RuntimeConfig::default()
        };
        for q in chunk {
            let Ok(opt) = eng.optimize(&q.plan, OptimizerMode::Compliant, None) else {
                panic!("adhoc #{} failed to plan fault-free: {}", q.id, q.sql);
            };
            let baseline = eng.execute_parallel(&opt.physical).unwrap();
            let (faults, deadline, label) = schedule(&mut rng);
            let opts = FailoverOpts {
                deadline,
                ..FailoverOpts::new(SITES.len())
            };
            match eng.execute_resilient_parallel_opts(&opt, &faults, &retry, &opts, &config) {
                Ok((res, _metrics)) => {
                    completed += 1;
                    let mut got: Vec<String> = res.rows.iter().map(|r| format!("{r:?}")).collect();
                    let mut want: Vec<String> =
                        baseline.rows.iter().map(|r| format!("{r:?}")).collect();
                    got.sort();
                    want.sort();
                    assert_eq!(
                        got, want,
                        "round {round} adhoc #{} [{label}]: chaos changed the answer\n{}",
                        q.id, q.sql
                    );
                    eng.audit(&res.physical).unwrap_or_else(|e| {
                        panic!(
                            "round {round} adhoc #{} [{label}]: completed through a \
                             non-compliant placement: {e}",
                            q.id
                        )
                    });
                }
                Err(e) => {
                    refused += 1;
                    assert!(
                        matches!(
                            e.kind(),
                            "rejected" | "unavailable" | "deadline" | "cancelled"
                        ),
                        "round {round} adhoc #{} [{label}]: untyped failure {e}",
                        q.id
                    );
                }
            }
        }
    }
    let mut after = live_threads();
    for _ in 0..50 {
        if after <= before {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
        after = live_threads();
    }
    assert!(
        after <= before + 4,
        "{before} threads before the adhoc soak, {after} after — fragment workers leaked"
    );
    assert!(
        completed >= 1,
        "the adhoc soak never completed a single run ({refused} refusals) — schedules too harsh"
    );
}

/// Service round: the soak's crash/partition/deadline schedules replayed
/// through the multi-tenant `QueryService` — concurrent sessions,
/// admission control, DRR scheduling, and the epoch-keyed plan cache all
/// under chaos at once. Invariants: every ticket resolves (no deadlock,
/// even with cancellations and deadlines mid-queue), completions return
/// the fault-free answer, failures carry a typed kind, and the service
/// joins every worker on drop.
#[test]
fn concurrent_service_round_under_chaos_resolves_every_ticket() {
    let n: usize = std::env::var("GEOQP_CHAOS_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let catalog = Arc::new(tpch::paper_catalog(SF));
    tpch::populate(&catalog, SF, 7).unwrap();
    let svc = QueryService::new(ServiceConfig {
        workers: 4,
        cache_capacity: 64,
        columnar: true,
        max_replans: SITES.len(),
    });
    let mut tenants = Vec::new();
    for (i, template) in [PolicyTemplate::CRA, PolicyTemplate::CR].iter().enumerate() {
        let policies =
            tpch::generate_policies(&catalog, *template, 10, 2021 ^ (i as u64 + 1)).unwrap();
        tenants.push(svc.add_tenant(
            template.name(),
            Arc::clone(&catalog),
            Arc::new(policies),
            NetworkTopology::paper_wan(),
            TenantConfig {
                max_inflight: 2,
                max_queue: 16,
                quantum: 1,
            },
        ));
    }
    let queries = tpch::adhoc::generate_adhoc(&catalog, n, 2021).unwrap();

    let before = live_threads();
    let mut rng = 0x0073_6572_7669_6365_u64; // fixed service-soak seed
    let (mut completed, mut refused, mut rejected) = (0usize, 0usize, 0usize);
    for (round, q) in queries.iter().enumerate() {
        // Each round floods both tenants concurrently: one chaos-scheduled
        // submission plus one pre-cancelled submission per tenant, all in
        // flight before any ticket is waited on.
        let mut tickets = Vec::new();
        for &tenant in &tenants {
            let (faults, deadline, label) = schedule(&mut rng);
            let mut req = QueryRequest::new(&q.sql).with_faults(faults);
            if let Some(d) = deadline {
                req = req.with_deadline(d);
            }
            match svc.submit(tenant, req) {
                Ok(t) => tickets.push((tenant, label, t)),
                Err(e) => {
                    assert_eq!(e.kind(), "admission", "round {round}: untyped refusal {e}");
                    rejected += 1;
                }
            }
            let cancel = CancelToken::new();
            cancel.cancel();
            match svc.submit(tenant, QueryRequest::new(&q.sql).with_cancel(cancel)) {
                Ok(t) => tickets.push((tenant, "pre-cancelled".to_string(), t)),
                Err(e) => {
                    assert_eq!(e.kind(), "admission", "round {round}: untyped refusal {e}");
                    rejected += 1;
                }
            }
        }
        for (tenant, label, ticket) in tickets {
            match ticket.wait() {
                Ok(reply) => {
                    completed += 1;
                    // The fault-free answer through the same tenant's
                    // engine (policies differ per tenant).
                    let eng = svc.tenant_engine(tenant).unwrap();
                    let opt = eng
                        .optimize(&q.plan, OptimizerMode::Compliant, None)
                        .unwrap();
                    let baseline = eng.execute_columnar(&opt.physical).unwrap();
                    let mut got: Vec<String> =
                        reply.rows.iter().map(|r| format!("{r:?}")).collect();
                    let mut want: Vec<String> =
                        baseline.rows.iter().map(|r| format!("{r:?}")).collect();
                    got.sort();
                    want.sort();
                    assert_eq!(
                        got, want,
                        "round {round} adhoc #{} [{label}]: service chaos changed the answer\n{}",
                        q.id, q.sql
                    );
                }
                Err(e) => {
                    refused += 1;
                    assert!(
                        matches!(
                            e.kind(),
                            "rejected" | "unavailable" | "deadline" | "cancelled" | "admission"
                        ),
                        "round {round} adhoc #{} [{label}]: untyped failure {e}",
                        q.id
                    );
                }
            }
        }
    }
    assert!(
        completed >= 1,
        "the service soak never completed a single run \
         ({refused} refusals, {rejected} rejections) — schedules too harsh"
    );
    // Dropping the service must join all four workers.
    drop(svc);
    let mut after = live_threads();
    for _ in 0..50 {
        if after <= before {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
        after = live_threads();
    }
    assert!(
        after <= before + 4,
        "{before} threads before the service soak, {after} after — service workers leaked"
    );
}

/// Catalog-churn round: mid-query revocations and catalog-plane
/// partitions layered on the soak's crash/partition/flake schedules.
/// Every run pins the pre-revocation epoch at admission and races a
/// scripted revocation released at a seeded executor step; every third
/// run additionally partitions the catalog plane at a non-coordinator
/// site so churn re-plans there must prove freshness or refuse.
/// Invariants per run: a completion returns the fault-free answer and
/// audits clean — against the pinned catalog when it finished under its
/// epoch, against the *shrunken* catalog when a revocation forced a
/// re-plan (zero non-compliant transfers either way); a failure carries
/// a typed kind; no leaked workers.
#[test]
fn catalog_churn_round_stays_compliant_and_resolves_typed() {
    let n: usize = std::env::var("GEOQP_CHAOS_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let catalog = Arc::new(tpch::paper_catalog(SF));
    tpch::populate(&catalog, SF, 7).unwrap();
    let policies = tpch::generate_policies(&catalog, PolicyTemplate::CRA, 10, 2021).unwrap();
    let eng = Engine::new(
        Arc::clone(&catalog),
        Arc::new(policies.clone()),
        NetworkTopology::paper_wan(),
    );
    let retry = RetryPolicy::default().with_jitter(0.3, 2021);
    let coordinator = eng
        .catalog()
        .locations()
        .iter()
        .next()
        .cloned()
        .expect("the paper catalog has sites");

    let mut rng = 0x6361_7461_6c6f_6721u64; // fixed churn-soak seed
    let before = live_threads();
    let (mut completed, mut replanned, mut refused, mut stale_hits) =
        (0usize, 0usize, 0usize, 0usize);
    let mut run_idx = 0u64;
    for round in 0..n {
        // Odd rounds soak the vectorized columnar path, as elsewhere.
        let config = RuntimeConfig {
            columnar: round % 2 == 1,
            // Columnar rounds alternate the morsel worker count so the
            // soak crosses every fault schedule with the work-stealing
            // pool engaged (even rounds are row-engine, workers inert).
            workers_per_site: if round % 4 == 1 { 2 } else { 4 },
            ..RuntimeConfig::default()
        };
        for query in QUERIES {
            let plan = tpch::query_by_name(eng.catalog(), query).unwrap();
            let Ok(opt) = eng.optimize(&plan, OptimizerMode::Compliant, None) else {
                continue;
            };
            let baseline = eng.execute_parallel(&opt.physical).unwrap();
            let (faults, deadline, label) = schedule(&mut rng);

            // Fresh catalog service per run: revoke one live policy,
            // releasing it to in-flight execution at a deterministic
            // step that cycles through the early executor clock.
            let svc = CatalogService::new(
                Arc::clone(eng.catalog()),
                policies.clone(),
                coordinator.clone(),
            );
            let live = svc.live_policies();
            let (pid, _) = live[splitmix(&mut rng) as usize % live.len()];
            let rev = svc.revoke(pid).unwrap();
            let step = run_idx % 6;
            let svc = svc.with_planned(vec![ChurnEvent {
                step,
                seq: rev.seq,
                epoch: rev.epoch,
                revocation: true,
            }]);
            let partitioned = run_idx % 3 == 2;
            let svc = if partitioned {
                let site = SITES[1 + splitmix(&mut rng) as usize % (SITES.len() - 1)];
                Arc::new(
                    svc.with_faults(
                        FaultPlan::new(splitmix(&mut rng))
                            .with_partition([Location::new(site)], StepWindow::ALWAYS),
                    ),
                )
            } else {
                svc.sync_full();
                Arc::new(svc)
            };
            run_idx += 1;
            let pin = CatalogPin::new(0, eng.policies().epoch());
            let opts = FailoverOpts {
                deadline,
                ..FailoverOpts::new(SITES.len()).with_churn(Arc::clone(&svc), pin)
            };
            match eng.execute_resilient_parallel_opts(&opt, &faults, &retry, &opts, &config) {
                Ok((res, _metrics)) => {
                    completed += 1;
                    let mut got: Vec<String> = res.rows.iter().map(|r| format!("{r:?}")).collect();
                    let mut want: Vec<String> =
                        baseline.rows.iter().map(|r| format!("{r:?}")).collect();
                    got.sort();
                    want.sort();
                    assert_eq!(
                        got, want,
                        "round {round} {query} [{label}] revoke p{pid}@{step}: \
                         churn changed the answer"
                    );
                    if res.churn_replans > 0 {
                        replanned += 1;
                        // A revocation forced a re-plan: the final
                        // placement was chosen under the shrunken
                        // catalog and must audit clean against it.
                        let shrunk = eng.fork_with_policies(svc.snapshot(svc.head().seq).unwrap());
                        shrunk.audit(&res.physical).unwrap_or_else(|e| {
                            panic!(
                                "round {round} {query} [{label}] revoke p{pid}@{step}: \
                                 churn re-plan landed on a placement the shrunken \
                                 catalog forbids: {e}"
                            )
                        });
                    } else {
                        // Finished under the pinned epoch: Definition-1
                        // clean against the catalog it was admitted on.
                        eng.audit(&res.physical).unwrap_or_else(|e| {
                            panic!(
                                "round {round} {query} [{label}]: completed through a \
                                 non-compliant placement: {e}"
                            )
                        });
                    }
                }
                Err(e) => {
                    refused += 1;
                    if e.kind() == "catalog-stale" {
                        stale_hits += 1;
                    }
                    assert!(
                        matches!(
                            e.kind(),
                            "rejected"
                                | "unavailable"
                                | "deadline"
                                | "cancelled"
                                | "non-compliant"
                                | "catalog-stale"
                                | "churn"
                        ),
                        "round {round} {query} [{label}] revoke p{pid}@{step}: \
                         untyped failure {e}"
                    );
                }
            }
        }
    }
    let mut after = live_threads();
    for _ in 0..50 {
        if after <= before {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
        after = live_threads();
    }
    assert!(
        after <= before + 4,
        "{before} threads before the churn soak, {after} after — fragment workers leaked"
    );
    assert!(
        completed >= 1,
        "the churn soak never completed a single run ({refused} refusals) — schedules too harsh"
    );
    assert!(
        replanned >= 1,
        "no revocation ever caught a query in flight across {completed} completions \
         ({refused} refusals, {stale_hits} stale) — the recovery path was not exercised"
    );
}

/// Replica-crash + bootstrap + grant round: every run revokes the *entire*
/// live policy set (released to in-flight execution at a seeded step) and
/// re-grants it (released at step 0), while a catalog-plane crash wipes a
/// non-coordinator replica that must recover through the floor snapshot —
/// auto-compaction keeps only the newest entries, so recovery cannot
/// replay from seq 0. Invariants per run: a query the revocations refuse
/// under its re-pinned epoch is rescued by the quiesce-free grant retry
/// and still returns the fault-free answer through a placement the head
/// catalog allows; the wiped replica bootstraps with zero chain-
/// verification rejects; failures carry a typed kind; and every fourth
/// run re-executes from identically-seeded state and must reproduce the
/// outcome — rows, re-plan counts, and transfer bytes — exactly.
#[test]
fn replica_crash_bootstrap_and_grant_round_rescues_refused_queries() {
    let n: usize = std::env::var("GEOQP_CHAOS_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let catalog = Arc::new(tpch::paper_catalog(SF));
    tpch::populate(&catalog, SF, 7).unwrap();
    let policies = tpch::generate_policies(&catalog, PolicyTemplate::CRA, 10, 2021).unwrap();
    let eng = Engine::new(
        Arc::clone(&catalog),
        Arc::new(policies.clone()),
        NetworkTopology::paper_wan(),
    );
    let coordinator = eng
        .catalog()
        .locations()
        .iter()
        .next()
        .cloned()
        .expect("the paper catalog has sites");
    let crash_site = SITES
        .iter()
        .map(|s| Location::new(*s))
        .find(|s| *s != coordinator)
        .expect("a non-coordinator site exists");

    let mut rng = 0x626f_6f74_7374_7261u64; // fixed bootstrap-soak seed
    let before = live_threads();
    let (mut completed, mut rescued, mut refused) = (0usize, 0usize, 0usize);
    let (mut wipes, mut bootstraps, mut chain_rejects) = (0u64, 0u64, 0u64);
    let mut determinism_checks = 0usize;
    let mut run_idx = 0u64;
    for round in 0..n {
        let config = RuntimeConfig {
            columnar: round % 2 == 1,
            // Columnar rounds alternate the morsel worker count so the
            // soak crosses every fault schedule with the work-stealing
            // pool engaged (even rounds are row-engine, workers inert).
            workers_per_site: if round % 4 == 1 { 2 } else { 4 },
            ..RuntimeConfig::default()
        };
        for query in QUERIES {
            let plan = tpch::query_by_name(eng.catalog(), query).unwrap();
            let Ok(opt) = eng.optimize(&plan, OptimizerMode::Compliant, None) else {
                continue;
            };
            let baseline = eng.execute_parallel(&opt.physical).unwrap();
            let (spec, fseed, deadline, label) = schedule_spec(&mut rng);
            let revoke_step = run_idx % 6;
            let crash_seed = splitmix(&mut rng);

            // Build the catalog service from identical seeded state: revoke
            // every live policy, re-grant it, keep only the newest entries
            // (so the floor snapshot is the only recovery path), and crash
            // the chosen replica's catalog plane over the first two steps.
            let build_svc = || {
                let svc = CatalogService::new(
                    Arc::clone(eng.catalog()),
                    policies.clone(),
                    coordinator.clone(),
                );
                let live = svc.live_policies();
                let svc = svc.with_auto_compact(live.len() as u64);
                let mut events = Vec::new();
                for (pid, _) in &live {
                    let rev = svc.revoke(*pid).expect("live pid revokes");
                    events.push(ChurnEvent {
                        step: revoke_step,
                        seq: rev.seq,
                        epoch: rev.epoch,
                        revocation: true,
                    });
                }
                for (_, display) in &live {
                    let expr =
                        geoqp::parser::parse_policy(display).expect("live policies re-parse");
                    let grant = svc.grant(expr).expect("re-grant lands");
                    events.push(ChurnEvent {
                        step: 0,
                        seq: grant.seq,
                        epoch: grant.epoch,
                        revocation: false,
                    });
                }
                let svc = svc.with_planned(events).with_faults(
                    FaultPlan::new(crash_seed)
                        .with_crash(crash_site.clone(), StepWindow::new(0, 2)),
                );
                svc.sync_full();
                Arc::new(svc)
            };
            let run = |svc: &Arc<CatalogService>, faults: &FaultPlan| {
                let retry = RetryPolicy::default().with_jitter(0.3, 2021);
                let opts = FailoverOpts {
                    deadline,
                    ..FailoverOpts::new(SITES.len())
                        .with_churn(Arc::clone(svc), CatalogPin::new(0, eng.policies().epoch()))
                };
                eng.execute_resilient_parallel_opts(&opt, faults, &retry, &opts, &config)
            };
            let outcome = |r: &Result<(ResilientResult, RuntimeMetrics)>| match r {
                Ok((res, _)) => {
                    let mut rows: Vec<String> = res.rows.iter().map(|r| format!("{r:?}")).collect();
                    rows.sort();
                    format!(
                        "ok replans={} churn={} retries={} bytes={} rows={rows:?}",
                        res.replans,
                        res.churn_replans,
                        res.grant_retries,
                        res.transfers.total_bytes()
                    )
                }
                Err(e) => format!("err kind={} msg={e}", e.kind()),
            };

            let svc = build_svc();
            let synced = svc.health();
            let faults = FaultPlan::parse(&spec, fseed).expect("spec re-parses");
            let result = run(&svc, &faults);

            // Every fourth run replays from identically-seeded state; the
            // outcome — rows, re-plan counts, transfer bytes — must be
            // byte-identical.
            if run_idx.is_multiple_of(4) {
                let twin_svc = build_svc();
                let twin_faults = FaultPlan::parse(&spec, fseed).expect("spec re-parses");
                let twin = run(&twin_svc, &twin_faults);
                assert_eq!(
                    outcome(&result),
                    outcome(&twin),
                    "round {round} {query} [{label}]: identically-seeded reruns diverged"
                );
                determinism_checks += 1;
            }

            // Heal the catalog plane: step 1 is inside the crash window
            // (the replica wipes), step 2 is past it (the replica must
            // re-bootstrap from the floor snapshot — replay from seq 0 is
            // impossible, compaction truncated the prefix).
            svc.sync_at(1);
            svc.sync_at(2);
            let health = svc.health();
            assert!(
                health.bootstraps > synced.bootstraps,
                "round {round} {query} [{label}]: the crashed replica never \
                 bootstrapped from the floor snapshot"
            );
            wipes += health.wipes;
            bootstraps += health.bootstraps - synced.bootstraps;
            chain_rejects += health.chain_rejects;

            match &result {
                Ok((res, _)) => {
                    completed += 1;
                    let mut got: Vec<String> = res.rows.iter().map(|r| format!("{r:?}")).collect();
                    let mut want: Vec<String> =
                        baseline.rows.iter().map(|r| format!("{r:?}")).collect();
                    got.sort();
                    want.sort();
                    assert_eq!(
                        got, want,
                        "round {round} {query} [{label}] revoke-all@{revoke_step}: \
                         the grant round changed the answer"
                    );
                    if res.churn_replans > 0 {
                        // The revocations emptied the live set, so a churn
                        // re-plan can only have completed through the grant
                        // retry: refused under the revocation pin, rescued
                        // under the head where the re-grants live.
                        assert!(
                            res.grant_retries > 0,
                            "round {round} {query} [{label}]: a re-plan under the \
                             empty revocation pin completed without a grant retry"
                        );
                        rescued += 1;
                        let head = eng.fork_with_policies(svc.snapshot(svc.head().seq).unwrap());
                        head.audit(&res.physical).unwrap_or_else(|e| {
                            panic!(
                                "round {round} {query} [{label}]: a rescued query \
                                 landed on a placement the head catalog forbids: {e}"
                            )
                        });
                    } else {
                        eng.audit(&res.physical).unwrap_or_else(|e| {
                            panic!(
                                "round {round} {query} [{label}]: completed through a \
                                 non-compliant placement: {e}"
                            )
                        });
                    }
                }
                Err(e) => {
                    refused += 1;
                    assert!(
                        matches!(
                            e.kind(),
                            "rejected"
                                | "unavailable"
                                | "deadline"
                                | "cancelled"
                                | "non-compliant"
                                | "catalog-stale"
                                | "churn"
                        ),
                        "round {round} {query} [{label}] revoke-all@{revoke_step}: \
                         untyped failure {e}"
                    );
                }
            }
            run_idx += 1;
        }
    }
    let mut after = live_threads();
    for _ in 0..50 {
        if after <= before {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
        after = live_threads();
    }
    assert!(
        after <= before + 4,
        "{before} threads before the bootstrap soak, {after} after — fragment workers leaked"
    );
    assert!(
        completed >= 1,
        "the bootstrap soak never completed a single run ({refused} refusals) — \
         schedules too harsh"
    );
    assert!(
        rescued >= 1,
        "no refused query was ever rescued by a grant retry across {completed} \
         completions ({refused} refusals) — the recovery path was not exercised"
    );
    assert!(
        wipes >= 1 && bootstraps >= 1,
        "the catalog-plane crash never cost a replica its state \
         ({wipes} wipes, {bootstraps} bootstraps)"
    );
    assert_eq!(
        chain_rejects, 0,
        "a replica accepted state only after failing chain verification {chain_rejects} \
         time(s) — the bootstrap path has a verification bypass"
    );
    assert!(
        determinism_checks >= 1,
        "the duplicate-execution determinism check never ran"
    );
}

#[test]
fn randomized_chaos_schedules_stay_compliant_and_leak_free() {
    let n: usize = std::env::var("GEOQP_CHAOS_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let catalog = Arc::new(tpch::paper_catalog(SF));
    tpch::populate(&catalog, SF, 7).unwrap();
    let policies = tpch::generate_policies(&catalog, PolicyTemplate::CRA, 10, 2021).unwrap();
    let eng = Engine::new(catalog, Arc::new(policies), NetworkTopology::paper_wan());
    let retry = RetryPolicy::default().with_jitter(0.3, 2021);

    let mut rng = 0x6765_6f71_7063_686bu64; // fixed soak seed
    let before = live_threads();
    let (mut completed, mut refused) = (0usize, 0usize);
    for round in 0..n {
        // Odd rounds soak the vectorized columnar path — same schedules,
        // same invariants, different inner loops.
        let config = RuntimeConfig {
            columnar: round % 2 == 1,
            // Columnar rounds alternate the morsel worker count so the
            // soak crosses every fault schedule with the work-stealing
            // pool engaged (even rounds are row-engine, workers inert).
            workers_per_site: if round % 4 == 1 { 2 } else { 4 },
            ..RuntimeConfig::default()
        };
        for query in QUERIES {
            let plan = tpch::query_by_name(eng.catalog(), query).unwrap();
            let Ok(opt) = eng.optimize(&plan, OptimizerMode::Compliant, None) else {
                continue;
            };
            let baseline = eng.execute_parallel(&opt.physical).unwrap();
            let (faults, deadline, label) = schedule(&mut rng);
            let opts = FailoverOpts {
                deadline,
                ..FailoverOpts::new(SITES.len())
            };
            match eng.execute_resilient_parallel_opts(&opt, &faults, &retry, &opts, &config) {
                Ok((res, _metrics)) => {
                    completed += 1;
                    let mut got: Vec<String> = res.rows.iter().map(|r| format!("{r:?}")).collect();
                    let mut want: Vec<String> =
                        baseline.rows.iter().map(|r| format!("{r:?}")).collect();
                    got.sort();
                    want.sort();
                    assert_eq!(
                        got, want,
                        "round {round} {query} [{label}]: chaos changed the answer"
                    );
                    eng.audit(&res.physical).unwrap_or_else(|e| {
                        panic!(
                            "round {round} {query} [{label}]: completed through a \
                             non-compliant placement: {e}"
                        )
                    });
                }
                Err(e) => {
                    refused += 1;
                    assert!(
                        matches!(
                            e.kind(),
                            "rejected" | "unavailable" | "deadline" | "cancelled"
                        ),
                        "round {round} {query} [{label}]: untyped failure {e}"
                    );
                }
            }
        }
    }
    // Workers join on every path; nothing may accumulate across the soak.
    let mut after = live_threads();
    for _ in 0..50 {
        if after <= before {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
        after = live_threads();
    }
    assert!(
        after <= before + 4,
        "{before} threads before the soak, {after} after — fragment workers leaked"
    );
    assert!(
        completed >= 1,
        "the soak never completed a single run ({refused} refusals) — schedules too harsh"
    );
}
