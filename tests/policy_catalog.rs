//! Paper-faithful policy-language tests through the facade: the worked
//! examples of Sections 3–5 and the Table 3 snippet.

use geoqp::parser::parse_policy;
use geoqp::plan::descriptor::describe_local;
use geoqp::prelude::*;
use geoqp::tpch;

fn customer_schema() -> Schema {
    Schema::new(vec![
        Field::new("custkey", DataType::Int64),
        Field::new("name", DataType::Str),
        Field::new("acctbal", DataType::Float64),
        Field::new("mktseg", DataType::Str),
        Field::new("region", DataType::Str),
    ])
    .unwrap()
}

fn scan() -> PlanBuilder {
    PlanBuilder::scan(
        TableRef::bare("customer"),
        Location::new("N"),
        customer_schema(),
    )
}

/// Example 1 (Section 4.1): the two basic expressions over Customer.
#[test]
fn example1_basic_expressions() {
    let schema = customer_schema();
    let mut cat = PolicyCatalog::new();
    for text in [
        "ship custkey, name from Customer C to Asia, Europe",
        "ship mktseg, region from Customer C to Europe where mktseg = 'commercial'",
    ] {
        cat.register(parse_policy(text).unwrap(), &schema).unwrap();
    }
    let universe = LocationSet::from_iter(["N", "Asia", "Europe"]);
    let ev = PolicyEvaluator::new(&cat, &universe);

    // Π_{c,n}(σ_{n LIKE 'A%'}(C)) can be shipped to all locations.
    let q = scan()
        .filter(ScalarExpr::col("name").like("A%"))
        .unwrap()
        .project_columns(&["custkey", "name"])
        .unwrap()
        .build();
    assert_eq!(
        ev.evaluate_with_home(&describe_local(&q).unwrap()),
        universe
    );

    // Adding region without the commercial predicate confines the output
    // to North America.
    let q = scan()
        .filter(ScalarExpr::col("name").like("A%"))
        .unwrap()
        .project_columns(&["custkey", "name", "region"])
        .unwrap()
        .build();
    assert_eq!(
        ev.evaluate_with_home(&describe_local(&q).unwrap()),
        LocationSet::from_iter(["N"])
    );

    // With the commercial predicate the output may only go to Europe.
    let q = scan()
        .filter(
            ScalarExpr::col("name")
                .like("A%")
                .and(ScalarExpr::col("mktseg").eq(ScalarExpr::lit("commercial"))),
        )
        .unwrap()
        .project_columns(&["custkey", "name", "region"])
        .unwrap()
        .build();
    assert_eq!(
        ev.evaluate_with_home(&describe_local(&q).unwrap()),
        LocationSet::from_iter(["N", "Europe"])
    );
}

/// Example 2 (Section 4.2): the aggregate expression over acctbal.
#[test]
fn example2_aggregate_expression() {
    let schema = customer_schema();
    let mut cat = PolicyCatalog::new();
    cat.register(
        parse_policy(
            "ship acctbal as aggregates sum, avg from Customer C to * group by mktseg, region",
        )
        .unwrap(),
        &schema,
    )
    .unwrap();
    let universe = LocationSet::from_iter(["N", "Asia", "Europe"]);
    let ev = PolicyEvaluator::new(&cat, &universe);

    // G_{sum(acctbal)}(C): shippable everywhere.
    let q = scan()
        .aggregate(
            &[],
            vec![AggCall::new(AggFunc::Sum, ScalarExpr::col("acctbal"), "s")],
        )
        .unwrap()
        .build();
    assert_eq!(ev.evaluate(&describe_local(&q).unwrap()), universe);

    // region-grouped AVG: also fine.
    let q = scan()
        .aggregate(
            &["region"],
            vec![AggCall::new(AggFunc::Avg, ScalarExpr::col("acctbal"), "a")],
        )
        .unwrap()
        .build();
    assert_eq!(ev.evaluate(&describe_local(&q).unwrap()), universe);

    // SUM over a name-filtered subset: the filter accesses `name`, which
    // no expression covers — nowhere.
    let q = scan()
        .filter(ScalarExpr::col("name").eq(ScalarExpr::lit("abc")))
        .unwrap()
        .aggregate(
            &[],
            vec![AggCall::new(AggFunc::Sum, ScalarExpr::col("acctbal"), "s")],
        )
        .unwrap()
        .build();
    assert!(ev.evaluate(&describe_local(&q).unwrap()).is_empty());

    // Raw projection of acctbal: nowhere.
    let q = scan().project_columns(&["acctbal"]).unwrap().build();
    assert!(ev.evaluate(&describe_local(&q).unwrap()).is_empty());
}

/// Table 3 snippet: parse → register → display round trip.
#[test]
fn table3_round_trip() {
    let catalog = tpch::paper_catalog(1.0);
    let cat = tpch::table3_policies(&catalog).unwrap();
    assert_eq!(cat.len(), 5);
    for e in cat.expressions() {
        let reparsed = parse_policy(&e.expr.to_string()).unwrap();
        assert_eq!(reparsed, e.expr, "round trip for e{}", e.id + 1);
    }
}

/// Negative-grant hygiene: expressions never grant attributes or rows they
/// do not mention (the conservative disclosure model).
#[test]
fn conservative_disclosure_defaults() {
    let schema = customer_schema();
    let mut cat = PolicyCatalog::new();
    cat.register(
        parse_policy("ship name from customer to Europe").unwrap(),
        &schema,
    )
    .unwrap();
    let universe = LocationSet::from_iter(["N", "Europe"]);
    let ev = PolicyEvaluator::new(&cat, &universe);

    // Unmentioned attribute: no grant.
    let q = scan().project_columns(&["mktseg"]).unwrap().build();
    assert!(ev.evaluate(&describe_local(&q).unwrap()).is_empty());

    // Mentioned attribute joined with unmentioned one: still no grant.
    let q = scan().project_columns(&["name", "mktseg"]).unwrap().build();
    assert!(ev.evaluate(&describe_local(&q).unwrap()).is_empty());

    // Mentioned alone: granted.
    let q = scan().project_columns(&["name"]).unwrap().build();
    assert_eq!(
        ev.evaluate(&describe_local(&q).unwrap()),
        LocationSet::from_iter(["Europe"])
    );
}
