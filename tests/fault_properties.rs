//! Compliance invariants under fault injection, as properties.
//!
//! For every (query, crashed site, seed) case: kill the site and run the
//! query with failover enabled. The engine must either complete —
//! through a placement that passes the independent Definition-1 audit,
//! whose deliveries never touch the dead site and never reach a site
//! outside the annotated plan's execution/shipping traits — or refuse
//! with a *typed* error. No case may produce an untyped failure or a
//! silently non-compliant dataflow.

use geoqp::core::AnnotatedNode;
use geoqp::prelude::*;
use geoqp::tpch;
use geoqp::tpch::policy_gen::PolicyTemplate;
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::{Arc, OnceLock};

const SF: f64 = 0.001;
const QUERIES: [&str; 6] = ["Q2", "Q3", "Q5", "Q8", "Q9", "Q10"];
const SITES: [&str; 5] = ["L1", "L2", "L3", "L4", "L5"];

fn engine() -> &'static Engine {
    static ENGINE: OnceLock<Engine> = OnceLock::new();
    ENGINE.get_or_init(|| {
        let catalog = Arc::new(tpch::paper_catalog(SF));
        tpch::populate(&catalog, SF, 7).unwrap();
        let policies = tpch::generate_policies(&catalog, PolicyTemplate::CRA, 10, 2021).unwrap();
        Engine::new(catalog, Arc::new(policies), NetworkTopology::paper_wan())
    })
}

/// Every site any intermediate may legally occupy: the union of the
/// execution and shipping traits over the whole annotated plan.
fn legal_sites(node: &AnnotatedNode, into: &mut BTreeSet<Location>) {
    into.extend(node.exec.iter().cloned());
    into.extend(node.ship.iter().cloned());
    for child in &node.children {
        legal_sites(child, into);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn killing_any_single_site_is_compliant_or_typed(
        qi in 0usize..6,
        si in 0usize..5,
        seed in 0u64..1_000_000,
    ) {
        let eng = engine();
        let query = QUERIES[qi];
        let dead = Location::new(SITES[si]);
        let plan = tpch::query_by_name(eng.catalog(), query).unwrap();
        // A query rejected before any fault is vacuously fine. (The
        // offline proptest stand-in runs cases in a plain loop, so use
        // `if let`, not an early `return`, to skip a case.)
        if let Ok(opt) = eng.optimize(&plan, OptimizerMode::Compliant, None) {
        let mut legal = BTreeSet::new();
        legal_sites(&opt.annotated, &mut legal);

        let faults = FaultPlan::new(seed).with_crash(dead.clone(), StepWindow::ALWAYS);
        match eng.execute_resilient(&opt, &faults, &RetryPolicy::default(), 5) {
            Ok(res) => {
                // The placement that answered is compliance-verified…
                eng.audit(&res.physical).expect("final placement must audit clean");
                for t in res.transfers.records() {
                    // …its deliveries never touch the corpse…
                    prop_assert!(
                        t.from != dead && t.to != dead,
                        "{query}: delivery {}→{} touched crashed {dead}",
                        t.from, t.to
                    );
                    // …and intermediates never land outside the traits
                    // the annotator derived from the policies.
                    prop_assert!(
                        legal.contains(&t.to),
                        "{query}: delivery into {} which is outside every \
                         execution/shipping trait of the plan", t.to
                    );
                    prop_assert!(
                        legal.contains(&t.from),
                        "{query}: delivery out of {} which is outside every \
                         execution/shipping trait of the plan", t.from
                    );
                }
            }
            Err(e) => {
                prop_assert!(
                    matches!(e.kind(), "rejected" | "unavailable"),
                    "{query} under crash of {dead}: untyped failure {e}"
                );
            }
        }
        }
    }

    /// Flaky links and bounded outages (transient by construction) never
    /// change the answer: retries and failover are semantically
    /// invisible; only availability errors may escape.
    #[test]
    fn transient_chaos_never_corrupts_answers(
        qi in 0usize..6,
        seed in 0u64..1_000_000,
        prob in 0.0f64..0.6,
    ) {
        let eng = engine();
        let query = QUERIES[qi];
        let plan = tpch::query_by_name(eng.catalog(), query).unwrap();
        if let Ok(opt) = eng.optimize(&plan, OptimizerMode::Compliant, None) {
        let baseline = eng.execute(&opt.physical).unwrap();
        let spec = format!(
            "flaky:L1-L4:{prob}; flaky:L2-L5:{prob}; crash:L3@1..3; delay:L1-L2:40ms"
        );
        let faults = FaultPlan::parse(&spec, seed).unwrap();
        match eng.execute_resilient(&opt, &faults, &RetryPolicy::default(), 5) {
            Ok(res) => prop_assert_eq!(&res.rows, &baseline.rows),
            Err(e) => prop_assert!(
                matches!(e.kind(), "rejected" | "unavailable"),
                "untyped failure under transient chaos: {e}"
            ),
        }
        }
    }
}
