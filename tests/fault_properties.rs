//! Compliance invariants under fault injection, as properties.
//!
//! For every (query, crashed site, seed) case: kill the site and run the
//! query with failover enabled. The engine must either complete —
//! through a placement that passes the independent Definition-1 audit,
//! whose deliveries never touch the dead site and never reach a site
//! outside the annotated plan's execution/shipping traits — or refuse
//! with a *typed* error. No case may produce an untyped failure or a
//! silently non-compliant dataflow.

use geoqp::core::AnnotatedNode;
use geoqp::prelude::*;
use geoqp::tpch;
use geoqp::tpch::policy_gen::PolicyTemplate;
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::{Arc, OnceLock};

const SF: f64 = 0.001;
const QUERIES: [&str; 6] = ["Q2", "Q3", "Q5", "Q8", "Q9", "Q10"];
const SITES: [&str; 5] = ["L1", "L2", "L3", "L4", "L5"];
/// Links the gray-failure properties degrade: the busiest wires of the
/// paper WAN under the CR+A policy set.
const GRAY_LINKS: [(&str, &str); 3] = [("L2", "L3"), ("L1", "L4"), ("L4", "L3")];

fn engine() -> &'static Engine {
    static ENGINE: OnceLock<Engine> = OnceLock::new();
    ENGINE.get_or_init(|| {
        let catalog = Arc::new(tpch::paper_catalog(SF));
        tpch::populate(&catalog, SF, 7).unwrap();
        let policies = tpch::generate_policies(&catalog, PolicyTemplate::CRA, 10, 2021).unwrap();
        Engine::new(catalog, Arc::new(policies), NetworkTopology::paper_wan())
    })
}

/// Every site any intermediate may legally occupy: the union of the
/// execution and shipping traits over the whole annotated plan.
fn legal_sites(node: &AnnotatedNode, into: &mut BTreeSet<Location>) {
    into.extend(node.exec.iter().cloned());
    into.extend(node.ship.iter().cloned());
    for child in &node.children {
        legal_sites(child, into);
    }
}

/// Live threads in this process, from `/proc/self/status`.
fn live_threads() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|n| n.parse().ok())
        })
        .unwrap_or(1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn killing_any_single_site_is_compliant_or_typed(
        qi in 0usize..6,
        si in 0usize..5,
        seed in 0u64..1_000_000,
    ) {
        let eng = engine();
        let query = QUERIES[qi];
        let dead = Location::new(SITES[si]);
        let plan = tpch::query_by_name(eng.catalog(), query).unwrap();
        // A query rejected before any fault is vacuously fine. (The
        // offline proptest stand-in runs cases in a plain loop, so use
        // `if let`, not an early `return`, to skip a case.)
        if let Ok(opt) = eng.optimize(&plan, OptimizerMode::Compliant, None) {
        let mut legal = BTreeSet::new();
        legal_sites(&opt.annotated, &mut legal);

        let faults = FaultPlan::new(seed).with_crash(dead.clone(), StepWindow::ALWAYS);
        match eng.execute_resilient(&opt, &faults, &RetryPolicy::default(), 5) {
            Ok(res) => {
                // The placement that answered is compliance-verified…
                eng.audit(&res.physical).expect("final placement must audit clean");
                for t in res.transfers.records() {
                    // …its deliveries never touch the corpse…
                    prop_assert!(
                        t.from != dead && t.to != dead,
                        "{query}: delivery {}→{} touched crashed {dead}",
                        t.from, t.to
                    );
                    // …and intermediates never land outside the traits
                    // the annotator derived from the policies.
                    prop_assert!(
                        legal.contains(&t.to),
                        "{query}: delivery into {} which is outside every \
                         execution/shipping trait of the plan", t.to
                    );
                    prop_assert!(
                        legal.contains(&t.from),
                        "{query}: delivery out of {} which is outside every \
                         execution/shipping trait of the plan", t.from
                    );
                }
            }
            Err(e) => {
                prop_assert!(
                    matches!(e.kind(), "rejected" | "unavailable"),
                    "{query} under crash of {dead}: untyped failure {e}"
                );
            }
        }
        }
    }

    /// Checkpoint legality: whatever crashes, however the failover goes,
    /// no retained intermediate is ever homed at a site outside the
    /// producing operator's shipping trait 𝒮ₙ — on either engine. The
    /// store enforces this at `put` time with a typed error, so a single
    /// illegal checkpoint would surface as a failed run, and the
    /// post-hoc sweep below re-checks every survivor independently.
    #[test]
    fn checkpoints_are_only_homed_inside_shipping_traits(
        qi in 0usize..6,
        si in 0usize..5,
        seed in 0u64..1_000_000,
    ) {
        let eng = engine();
        let query = QUERIES[qi];
        let dead = Location::new(SITES[si]);
        let plan = tpch::query_by_name(eng.catalog(), query).unwrap();
        if let Ok(opt) = eng.optimize(&plan, OptimizerMode::Compliant, None) {
        // Crash onset varies with the seed so checkpoints are taken at
        // every stage of the run, not only before an early failure.
        let onset = seed % 8;
        let opts = FailoverOpts::new(5);
        let retry = RetryPolicy::default();
        for parallel in [false, true] {
            let faults = FaultPlan::new(seed)
                .with_crash(dead.clone(), StepWindow::new(onset, u64::MAX));
            let store = CheckpointStore::new();
            let outcome = if parallel {
                eng.execute_resilient_parallel_store(
                    &opt, &faults, &retry, &opts, &RuntimeConfig::default(), &store,
                ).map(|_| ())
            } else {
                eng.execute_resilient_store(&opt, &faults, &retry, &opts, &store)
                    .map(|_| ())
            };
            if let Err(e) = outcome {
                prop_assert!(
                    matches!(e.kind(), "rejected" | "unavailable"),
                    "{query} (parallel={parallel}): untyped failure {e}"
                );
            }
            for cp in store.snapshot() {
                prop_assert!(
                    cp.legal.contains(&cp.home),
                    "{query} (parallel={parallel}): checkpoint {:016x} homed at {} \
                     outside its shipping trait {}",
                    cp.fingerprint, cp.home, cp.legal
                );
            }
        }
        }
    }

    /// Cooperative unwinding: a deadline or a pre-fired cancellation
    /// must join every fragment worker (no thread leak) and leave no
    /// exchange channel poisoned — the very next run of the same query
    /// on the same engine succeeds with the fault-free answer.
    #[test]
    fn cancellation_joins_workers_and_poisons_nothing(
        qi in 0usize..6,
        budget in 0.0f64..80.0,
        seed in 0u64..1_000_000,
    ) {
        let eng = engine();
        let query = QUERIES[qi];
        let plan = tpch::query_by_name(eng.catalog(), query).unwrap();
        if let Ok(opt) = eng.optimize(&plan, OptimizerMode::Compliant, None) {
        let baseline = eng.execute_parallel(&opt.physical).unwrap();
        let fire_cancel = seed & 1 == 1;
        let cancel = CancelToken::new();
        if fire_cancel {
            cancel.cancel();
        }
        let opts = FailoverOpts {
            deadline: Some(QueryDeadline::new(budget)),
            cancel: Some(cancel),
            ..FailoverOpts::new(5)
        };
        let before = live_threads();
        let run = eng.execute_resilient_parallel_opts(
            &opt,
            &FaultPlan::new(seed),
            &RetryPolicy::default(),
            &opts,
            &RuntimeConfig::default(),
        );
        match run {
            Ok(_) => prop_assert!(!fire_cancel, "{query}: a fired token must cancel"),
            Err(e) => prop_assert!(
                matches!(e.kind(), "deadline" | "cancelled"),
                "{query}: fault-free unwind must be a typed deadline/cancel, got {e}"
            ),
        }
        // Fragment workers join on every path, success or unwind. Other
        // tests in this binary run concurrently, so give stray *foreign*
        // threads a moment; a worker leak here would never drain.
        let mut after = live_threads();
        for _ in 0..50 {
            if after <= before {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
            after = live_threads();
        }
        prop_assert!(
            after <= before + 4,
            "{query}: {} threads before, {after} after — fragment workers leaked",
            before
        );
        // Nothing is poisoned: the same engine answers immediately.
        let again = eng.execute_parallel(&opt.physical).unwrap();
        prop_assert_eq!(&again.rows, &baseline.rows);
        }
    }

    /// The same cooperative-unwinding contract with morsel workers: a
    /// deadline or pre-fired cancellation landing *mid-morsel* — small
    /// morsels, 4 workers per site — must join every fragment worker
    /// and every pool thread, leave no exchange channel or deque
    /// poisoned, and keep the engine answering the fault-free result.
    #[test]
    fn cancellation_mid_morsel_joins_pool_workers(
        qi in 0usize..6,
        budget in 0.0f64..80.0,
        seed in 0u64..1_000_000,
    ) {
        let eng = engine();
        let query = QUERIES[qi];
        let plan = tpch::query_by_name(eng.catalog(), query).unwrap();
        if let Ok(opt) = eng.optimize(&plan, OptimizerMode::Compliant, None) {
        let config = RuntimeConfig {
            columnar: true,
            workers_per_site: 4,
            morsel_rows: 64,
            ..RuntimeConfig::default()
        };
        let baseline = eng
            .execute_parallel_opts(&opt.physical, None, &RetryPolicy::none(), &config)
            .unwrap();
        let fire_cancel = seed & 1 == 1;
        let cancel = CancelToken::new();
        if fire_cancel {
            cancel.cancel();
        }
        let opts = FailoverOpts {
            deadline: Some(QueryDeadline::new(budget)),
            cancel: Some(cancel),
            columnar: true,
            workers_per_site: 4,
            ..FailoverOpts::new(5)
        };
        let before = live_threads();
        let run = eng.execute_resilient_parallel_opts(
            &opt,
            &FaultPlan::new(seed),
            &RetryPolicy::default(),
            &opts,
            &config,
        );
        match run {
            Ok(_) => prop_assert!(!fire_cancel, "{query}: a fired token must cancel"),
            Err(e) => prop_assert!(
                matches!(e.kind(), "deadline" | "cancelled"),
                "{query}: mid-morsel unwind must be a typed deadline/cancel, got {e}"
            ),
        }
        // Fragment workers *and* morsel pool threads join on every
        // path; a leaked pool worker would never drain.
        let mut after = live_threads();
        for _ in 0..50 {
            if after <= before {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
            after = live_threads();
        }
        prop_assert!(
            after <= before + 4,
            "{query}: {} threads before, {after} after — morsel pool workers leaked",
            before
        );
        // Nothing is poisoned, and worker invariance still holds: the
        // same engine immediately reproduces the 4-worker baseline.
        let again = eng
            .execute_parallel_opts(&opt.physical, None, &RetryPolicy::none(), &config)
            .unwrap();
        prop_assert_eq!(&again.rows, &baseline.rows);
        prop_assert_eq!(&again.transfers, &baseline.transfers);
        }
    }

    /// Flaky links and bounded outages (transient by construction) never
    /// change the answer: retries and failover are semantically
    /// invisible; only availability errors may escape.
    #[test]
    fn transient_chaos_never_corrupts_answers(
        qi in 0usize..6,
        seed in 0u64..1_000_000,
        prob in 0.0f64..0.6,
    ) {
        let eng = engine();
        let query = QUERIES[qi];
        let plan = tpch::query_by_name(eng.catalog(), query).unwrap();
        if let Ok(opt) = eng.optimize(&plan, OptimizerMode::Compliant, None) {
        let baseline = eng.execute(&opt.physical).unwrap();
        let spec = format!(
            "flaky:L1-L4:{prob}; flaky:L2-L5:{prob}; crash:L3@1..3; delay:L1-L2:40ms"
        );
        let faults = FaultPlan::parse(&spec, seed).unwrap();
        match eng.execute_resilient(&opt, &faults, &RetryPolicy::default(), 5) {
            Ok(res) => prop_assert_eq!(&res.rows, &baseline.rows),
            Err(e) => prop_assert!(
                matches!(e.kind(), "rejected" | "unavailable"),
                "untyped failure under transient chaos: {e}"
            ),
        }
        }
    }

    /// Hedged backups never leave the annotated plan's traits: every
    /// relay a backup routed through ([`geoqp::core::RelayEvent`]) is a
    /// site some operator's shipping trait admits, and every delivered
    /// byte — primary, duplicate, or relay hop — stays inside the legal
    /// site set. An illegal relay must surface as a typed refusal, never
    /// as a transfer.
    #[test]
    fn hedged_relays_stay_inside_shipping_traits(
        qi in 0usize..6,
        li in 0usize..3,
        seed in 0u64..1_000_000,
        factor in 2.0f64..8.0,
        loss in 0.0f64..0.2,
    ) {
        let eng = engine();
        let query = QUERIES[qi];
        let (from, to) = GRAY_LINKS[li];
        let plan = tpch::query_by_name(eng.catalog(), query).unwrap();
        if let Ok(opt) = eng.optimize(&plan, OptimizerMode::Compliant, None) {
        let mut legal = BTreeSet::new();
        legal_sites(&opt.annotated, &mut legal);
        let faults = FaultPlan::new(seed)
            .with_degrade(from, to, factor, StepWindow::ALWAYS)
            .with_loss_burst(from, to, loss, StepWindow::ALWAYS);
        let opts = FailoverOpts::new(5).with_hedge(HedgeConfig::default());
        match eng.execute_resilient_parallel_opts(
            &opt, &faults, &RetryPolicy::default(), &opts, &RuntimeConfig::default(),
        ) {
            Ok((res, _)) => {
                eng.audit(&res.physical).expect("final placement must audit clean");
                for relay in &res.relay_events {
                    prop_assert!(
                        legal.contains(&relay.via),
                        "{query}: hedged backup for {}→{} relayed via {}, a site \
                         outside every shipping trait of the plan",
                        relay.from, relay.to, relay.via
                    );
                }
                for t in res.transfers.records() {
                    prop_assert!(
                        legal.contains(&t.from) && legal.contains(&t.to),
                        "{query}: delivery {}→{} outside the legal site set",
                        t.from, t.to
                    );
                }
            }
            Err(e) => prop_assert!(
                matches!(e.kind(), "rejected" | "unavailable"),
                "{query} under gray {from}-{to}: untyped failure {e}"
            ),
        }
        }
    }

    /// The whole gray-failure defense is a pure function of (plan, fault
    /// seed): re-running the same hedged execution reproduces the health
    /// table fold, the breaker trips, every hedge outcome, and the
    /// simulated completion time bit-for-bit.
    #[test]
    fn breaker_and_hedge_state_replay_identically(
        qi in 0usize..6,
        li in 0usize..3,
        seed in 0u64..1_000_000,
        factor in 1.0f64..8.0,
        loss in 0.0f64..0.2,
    ) {
        let eng = engine();
        let query = QUERIES[qi];
        let (from, to) = GRAY_LINKS[li];
        let plan = tpch::query_by_name(eng.catalog(), query).unwrap();
        if let Ok(opt) = eng.optimize(&plan, OptimizerMode::Compliant, None) {
        let run = || {
            let faults = FaultPlan::new(seed)
                .with_degrade(from, to, factor, StepWindow::ALWAYS)
                .with_loss_burst(from, to, loss, StepWindow::ALWAYS);
            let opts = FailoverOpts::new(5).with_hedge(HedgeConfig::default());
            eng.execute_resilient_parallel_opts(
                &opt, &faults, &RetryPolicy::default(), &opts, &RuntimeConfig::default(),
            )
        };
        match (run(), run()) {
            (Ok((a, am)), Ok((b, bm))) => {
                prop_assert_eq!(a.link_health, b.link_health,
                    "{} health table fold diverged across identical replays", query);
                prop_assert_eq!(a.relay_events, b.relay_events);
                prop_assert_eq!(
                    (a.hedges_launched, a.hedges_won, a.breaker_trips, &a.avoided_links),
                    (b.hedges_launched, b.hedges_won, b.breaker_trips, &b.avoided_links)
                );
                prop_assert_eq!(am.completion_ms, bm.completion_ms);
            }
            (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
            (a, b) => prop_assert!(
                false,
                "{query}: one replay completed and the other failed \
                 ({} vs {})",
                a.map(|_| "ok").unwrap_or_else(|e| e.kind()),
                b.map(|_| "ok").unwrap_or_else(|e| e.kind())
            ),
        }
        }
    }

    /// Hedging is semantically invisible: under the same gray link, the
    /// hedged and unhedged runs return the same row multiset — backups
    /// buy latency, never different answers.
    #[test]
    fn hedging_never_changes_the_answer(
        qi in 0usize..6,
        li in 0usize..3,
        seed in 0u64..1_000_000,
        factor in 1.0f64..8.0,
        loss in 0.0f64..0.15,
    ) {
        let eng = engine();
        let query = QUERIES[qi];
        let (from, to) = GRAY_LINKS[li];
        let plan = tpch::query_by_name(eng.catalog(), query).unwrap();
        if let Ok(opt) = eng.optimize(&plan, OptimizerMode::Compliant, None) {
        let run = |hedge: bool| {
            let faults = FaultPlan::new(seed)
                .with_degrade(from, to, factor, StepWindow::ALWAYS)
                .with_loss_burst(from, to, loss, StepWindow::ALWAYS);
            let opts = if hedge {
                FailoverOpts::new(5).with_hedge(HedgeConfig::default())
            } else {
                FailoverOpts::new(5)
            };
            eng.execute_resilient_parallel_opts(
                &opt, &faults, &RetryPolicy::default(), &opts, &RuntimeConfig::default(),
            )
        };
        match (run(false), run(true)) {
            (Ok((plain, _)), Ok((hedged, _))) => {
                let sort = |rows: &Rows| {
                    let mut v: Vec<Vec<Value>> = rows.rows().to_vec();
                    v.sort_by(|a, b| {
                        a.iter()
                            .zip(b.iter())
                            .map(|(x, y)| x.total_cmp(y))
                            .find(|o| *o != std::cmp::Ordering::Equal)
                            .unwrap_or(std::cmp::Ordering::Equal)
                    });
                    v
                };
                prop_assert_eq!(
                    sort(&plain.rows), sort(&hedged.rows),
                    "{} hedging changed the answer", query
                );
            }
            // Either arm may exhaust retries under heavy loss — a typed
            // availability failure, already covered above. Only matching
            // success is comparable.
            (a, b) => {
                for outcome in [a.err(), b.err()].into_iter().flatten() {
                    prop_assert!(
                        matches!(outcome.kind(), "rejected" | "unavailable"),
                        "{query}: untyped failure {outcome}"
                    );
                }
            }
        }
        }
    }
}
