//! The geo-distributed catalog: locations, databases, tables, statistics.

use crate::stats::TableStats;
use crate::table::Table;
use geoqp_common::{GeoError, Location, LocationSet, Result, Schema, TableRef};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One table registered in a site database. Schema and stats are fixed at
/// registration; row data may be attached later (behind a lock so that a
/// shared catalog can be populated after distribution to the engine).
#[derive(Debug)]
pub struct TableEntry {
    /// Fully qualified reference (`db.table`).
    pub table: TableRef,
    /// Hosting location.
    pub location: Location,
    /// The table schema.
    pub schema: Arc<Schema>,
    /// Optimizer statistics.
    pub stats: TableStats,
    data: RwLock<Option<Arc<Table>>>,
}

impl TableEntry {
    /// The materialized data, if attached.
    pub fn data(&self) -> Option<Arc<Table>> {
        self.data.read().clone()
    }

    /// Attach materialized rows, validating the schema matches.
    pub fn set_data(&self, table: Table) -> Result<()> {
        if table.schema().as_ref() != self.schema.as_ref() {
            return Err(GeoError::Storage(format!(
                "data schema {} does not match registered schema {} for {}",
                table.schema(),
                self.schema,
                self.table
            )));
        }
        *self.data.write() = Some(Arc::new(table));
        Ok(())
    }
}

/// One site database: a name, a location, and its tables.
#[derive(Debug)]
pub struct DatabaseEntry {
    /// Database name (`db-1`).
    pub name: String,
    /// Site hosting the database.
    pub location: Location,
    tables: BTreeMap<String, Arc<TableEntry>>,
}

impl DatabaseEntry {
    /// Tables of this database, in name order.
    pub fn tables(&self) -> impl Iterator<Item = &Arc<TableEntry>> {
        self.tables.values()
    }

    /// Look up a table by bare name.
    pub fn table(&self, name: &str) -> Option<&Arc<TableEntry>> {
        self.tables.get(&name.to_ascii_lowercase())
    }
}

/// The deployment-wide catalog: the universe of locations, each location's
/// database, and the global-schema resolution from bare table names to the
/// site tables implementing them.
#[derive(Debug, Default)]
pub struct Catalog {
    locations: LocationSet,
    databases: BTreeMap<String, DatabaseEntry>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register a location without a database (e.g. a pure compute site or
    /// a policy `to`-target that stores no data).
    pub fn add_location(&mut self, location: Location) {
        self.locations.insert(location);
    }

    /// Register a database at a location. The paper assumes one database
    /// per location; this is enforced here.
    pub fn add_database(&mut self, name: impl Into<String>, location: Location) -> Result<()> {
        let name = name.into().to_ascii_lowercase();
        if self.databases.contains_key(&name) {
            return Err(GeoError::Storage(format!(
                "database `{name}` already exists"
            )));
        }
        if self.databases.values().any(|d| d.location == location) {
            return Err(GeoError::Storage(format!(
                "location `{location}` already houses a database"
            )));
        }
        self.locations.insert(location.clone());
        self.databases.insert(
            name.clone(),
            DatabaseEntry {
                name,
                location,
                tables: BTreeMap::new(),
            },
        );
        Ok(())
    }

    /// Register a table in a database.
    pub fn add_table(
        &mut self,
        database: &str,
        table: impl AsRef<str>,
        schema: Schema,
        stats: TableStats,
    ) -> Result<Arc<TableEntry>> {
        let db_name = database.to_ascii_lowercase();
        let db = self
            .databases
            .get_mut(&db_name)
            .ok_or_else(|| GeoError::Storage(format!("unknown database `{database}`")))?;
        let tname = table.as_ref().to_ascii_lowercase();
        if db.tables.contains_key(&tname) {
            return Err(GeoError::Storage(format!(
                "table `{tname}` already exists in `{db_name}`"
            )));
        }
        let entry = Arc::new(TableEntry {
            table: TableRef::qualified(&db_name, &tname),
            location: db.location.clone(),
            schema: Arc::new(schema),
            stats,
            data: RwLock::new(None),
        });
        db.tables.insert(tname, Arc::clone(&entry));
        Ok(entry)
    }

    /// The universe of locations (policy `to *` resolves against this).
    pub fn locations(&self) -> &LocationSet {
        &self.locations
    }

    /// All databases, in name order.
    pub fn databases(&self) -> impl Iterator<Item = &DatabaseEntry> {
        self.databases.values()
    }

    /// Look up a database by name.
    pub fn database(&self, name: &str) -> Option<&DatabaseEntry> {
        self.databases.get(&name.to_ascii_lowercase())
    }

    /// The database at a location, if any.
    pub fn database_at(&self, location: &Location) -> Option<&DatabaseEntry> {
        self.databases.values().find(|d| d.location == *location)
    }

    /// Resolve a table reference against the global schema. A qualified
    /// reference matches at most one table; a bare reference matches every
    /// site partition of the name (Section 7.5's distributed tables).
    pub fn resolve(&self, table: &TableRef) -> Vec<Arc<TableEntry>> {
        match &table.database {
            Some(db) => self
                .database(db)
                .and_then(|d| d.table(&table.table))
                .into_iter()
                .cloned()
                .collect(),
            None => self
                .databases
                .values()
                .filter_map(|d| d.table(&table.table))
                .cloned()
                .collect(),
        }
    }

    /// Resolve expecting exactly one match.
    pub fn resolve_one(&self, table: &TableRef) -> Result<Arc<TableEntry>> {
        let mut found = self.resolve(table);
        match found.len() {
            0 => Err(GeoError::Storage(format!("unknown table `{table}`"))),
            1 => Ok(found.pop().unwrap()),
            n => Err(GeoError::Storage(format!(
                "ambiguous table `{table}`: {n} site partitions; qualify with a database"
            ))),
        }
    }

    /// Total number of registered tables.
    pub fn table_count(&self) -> usize {
        self.databases.values().map(|d| d.tables.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoqp_common::{DataType, Field, Value};

    fn schema() -> Schema {
        Schema::new(vec![Field::new("id", DataType::Int64)]).unwrap()
    }

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_database("db-1", Location::new("L1")).unwrap();
        c.add_database("db-2", Location::new("L2")).unwrap();
        c.add_table("db-1", "customer", schema(), TableStats::new(100, 8.0))
            .unwrap();
        c.add_table("db-1", "orders", schema(), TableStats::new(1000, 8.0))
            .unwrap();
        c.add_table("db-2", "customer", schema(), TableStats::new(50, 8.0))
            .unwrap();
        c
    }

    #[test]
    fn one_database_per_location() {
        let mut c = catalog();
        assert!(c.add_database("db-3", Location::new("L1")).is_err());
        assert!(c.add_database("db-1", Location::new("L9")).is_err());
    }

    #[test]
    fn qualified_resolution_is_unique() {
        let c = catalog();
        let t = c
            .resolve_one(&TableRef::qualified("db-1", "customer"))
            .unwrap();
        assert_eq!(t.location, Location::new("L1"));
    }

    #[test]
    fn bare_resolution_finds_partitions() {
        let c = catalog();
        let parts = c.resolve(&TableRef::bare("customer"));
        assert_eq!(parts.len(), 2);
        assert!(c.resolve_one(&TableRef::bare("customer")).is_err());
        assert_eq!(c.resolve(&TableRef::bare("orders")).len(), 1);
        assert!(c.resolve(&TableRef::bare("ghost")).is_empty());
    }

    #[test]
    fn data_attachment_checks_schema() {
        let c = catalog();
        let entry = c
            .resolve_one(&TableRef::qualified("db-1", "orders"))
            .unwrap();
        assert!(entry.data().is_none());
        let t = Table::new(Arc::clone(&entry.schema), vec![vec![Value::Int64(1)]]).unwrap();
        entry.set_data(t).unwrap();
        assert_eq!(entry.data().unwrap().row_count(), 1);

        let wrong = Table::empty(Arc::new(
            Schema::new(vec![Field::new("x", DataType::Str)]).unwrap(),
        ));
        assert!(entry.set_data(wrong).is_err());
    }

    #[test]
    fn locations_universe_includes_extra_sites() {
        let mut c = catalog();
        c.add_location(Location::new("compute-only"));
        assert_eq!(c.locations().len(), 3);
        assert!(c.database_at(&Location::new("compute-only")).is_none());
        assert!(c.database_at(&Location::new("L1")).is_some());
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut c = catalog();
        assert!(c
            .add_table("db-1", "customer", schema(), TableStats::default())
            .is_err());
        assert!(c
            .add_table("nope", "t", schema(), TableStats::default())
            .is_err());
        assert_eq!(c.table_count(), 3);
    }
}
