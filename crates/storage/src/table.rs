//! Row-oriented in-memory tables with a lazily-built columnar mirror.

use geoqp_common::{ColumnarBatch, GeoError, Result, Row, Rows, Schema};
use std::sync::{Arc, OnceLock};

/// A materialized table: a schema and its rows, plus a lazily-built,
/// shared columnar form so repeated columnar scans are zero-copy `Arc`
/// clones instead of per-scan row copies.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Arc<Schema>,
    rows: Vec<Row>,
    columnar: OnceLock<Arc<ColumnarBatch>>,
}

impl Table {
    /// Create an empty table.
    pub fn empty(schema: Arc<Schema>) -> Table {
        Table {
            schema,
            rows: Vec::new(),
            columnar: OnceLock::new(),
        }
    }

    /// Create a table from rows, validating arity against the schema.
    pub fn new(schema: Arc<Schema>, rows: Vec<Row>) -> Result<Table> {
        for (i, r) in rows.iter().enumerate() {
            if r.len() != schema.len() {
                return Err(GeoError::Storage(format!(
                    "row {i} has {} values, schema has {} columns",
                    r.len(),
                    schema.len()
                )));
            }
        }
        Ok(Table {
            schema,
            rows,
            columnar: OnceLock::new(),
        })
    }

    /// The table's schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Borrow the rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Append a row, validating arity.
    pub fn push(&mut self, row: Row) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(GeoError::Storage(format!(
                "row has {} values, schema has {} columns",
                row.len(),
                self.schema.len()
            )));
        }
        self.rows.push(row);
        // The cached columnar mirror (if built) no longer matches.
        self.columnar = OnceLock::new();
        Ok(())
    }

    /// Copy all rows into a batch.
    pub fn to_rows(&self) -> Rows {
        Rows::from_rows(self.rows.clone())
    }

    /// The columnar mirror of this table, built once on first use and
    /// shared thereafter: every subsequent call is an `Arc` clone.
    pub fn to_columnar(&self) -> Arc<ColumnarBatch> {
        Arc::clone(
            self.columnar
                .get_or_init(|| Arc::new(ColumnarBatch::from_rows(&self.rows, self.schema.len()))),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoqp_common::{DataType, Field, Value};

    fn schema() -> Arc<Schema> {
        Arc::new(
            Schema::new(vec![
                Field::new("id", DataType::Int64),
                Field::new("name", DataType::Str),
            ])
            .unwrap(),
        )
    }

    #[test]
    fn arity_is_enforced() {
        let err = Table::new(schema(), vec![vec![Value::Int64(1)]]).unwrap_err();
        assert_eq!(err.kind(), "storage");
        let mut t = Table::empty(schema());
        assert!(t.push(vec![Value::Int64(1), Value::str("x")]).is_ok());
        assert!(t.push(vec![Value::Int64(1)]).is_err());
        assert_eq!(t.row_count(), 1);
    }

    #[test]
    fn to_rows_copies_data() {
        let t = Table::new(schema(), vec![vec![Value::Int64(7), Value::str("seven")]]).unwrap();
        let rows = t.to_rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows.rows()[0][1], Value::str("seven"));
    }

    #[test]
    fn columnar_mirror_is_cached_and_invalidated_on_push() {
        let mut t = Table::new(schema(), vec![vec![Value::Int64(7), Value::str("seven")]]).unwrap();
        let a = t.to_columnar();
        let b = t.to_columnar();
        assert!(Arc::ptr_eq(&a, &b), "second call must reuse the cache");
        assert_eq!(a.to_rows(), t.to_rows());
        t.push(vec![Value::Int64(8), Value::str("eight")]).unwrap();
        let c = t.to_columnar();
        assert!(!Arc::ptr_eq(&a, &c), "push must invalidate the cache");
        assert_eq!(c.to_rows(), t.to_rows());
    }
}
