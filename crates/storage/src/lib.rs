//! # geoqp-storage
//!
//! In-memory storage and catalogs for the geo-distributed deployment model
//! of the paper's Section 3: a set of locations, one database per location,
//! each database holding row-oriented tables behind a site gateway.
//!
//! The [`Catalog`] doubles as the *global schema* (the union of all local
//! schemas, mapped GAV-style): a bare table name resolves to the site(s)
//! hosting it — several sites when a table is partitioned across locations
//! as in the paper's Section 7.5 experiment.
//!
//! Tables can be registered metadata-only (schema plus [`TableStats`]) for
//! optimization experiments, with row data attached later for execution.

pub mod catalog;
pub mod stats;
pub mod table;

pub use catalog::{Catalog, DatabaseEntry, TableEntry};
pub use stats::TableStats;
pub use table::Table;
