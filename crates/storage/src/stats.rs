//! Table statistics for cost estimation.

use std::collections::BTreeMap;

/// Optimizer-facing statistics for one table.
///
/// Phase 1 of the two-phase optimizer costs plans from input cardinalities
/// alone (paper Section 6: "cost functions are based on input
/// cardinalities"); phase 2 additionally needs byte widths to price SHIP
/// operators under the `α + β·b` message cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    /// Estimated (or exact) row count.
    pub row_count: u64,
    /// Average serialized row width in bytes.
    pub avg_row_bytes: f64,
    /// Number of distinct values per column, where known. Drives equi-join
    /// and equality-predicate selectivity estimates.
    pub ndv: BTreeMap<String, u64>,
}

impl TableStats {
    /// Stats with a row count and width, no per-column detail.
    pub fn new(row_count: u64, avg_row_bytes: f64) -> TableStats {
        TableStats {
            row_count,
            avg_row_bytes,
            ndv: BTreeMap::new(),
        }
    }

    /// Add a distinct-value count for a column.
    pub fn with_ndv(mut self, column: impl Into<String>, ndv: u64) -> TableStats {
        self.ndv.insert(column.into(), ndv);
        self
    }

    /// Distinct values of a column, defaulting to a 10% heuristic when
    /// unknown (clamped to at least 1).
    pub fn ndv_of(&self, column: &str) -> u64 {
        self.ndv
            .get(column)
            .copied()
            .unwrap_or_else(|| (self.row_count / 10).max(1))
    }

    /// Total estimated bytes.
    pub fn total_bytes(&self) -> f64 {
        self.row_count as f64 * self.avg_row_bytes
    }
}

impl Default for TableStats {
    fn default() -> TableStats {
        TableStats::new(1000, 64.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ndv_defaults_to_heuristic() {
        let s = TableStats::new(1000, 32.0).with_ndv("id", 1000);
        assert_eq!(s.ndv_of("id"), 1000);
        assert_eq!(s.ndv_of("other"), 100);
        let tiny = TableStats::new(5, 8.0);
        assert_eq!(tiny.ndv_of("x"), 1);
    }

    #[test]
    fn totals() {
        let s = TableStats::new(100, 10.0);
        assert_eq!(s.total_bytes(), 1000.0);
    }
}
