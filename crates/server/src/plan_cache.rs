//! Epoch-keyed cache of optimized located plans.
//!
//! The PR-5 `ImplicationMemo` caches single policy-implication *verdicts*
//! keyed by predicate fingerprint × expression id × catalog epoch. This
//! module applies the same idea one level up: it caches whole
//! [`OptimizedQuery`]s (the located physical plan plus its annotated
//! traits) keyed by
//!
//! > query structural fingerprint × tenant × policy-catalog epoch.
//!
//! * **Epoch-bump invalidation.** The policy-catalog epoch is a content
//!   hash of the tenant's policy expressions, so any policy change moves
//!   every lookup to a fresh key — stale plans simply stop being found
//!   (and [`PlanCache::purge_tenant`] reclaims their slots eagerly).
//! * **LRU eviction.** The cache holds at most `capacity` entries; the
//!   least-recently-used entry is evicted when a fresh plan needs a slot.
//! * **Collision safety is the caller's job.** Two different queries could
//!   in principle hash to the same fingerprint. The service therefore
//!   re-audits every cache hit with the Definition-1 checker before reuse
//!   and calls [`PlanCache::invalidate`] when the audit refuses the plan —
//!   a collision costs one re-optimization, never a non-compliant plan.

use geoqp_common::Location;
use geoqp_core::OptimizedQuery;
use geoqp_plan::LogicalPlan;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Structural fingerprint of a query: a hash of the full logical plan tree
/// plus the requested result location. Policies do **not** contribute —
/// the policy catalog is keyed separately through the epoch component of
/// [`PlanKey`], so the same query text maps to the same fingerprint under
/// every tenant.
pub fn query_fingerprint(plan: &LogicalPlan, result_location: Option<&Location>) -> u64 {
    let mut h = DefaultHasher::new();
    plan.hash(&mut h);
    result_location.hash(&mut h);
    h.finish()
}

/// The full cache key: fingerprint × tenant × policy-catalog epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Tenant index inside the service. Plans never cross tenants even
    /// when their policy catalogs happen to hash to the same epoch.
    pub tenant: usize,
    /// Structural query fingerprint from [`query_fingerprint`].
    pub fingerprint: u64,
    /// The tenant's policy-catalog epoch when the plan was optimized.
    pub epoch: u64,
}

/// Counter snapshot for observability (`\tenants`, bench JSON).
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    /// Lookups served from the cache (net of invalidated collisions).
    pub hits: u64,
    /// Lookups that missed (including invalidated collisions).
    pub misses: u64,
    /// Entries evicted by the LRU policy to make room.
    pub evictions: u64,
    /// Cache hits the caller's re-audit refused (fingerprint collisions).
    pub invalidations: u64,
    /// Live entries.
    pub len: usize,
    /// Maximum entries.
    pub capacity: usize,
}

impl CacheStats {
    /// Fraction of lookups served from the cache; 0 when never used.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    plan: Arc<OptimizedQuery>,
    last_used: u64,
}

struct CacheState {
    map: HashMap<PlanKey, Entry>,
    /// Logical clock for LRU stamping; bumped on every touch.
    tick: u64,
}

/// Thread-safe LRU cache of optimized located plans. Interior mutability
/// throughout: workers share it behind an `Arc` without outer locking.
pub struct PlanCache {
    state: Mutex<CacheState>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

impl PlanCache {
    /// A cache holding at most `capacity` plans (floored at 1).
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            state: Mutex::new(CacheState {
                map: HashMap::new(),
                tick: 0,
            }),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// Look up a plan, refreshing its LRU stamp and counting hit/miss.
    pub fn lookup(&self, key: &PlanKey) -> Option<Arc<OptimizedQuery>> {
        let mut st = self.state.lock().unwrap();
        st.tick += 1;
        let tick = st.tick;
        match st.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.plan.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert (or replace) a plan, evicting the least-recently-used entry
    /// when the cache is full.
    pub fn insert(&self, key: PlanKey, plan: Arc<OptimizedQuery>) {
        let mut st = self.state.lock().unwrap();
        st.tick += 1;
        let tick = st.tick;
        if !st.map.contains_key(&key) && st.map.len() >= self.capacity {
            if let Some(victim) = st
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
            {
                st.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        st.map.insert(
            key,
            Entry {
                plan,
                last_used: tick,
            },
        );
    }

    /// Drop an entry whose re-audit failed (fingerprint collision) and
    /// reclassify the hit [`lookup`](PlanCache::lookup) just counted as a
    /// miss. Must only be called immediately after a successful lookup of
    /// the same key by the same caller.
    pub fn invalidate(&self, key: &PlanKey) {
        let mut st = self.state.lock().unwrap();
        if st.map.remove(key).is_some() {
            self.invalidations.fetch_add(1, Ordering::Relaxed);
        }
        self.hits.fetch_sub(1, Ordering::Relaxed);
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Eagerly drop every entry belonging to `tenant` (policy update):
    /// the epoch component of the key already makes them unreachable, but
    /// purging frees their LRU slots immediately. Returns how many entries
    /// were dropped.
    pub fn purge_tenant(&self, tenant: usize) -> usize {
        let mut st = self.state.lock().unwrap();
        let before = st.map.len();
        st.map.retain(|k, _| k.tenant != tenant);
        before - st.map.len()
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            len: self.len(),
            capacity: self.capacity,
        }
    }
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("PlanCache")
            .field("len", &s.len)
            .field("capacity", &s.capacity)
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .field("evictions", &s.evictions)
            .finish()
    }
}
