//! `geoqp-server` — a multi-tenant query service on top of the compliant
//! geo-distributed engine.
//!
//! The library crates below this one run exactly one query at a time: the
//! shell and the bench harness call [`geoqp_core::Engine`] directly. This
//! crate turns the engine into a *service*:
//!
//! * [`QueryService`] accepts many concurrent sessions. Each session binds
//!   to a **tenant** — a named policy scope with its own
//!   [`PolicyCatalog`](geoqp_policy::PolicyCatalog) and therefore its own
//!   [`Engine`](geoqp_core::Engine) (and, by construction, its own
//!   `ImplicationMemo`: two tenants with conflicting policy sets can never
//!   observe each other's cached implication verdicts).
//! * A shared scheduler runs admitted queries on a bounded worker pool.
//!   **Admission control** is per tenant: at most `max_inflight` queries
//!   executing plus `max_queue` waiting; overflow is refused with the typed
//!   [`GeoError::Admission`](geoqp_common::GeoError::Admission) error.
//!   **Deficit round-robin** fair queueing guarantees a flooding tenant
//!   cannot starve a trickle tenant — every backlogged tenant earns service
//!   credit at the same (quantum-weighted) rate.
//! * A [`PlanCache`] memoizes whole optimized located plans, keyed by query
//!   structural fingerprint × tenant × policy-catalog epoch. This extends
//!   the PR-5 `ImplicationMemo` pattern from single implication verdicts to
//!   entire `SitedPlan`s: an epoch bump (policy change) invalidates by
//!   construction, LRU eviction bounds the footprint under ad-hoc query
//!   diversity, and every cache hit is re-audited by the Definition-1
//!   checker before reuse so a fingerprint collision can never leak a
//!   non-compliant plan.
//!
//! Per-query deadlines, cancellation, and fault plans ride through
//! unchanged ([`QueryRequest`]); the service aggregates their outcomes into
//! per-tenant [`TenantStats`] (admitted/rejected/completed, p50/p99
//! latency, cache hits, replans).

pub mod plan_cache;
pub mod service;

pub use plan_cache::{query_fingerprint, CacheStats, PlanCache, PlanKey};
pub use service::{
    QueryReply, QueryRequest, QueryService, QueryTicket, ServiceConfig, TenantConfig, TenantId,
    TenantStats,
};
