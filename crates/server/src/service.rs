//! The multi-tenant query service: sessions, admission control, deficit
//! round-robin fair scheduling, and per-tenant statistics.
//!
//! # Architecture
//!
//! ```text
//!  submit(tenant, request) ──admission──▶ per-tenant bounded queue
//!                                              │
//!                      deficit-round-robin scheduler (shared Condvar)
//!                                              │
//!                          bounded worker pool (OS threads)
//!                                              │
//!            parse → lower → PlanCache lookup (re-audited) / optimize
//!                                              │
//!            execute (plain or resilient: faults/deadline/cancel)
//!                                              │
//!                      QueryTicket ◀── reply ──┘  + TenantStats update
//! ```
//!
//! Each tenant owns a full [`Engine`] over its own policy catalog. Since
//! PR 5 the `ImplicationMemo` lives inside the engine, so per-tenant
//! engines give per-tenant memo isolation *by construction*: no shared
//! table to key, no cross-tenant verdict reuse possible.
//!
//! # Admission and fairness
//!
//! A tenant may hold at most [`TenantConfig::max_inflight`] executing
//! queries plus [`TenantConfig::max_queue`] waiting ones; a submit beyond
//! that is refused immediately with the typed
//! [`GeoError::Admission`] — the client sees backpressure instead of
//! unbounded queueing. Among admitted queries the scheduler runs deficit
//! round-robin: every backlogged, eligible tenant earns
//! [`TenantConfig::quantum`] service credits per top-up round and spends
//! one per query, so a tenant flooding its own queue can never starve a
//! trickle tenant — the trickle tenant's next query is at most one DRR
//! rotation away.

use crate::plan_cache::{query_fingerprint, CacheStats, PlanCache, PlanKey};
use geoqp_common::{CancelToken, CatalogPin, GeoError, Location, QueryDeadline, Result, Rows};
use geoqp_core::{CatalogService, ChurnOpts, Engine, FailoverOpts, OptimizerMode};
use geoqp_exec::RetryPolicy;
use geoqp_net::{FaultPlan, NetworkTopology, TransferLog};
use geoqp_policy::{PolicyCatalog, PolicyExpression};
use geoqp_storage::Catalog;
use std::collections::{BTreeMap, VecDeque};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Instant;

/// Handle naming a tenant registered with [`QueryService::add_tenant`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TenantId(pub usize);

/// Per-tenant admission and fairness knobs.
#[derive(Debug, Clone, Copy)]
pub struct TenantConfig {
    /// Maximum queries of this tenant executing at once.
    pub max_inflight: usize,
    /// Maximum queries waiting in this tenant's queue; a submit past
    /// `max_inflight + max_queue` outstanding is refused with
    /// [`GeoError::Admission`].
    pub max_queue: usize,
    /// DRR weight: service credits earned per top-up round. Tenants with
    /// a larger quantum receive proportionally more throughput under
    /// contention.
    pub quantum: u32,
}

impl Default for TenantConfig {
    fn default() -> TenantConfig {
        TenantConfig {
            max_inflight: 4,
            max_queue: 64,
            quantum: 1,
        }
    }
}

/// Service-wide knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Worker threads in the shared pool.
    pub workers: usize,
    /// Plan-cache capacity (entries across all tenants).
    pub cache_capacity: usize,
    /// Run fault-free sequential attempts on the columnar engine.
    pub columnar: bool,
    /// Failover re-plan budget for resilient executions.
    pub max_replans: usize,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: 4,
            cache_capacity: 256,
            columnar: true,
            max_replans: 4,
        }
    }
}

/// One query submission. Deadline, cancellation, and fault plans are the
/// same per-query controls the engine already understands — the service
/// threads them through unchanged.
#[derive(Debug, Clone, Default)]
pub struct QueryRequest {
    /// SQL text, parsed and lowered against the tenant's catalog.
    pub sql: String,
    /// Where the result must materialize; `None` lets the optimizer pick
    /// the cheapest compliant site.
    pub result_location: Option<Location>,
    /// Simulated-ms completion budget.
    pub deadline: Option<QueryDeadline>,
    /// Cooperative abort flag, polled while queued and at batch
    /// granularity while executing.
    pub cancel: Option<CancelToken>,
    /// Deterministic fault schedule to execute under (cloned per job so
    /// the step clock is private to this query).
    pub faults: Option<FaultPlan>,
}

impl QueryRequest {
    /// A plain request for `sql` with no location pin, deadline, cancel
    /// token, or faults.
    pub fn new(sql: impl Into<String>) -> QueryRequest {
        QueryRequest {
            sql: sql.into(),
            ..QueryRequest::default()
        }
    }

    /// Pin the result location.
    pub fn at(mut self, location: Location) -> QueryRequest {
        self.result_location = Some(location);
        self
    }

    /// Attach a simulated-ms deadline.
    pub fn with_deadline(mut self, deadline: QueryDeadline) -> QueryRequest {
        self.deadline = Some(deadline);
        self
    }

    /// Attach a cancel token.
    pub fn with_cancel(mut self, cancel: CancelToken) -> QueryRequest {
        self.cancel = Some(cancel);
        self
    }

    /// Attach a fault schedule.
    pub fn with_faults(mut self, faults: FaultPlan) -> QueryRequest {
        self.faults = Some(faults);
        self
    }
}

/// A completed query's payload.
#[derive(Debug, Clone)]
pub struct QueryReply {
    /// Result rows at `result_location`.
    pub rows: Rows,
    /// Every cross-site transfer the execution performed.
    pub transfers: TransferLog,
    /// Whether the located plan came from the [`PlanCache`] (and passed
    /// its Definition-1 re-audit).
    pub cached: bool,
    /// Failover re-plans performed (0 for fault-free runs).
    pub replans: usize,
    /// Re-plans forced by a mid-flight policy revocation (a subset of
    /// `replans`; 0 for churn-free runs).
    pub churn_replans: u64,
    /// Quiesce-free grant retries: refusals under the revocation's pin
    /// answered by re-pinning forward onto a newer grant. A completed
    /// reply with `grant_retries > 0` was rescued by an in-flight grant.
    pub grant_retries: u64,
    /// Wall-clock submit-to-completion latency, ms (includes queueing).
    pub latency_ms: f64,
    /// Where the rows materialized.
    pub result_location: Location,
}

/// Receipt for a submitted query; redeem with [`QueryTicket::wait`].
#[derive(Debug)]
pub struct QueryTicket {
    rx: mpsc::Receiver<Result<QueryReply>>,
}

impl QueryTicket {
    /// Block until the query completes. If the service shuts down before
    /// the query runs, resolves to a typed cancellation instead of
    /// hanging.
    pub fn wait(self) -> Result<QueryReply> {
        match self.rx.recv() {
            Ok(outcome) => outcome,
            Err(_) => Err(GeoError::Cancelled(
                "service shut down before the query ran".into(),
            )),
        }
    }
}

/// Per-tenant counters and latency percentiles, as rendered by `\tenants`
/// and the service benchmark.
#[derive(Debug, Clone, Default)]
pub struct TenantStats {
    /// Tenant name.
    pub name: String,
    /// Queries accepted past admission control.
    pub admitted: u64,
    /// Queries refused with [`GeoError::Admission`].
    pub rejected: u64,
    /// Queries that completed with rows.
    pub completed: u64,
    /// Queries that resolved to an error (rejection by the optimizer,
    /// deadline, cancellation, execution failure).
    pub failed: u64,
    /// Queries executing right now.
    pub inflight: usize,
    /// Queries waiting in the tenant queue right now.
    pub queued: usize,
    /// Completed queries whose plan came from the cache.
    pub cache_hits: u64,
    /// Completed queries that optimized fresh.
    pub cache_misses: u64,
    /// Failover re-plans summed over completed queries.
    pub replans: u64,
    /// Re-plans forced by a mid-flight policy revocation, summed over
    /// completed queries (a subset of `replans`).
    pub churn_replans: u64,
    /// Completed jobs re-run at completion time because a revocation
    /// landed after they pinned their epoch (the admission-race repair).
    pub churn_reruns: u64,
    /// Quiesce-free grant retries summed over completed queries.
    pub grant_retries: u64,
    /// Completed queries that were refused under their revocation pin
    /// and rescued by re-pinning onto an in-flight grant.
    pub grants_rescued: u64,
    /// Median submit-to-completion latency, ms.
    pub p50_ms: f64,
    /// 99th-percentile submit-to-completion latency, ms.
    pub p99_ms: f64,
    /// Mean submit-to-completion latency, ms.
    pub mean_ms: f64,
}

impl TenantStats {
    /// Plan-cache hit rate over this tenant's completed queries.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// One admitted query waiting for (or holding) a worker.
struct Job {
    request: QueryRequest,
    submitted: Instant,
    tx: mpsc::Sender<Result<QueryReply>>,
}

struct TenantState {
    name: String,
    engine: Arc<Engine>,
    /// Cached `policies().epoch()` so the hot path never re-hashes the
    /// catalog; refreshed by `update_tenant_policies`.
    epoch: u64,
    /// The tenant's replicated catalog service: every policy change is a
    /// log append here, and its churn signal reaches in-flight queries.
    churn: Arc<CatalogService>,
    /// The catalog head new queries pin at admission.
    pin: CatalogPin,
    /// Log sequence of the newest revocation (0 when none has ever
    /// happened). A job that completes under an older pin is re-run —
    /// the admission-race repair.
    last_revoke_seq: u64,
    churn_reruns: u64,
    config: TenantConfig,
    queue: VecDeque<Job>,
    deficit: u64,
    inflight: usize,
    admitted: u64,
    rejected: u64,
    completed: u64,
    failed: u64,
    cache_hits: u64,
    cache_misses: u64,
    replans: u64,
    churn_replans: u64,
    grant_retries: u64,
    grants_rescued: u64,
    latencies_ms: Vec<f64>,
}

impl TenantState {
    fn stats(&self) -> TenantStats {
        let mut sorted = self.latencies_ms.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mean = if sorted.is_empty() {
            0.0
        } else {
            sorted.iter().sum::<f64>() / sorted.len() as f64
        };
        TenantStats {
            name: self.name.clone(),
            admitted: self.admitted,
            rejected: self.rejected,
            completed: self.completed,
            failed: self.failed,
            inflight: self.inflight,
            queued: self.queue.len(),
            cache_hits: self.cache_hits,
            cache_misses: self.cache_misses,
            replans: self.replans,
            churn_replans: self.churn_replans,
            churn_reruns: self.churn_reruns,
            grant_retries: self.grant_retries,
            grants_rescued: self.grants_rescued,
            p50_ms: percentile(&sorted, 0.50),
            p99_ms: percentile(&sorted, 0.99),
            mean_ms: mean,
        }
    }
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

struct SchedState {
    tenants: Vec<TenantState>,
    /// Round-robin cursor: the tenant index the next scan starts from.
    next_rr: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<SchedState>,
    /// Signals workers that a job may be runnable.
    work: Condvar,
    /// Signals `wait_idle` that queues/in-flight counts changed.
    idle: Condvar,
    cache: PlanCache,
    columnar: bool,
    max_replans: usize,
}

/// DRR service cost of one query, in credits.
const QUERY_COST: u64 = 1;

/// Pick the next runnable job under deficit round-robin. Two passes: if
/// no eligible tenant holds enough credit, every backlogged eligible
/// tenant is topped up by its quantum and the scan repeats once.
fn next_job(st: &mut SchedState) -> Option<(usize, Job)> {
    let n = st.tenants.len();
    if n == 0 {
        return None;
    }
    for round in 0..2 {
        for i in 0..n {
            let t = (st.next_rr + i) % n;
            let ten = &mut st.tenants[t];
            if ten.queue.is_empty()
                || ten.inflight >= ten.config.max_inflight
                || ten.deficit < QUERY_COST
            {
                continue;
            }
            ten.deficit -= QUERY_COST;
            let job = ten.queue.pop_front().expect("queue checked non-empty");
            ten.inflight += 1;
            if ten.queue.is_empty() {
                // An idle tenant must not bank credit (classic DRR reset),
                // or a long-idle tenant could later burst past its share.
                ten.deficit = 0;
            }
            st.next_rr = (t + 1) % n;
            return Some((t, job));
        }
        if round == 0 {
            let mut topped_up = false;
            for ten in st.tenants.iter_mut() {
                if !ten.queue.is_empty() && ten.inflight < ten.config.max_inflight {
                    ten.deficit += u64::from(ten.config.quantum) * QUERY_COST;
                    topped_up = true;
                }
            }
            if !topped_up {
                return None;
            }
        }
    }
    None
}

/// The multi-tenant query service. Dropping it shuts the worker pool
/// down; queued-but-unrun queries resolve their tickets with a typed
/// cancellation.
pub struct QueryService {
    shared: Arc<Shared>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl QueryService {
    /// Start a service with `config.workers` pool threads and an empty
    /// tenant table.
    pub fn new(config: ServiceConfig) -> QueryService {
        let shared = Arc::new(Shared {
            state: Mutex::new(SchedState {
                tenants: Vec::new(),
                next_rr: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            idle: Condvar::new(),
            cache: PlanCache::new(config.cache_capacity),
            columnar: config.columnar,
            max_replans: config.max_replans,
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = shared.clone();
                thread::Builder::new()
                    .name(format!("geoqp-svc-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn service worker")
            })
            .collect();
        QueryService { shared, workers }
    }

    /// Register a tenant: its own policy catalog, hence its own engine
    /// and implication memo. Returns the handle used by `submit`.
    pub fn add_tenant(
        &self,
        name: impl Into<String>,
        catalog: Arc<Catalog>,
        policies: Arc<PolicyCatalog>,
        topology: NetworkTopology,
        config: TenantConfig,
    ) -> TenantId {
        let epoch = policies.epoch();
        // The tenant's catalog log starts at the registered policy set;
        // the first site (in canonical order) coordinates replication.
        let coordinator = catalog
            .locations()
            .iter()
            .next()
            .cloned()
            .unwrap_or_else(|| Location::new("L0"));
        let churn = Arc::new(CatalogService::new(
            Arc::clone(&catalog),
            (*policies).clone(),
            coordinator,
        ));
        let pin = churn.head();
        debug_assert_eq!(
            pin.epoch, epoch,
            "base log epoch must match the frozen catalog's"
        );
        let engine = Arc::new(Engine::new(catalog, policies, topology));
        let mut st = self.shared.state.lock().unwrap();
        st.tenants.push(TenantState {
            name: name.into(),
            engine,
            epoch,
            churn,
            pin,
            last_revoke_seq: 0,
            churn_reruns: 0,
            config,
            queue: VecDeque::new(),
            deficit: 0,
            inflight: 0,
            admitted: 0,
            rejected: 0,
            completed: 0,
            failed: 0,
            cache_hits: 0,
            cache_misses: 0,
            replans: 0,
            churn_replans: 0,
            grant_retries: 0,
            grants_rescued: 0,
            latencies_ms: Vec::new(),
        });
        TenantId(st.tenants.len() - 1)
    }

    /// Submit a query for `tenant`. Refuses immediately with
    /// [`GeoError::Admission`] when the tenant's backlog budget
    /// (`max_inflight + max_queue` outstanding) is exhausted; otherwise
    /// returns a [`QueryTicket`] that resolves when the query completes.
    pub fn submit(&self, tenant: TenantId, request: QueryRequest) -> Result<QueryTicket> {
        let (tx, rx) = mpsc::channel();
        {
            let mut st = self.shared.state.lock().unwrap();
            if st.shutdown {
                return Err(GeoError::Cancelled("service is shutting down".into()));
            }
            let ten = st
                .tenants
                .get_mut(tenant.0)
                .ok_or_else(|| GeoError::Execution(format!("unknown tenant #{}", tenant.0)))?;
            let outstanding = ten.queue.len() + ten.inflight;
            let budget = ten.config.max_inflight + ten.config.max_queue;
            if outstanding >= budget {
                ten.rejected += 1;
                return Err(GeoError::Admission(format!(
                    "tenant '{}' backlog full: {} in flight + {} queued \
                     reaches the {} + {} admission budget",
                    ten.name,
                    ten.inflight,
                    ten.queue.len(),
                    ten.config.max_inflight,
                    ten.config.max_queue,
                )));
            }
            ten.admitted += 1;
            ten.queue.push_back(Job {
                request,
                submitted: Instant::now(),
                tx,
            });
        }
        self.shared.work.notify_one();
        Ok(QueryTicket { rx })
    }

    /// Block until every tenant's queue is empty and nothing is in
    /// flight.
    pub fn wait_idle(&self) {
        let mut st = self.shared.state.lock().unwrap();
        while st
            .tenants
            .iter()
            .any(|t| !t.queue.is_empty() || t.inflight > 0)
        {
            st = self.shared.idle.wait(st).unwrap();
        }
    }

    /// Move a tenant to a new policy set by **appending to its catalog
    /// log**: expressions missing from `policies` are revoked, new ones
    /// granted, and every append bumps the chain epoch. The rebuilt
    /// engine (fresh implication memo — no verdict crosses the epoch
    /// bump) serves queries admitted from now on; the tenant's plan-cache
    /// entries are purged.
    ///
    /// Grants only affect later queries. Revocations are **pushed**: the
    /// churn signal aborts in-flight resilient executions at batch
    /// granularity so they re-plan under the new epoch, and any job that
    /// still completes under an older pin is re-run at completion time
    /// (the admission-race repair). Returns the new catalog head.
    pub fn update_tenant_policies(
        &self,
        tenant: TenantId,
        policies: Arc<PolicyCatalog>,
    ) -> Result<CatalogPin> {
        let (churn, engine) = {
            let st = self.shared.state.lock().unwrap();
            let ten = st
                .tenants
                .get(tenant.0)
                .ok_or_else(|| GeoError::Execution(format!("unknown tenant #{}", tenant.0)))?;
            (ten.churn.clone(), ten.engine.clone())
        };
        // Multiset diff of display forms: live policies absent from the
        // target are revoked, target expressions not live are granted.
        let mut wanted: BTreeMap<String, Vec<PolicyExpression>> = BTreeMap::new();
        for e in policies.expressions() {
            wanted
                .entry(e.expr.to_string())
                .or_default()
                .push(e.expr.clone());
        }
        let mut revoke_seq = 0u64;
        for (pid, display) in churn.live_policies() {
            match wanted.get_mut(&display) {
                Some(v) if !v.is_empty() => {
                    v.pop();
                }
                _ => {
                    let r = churn.revoke(pid)?;
                    revoke_seq = revoke_seq.max(r.seq);
                }
            }
        }
        for exprs in wanted.into_values() {
            for expr in exprs {
                churn.grant(expr)?;
            }
        }
        // A single-process deployment's replicas follow the coordinator
        // synchronously; catalog-plane faults are a harness concern.
        churn.sync_full();
        let head = churn.head();
        let snapshot = churn.snapshot(head.seq)?;
        let new_engine = Arc::new(engine.fork_with_policies(snapshot));
        {
            let mut st = self.shared.state.lock().unwrap();
            let ten = st
                .tenants
                .get_mut(tenant.0)
                .ok_or_else(|| GeoError::Execution(format!("unknown tenant #{}", tenant.0)))?;
            ten.engine = new_engine;
            ten.epoch = head.epoch;
            ten.pin = head;
            if revoke_seq > 0 {
                ten.last_revoke_seq = ten.last_revoke_seq.max(revoke_seq);
            }
        }
        self.shared.cache.purge_tenant(tenant.0);
        Ok(head)
    }

    /// The tenant's catalog service (the `\grant`/`\revoke`/`\catalog`
    /// verbs and churn tests drive it directly).
    pub fn tenant_catalog(&self, tenant: TenantId) -> Result<Arc<CatalogService>> {
        let st = self.shared.state.lock().unwrap();
        st.tenants
            .get(tenant.0)
            .map(|t| t.churn.clone())
            .ok_or_else(|| GeoError::Execution(format!("unknown tenant #{}", tenant.0)))
    }

    /// The tenant's engine (tests use this to probe memo isolation).
    pub fn tenant_engine(&self, tenant: TenantId) -> Result<Arc<Engine>> {
        let st = self.shared.state.lock().unwrap();
        st.tenants
            .get(tenant.0)
            .map(|t| t.engine.clone())
            .ok_or_else(|| GeoError::Execution(format!("unknown tenant #{}", tenant.0)))
    }

    /// The tenant's current policy-catalog epoch.
    pub fn tenant_epoch(&self, tenant: TenantId) -> Result<u64> {
        let st = self.shared.state.lock().unwrap();
        st.tenants
            .get(tenant.0)
            .map(|t| t.epoch)
            .ok_or_else(|| GeoError::Execution(format!("unknown tenant #{}", tenant.0)))
    }

    /// Snapshot one tenant's counters.
    pub fn tenant_stats(&self, tenant: TenantId) -> Result<TenantStats> {
        let st = self.shared.state.lock().unwrap();
        st.tenants
            .get(tenant.0)
            .map(|t| t.stats())
            .ok_or_else(|| GeoError::Execution(format!("unknown tenant #{}", tenant.0)))
    }

    /// Snapshot every tenant's counters, in registration order.
    pub fn all_stats(&self) -> Vec<TenantStats> {
        let st = self.shared.state.lock().unwrap();
        st.tenants.iter().map(|t| t.stats()).collect()
    }

    /// Snapshot the shared plan cache's counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// The shared plan cache (tests use this to stage entries and probe
    /// the collision-safety re-audit).
    pub fn cache(&self) -> &PlanCache {
        &self.shared.cache
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// How many times a completed job may be re-run because a revocation
/// landed after it pinned its epoch, before the race resolves to a typed
/// refusal instead of chasing a catalog that churns faster than the
/// query runs.
const MAX_CHURN_RERUNS: u64 = 3;

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        // Claim a job under the lock; execute it outside. The claim
        // captures the engine AND the catalog pin together, so the job's
        // plan-cache key, churn watch, and completion re-check all agree
        // on the epoch it was admitted under.
        let (tenant_idx, job, mut engine, mut pin, mut churn) = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if let Some((t, job)) = next_job(&mut st) {
                    let engine = st.tenants[t].engine.clone();
                    let pin = st.tenants[t].pin;
                    let churn = st.tenants[t].churn.clone();
                    break (t, job, engine, pin, churn);
                }
                if st.shutdown {
                    return;
                }
                st = shared.work.wait(st).unwrap();
            }
        };

        let mut outcome = run_job(shared, tenant_idx, &engine, &churn, pin, &job.request);
        // Admission-race repair: `update_tenant_policies` may have
        // revoked a policy after this job pinned its epoch but before it
        // finished. A completion whose pin predates the newest revocation
        // cannot be trusted — re-run it under the current engine (which
        // re-audits everything under the new epoch), bounded so a
        // pathologically churny catalog resolves typed instead of looping.
        let mut reruns = 0u64;
        while outcome.is_ok() {
            let current = {
                let st = shared.state.lock().unwrap();
                let ten = &st.tenants[tenant_idx];
                if ten.last_revoke_seq > pin.seq {
                    Some((ten.engine.clone(), ten.pin, ten.churn.clone()))
                } else {
                    None
                }
            };
            let Some((cur_engine, cur_pin, cur_churn)) = current else {
                break;
            };
            if reruns >= MAX_CHURN_RERUNS {
                outcome = Err(GeoError::NonCompliant(format!(
                    "policy churn outpaced the query: {reruns} completion-time \
                     re-runs never caught a stable catalog epoch"
                )));
                break;
            }
            reruns += 1;
            engine = cur_engine;
            pin = cur_pin;
            churn = cur_churn;
            outcome = run_job(shared, tenant_idx, &engine, &churn, pin, &job.request);
        }
        let latency_ms = job.submitted.elapsed().as_secs_f64() * 1e3;

        {
            let mut st = shared.state.lock().unwrap();
            let ten = &mut st.tenants[tenant_idx];
            ten.inflight -= 1;
            ten.latencies_ms.push(latency_ms);
            ten.churn_reruns += reruns;
            match &outcome {
                Ok(reply) => {
                    ten.completed += 1;
                    ten.replans += reply.replans as u64;
                    ten.churn_replans += reply.churn_replans;
                    ten.grant_retries += reply.grant_retries;
                    if reply.grant_retries > 0 {
                        ten.grants_rescued += 1;
                    }
                    if reply.cached {
                        ten.cache_hits += 1;
                    } else {
                        ten.cache_misses += 1;
                    }
                }
                Err(_) => ten.failed += 1,
            }
        }
        // Finishing a query can unblock both the scheduler (inflight
        // dropped below the tenant cap) and `wait_idle`.
        shared.work.notify_all();
        shared.idle.notify_all();

        // The client may have dropped its ticket; that is not an error.
        let _ = job.tx.send(outcome.map(|mut reply| {
            reply.latency_ms = latency_ms;
            reply
        }));
    }
}

/// Parse, plan (through the cache), and execute one query on the
/// tenant's engine. Runs without the scheduler lock held.
fn run_job(
    shared: &Shared,
    tenant: usize,
    engine: &Engine,
    churn: &Arc<CatalogService>,
    pin: CatalogPin,
    request: &QueryRequest,
) -> Result<QueryReply> {
    // A cancellation that fired while the query sat in the queue unwinds
    // here, before any planning work.
    if let Some(cancel) = &request.cancel {
        cancel.check("leaving the admission queue")?;
    }

    let ast = geoqp_parser::parse_query(&request.sql)?;
    let plan = geoqp_parser::lower_query(&ast, engine.catalog())?;
    let key = PlanKey {
        tenant,
        fingerprint: query_fingerprint(&plan, request.result_location.as_ref()),
        epoch: pin.epoch,
    };

    let (optimized, cached) = match shared.cache.lookup(&key) {
        // Fingerprint-collision safety: a cached plan is only reused after
        // the Definition-1 checker re-audits it under this tenant's
        // policies. A refused plan is invalidated and re-optimized — a
        // collision costs one optimization, never compliance.
        Some(hit) if engine.audit(&hit.physical).is_ok() => (hit, true),
        Some(_) => {
            shared.cache.invalidate(&key);
            let fresh = Arc::new(engine.optimize(
                &plan,
                OptimizerMode::Compliant,
                request.result_location.clone(),
            )?);
            shared.cache.insert(key, fresh.clone());
            (fresh, false)
        }
        None => {
            let fresh = Arc::new(engine.optimize(
                &plan,
                OptimizerMode::Compliant,
                request.result_location.clone(),
            )?);
            shared.cache.insert(key, fresh.clone());
            (fresh, false)
        }
    };

    let needs_resilient =
        request.faults.is_some() || request.deadline.is_some() || request.cancel.is_some();
    let (rows, transfers, replans, churn_replans, grant_retries) = if needs_resilient {
        let faults = match &request.faults {
            Some(plan) => {
                // Job-local clone: the fault step clock must start at 0
                // for every query, not wherever the previous run left it.
                let plan = plan.clone();
                plan.reset_clock();
                plan
            }
            None => FaultPlan::new(0),
        };
        let opts = FailoverOpts {
            max_replans: shared.max_replans,
            resume: true,
            deadline: request.deadline,
            cancel: request.cancel.clone(),
            hedge: None,
            columnar: shared.columnar,
            workers_per_site: 1,
            churn: Some(ChurnOpts {
                service: Arc::clone(churn),
                pin,
            }),
        };
        let result =
            engine.execute_resilient_opts(&optimized, &faults, &RetryPolicy::default(), &opts)?;
        (
            result.rows,
            result.transfers,
            result.replans,
            result.churn_replans,
            result.grant_retries,
        )
    } else if shared.columnar {
        let result = engine.execute_columnar(&optimized.physical)?;
        (result.rows, result.transfers, 0, 0, 0)
    } else {
        let result = engine.execute(&optimized.physical)?;
        (result.rows, result.transfers, 0, 0, 0)
    };

    Ok(QueryReply {
        rows,
        transfers,
        cached,
        replans,
        churn_replans,
        grant_retries,
        latency_ms: 0.0, // stamped by the worker after the clock stops
        result_location: optimized.result_location.clone(),
    })
}
