//! Integration suite for the multi-tenant query service: admission
//! control, deficit-round-robin fairness, the epoch-keyed plan cache
//! (invalidation, LRU eviction, collision re-audit, hit/miss
//! determinism), cancellation/deadline handling mid-queue, and
//! cross-tenant memo/plan isolation.

use geoqp_common::{
    CancelToken, DataType, Field, Location, LocationSet, QueryDeadline, Schema, TableRef, Value,
};
use geoqp_core::OptimizerMode;
use geoqp_net::NetworkTopology;
use geoqp_policy::PolicyCatalog;
use geoqp_server::{
    query_fingerprint, PlanKey, QueryRequest, QueryService, ServiceConfig, TenantConfig, TenantId,
};
use geoqp_storage::{Catalog, Table, TableStats};
use geoqp_tpch::adhoc::generate_adhoc;
use geoqp_tpch::{generate_policies, PolicyTemplate};
use std::sync::Arc;

// ---------------------------------------------------------------- helpers

/// Two sites, two small populated tables: `users` in the EU holding a
/// sensitive email column, `events` in the US, joinable on user id.
fn tiny_catalog() -> Arc<Catalog> {
    let mut catalog = Catalog::new();
    catalog.add_database("db-eu", Location::new("EU")).unwrap();
    catalog.add_database("db-us", Location::new("US")).unwrap();
    catalog
        .add_table(
            "db-eu",
            "users",
            Schema::new(vec![
                Field::new("u_id", DataType::Int64),
                Field::new("u_name", DataType::Str),
                Field::new("u_email", DataType::Str),
            ])
            .unwrap(),
            TableStats::new(3, 48.0),
        )
        .unwrap();
    catalog
        .add_table(
            "db-us",
            "events",
            Schema::new(vec![
                Field::new("e_user", DataType::Int64),
                Field::new("e_kind", DataType::Str),
            ])
            .unwrap(),
            TableStats::new(4, 16.0),
        )
        .unwrap();
    let users = catalog.resolve_one(&TableRef::bare("users")).unwrap();
    users
        .set_data(
            Table::new(
                Arc::clone(&users.schema),
                vec![
                    vec![Value::Int64(1), Value::str("alice"), Value::str("a@eu")],
                    vec![Value::Int64(2), Value::str("bob"), Value::str("b@eu")],
                    vec![Value::Int64(3), Value::str("carol"), Value::str("c@eu")],
                ],
            )
            .unwrap(),
        )
        .unwrap();
    let events = catalog.resolve_one(&TableRef::bare("events")).unwrap();
    events
        .set_data(
            Table::new(
                Arc::clone(&events.schema),
                vec![
                    vec![Value::Int64(1), Value::str("click")],
                    vec![Value::Int64(2), Value::str("view")],
                    vec![Value::Int64(1), Value::str("buy")],
                    vec![Value::Int64(3), Value::str("click")],
                ],
            )
            .unwrap(),
        )
        .unwrap();
    Arc::new(catalog)
}

fn tiny_topology() -> NetworkTopology {
    NetworkTopology::uniform(LocationSet::from_iter(["EU", "US"]), 10.0, 100.0)
}

fn add_policy(policies: &mut PolicyCatalog, catalog: &Catalog, table: &str, text: &str) {
    let expr = geoqp_parser::parse_policy(text).unwrap();
    let entry = catalog.resolve_one(&TableRef::bare(table)).unwrap();
    policies.register(expr, &entry.schema).unwrap();
}

/// Everything may ship anywhere.
fn permissive_policies(catalog: &Catalog) -> Arc<PolicyCatalog> {
    let mut p = PolicyCatalog::new();
    add_policy(&mut p, catalog, "users", "ship * from users to *");
    add_policy(&mut p, catalog, "events", "ship * from events to *");
    Arc::new(p)
}

/// Emails may never leave the EU; ids and names ship freely.
fn restrictive_policies(catalog: &Catalog) -> Arc<PolicyCatalog> {
    let mut p = PolicyCatalog::new();
    add_policy(
        &mut p,
        catalog,
        "users",
        "ship u_id, u_name from users to *",
    );
    add_policy(&mut p, catalog, "events", "ship * from events to *");
    Arc::new(p)
}

fn service(workers: usize, cache_capacity: usize) -> QueryService {
    QueryService::new(ServiceConfig {
        workers,
        cache_capacity,
        columnar: true,
        max_replans: 2,
    })
}

/// A query compliant under both policy sets: only names and kinds move.
const Q_NAMES: &str = "SELECT u_name, e_kind FROM users, events WHERE u_id = e_user";
/// A query shipping raw emails — compliant only under the permissive set
/// when pinned outside the EU.
const Q_EMAILS: &str = "SELECT u_email, e_kind FROM users, events WHERE u_id = e_user";

/// TPC-H catalog at chaos-soak scale, populated, with a template policy
/// set — the substrate for execution-heavy tests.
fn tpch_setup(template: PolicyTemplate, seed: u64) -> (Arc<Catalog>, Arc<PolicyCatalog>) {
    const SF: f64 = 0.001;
    let catalog = Arc::new(geoqp_tpch::paper_catalog(SF));
    geoqp_tpch::populate(&catalog, SF, 7).unwrap();
    let policies = generate_policies(&catalog, template, 10, seed).unwrap();
    (catalog, Arc::new(policies))
}

// ------------------------------------------------------------- admission

/// Overflowing a tenant's backlog budget is refused immediately with the
/// typed admission error; queued-but-never-run queries resolve their
/// tickets with a typed cancellation at shutdown instead of hanging.
#[test]
fn admission_overflow_is_typed_and_shutdown_resolves_tickets() {
    let catalog = tiny_catalog();
    let svc = service(1, 16);
    // `max_inflight: 0` makes the tenant permanently ineligible for
    // scheduling, so its queue fills deterministically.
    let tenant = svc.add_tenant(
        "stalled",
        catalog.clone(),
        permissive_policies(&catalog),
        tiny_topology(),
        TenantConfig {
            max_inflight: 0,
            max_queue: 3,
            quantum: 1,
        },
    );

    let mut tickets = Vec::new();
    let mut rejections = Vec::new();
    for _ in 0..5 {
        match svc.submit(tenant, QueryRequest::new(Q_NAMES)) {
            Ok(t) => tickets.push(t),
            Err(e) => rejections.push(e),
        }
    }
    assert_eq!(tickets.len(), 3, "budget is 0 in flight + 3 queued");
    assert_eq!(rejections.len(), 2);
    for e in &rejections {
        assert_eq!(e.kind(), "admission", "typed rejection, got {e}");
    }
    let stats = svc.tenant_stats(tenant).unwrap();
    assert_eq!(stats.admitted, 3);
    assert_eq!(stats.rejected, 2);
    assert_eq!(stats.queued, 3);

    // Shutting the service down must resolve every queued ticket.
    drop(svc);
    for t in tickets {
        assert_eq!(t.wait().unwrap_err().kind(), "cancelled");
    }
}

#[test]
fn unknown_tenant_is_refused() {
    let svc = service(1, 4);
    let err = svc.submit(TenantId(42), QueryRequest::new(Q_NAMES));
    assert!(err.is_err());
}

// -------------------------------------------------------------- fairness

/// A tenant flooding its own queue cannot starve a trickle tenant: with
/// one worker, DRR alternates between the two backlogged tenants, so the
/// trickle tenant's five queries all finish while the flood backlog is
/// still mostly unserved — its p99 stays below the flood tenant's median.
#[test]
fn flooding_tenant_cannot_starve_trickle_tenant() {
    let (catalog, policies) = tpch_setup(PolicyTemplate::T, 2021);
    let queries = generate_adhoc(&catalog, 50, 5).unwrap();
    let svc = service(1, 64);
    let flood = svc.add_tenant(
        "flood",
        catalog.clone(),
        policies.clone(),
        NetworkTopology::paper_wan(),
        TenantConfig {
            max_inflight: 1,
            max_queue: 40,
            quantum: 1,
        },
    );
    let trickle = svc.add_tenant(
        "trickle",
        catalog.clone(),
        policies.clone(),
        NetworkTopology::paper_wan(),
        TenantConfig {
            max_inflight: 1,
            max_queue: 10,
            quantum: 1,
        },
    );

    let mut flood_tickets = Vec::new();
    for q in queries.iter().take(40) {
        flood_tickets.push(svc.submit(flood, QueryRequest::new(&q.sql)).unwrap());
    }
    let mut trickle_tickets = Vec::new();
    for q in queries.iter().skip(40).take(5) {
        trickle_tickets.push(svc.submit(trickle, QueryRequest::new(&q.sql)).unwrap());
    }
    // Refill the flood queue past its budget: overflow must be refused
    // with the typed admission error, never queued.
    let mut overflow_rejections = 0;
    for q in queries.iter().take(30) {
        match svc.submit(flood, QueryRequest::new(&q.sql)) {
            Ok(t) => flood_tickets.push(t),
            Err(e) => {
                assert_eq!(e.kind(), "admission", "typed overflow, got {e}");
                overflow_rejections += 1;
            }
        }
    }
    assert!(
        overflow_rejections > 0,
        "a 30-query burst on a full 40-slot queue must overflow"
    );

    svc.wait_idle();
    for t in trickle_tickets {
        t.wait().expect("trickle queries must all complete");
    }
    for t in flood_tickets {
        t.wait().expect("admitted flood queries complete too");
    }

    let fs = svc.tenant_stats(flood).unwrap();
    let ts = svc.tenant_stats(trickle).unwrap();
    assert_eq!(ts.completed, 5);
    assert_eq!(fs.rejected, overflow_rejections);
    // The fairness property: interleaved 1:1, the trickle tenant is done
    // within ~10 service slots while the flood median sits near slot 20+.
    assert!(
        ts.p99_ms < fs.p99_ms,
        "trickle p99 {:.1} ms must beat flood p99 {:.1} ms",
        ts.p99_ms,
        fs.p99_ms
    );
    assert!(
        ts.p99_ms < fs.p50_ms,
        "trickle p99 {:.1} ms must beat the flood median {:.1} ms",
        ts.p99_ms,
        fs.p50_ms
    );
}

// ------------------------------------------- cancellation and deadlines

/// Cancellation and deadlines firing while queries sit in the queue (or
/// mid-execution) unwind typed-ly, every ticket resolves, and the
/// service keeps serving afterwards — no deadlock, no wedged workers.
#[test]
fn cancellation_and_deadlines_mid_queue_do_not_deadlock() {
    let (catalog, policies) = tpch_setup(PolicyTemplate::C, 7);
    let queries = generate_adhoc(&catalog, 24, 11).unwrap();
    let svc = service(2, 32);
    let tenant = svc.add_tenant(
        "churn",
        catalog.clone(),
        policies,
        NetworkTopology::paper_wan(),
        TenantConfig {
            max_inflight: 2,
            max_queue: 100,
            quantum: 1,
        },
    );

    let mut cancelled = Vec::new();
    let mut deadlined = Vec::new();
    let mut plain = Vec::new();
    let mut tokens = Vec::new();
    for (i, q) in queries.iter().enumerate() {
        match i % 3 {
            0 => {
                let token = CancelToken::new();
                let req = QueryRequest::new(&q.sql).with_cancel(token.clone());
                cancelled.push(svc.submit(tenant, req).unwrap());
                tokens.push(token);
            }
            1 => {
                // A budget no multi-site query can meet: the first WAN
                // transfer already spends more simulated time.
                let req = QueryRequest::new(&q.sql).with_deadline(QueryDeadline::new(0.001));
                deadlined.push(svc.submit(tenant, req).unwrap());
            }
            _ => plain.push(svc.submit(tenant, QueryRequest::new(&q.sql)).unwrap()),
        }
    }
    // Fire every cancellation while most of the backlog is still queued.
    for token in &tokens {
        token.cancel();
    }

    svc.wait_idle();
    for t in cancelled {
        // A query may legitimately have finished before its token fired.
        match t.wait() {
            Ok(_) => {}
            Err(e) => assert_eq!(e.kind(), "cancelled", "got {e}"),
        }
    }
    for t in deadlined {
        assert_eq!(t.wait().unwrap_err().kind(), "deadline");
    }
    for t in plain {
        t.wait().expect("unencumbered queries complete");
    }

    let stats = svc.tenant_stats(tenant).unwrap();
    assert_eq!(stats.completed + stats.failed, stats.admitted);
    assert_eq!(stats.inflight, 0);
    assert_eq!(stats.queued, 0);

    // The pool is still alive and serving.
    let reply = svc
        .submit(tenant, QueryRequest::new(&queries[2].sql))
        .unwrap()
        .wait()
        .unwrap();
    assert!(reply.latency_ms >= 0.0);
}

// ------------------------------------------------------------ plan cache

/// A cache hit must be observationally identical to the miss that seeded
/// it: same rows, same transfers (bytes, routes, costs), same result
/// location.
#[test]
fn cache_hit_and_miss_yield_identical_results() {
    let (catalog, policies) = tpch_setup(PolicyTemplate::T, 3);
    let queries = generate_adhoc(&catalog, 4, 17).unwrap();
    let svc = service(1, 16);
    let tenant = svc.add_tenant(
        "t0",
        catalog.clone(),
        policies,
        NetworkTopology::paper_wan(),
        TenantConfig::default(),
    );

    for q in &queries {
        let miss = svc
            .submit(tenant, QueryRequest::new(&q.sql))
            .unwrap()
            .wait()
            .unwrap();
        let hit = svc
            .submit(tenant, QueryRequest::new(&q.sql))
            .unwrap()
            .wait()
            .unwrap();
        assert!(!miss.cached, "first run optimizes fresh: {}", q.sql);
        assert!(hit.cached, "second run must hit the cache: {}", q.sql);
        assert_eq!(miss.rows, hit.rows, "rows differ for {}", q.sql);
        assert_eq!(
            miss.transfers, hit.transfers,
            "transfer logs differ for {}",
            q.sql
        );
        assert_eq!(miss.result_location, hit.result_location);
    }
    let cs = svc.cache_stats();
    assert_eq!(cs.hits, queries.len() as u64);
    assert_eq!(cs.misses, queries.len() as u64);
}

/// A policy update bumps the tenant's epoch: the next identical query
/// re-optimizes under the new catalog instead of reusing the stale plan,
/// and the tenant's old entries are purged eagerly.
#[test]
fn epoch_bump_invalidates_cached_plans() {
    let catalog = tiny_catalog();
    let svc = service(1, 16);
    let tenant = svc.add_tenant(
        "t0",
        catalog.clone(),
        permissive_policies(&catalog),
        tiny_topology(),
        TenantConfig::default(),
    );

    let run = |sql: &str| svc.submit(tenant, QueryRequest::new(sql)).unwrap().wait();
    assert!(!run(Q_NAMES).unwrap().cached);
    assert!(run(Q_NAMES).unwrap().cached);
    let epoch_before = svc.tenant_epoch(tenant).unwrap();

    // Swap in a different (still compatible) policy set.
    svc.update_tenant_policies(tenant, restrictive_policies(&catalog))
        .unwrap();
    let epoch_after = svc.tenant_epoch(tenant).unwrap();
    assert_ne!(epoch_before, epoch_after, "content epoch must change");
    assert_eq!(
        svc.cache().len(),
        0,
        "the tenant's entries are purged on policy update"
    );

    // Same SQL, new epoch: a fresh optimize, then hits again.
    assert!(!run(Q_NAMES).unwrap().cached);
    assert!(run(Q_NAMES).unwrap().cached);
}

/// Chain-epoch regression: removing a policy set and then restoring the
/// *identical* content must not resurrect plans cached before the
/// revocation. Under content hashing the restored set would reproduce
/// the old epoch (and the old `PlanKey`s would hit again); the catalog
/// log's chain epoch makes the restored world a fresh epoch instead.
#[test]
fn revoke_then_regrant_never_resurrects_cached_plans() {
    let catalog = tiny_catalog();
    let svc = service(1, 16);
    let tenant = svc.add_tenant(
        "t0",
        catalog.clone(),
        permissive_policies(&catalog),
        tiny_topology(),
        TenantConfig::default(),
    );
    let run = |sql: &str| svc.submit(tenant, QueryRequest::new(sql)).unwrap().wait();
    assert!(!run(Q_NAMES).unwrap().cached);
    assert!(run(Q_NAMES).unwrap().cached);
    let original_epoch = svc.tenant_epoch(tenant).unwrap();

    // Swap to the restrictive set, then back to an identical permissive
    // set: same policy text as the original, different history.
    let restricted = svc
        .update_tenant_policies(tenant, restrictive_policies(&catalog))
        .unwrap();
    assert_ne!(restricted.epoch, original_epoch);
    let restored = svc
        .update_tenant_policies(tenant, permissive_policies(&catalog))
        .unwrap();
    assert_ne!(
        restored.epoch, original_epoch,
        "identical content after churn must chain to a fresh epoch"
    );
    assert!(restored.seq > restricted.seq, "the log only moves forward");

    // The tenant's catalog log remembers the whole history, and the
    // restored head re-optimizes fresh before hitting again.
    let churn = svc.tenant_catalog(tenant).unwrap();
    assert_eq!(churn.head(), restored);
    assert!(churn.history().len() >= 4, "revokes + regrants are logged");
    assert!(
        !run(Q_NAMES).unwrap().cached,
        "no resurrection across churn"
    );
    assert!(run(Q_NAMES).unwrap().cached, "fresh epoch caches normally");
}

/// Exact LRU behavior at capacity 2: a lookup refreshes recency, the
/// least-recently-used entry is the eviction victim.
#[test]
fn lru_evicts_least_recently_used_plan() {
    let catalog = tiny_catalog();
    let svc = service(1, 2);
    let tenant = svc.add_tenant(
        "t0",
        catalog.clone(),
        permissive_policies(&catalog),
        tiny_topology(),
        TenantConfig::default(),
    );
    let qa = "SELECT u_name FROM users";
    let qb = "SELECT e_kind FROM events";
    let qc = "SELECT u_id FROM users";
    let run = |sql: &str| {
        svc.submit(tenant, QueryRequest::new(sql))
            .unwrap()
            .wait()
            .unwrap()
            .cached
    };

    assert!(!run(qa)); // miss, insert a
    assert!(!run(qb)); // miss, insert b — cache full
    assert!(run(qa)); // hit, refresh a
    assert!(!run(qc)); // miss, insert c — evicts b (LRU), not a
    assert_eq!(svc.cache_stats().evictions, 1);
    assert!(!run(qb)); // b was evicted — miss, evicts a (older than c)
    assert!(run(qc)); // c survived
    assert!(!run(qa)); // a was evicted by b's reinsert
    assert_eq!(svc.cache_stats().len, 2);
}

/// Under a diverse ad-hoc stream the cache stays bounded and evicts:
/// early queries age out while late ones are still resident.
#[test]
fn lru_eviction_under_adhoc_stream() {
    let (catalog, policies) = tpch_setup(PolicyTemplate::T, 13);
    let mut queries = generate_adhoc(&catalog, 40, 23).unwrap();
    let mut seen = std::collections::HashSet::new();
    queries.retain(|q| seen.insert(q.sql.clone()));
    queries.truncate(24);
    assert!(queries.len() >= 20, "generator yields diverse queries");

    const CAP: usize = 8;
    let svc = service(2, CAP);
    let tenant = svc.add_tenant(
        "stream",
        catalog.clone(),
        policies,
        NetworkTopology::paper_wan(),
        TenantConfig {
            max_inflight: 2,
            max_queue: 64,
            quantum: 1,
        },
    );
    let tickets: Vec<_> = queries
        .iter()
        .map(|q| svc.submit(tenant, QueryRequest::new(&q.sql)).unwrap())
        .collect();
    for t in tickets {
        t.wait().expect("stream queries complete");
    }

    let cs = svc.cache_stats();
    assert!(cs.len <= CAP, "cache stays bounded, len {}", cs.len);
    assert_eq!(
        cs.evictions,
        (queries.len() - cs.len) as u64,
        "every insert past capacity evicts exactly once"
    );

    // The first query has long aged out; the last is still resident.
    let first = svc
        .submit(tenant, QueryRequest::new(&queries[0].sql))
        .unwrap()
        .wait()
        .unwrap();
    assert!(!first.cached, "earliest query must have been evicted");
    let last = svc
        .submit(tenant, QueryRequest::new(&queries[queries.len() - 1].sql))
        .unwrap()
        .wait()
        .unwrap();
    assert!(last.cached, "latest query must still be resident");
}

/// Fingerprint-collision safety: a cache entry that fails the
/// Definition-1 re-audit (staged here under the victim key) is never
/// served — it is invalidated and the query re-optimizes compliantly.
#[test]
fn poisoned_cache_entry_is_reaudited_and_replaced() {
    let catalog = tiny_catalog();
    let svc = service(1, 16);
    let tenant = svc.add_tenant(
        "strict",
        catalog.clone(),
        restrictive_policies(&catalog),
        tiny_topology(),
        TenantConfig::default(),
    );
    let engine = svc.tenant_engine(tenant).unwrap();
    let us = Location::new("US");

    // The victim query is compliant under the restrictive set.
    let victim_plan = geoqp_parser::lower_query(
        &geoqp_parser::parse_query(Q_NAMES).unwrap(),
        engine.catalog(),
    )
    .unwrap();
    let key = PlanKey {
        tenant: tenant.0,
        fingerprint: query_fingerprint(&victim_plan, Some(&us)),
        epoch: svc.tenant_epoch(tenant).unwrap(),
    };

    // Stage a plan under that key which ships raw emails to the US —
    // exactly what a fingerprint collision could smuggle in. Optimized
    // in Traditional mode so the (non-compliant) plan exists at all.
    let poison = engine
        .optimize_sql(Q_EMAILS, OptimizerMode::Traditional, Some(us.clone()))
        .unwrap();
    assert!(
        engine.audit(&poison.physical).is_err(),
        "the staged plan must genuinely violate the tenant's policies"
    );
    svc.cache().insert(key, Arc::new(poison));

    // The lookup hits, the re-audit refuses, the service re-optimizes.
    let reply = svc
        .submit(tenant, QueryRequest::new(Q_NAMES).at(us.clone()))
        .unwrap()
        .wait()
        .unwrap();
    assert!(!reply.cached, "a refused entry must not count as a hit");
    assert_eq!(reply.result_location, us);
    assert_eq!(reply.rows.len(), 4, "join yields one row per event");
    assert_eq!(svc.cache_stats().invalidations, 1);

    // The replacement entry is genuine: next run hits and matches.
    let hit = svc
        .submit(tenant, QueryRequest::new(Q_NAMES).at(us))
        .unwrap()
        .wait()
        .unwrap();
    assert!(hit.cached);
    assert_eq!(hit.rows, reply.rows);
    assert_eq!(hit.transfers, reply.transfers);
}

// ------------------------------------------------------ tenant isolation

/// Two tenants with conflicting policy sets over the same catalog never
/// observe each other's cached implication verdicts or plans: the
/// permissive tenant's successes never soften the restrictive tenant's
/// rejections, in either interleaving order.
#[test]
fn conflicting_tenants_never_share_memo_verdicts_or_plans() {
    let catalog = tiny_catalog();
    let svc = service(1, 32);
    let open = svc.add_tenant(
        "open",
        catalog.clone(),
        permissive_policies(&catalog),
        tiny_topology(),
        TenantConfig::default(),
    );
    let strict = svc.add_tenant(
        "strict",
        catalog.clone(),
        restrictive_policies(&catalog),
        tiny_topology(),
        TenantConfig::default(),
    );

    // Separate engines — separate implication memos by construction.
    assert!(!Arc::ptr_eq(
        &svc.tenant_engine(open).unwrap(),
        &svc.tenant_engine(strict).unwrap()
    ));

    let us = Location::new("US");
    let run = |tenant, sql: &str| {
        svc.submit(tenant, QueryRequest::new(sql).at(us.clone()))
            .unwrap()
            .wait()
    };
    // Six rounds, alternating which tenant goes first, so cached
    // verdicts from either side would have every chance to leak.
    for round in 0..6 {
        let order: [TenantId; 2] = if round % 2 == 0 {
            [open, strict]
        } else {
            [strict, open]
        };
        for tenant in order {
            let outcome = run(tenant, Q_EMAILS);
            if tenant == open {
                let reply = outcome.expect("permissive tenant ships emails freely");
                assert_eq!(reply.rows.len(), 4);
            } else {
                let err = outcome.expect_err("restrictive tenant must keep rejecting");
                assert_eq!(err.kind(), "rejected", "round {round}: got {err}");
            }
        }
    }
    let os = svc.tenant_stats(open).unwrap();
    let ss = svc.tenant_stats(strict).unwrap();
    assert_eq!(os.completed, 6);
    assert_eq!(os.failed, 0);
    assert_eq!(ss.completed, 0);
    assert_eq!(ss.failed, 6, "every strict attempt stays rejected");
    // The permissive tenant's repeats were served from its cache; the
    // rejected queries never seeded an entry the strict tenant could use.
    assert_eq!(os.cache_hits, 5);
    assert_eq!(os.cache_misses, 1);
}

/// Plans never cross tenants even when two tenants run *identical*
/// policy sets (identical content epoch): the cache key's tenant
/// component keeps their entries apart.
#[test]
fn identical_policy_tenants_still_get_separate_plan_cache_entries() {
    let catalog = tiny_catalog();
    let svc = service(1, 32);
    let a = svc.add_tenant(
        "a",
        catalog.clone(),
        permissive_policies(&catalog),
        tiny_topology(),
        TenantConfig::default(),
    );
    let b = svc.add_tenant(
        "b",
        catalog.clone(),
        permissive_policies(&catalog),
        tiny_topology(),
        TenantConfig::default(),
    );
    assert_eq!(
        svc.tenant_epoch(a).unwrap(),
        svc.tenant_epoch(b).unwrap(),
        "identical policy text hashes to the same content epoch"
    );

    let run = |tenant| {
        svc.submit(tenant, QueryRequest::new(Q_NAMES))
            .unwrap()
            .wait()
            .unwrap()
    };
    assert!(!run(a).cached);
    assert!(run(a).cached);
    // Same SQL, same epoch — but a different tenant must optimize fresh.
    assert!(!run(b).cached, "plans must not leak across tenants");
    assert!(run(b).cached);
    assert_eq!(svc.cache().len(), 2, "one entry per tenant");
}
