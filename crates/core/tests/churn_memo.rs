//! Regression: a memoized implication verdict must never be served
//! across a catalog epoch bump.
//!
//! The implication memo caches `implies_opt` verdicts keyed by policy
//! content; a grant or revoke changes what the catalog implies, so an
//! engine forked onto a new epoch must start with a *cold* memo — its
//! hit/miss counters restart from zero and its first optimization pass
//! records only misses. The original engine's memo (and the epoch it
//! was warmed under) stays untouched.

use geoqp_common::{DataType, Field, Location, LocationSet, Schema, TableRef, Value};
use geoqp_core::{CatalogService, Engine, OptimizerMode};
use geoqp_net::NetworkTopology;
use geoqp_policy::PolicyCatalog;
use geoqp_storage::{Catalog, Table, TableStats};
use std::sync::Arc;

fn catalog() -> Arc<Catalog> {
    let mut c = Catalog::new();
    c.add_database("db-eu", Location::new("EU")).unwrap();
    c.add_database("db-us", Location::new("US")).unwrap();
    let users = c
        .add_table(
            "db-eu",
            "users",
            Schema::new(vec![
                Field::new("u_id", DataType::Int64),
                Field::new("u_name", DataType::Str),
                Field::new("u_email", DataType::Str),
            ])
            .unwrap(),
            TableStats::new(2, 48.0),
        )
        .unwrap();
    let events = c
        .add_table(
            "db-us",
            "events",
            Schema::new(vec![
                Field::new("e_user", DataType::Int64),
                Field::new("e_kind", DataType::Str),
            ])
            .unwrap(),
            TableStats::new(2, 16.0),
        )
        .unwrap();
    users
        .set_data(
            Table::new(
                Arc::clone(&users.schema),
                vec![
                    vec![Value::Int64(1), Value::str("alice"), Value::str("a@eu")],
                    vec![Value::Int64(2), Value::str("bob"), Value::str("b@eu")],
                ],
            )
            .unwrap(),
        )
        .unwrap();
    events
        .set_data(
            Table::new(
                Arc::clone(&events.schema),
                vec![
                    vec![Value::Int64(1), Value::str("click")],
                    vec![Value::Int64(2), Value::str("view")],
                ],
            )
            .unwrap(),
        )
        .unwrap();
    Arc::new(c)
}

fn policies(catalog: &Catalog) -> PolicyCatalog {
    let mut p = PolicyCatalog::new();
    for (table, text) in [
        ("users", "ship u_id, u_name from users to *"),
        ("events", "ship * from events to *"),
    ] {
        let expr = geoqp_parser::parse_policy(text).unwrap();
        let entry = catalog.resolve_one(&TableRef::bare(table)).unwrap();
        p.register(expr, &entry.schema).unwrap();
    }
    p
}

const SQL: &str = "SELECT u_name, e_kind FROM users, events WHERE u_id = e_user";

#[test]
fn implication_memo_restarts_cold_across_an_epoch_bump() {
    let catalog = catalog();
    let base = policies(&catalog);
    let topology = NetworkTopology::uniform(LocationSet::from_iter(["EU", "US"]), 10.0, 100.0);
    let engine = Engine::new(Arc::clone(&catalog), Arc::new(base.clone()), topology);
    let svc = CatalogService::new(Arc::clone(&catalog), base, Location::new("EU"));

    // Warm the memo: the second identical optimization is served from it.
    engine
        .optimize_sql(SQL, OptimizerMode::Compliant, None)
        .unwrap();
    let warm_misses = engine.implication_memo().misses();
    assert!(warm_misses > 0, "first pass populates the memo");
    engine
        .optimize_sql(SQL, OptimizerMode::Compliant, None)
        .unwrap();
    let warm_hits = engine.implication_memo().hits();
    assert!(warm_hits > 0, "second pass must hit the warmed memo");

    // Grant a new policy: the epoch bumps, and the forked engine's memo
    // is cold — zero hits, zero misses, zero cached verdicts.
    let grant = geoqp_parser::parse_policy("ship u_email from users to EU").unwrap();
    let pin = svc.grant(grant).unwrap();
    let forked = engine.fork_with_policies(svc.snapshot(pin.seq).unwrap());
    assert_ne!(forked.policies().epoch(), engine.policies().epoch());
    assert_eq!(forked.implication_memo().hits(), 0);
    assert_eq!(forked.implication_memo().misses(), 0);
    assert_eq!(forked.implication_memo().len(), 0);

    // The fork's first pass behaves exactly like a brand-new engine over
    // the same snapshot: identical hit/miss/len counters. Any verdict
    // smuggled across the epoch bump would show up as extra hits (and
    // fewer misses) than the genuinely cold engine records.
    forked
        .optimize_sql(SQL, OptimizerMode::Compliant, None)
        .unwrap();
    let fresh = Engine::new(
        Arc::clone(&catalog),
        svc.snapshot(pin.seq).unwrap(),
        forked.topology().clone(),
    );
    fresh
        .optimize_sql(SQL, OptimizerMode::Compliant, None)
        .unwrap();
    assert_eq!(
        forked.implication_memo().hits(),
        fresh.implication_memo().hits(),
        "a forked engine's first pass must hit exactly as often as a cold engine's"
    );
    assert_eq!(
        forked.implication_memo().misses(),
        fresh.implication_memo().misses()
    );
    assert_eq!(
        forked.implication_memo().len(),
        fresh.implication_memo().len()
    );
    assert!(forked.implication_memo().misses() > 0);

    // The original engine's memo is untouched by the fork's activity.
    assert_eq!(engine.implication_memo().hits(), warm_hits);
    assert_eq!(engine.implication_memo().misses(), warm_misses);

    // Revoke-then-regrant restores the policy *content* but chains to a
    // fresh epoch — so even an identical catalog restarts the memo cold
    // rather than resurrecting verdicts from before the revocation.
    let pid = svc
        .find_live("ship u_email from users to EU")
        .expect("the grant is live");
    svc.revoke(pid).unwrap();
    let regrant = geoqp_parser::parse_policy("ship u_email from users to EU").unwrap();
    let repin = svc.grant(regrant).unwrap();
    let snap = svc.snapshot(repin.seq).unwrap();
    assert_ne!(
        snap.epoch(),
        pin.epoch,
        "revoke-then-regrant must not return to the revoked epoch"
    );
    let refork = engine.fork_with_policies(snap);
    assert_eq!(refork.implication_memo().len(), 0, "cold again");
}
