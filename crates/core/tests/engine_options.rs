//! Engine option plumbing: objectives and ablation knobs stay sound.

use geoqp_common::{DataType, Field, Location, Schema, TableRef, Value};
use geoqp_core::{Engine, Objective, OptimizerMode, OptimizerOptions};
use geoqp_net::NetworkTopology;
use geoqp_parser::parse_policy;
use geoqp_policy::PolicyCatalog;
use geoqp_storage::{Catalog, Table, TableStats};
use std::sync::Arc;

fn engine() -> Engine {
    let mut catalog = Catalog::new();
    catalog.add_database("db-x", Location::new("X")).unwrap();
    catalog.add_database("db-y", Location::new("Y")).unwrap();
    catalog.add_database("db-z", Location::new("Z")).unwrap();
    let mk = |catalog: &mut Catalog, db: &str, name: &str, prefix: &str, n: i64| {
        let e = catalog
            .add_table(
                db,
                name,
                Schema::new(vec![
                    Field::new(format!("{prefix}_k"), DataType::Int64),
                    Field::new(format!("{prefix}_v"), DataType::Int64),
                ])
                .unwrap(),
                TableStats::new(n as u64, 18.0),
            )
            .unwrap();
        e.set_data(
            Table::new(
                Arc::clone(&e.schema),
                (0..n)
                    .map(|i| vec![Value::Int64(i % 5), Value::Int64(i)])
                    .collect(),
            )
            .unwrap(),
        )
        .unwrap();
    };
    mk(&mut catalog, "db-x", "tx", "x", 40);
    mk(&mut catalog, "db-y", "ty", "y", 30);
    mk(&mut catalog, "db-z", "tz", "z", 20);
    let mut policies = PolicyCatalog::new();
    for t in ["tx", "ty", "tz"] {
        let e = parse_policy(&format!("ship * from {t} to *")).unwrap();
        let entry = catalog.resolve_one(&TableRef::bare(t)).unwrap();
        policies.register(e, &entry.schema).unwrap();
    }
    Engine::new(
        Arc::new(catalog),
        Arc::new(policies),
        NetworkTopology::uniform(
            geoqp_common::LocationSet::from_iter(["X", "Y", "Z"]),
            10.0,
            100.0,
        ),
    )
}

const SQL: &str = "SELECT x_v, y_v, z_v FROM tx, ty, tz WHERE x_k = y_k AND y_k = z_k";

#[test]
fn both_objectives_produce_sound_equal_results() {
    let eng = engine();
    let ast = geoqp_parser::parse_query(SQL).unwrap();
    let plan = geoqp_parser::lower_query(&ast, eng.catalog()).unwrap();
    let mut results = Vec::new();
    for objective in [Objective::TotalCost, Objective::ResponseTime] {
        let opt = eng
            .optimize_opts(
                &plan,
                OptimizerMode::Compliant,
                None,
                &OptimizerOptions {
                    objective,
                    ..Default::default()
                },
            )
            .unwrap();
        eng.audit(&opt.physical).unwrap();
        let mut rows: Vec<_> = eng.execute(&opt.physical).unwrap().rows.into_rows();
        rows.sort();
        results.push(rows);
    }
    assert_eq!(results[0], results[1]);
    assert_eq!(results[0].len(), 40 * 30 * 20 / 25); // 5-key cross groups: 8×6×4×5
}

#[test]
fn ablation_knobs_do_not_break_soundness() {
    let eng = engine();
    let ast = geoqp_parser::parse_query(SQL).unwrap();
    let plan = geoqp_parser::lower_query(&ast, eng.catalog()).unwrap();
    for opts in [
        OptimizerOptions {
            disable_aggregate_pushdown: true,
            ..Default::default()
        },
        OptimizerOptions {
            frontier_cap: Some(1),
            ..Default::default()
        },
        OptimizerOptions {
            frontier_cap: Some(0), // clamps to 1
            ..Default::default()
        },
    ] {
        let opt = eng
            .optimize_opts(&plan, OptimizerMode::Compliant, None, &opts)
            .unwrap();
        eng.audit(&opt.physical).unwrap();
    }
}
