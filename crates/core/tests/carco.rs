//! End-to-end reproduction of the paper's running example (Section 2,
//! Figure 1): the CarCo deployment with databases in North America (N),
//! Europe (E), and Asia (A), dataflow policies P_N / P_E / P_A, and the
//! three-way join-aggregate query Q_ex.
//!
//! Asserts the paper's claims:
//! * the compliance-based optimizer produces a *compliant* plan
//!   (Theorem 1 / Definition 1 audit),
//! * that plan preserves query semantics (same result as the traditional
//!   plan, which is the semantics oracle),
//! * the compliant plan performs the Figure 1(b) moves: it never ships
//!   raw Supply rows out of Asia nor the Customer account balance out of
//!   North America,
//! * and the joins execute in Europe, as the paper's walkthrough derives.

use geoqp_common::{DataType, Field, Location, Schema, TableRef, Value};
use geoqp_core::{Engine, OptimizerMode};
use geoqp_net::NetworkTopology;
use geoqp_parser::parse_policy;
use geoqp_plan::{PhysOp, PhysicalPlan};
use geoqp_policy::PolicyCatalog;
use geoqp_storage::{Catalog, Table, TableStats};
use std::sync::Arc;

fn carco_catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_database("db-n", Location::new("N")).unwrap();
    c.add_database("db-e", Location::new("E")).unwrap();
    c.add_database("db-a", Location::new("A")).unwrap();

    let customer = Schema::new(vec![
        Field::new("c_custkey", DataType::Int64),
        Field::new("c_name", DataType::Str),
        Field::new("c_acctbal", DataType::Float64),
        Field::new("c_mktseg", DataType::Str),
    ])
    .unwrap();
    let orders = Schema::new(vec![
        Field::new("o_custkey", DataType::Int64),
        Field::new("o_ordkey", DataType::Int64),
        Field::new("o_totprice", DataType::Float64),
    ])
    .unwrap();
    let supply = Schema::new(vec![
        Field::new("s_ordkey", DataType::Int64),
        Field::new("s_quantity", DataType::Int64),
        Field::new("s_extprice", DataType::Float64),
    ])
    .unwrap();

    let ce = c
        .add_table(
            "db-n",
            "customer",
            customer,
            TableStats::new(2, 40.0).with_ndv("c_custkey", 2),
        )
        .unwrap();
    let oe = c
        .add_table(
            "db-e",
            "orders",
            orders,
            TableStats::new(3, 24.0)
                .with_ndv("o_custkey", 2)
                .with_ndv("o_ordkey", 3),
        )
        .unwrap();
    let se = c
        .add_table(
            "db-a",
            "supply",
            supply,
            TableStats::new(5, 20.0).with_ndv("s_ordkey", 3),
        )
        .unwrap();

    ce.set_data(
        Table::new(
            Arc::clone(&ce.schema),
            vec![
                vec![
                    Value::Int64(1),
                    Value::str("alice"),
                    Value::Float64(100.0),
                    Value::str("auto"),
                ],
                vec![
                    Value::Int64(2),
                    Value::str("bob"),
                    Value::Float64(200.0),
                    Value::str("machinery"),
                ],
            ],
        )
        .unwrap(),
    )
    .unwrap();
    oe.set_data(
        Table::new(
            Arc::clone(&oe.schema),
            vec![
                vec![Value::Int64(1), Value::Int64(10), Value::Float64(50.0)],
                vec![Value::Int64(1), Value::Int64(11), Value::Float64(30.0)],
                vec![Value::Int64(2), Value::Int64(12), Value::Float64(20.0)],
            ],
        )
        .unwrap(),
    )
    .unwrap();
    se.set_data(
        Table::new(
            Arc::clone(&se.schema),
            vec![
                vec![Value::Int64(10), Value::Int64(5), Value::Float64(1.0)],
                vec![Value::Int64(10), Value::Int64(7), Value::Float64(2.0)],
                vec![Value::Int64(11), Value::Int64(2), Value::Float64(3.0)],
                vec![Value::Int64(12), Value::Int64(1), Value::Float64(4.0)],
                vec![Value::Int64(12), Value::Int64(3), Value::Float64(5.0)],
            ],
        )
        .unwrap(),
    )
    .unwrap();
    c
}

fn carco_policies(catalog: &Catalog) -> PolicyCatalog {
    let mut p = PolicyCatalog::new();
    let texts = [
        // P_N: Customer data may leave North America only after
        // suppressing the account balance.
        "ship c_custkey, c_name, c_mktseg from db-n.customer to *",
        // P_E: only aggregated Orders data may be shipped to Asia...
        "ship o_totprice as aggregates sum from db-e.orders to A group by o_custkey, o_ordkey",
        // ... and an order's price cannot be shipped to North America.
        "ship o_custkey, o_ordkey from db-e.orders to N, A",
        // P_A: only aggregated Supply quantity/extended-price may be
        // shipped from Asia to Europe.
        "ship s_quantity, s_extprice as aggregates sum from db-a.supply to E group by s_ordkey",
    ];
    for t in texts {
        let e = parse_policy(t).unwrap();
        let entry = catalog.resolve_one(&e.table).unwrap();
        p.register(e, &entry.schema).unwrap();
    }
    p
}

fn engine() -> Engine {
    let catalog = Arc::new(carco_catalog());
    let policies = Arc::new(carco_policies(&catalog));
    // A simple symmetric WAN over the three regions.
    let topo = NetworkTopology::uniform(catalog.locations().clone(), 100.0, 100.0);
    Engine::new(catalog, policies, topo)
}

const Q_EX: &str = "SELECT c_name, SUM(o_totprice) AS sum_price, SUM(s_quantity) AS sum_qty \
     FROM customer, orders, supply \
     WHERE c_custkey = o_custkey AND o_ordkey = s_ordkey \
     GROUP BY c_name ORDER BY c_name";

/// The hand-computed SQL answer over the test data (note SUM(o_totprice)
/// is inflated by supply multiplicity, per standard join semantics).
fn expected() -> Vec<(String, f64, i64)> {
    vec![("alice".into(), 130.0, 14), ("bob".into(), 40.0, 4)]
}

fn check_rows(rows: &geoqp_common::Rows) {
    let exp = expected();
    assert_eq!(rows.len(), exp.len());
    for (row, (name, price, qty)) in rows.iter().zip(exp) {
        assert_eq!(row[0], Value::str(&name));
        assert_eq!(row[1], Value::Float64(price));
        assert_eq!(row[2], Value::Int64(qty));
    }
}

#[test]
fn compliant_plan_is_found_audited_and_correct() {
    let eng = engine();
    let (opt, result) = eng
        .run_sql(Q_EX, OptimizerMode::Compliant, Some(Location::new("E")))
        .unwrap();

    // Theorem 1: the emitted plan audits clean.
    eng.audit(&opt.physical)
        .expect("compliant plan must pass the Definition-1 audit");
    assert_eq!(opt.result_location, Location::new("E"));

    // Semantics preserved.
    check_rows(&result.rows);

    // Figure 1(b) structure: no raw Supply rows leave Asia — every ship
    // out of A carries at most one row per order (3 orders).
    for t in result.transfers.records() {
        if t.from == Location::new("A") {
            assert!(
                t.rows <= 3,
                "raw supply shipped out of Asia: {} rows",
                t.rows
            );
        }
    }

    // Joins execute in Europe (the paper's derivation in Section 6.2).
    opt.physical.visit(&mut |p: &PhysicalPlan| {
        if matches!(p.op, PhysOp::HashJoin { .. }) {
            assert_eq!(p.location, Location::new("E"), "join not placed in Europe");
        }
    });

    // The account balance never appears in any shipped schema.
    opt.physical.visit(&mut |p: &PhysicalPlan| {
        if matches!(p.op, PhysOp::Ship) {
            assert!(
                p.schema.index_of("c_acctbal").is_none(),
                "account balance shipped across a border"
            );
        }
    });
}

#[test]
fn traditional_optimizer_matches_semantics_but_not_compliance() {
    let eng = engine();
    let (opt_c, res_c) = eng
        .run_sql(Q_EX, OptimizerMode::Compliant, Some(Location::new("E")))
        .unwrap();
    let (opt_t, res_t) = eng
        .run_sql(Q_EX, OptimizerMode::Traditional, Some(Location::new("E")))
        .unwrap();

    // Both plans compute the same answer (plan transformations preserve
    // semantics, including the count-adjusted aggregate pushdown).
    check_rows(&res_c.rows);
    check_rows(&res_t.rows);

    // The compliant plan passes the audit by construction.
    eng.audit(&opt_c.physical).unwrap();
    // The traditional plan ships raw restricted data here and must fail.
    let audit = eng.audit(&opt_t.physical);
    assert!(
        audit.is_err(),
        "expected the baseline to violate a policy on this workload"
    );
}

#[test]
fn rejects_query_with_no_compliant_plan() {
    let eng = engine();
    // Raw account balances cannot leave N, and the result is demanded in
    // Europe — no compliant plan can exist.
    let err = eng
        .optimize_sql(
            "SELECT c_name, c_acctbal FROM customer WHERE c_acctbal > 0.0",
            OptimizerMode::Compliant,
            Some(Location::new("E")),
        )
        .unwrap_err();
    assert_eq!(err.kind(), "rejected");

    // The same query with the result at home (N) is fine.
    let ok = eng.optimize_sql(
        "SELECT c_name, c_acctbal FROM customer WHERE c_acctbal > 0.0",
        OptimizerMode::Compliant,
        Some(Location::new("N")),
    );
    assert!(ok.is_ok());
}

#[test]
fn aggregated_orders_may_reach_asia() {
    let eng = engine();
    // Aggregated order prices grouped by custkey are legal in Asia per
    // P_E's aggregate expression.
    let opt = eng
        .optimize_sql(
            "SELECT o_custkey, SUM(o_totprice) AS total FROM orders GROUP BY o_custkey",
            OptimizerMode::Compliant,
            Some(Location::new("A")),
        )
        .unwrap();
    eng.audit(&opt.physical).unwrap();
    assert_eq!(opt.result_location, Location::new("A"));

    // Raw order prices are not.
    let err = eng
        .optimize_sql(
            "SELECT o_custkey, o_totprice FROM orders",
            OptimizerMode::Compliant,
            Some(Location::new("A")),
        )
        .unwrap_err();
    assert_eq!(err.kind(), "rejected");
}

#[test]
fn explain_shows_traits() {
    let eng = engine();
    let opt = eng
        .optimize_sql(Q_EX, OptimizerMode::Compliant, Some(Location::new("E")))
        .unwrap();
    let text = geoqp_core::explain::display_annotated(&opt.annotated);
    assert!(text.contains("ℰ="));
    assert!(text.contains("𝒮="));
    assert!(text.contains("Scan"));
    let phys = geoqp_plan::display::display_physical(&opt.physical);
    assert!(phys.contains("Ship"));
}

#[test]
fn execution_accounts_transfers() {
    let eng = engine();
    let (_, result) = eng
        .run_sql(Q_EX, OptimizerMode::Compliant, Some(Location::new("E")))
        .unwrap();
    assert!(result.transfers.transfer_count() >= 2); // N→E and A→E at least
    assert!(result.transfers.total_bytes() > 0);
    assert!(result.transfers.total_cost_ms() > 0.0);
}

#[test]
fn result_location_none_picks_cheapest_home() {
    let eng = engine();
    let opt = eng
        .optimize_sql(Q_EX, OptimizerMode::Compliant, None)
        .unwrap();
    eng.audit(&opt.physical).unwrap();
    // Without restrictions on the result location the optimizer still
    // produces a compliant, executable plan somewhere.
    let res = eng.execute(&opt.physical).unwrap();
    check_rows(&res.rows);
}

#[test]
fn scan_outside_home_is_caught_by_audit() {
    // Hand-build an illegal plan: ship raw supply to Europe.
    let eng = engine();
    let entry = eng
        .catalog()
        .resolve_one(&TableRef::qualified("db-a", "supply"))
        .unwrap();
    let scan = Arc::new(
        PhysicalPlan::new(
            PhysOp::Scan {
                table: entry.table.clone(),
            },
            Arc::clone(&entry.schema),
            Location::new("A"),
            vec![],
        )
        .unwrap(),
    );
    let shipped = PhysicalPlan::ship(scan, Location::new("E"));
    let err = eng.audit(&shipped).unwrap_err();
    assert_eq!(err.kind(), "non-compliant");
}
