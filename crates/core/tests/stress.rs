//! Stress and edge-case tests for the optimizer: deep chains, wide
//! unions, degenerate inputs.

use geoqp_common::{DataType, Field, Location, LocationSet, Schema, TableRef};
use geoqp_core::{Engine, OptimizerMode};
use geoqp_net::NetworkTopology;
use geoqp_plan::PlanBuilder;
use geoqp_policy::{PolicyCatalog, PolicyExpression, ShipAttrs};
use geoqp_storage::{Catalog, TableStats};
use std::sync::Arc;

fn chain_engine(n: usize) -> (Engine, Arc<geoqp_plan::LogicalPlan>) {
    let mut catalog = Catalog::new();
    let mut policies = PolicyCatalog::new();
    let mut builders: Vec<PlanBuilder> = Vec::new();
    for i in 0..n {
        let db = format!("db-{i}");
        let loc = Location::new(format!("S{i}"));
        catalog.add_database(&db, loc.clone()).unwrap();
        let schema = Schema::new(vec![
            Field::new(format!("t{i}_k"), DataType::Int64),
            Field::new(format!("t{i}_n"), DataType::Int64),
            Field::new(format!("t{i}_v"), DataType::Int64),
        ])
        .unwrap();
        let entry = catalog
            .add_table(
                &db,
                format!("t{i}"),
                schema.clone(),
                TableStats::new(1000 + i as u64 * 100, 27.0),
            )
            .unwrap();
        policies
            .register(
                PolicyExpression::basic(
                    TableRef::bare(format!("t{i}")),
                    ShipAttrs::Star,
                    geoqp_common::LocationPattern::Star,
                    None,
                ),
                &entry.schema,
            )
            .unwrap();
        builders.push(PlanBuilder::scan(entry.table.clone(), loc, schema));
    }
    let mut iter = builders.into_iter();
    let mut acc = iter.next().unwrap();
    for (i, b) in iter.enumerate() {
        let lk = format!("t{i}_n");
        let rk = format!("t{}_k", i + 1);
        acc = acc.join(b, vec![(lk.as_str(), rk.as_str())]).unwrap();
    }
    let plan = acc.build();
    let universe: LocationSet = LocationSet::from_iter((0..n).map(|i| format!("S{i}")));
    let engine = Engine::new(
        Arc::new(catalog),
        Arc::new(policies),
        NetworkTopology::uniform(universe, 20.0, 200.0),
    );
    (engine, plan)
}

#[test]
fn twelve_way_chain_join_optimizes_within_budget() {
    let (engine, plan) = chain_engine(12);
    assert_eq!(plan.join_count(), 11);
    let start = std::time::Instant::now();
    let opt = engine
        .optimize(&plan, OptimizerMode::Compliant, None)
        .expect("12-way chain must optimize");
    engine.audit(&opt.physical).unwrap();
    assert!(
        start.elapsed().as_secs() < 120,
        "optimization took {:?}",
        start.elapsed()
    );
    // Every scan site appears in the plan.
    let mut scans = 0;
    opt.physical.visit(&mut |p| {
        if matches!(p.op, geoqp_plan::PhysOp::Scan { .. }) {
            scans += 1;
        }
    });
    assert_eq!(scans, 12);
}

#[test]
fn single_table_projection_optimizes_trivially() {
    let (engine, _) = chain_engine(2);
    let opt = engine
        .optimize_sql(
            "SELECT t0_v FROM t0 WHERE t0_k > 3",
            OptimizerMode::Compliant,
            None,
        )
        .unwrap();
    assert_eq!(opt.physical.ship_count(), 0);
    assert!(opt.stats.memo_groups <= 5);
}

#[test]
fn wide_union_over_many_partitions() {
    // One logical table partitioned over 5 sites, unioned and aggregated.
    let catalog = Arc::new(geoqp_tpch::paper_catalog_partitioned(0.01, 5).unwrap());
    let policies =
        geoqp_tpch::generate_policies(&catalog, geoqp_tpch::PolicyTemplate::CRA, 10, 1).unwrap();
    let engine = Engine::new(
        Arc::clone(&catalog),
        Arc::new(policies),
        NetworkTopology::paper_wan(),
    );
    let plan = geoqp_tpch::query_by_name(&catalog, "Q3").unwrap();
    let opt = engine
        .optimize(&plan, OptimizerMode::Compliant, None)
        .unwrap();
    engine.audit(&opt.physical).unwrap();
    // 5 customer + 5 orders partitions + 1 lineitem = 11 scans.
    let mut scans = 0;
    opt.physical.visit(&mut |p| {
        if matches!(p.op, geoqp_plan::PhysOp::Scan { .. }) {
            scans += 1;
        }
    });
    assert_eq!(scans, 11);
}

#[test]
fn unicode_values_flow_through_predicates_and_wire() {
    use geoqp_common::{Row, Rows, Value};
    let mut catalog = Catalog::new();
    catalog.add_database("db-u", Location::new("U")).unwrap();
    catalog.add_location(Location::new("V"));
    let entry = catalog
        .add_table(
            "db-u",
            "cities",
            Schema::new(vec![
                Field::new("name", DataType::Str),
                Field::new("pop", DataType::Int64),
            ])
            .unwrap(),
            TableStats::new(4, 24.0),
        )
        .unwrap();
    let rows: Vec<Row> = vec![
        vec![Value::str("Zürich"), Value::Int64(400)],
        vec![Value::str("México"), Value::Int64(9000)],
        vec![Value::str("北京"), Value::Int64(21000)],
        vec![Value::str("Zagreb"), Value::Int64(800)],
    ];
    entry
        .set_data(geoqp_storage::Table::new(Arc::clone(&entry.schema), rows).unwrap())
        .unwrap();
    let mut policies = PolicyCatalog::new();
    policies
        .register(
            geoqp_parser::parse_policy("ship * from cities to *").unwrap(),
            &entry.schema,
        )
        .unwrap();
    let engine = Engine::new(
        Arc::new(catalog),
        Arc::new(policies),
        NetworkTopology::uniform(LocationSet::from_iter(["U", "V"]), 10.0, 100.0),
    );
    let (_, result) = engine
        .run_sql(
            "SELECT name FROM cities WHERE name LIKE 'Z%' ORDER BY name",
            OptimizerMode::Compliant,
            Some(Location::new("V")),
        )
        .unwrap();
    let names: Vec<String> = result
        .rows
        .iter()
        .map(|r| r[0].as_str().unwrap().to_string())
        .collect();
    assert_eq!(names, vec!["Zagreb", "Zürich"]);
    assert_eq!(Rows::decode(&result.rows.encode(), 1).unwrap(), result.rows);
}
