//! Exhaustive rule-semantics validation: **every** physical candidate the
//! optimizer can derive for a query — across all transformation rules,
//! including `JoinExchange` and the count-adjusted aggregation pushdown —
//! must compute the same result when executed.
//!
//! This goes beyond the pipeline fuzz (which only executes the chosen
//! plan): here each root-group candidate is extracted, placed, executed,
//! and compared.

use geoqp_common::{DataType, Field, Location, LocationSet, Row, Rows, Schema, TableRef, Value};
use geoqp_core::annotate::{fill_stats, AnnotateMode, Annotator};
use geoqp_core::memo::Memo;
use geoqp_core::normalize::normalize_plan;
use geoqp_core::rules::{all_rules, explore};
use geoqp_core::select_sites;
use geoqp_exec::{LocalShip, MapSource};
use geoqp_net::NetworkTopology;
use geoqp_plan::{LogicalPlan, PlanBuilder};
use geoqp_policy::{PolicyCatalog, PolicyEvaluator};
use geoqp_storage::{Catalog, TableStats};
use std::cmp::Ordering;
use std::sync::Arc;

struct Fixture {
    catalog: Catalog,
    source: MapSource,
}

fn fixture() -> Fixture {
    let mut catalog = Catalog::new();
    let mut source = MapSource::new();
    let tables: [(&str, &str, &str, i64); 3] = [
        ("db-a", "A", "ta", 13),
        ("db-b", "B", "tb", 9),
        ("db-c", "C", "tc", 7),
    ];
    for (db, loc, t, n) in tables {
        catalog.add_database(db, Location::new(loc)).unwrap();
        let prefix = &t[1..];
        let schema = Schema::new(vec![
            Field::new(format!("{prefix}_k"), DataType::Int64),
            Field::new(format!("{prefix}_m"), DataType::Int64),
            Field::new(format!("{prefix}_v"), DataType::Int64),
        ])
        .unwrap();
        catalog
            .add_table(db, t, schema, TableStats::new(n as u64, 27.0))
            .unwrap();
        let rows: Vec<Row> = (0..n)
            .map(|i| {
                vec![
                    Value::Int64(i % 4),
                    Value::Int64(i % 3),
                    Value::Int64(i * 10 + n),
                ]
            })
            .collect();
        source.insert(
            TableRef::qualified(db, t),
            Location::new(loc),
            Rows::from_rows(rows),
        );
    }
    Fixture { catalog, source }
}

fn scan(f: &Fixture, t: &str) -> PlanBuilder {
    let e = f.catalog.resolve_one(&TableRef::bare(t)).unwrap();
    PlanBuilder::scan(
        e.table.clone(),
        e.location.clone(),
        e.schema.as_ref().clone(),
    )
}

fn canonical(rows: Rows) -> Vec<Row> {
    let mut v = rows.into_rows();
    v.sort_by(|a, b| {
        for (x, y) in a.iter().zip(b.iter()) {
            match x.total_cmp(y) {
                Ordering::Equal => {}
                o => return o,
            }
        }
        Ordering::Equal
    });
    v
}

/// Explore with the FULL rule set, then execute every root candidate.
fn assert_all_candidates_agree(f: &Fixture, plan: Arc<LogicalPlan>) {
    let normalized = normalize_plan(&plan).unwrap();
    let mut memo = Memo::new();
    let root = memo.copy_in(&normalized).unwrap();
    explore(&mut memo, &all_rules()).unwrap();

    let policies = PolicyCatalog::new();
    let universe = LocationSet::from_iter(["A", "B", "C"]);
    let evaluator = PolicyEvaluator::new(&policies, &universe);
    // Traditional mode: every site legal, so every candidate is placeable.
    let annotator = Annotator::new(&f.catalog, &evaluator, AnnotateMode::Traditional);
    let frontiers = annotator.annotate(&memo).unwrap();
    let topo = NetworkTopology::uniform(universe, 1.0, 1000.0);

    let candidates = frontiers.of(root);
    assert!(!candidates.is_empty(), "no candidates for root group");
    let mut reference: Option<Vec<Row>> = None;
    let mut distinct_shapes = 0;
    for cand in candidates {
        let mut annotated = frontiers.extract(&memo, cand);
        fill_stats(&mut annotated, &cand.logical, &f.catalog);
        let sited = select_sites(&annotated, &topo, None).unwrap();
        let rows = geoqp_exec::execute(&sited.physical, &f.source, &mut LocalShip).unwrap();
        let got = canonical(rows);
        match &reference {
            None => reference = Some(got),
            Some(r) => assert_eq!(
                r,
                &got,
                "candidate diverges:\n{}",
                geoqp_plan::display::display_physical(&sited.physical)
            ),
        }
        distinct_shapes += 1;
    }
    assert!(distinct_shapes >= 1);
}

#[test]
fn all_join_orders_agree_on_a_chain() {
    let f = fixture();
    let plan = scan(&f, "ta")
        .join(scan(&f, "tb"), vec![("a_k", "b_k")])
        .unwrap()
        .join(scan(&f, "tc"), vec![("b_m", "c_m")])
        .unwrap()
        .project_columns(&["a_v", "b_v", "c_v"])
        .unwrap()
        .build();
    assert_all_candidates_agree(&f, plan);
}

#[test]
fn exchange_alternatives_agree_on_a_star() {
    let f = fixture();
    // ta joins tb and tc on *different* ta columns — the star shape that
    // only JoinExchange can re-order.
    let plan = scan(&f, "ta")
        .join(scan(&f, "tb"), vec![("a_k", "b_k")])
        .unwrap()
        .join(scan(&f, "tc"), vec![("a_m", "c_m")])
        .unwrap()
        .project_columns(&["a_v", "b_v", "c_v"])
        .unwrap()
        .build();
    assert_all_candidates_agree(&f, plan);
}

#[test]
fn aggregation_pushdown_variants_agree() {
    use geoqp_expr::{AggCall, AggFunc, ScalarExpr};
    let f = fixture();
    // Mixed-side aggregate: SUM over the right side pushes down with a
    // count adjustment for the left-side SUM.
    let plan = scan(&f, "ta")
        .join(scan(&f, "tb"), vec![("a_k", "b_k")])
        .unwrap()
        .aggregate(
            &["a_m"],
            vec![
                AggCall::new(AggFunc::Sum, ScalarExpr::col("b_v"), "sum_b"),
                AggCall::new(AggFunc::Sum, ScalarExpr::col("a_v"), "sum_a"),
                AggCall::new(AggFunc::Min, ScalarExpr::col("b_v"), "min_b"),
                AggCall::new(AggFunc::Max, ScalarExpr::col("a_v"), "max_a"),
            ],
        )
        .unwrap()
        .build();
    assert_all_candidates_agree(&f, plan);
}

#[test]
fn count_star_pushdown_variants_agree() {
    use geoqp_expr::{AggCall, AggFunc, ScalarExpr};
    let f = fixture();
    let plan = scan(&f, "ta")
        .join(scan(&f, "tb"), vec![("a_k", "b_k")])
        .unwrap()
        .aggregate(
            &["b_m"],
            vec![
                AggCall::count_star("n"),
                AggCall::new(AggFunc::Sum, ScalarExpr::col("a_v"), "sum_a"),
            ],
        )
        .unwrap()
        .build();
    assert_all_candidates_agree(&f, plan);
}

#[test]
fn filters_and_residuals_agree() {
    use geoqp_expr::ScalarExpr;
    let f = fixture();
    let plan = scan(&f, "ta")
        .join(scan(&f, "tb"), vec![("a_k", "b_k")])
        .unwrap()
        .filter(
            ScalarExpr::col("a_v")
                .lt(ScalarExpr::col("b_v"))
                .and(ScalarExpr::col("a_m").gt(ScalarExpr::lit(0i64))),
        )
        .unwrap()
        .join(scan(&f, "tc"), vec![("b_m", "c_m")])
        .unwrap()
        .project_columns(&["a_v", "c_v"])
        .unwrap()
        .build();
    assert_all_candidates_agree(&f, plan);
}
