//! Quiesce-free grant retry, end to end on the resilient engine.
//!
//! A revocation lands mid-flight and the re-pinned optimization finds no
//! compliant placement — under the old semantics the query dies with
//! `NonCompliant`. If a *grant* that re-grows the legal set had already
//! landed by the abort step, the engine now re-pins forward onto it and
//! retries: refused-under-pin becomes completed-under-head, with no
//! quiesce of the admission pipeline. The retry is bounded (once per
//! epoch advance), fires only after a genuine refusal, and replays
//! byte-identically under identical seeds.

use geoqp_common::{
    CatalogPin, ChurnEvent, DataType, Field, Location, LocationSet, Schema, TableRef, Value,
};
use geoqp_core::{CatalogService, Engine, FailoverOpts, OptimizerMode};
use geoqp_exec::RetryPolicy;
use geoqp_net::{FaultPlan, NetworkTopology};
use geoqp_policy::PolicyCatalog;
use geoqp_storage::{Catalog, Table, TableStats};
use std::sync::Arc;

fn catalog() -> Arc<Catalog> {
    let mut c = Catalog::new();
    c.add_database("db-eu", Location::new("EU")).unwrap();
    c.add_database("db-us", Location::new("US")).unwrap();
    let users = c
        .add_table(
            "db-eu",
            "users",
            Schema::new(vec![
                Field::new("u_id", DataType::Int64),
                Field::new("u_name", DataType::Str),
            ])
            .unwrap(),
            TableStats::new(2, 32.0),
        )
        .unwrap();
    let events = c
        .add_table(
            "db-us",
            "events",
            Schema::new(vec![
                Field::new("e_user", DataType::Int64),
                Field::new("e_kind", DataType::Str),
            ])
            .unwrap(),
            TableStats::new(2, 16.0),
        )
        .unwrap();
    users
        .set_data(
            Table::new(
                Arc::clone(&users.schema),
                vec![
                    vec![Value::Int64(1), Value::str("alice")],
                    vec![Value::Int64(2), Value::str("bob")],
                ],
            )
            .unwrap(),
        )
        .unwrap();
    events
        .set_data(
            Table::new(
                Arc::clone(&events.schema),
                vec![
                    vec![Value::Int64(1), Value::str("click")],
                    vec![Value::Int64(2), Value::str("view")],
                ],
            )
            .unwrap(),
        )
        .unwrap();
    Arc::new(c)
}

const USERS_POLICY: &str = "ship u_id, u_name from users to *";
const EVENTS_POLICY: &str = "ship * from events to *";

fn policies(catalog: &Catalog) -> PolicyCatalog {
    let mut p = PolicyCatalog::new();
    for (table, text) in [("users", USERS_POLICY), ("events", EVENTS_POLICY)] {
        let expr = geoqp_parser::parse_policy(text).unwrap();
        let entry = catalog.resolve_one(&TableRef::bare(table)).unwrap();
        p.register(expr, &entry.schema).unwrap();
    }
    p
}

const SQL: &str = "SELECT u_name, e_kind FROM users, events WHERE u_id = e_user";

/// The events policy is pid 1 (registration order). Revoking it while
/// the result must land at EU leaves no compliant placement: `e_kind`
/// can no longer cross US → EU.
const EVENTS_PID: u64 = 1;

#[derive(Debug)]
struct Run {
    rows: Vec<String>,
    transfer_bytes: u64,
    transfer_count: usize,
    replans: usize,
    churn_replans: u64,
    grant_retries: u64,
}

/// One resilient execution against a scripted catalog: the events
/// policy is revoked (released at executor step `revoke_step`), and —
/// when `regrant` — granted back one sequence later (released at step
/// `grant_step`).
fn run_scripted(regrant: bool, revoke_step: u64, grant_step: u64) -> geoqp_common::Result<Run> {
    let catalog = catalog();
    let base = policies(&catalog);
    let topology = NetworkTopology::uniform(LocationSet::from_iter(["EU", "US"]), 10.0, 100.0);
    let engine = Engine::new(Arc::clone(&catalog), Arc::new(base.clone()), topology);
    let svc = CatalogService::new(Arc::clone(&catalog), base, Location::new("EU"));
    let pin = CatalogPin::new(0, svc.epoch_at(0).unwrap());
    let rev = svc.revoke(EVENTS_PID).unwrap();
    let mut planned = vec![ChurnEvent {
        step: revoke_step,
        seq: rev.seq,
        epoch: rev.epoch,
        revocation: true,
    }];
    if regrant {
        let expr = geoqp_parser::parse_policy(EVENTS_POLICY).unwrap();
        let re = svc.grant(expr).unwrap();
        planned.push(ChurnEvent {
            step: grant_step,
            seq: re.seq,
            epoch: re.epoch,
            revocation: false,
        });
    }
    let svc = Arc::new(svc.with_planned(planned));
    svc.sync_full();
    let optimized = engine
        .optimize_sql(SQL, OptimizerMode::Compliant, Some(Location::new("EU")))
        .unwrap();
    let opts = FailoverOpts::new(3).with_churn(Arc::clone(&svc), pin);
    let faults = FaultPlan::new(7);
    let result =
        engine.execute_resilient_opts(&optimized, &faults, &RetryPolicy::default(), &opts)?;
    Ok(Run {
        rows: result.rows.iter().map(|r| format!("{r:?}")).collect(),
        transfer_bytes: result.transfers.total_bytes(),
        transfer_count: result.transfers.records().len(),
        replans: result.replans,
        churn_replans: result.churn_replans,
        grant_retries: result.grant_retries,
    })
}

#[test]
fn revocation_without_a_regrant_refuses_typed() {
    let err = run_scripted(false, 0, 0).unwrap_err();
    assert_eq!(err.kind(), "non-compliant");
    assert!(
        err.message().contains("no compliant placement survives"),
        "unexpected refusal: {}",
        err.message()
    );
}

#[test]
fn a_landed_grant_rescues_the_refused_query() {
    let run = run_scripted(true, 0, 0).expect("the regrant restores a compliant placement");
    assert_eq!(run.churn_replans, 1, "one revocation-forced re-plan");
    assert_eq!(
        run.grant_retries, 1,
        "the refusal under the revocation pin re-pinned onto the grant"
    );
    assert!(!run.rows.is_empty());
    // Same rows a churn-free execution produces.
    let baseline = run_scripted(true, 1000, 0).expect("revocation released after the query");
    assert_eq!(baseline.grant_retries, 0);
    assert_eq!(baseline.churn_replans, 0);
    assert_eq!(run.rows, baseline.rows);
}

#[test]
fn grants_landing_after_the_abort_step_cannot_rescue() {
    // The grant releases at step 1000, far beyond the abort step: at
    // retry time the query can only see the revocation, so it refuses
    // exactly as if no grant existed. No hindsight rescues.
    let err = run_scripted(true, 0, 1000).unwrap_err();
    assert_eq!(err.kind(), "non-compliant");
}

#[test]
fn grant_retry_replays_byte_identically_under_identical_seeds() {
    let a = run_scripted(true, 0, 0).unwrap();
    let b = run_scripted(true, 0, 0).unwrap();
    assert_eq!(a.rows, b.rows);
    assert_eq!(a.transfer_bytes, b.transfer_bytes);
    assert_eq!(a.transfer_count, b.transfer_count);
    assert_eq!(
        (a.replans, a.churn_replans, a.grant_retries),
        (b.replans, b.churn_replans, b.grant_retries)
    );
}
