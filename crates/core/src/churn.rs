//! The live policy-catalog service: the coordinator's versioned log, one
//! chain-verifying replica per site, the fault-gated replication
//! transport between them, and the churn signal that pushes revocations
//! into in-flight queries.
//!
//! This is the glue between three layers that deliberately do not know
//! each other:
//!
//! * `geoqp-policy` owns the [`CatalogLog`] / [`CatalogReplica`] state
//!   machines (append, chain-epoch, replay),
//! * `geoqp-net` owns the [`CatalogGossip`] transport (which entry
//!   sequences get through a fault-scheduled link on one pull round),
//! * `geoqp-common` owns the tiny executor-facing surface
//!   ([`CatalogPin`], [`ChurnSignal`], [`StaleGuard`], `ChurnWatch`).
//!
//! The service wires them to the storage catalog (grant validation needs
//! the governed table's schema) and hands the engine everything churn-
//! aware execution needs: epoch-pinned snapshots at admission, a
//! [`StaleGuard`] built from what each replica can *prove* it has seen,
//! and fresh watches after a mid-flight re-pin.

use geoqp_common::{
    CatalogPin, ChurnEvent, ChurnSignal, ChurnWatch, GeoError, Location, LocationSet, Result,
    StaleGuard,
};
use geoqp_net::{CatalogGossip, FaultPlan};
use geoqp_policy::{CatalogLog, CatalogReplica, PolicyCatalog, PolicyExpression};
use geoqp_storage::Catalog;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Churn wiring for one resilient execution: where snapshots, stale
/// guards, and re-pins come from, plus the catalog pin the query was
/// admitted under.
#[derive(Debug, Clone)]
pub struct ChurnOpts {
    /// The deployment's catalog service.
    pub service: Arc<CatalogService>,
    /// The `(seq, epoch)` snapshot pinned at admission.
    pub pin: CatalogPin,
}

/// One replica's catalog-plane health: its applied sequence, how far it
/// trails the coordinator's head, and whether that lag can ever close.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaHealth {
    /// The replica's site.
    pub site: Location,
    /// The highest log sequence the replica has applied.
    pub seq: u64,
    /// `head.seq - seq`: entries the replica has not yet proven.
    pub lag: u64,
    /// The replica's catalog-plane link to the coordinator is severed by
    /// an open-ended fault — its lag is unbounded and will never close.
    pub unbounded: bool,
}

/// A point-in-time health report for the whole catalog plane: the
/// coordinator's head and compaction floor, per-replica lag with its
/// distribution, and the lifetime resilience counters (wipes,
/// snapshot bootstraps, chain-verification rejects, bytes shipped).
#[derive(Debug, Clone)]
pub struct CatalogHealth {
    /// The coordinator's current head `(seq, epoch)`.
    pub head: CatalogPin,
    /// The compaction floor: the oldest sequence still materializable.
    pub floor_seq: u64,
    /// How many times the log's prefix has been compacted away.
    pub compactions: u64,
    /// Replica state losses from catalog-plane crashes.
    pub wipes: u64,
    /// Successful snapshot bootstraps (including deployment setup).
    pub bootstraps: u64,
    /// Snapshots refused because their chain-anchored hash failed
    /// verification. Always zero with an honest coordinator.
    pub chain_rejects: u64,
    /// Bytes of floor snapshots shipped to bootstrapping replicas.
    pub snapshot_bytes: u64,
    /// Bytes of log entries shipped on replication pulls.
    pub entry_bytes: u64,
    /// Median replica lag, in entries.
    pub lag_p50: u64,
    /// Worst replica lag, in entries.
    pub lag_max: u64,
    /// Per-replica health, in site order.
    pub replicas: Vec<ReplicaHealth>,
}

/// The replicated policy-catalog service for one deployment.
///
/// Owns the coordinator's append-only [`CatalogLog`] and a
/// [`CatalogReplica`] per site, connected by pull-based [`CatalogGossip`]
/// over the deployment's simulated network. An optional catalog-plane
/// [`FaultPlan`] makes replica lag, catalog partitions, and crashed
/// replicas replay deterministically from a seed.
#[derive(Debug)]
pub struct CatalogService {
    storage: Arc<Catalog>,
    gossip: CatalogGossip,
    log: Mutex<CatalogLog>,
    replicas: Mutex<BTreeMap<Location, CatalogReplica>>,
    /// Materialized epoch-pinned snapshots, keyed by log sequence. A
    /// snapshot is immutable once materialized (the log is append-only),
    /// and the cache is deliberately kept across compaction: a query
    /// pinned to a since-compacted sequence keeps executing against the
    /// snapshot it admitted under.
    snapshots: Mutex<BTreeMap<u64, Arc<PolicyCatalog>>>,
    signal: Arc<ChurnSignal>,
    faults: Option<FaultPlan>,
    /// Catalog-plane step clock: each sync round consumes one step of
    /// the fault schedule, independent of the data plane's clock.
    clock: AtomicU64,
    /// Compact automatically after appends, keeping at most this many
    /// entries above the floor.
    auto_compact_keep: Option<u64>,
    wipes: AtomicU64,
    bootstraps: AtomicU64,
    chain_rejects: AtomicU64,
    snapshot_bytes: AtomicU64,
    entry_bytes: AtomicU64,
}

impl CatalogService {
    /// A service over `base`, coordinated from `coordinator`, with one
    /// replica per site of the storage catalog and a fault-free catalog
    /// plane.
    pub fn new(
        storage: Arc<Catalog>,
        base: PolicyCatalog,
        coordinator: Location,
    ) -> CatalogService {
        let log = CatalogLog::new(base);
        let replicas = storage
            .locations()
            .iter()
            .map(|site| (site.clone(), log.replica()))
            .collect();
        CatalogService {
            storage,
            gossip: CatalogGossip::new(coordinator),
            log: Mutex::new(log),
            replicas: Mutex::new(replicas),
            snapshots: Mutex::new(BTreeMap::new()),
            signal: Arc::new(ChurnSignal::new()),
            faults: None,
            clock: AtomicU64::new(0),
            auto_compact_keep: None,
            wipes: AtomicU64::new(0),
            bootstraps: AtomicU64::new(0),
            chain_rejects: AtomicU64::new(0),
            snapshot_bytes: AtomicU64::new(0),
            entry_bytes: AtomicU64::new(0),
        }
    }

    /// Drive catalog replication through a seeded fault schedule:
    /// partitions and crashes involving the coordinator link stall a
    /// replica's pulls, which is how a site ends up unable to prove
    /// freshness ([`GeoError::CatalogStale`] at transfer time).
    pub fn with_faults(mut self, faults: FaultPlan) -> CatalogService {
        self.faults = Some(faults);
        self
    }

    /// Replace the churn signal with pre-planned, step-triggered events
    /// (the bench and chaos harnesses): any head published by earlier
    /// [`CatalogService::grant`]/[`CatalogService::revoke`] calls is
    /// discarded, so a log can be scripted up-front and its revocations
    /// released at chosen executor steps instead of immediately.
    pub fn with_planned(mut self, events: Vec<ChurnEvent>) -> CatalogService {
        self.signal = Arc::new(ChurnSignal::with_planned(events));
        self
    }

    /// Compact automatically after every append, keeping at most `keep`
    /// entries of tail above the floor snapshot. `keep = 0` pins the
    /// floor to the head: every replica that misses an entry must
    /// bootstrap from a snapshot.
    pub fn with_auto_compact(mut self, keep: u64) -> CatalogService {
        self.auto_compact_keep = Some(keep);
        self
    }

    fn log(&self) -> MutexGuard<'_, CatalogLog> {
        self.log.lock().expect("catalog log lock poisoned")
    }

    /// The coordinator site holding the log of record.
    pub fn coordinator(&self) -> &Location {
        self.gossip.coordinator()
    }

    /// The storage catalog grants are validated against.
    pub fn storage(&self) -> &Arc<Catalog> {
        &self.storage
    }

    /// The channel revocations reach in-flight queries on.
    pub fn signal(&self) -> Arc<ChurnSignal> {
        Arc::clone(&self.signal)
    }

    /// The coordinator's current head `(seq, epoch)` — what a newly
    /// admitted query pins.
    pub fn head(&self) -> CatalogPin {
        self.log().head()
    }

    /// Append a grant: the expression is validated against its governed
    /// table's schema (resolved through the storage catalog), the epoch
    /// bumps, and the new head is published. Grants never interrupt
    /// in-flight queries — they take effect for queries admitted later.
    pub fn grant(&self, expr: PolicyExpression) -> Result<CatalogPin> {
        let schema = Arc::clone(&self.storage.resolve_one(&expr.table)?.schema);
        let pin = {
            let mut log = self.log();
            let pin = log.grant(expr, &schema)?;
            self.auto_compact(&mut log);
            pin
        };
        self.signal.publish(pin.seq, pin.epoch, false);
        Ok(pin)
    }

    /// Append a revocation of live policy `pid`, bump the epoch, and
    /// push the new head to in-flight queries: any query caught shipping
    /// on a now-revoked edge aborts its attempt and re-plans under the
    /// new epoch.
    pub fn revoke(&self, pid: u64) -> Result<CatalogPin> {
        let pin = {
            let mut log = self.log();
            let pin = log.revoke(pid)?;
            self.auto_compact(&mut log);
            pin
        };
        self.signal.publish(pin.seq, pin.epoch, true);
        Ok(pin)
    }

    fn auto_compact(&self, log: &mut CatalogLog) {
        if let Some(keep) = self.auto_compact_keep {
            let head = log.seq();
            if head.saturating_sub(log.floor_seq()) > keep {
                log.compact(head - keep)
                    .expect("auto-compaction targets a held sequence");
            }
        }
    }

    /// Compact the log's prefix up to `seq`: the live state there becomes
    /// the floor snapshot, earlier entries are truncated, and replicas
    /// that fall below the floor re-bootstrap from the snapshot on their
    /// next sync. Returns the new floor sequence. Sequences below the
    /// current floor are [`GeoError::CatalogCompacted`]; sequences above
    /// the head are a policy error.
    pub fn compact(&self, seq: u64) -> Result<u64> {
        Ok(self.log().compact(seq)?.seq())
    }

    /// The epoch-pinned catalog snapshot at log sequence `seq`, cached.
    /// The cache is consulted first, so a sequence that was materialized
    /// before being compacted away stays servable; a cold read below the
    /// floor is a typed [`GeoError::CatalogCompacted`].
    pub fn snapshot(&self, seq: u64) -> Result<Arc<PolicyCatalog>> {
        let mut cache = self.snapshots.lock().expect("snapshot cache lock poisoned");
        if let Some(snap) = cache.get(&seq) {
            return Ok(Arc::clone(snap));
        }
        let snap = Arc::new(self.log().materialize(seq)?);
        cache.insert(seq, Arc::clone(&snap));
        Ok(snap)
    }

    /// One replication round at catalog-plane step `step`: every site
    /// pulls the entries it is missing, in order, each fetch judged by
    /// the fault plan; delivered entries are chain-verified and applied.
    /// Returns the slowest replica's applied sequence (the deployment's
    /// stable frontier).
    ///
    /// Resilience happens here too. A site inside a catalog-plane crash
    /// window loses its volatile replica state (a *wipe*) — the
    /// coordinator never wipes, its log of record is durable. A replica
    /// whose applied sequence has fallen below the compaction floor
    /// cannot replay entry-by-entry (the prefix is gone); it first pulls
    /// the floor snapshot as one fault-judged, byte-charged transfer and
    /// *bootstraps* from it — chain-verifying the snapshot's anchored
    /// hash before installing — then tails the remaining entries.
    pub fn sync_at(&self, step: u64) -> u64 {
        let log = self.log();
        let head = log.seq();
        let mut replicas = self.replicas.lock().expect("replica table lock poisoned");
        let mut frontier = head;
        for (site, replica) in replicas.iter_mut() {
            if site != self.coordinator()
                && self
                    .faults
                    .as_ref()
                    .is_some_and(|plan| plan.site_down_until(site, step).is_some())
            {
                // The crash loses whatever the replica held beyond its
                // static deployment base; a bare replica has nothing to
                // lose, so repeated windows count one wipe, not many.
                if replica.seq() > 0 {
                    replica.wipe();
                    self.wipes.fetch_add(1, Ordering::Relaxed);
                }
                frontier = frontier.min(replica.seq());
                continue;
            }
            if replica.seq() < log.floor_seq() {
                let snap = log.latest_snapshot();
                if !self
                    .gossip
                    .pull_snapshot(site, snap.seq(), self.faults.as_ref(), step)
                {
                    frontier = frontier.min(replica.seq());
                    continue;
                }
                // The coordinator's replica catches up from its own
                // durable log: no bytes crossed a link, so only remote
                // installs are charged and counted.
                if site != self.coordinator() {
                    self.snapshot_bytes
                        .fetch_add(snap.encoded_len(), Ordering::Relaxed);
                }
                match replica.bootstrap(snap) {
                    Ok(()) => {
                        if site != self.coordinator() {
                            self.bootstraps.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    Err(_) => {
                        self.chain_rejects.fetch_add(1, Ordering::Relaxed);
                        frontier = frontier.min(replica.seq());
                        continue;
                    }
                }
            }
            let target = self
                .gossip
                .pull(site, replica.seq(), head, self.faults.as_ref(), step);
            for entry in log.entries_after(replica.seq()) {
                if entry.seq > target {
                    break;
                }
                replica
                    .apply(entry)
                    .expect("entries pulled from the coordinator's own log chain-verify");
                if site != self.coordinator() {
                    self.entry_bytes
                        .fetch_add(entry.encoded_len(), Ordering::Relaxed);
                }
            }
            frontier = frontier.min(replica.seq());
        }
        frontier
    }

    /// [`CatalogService::sync_at`] at the next catalog-plane step.
    pub fn sync_round(&self) -> u64 {
        let step = self.clock.fetch_add(1, Ordering::Relaxed);
        self.sync_at(step)
    }

    /// Replicate everything, ignoring the fault plan — deployment setup
    /// and tests that want a fully fresh fleet. Replicas below the
    /// compaction floor bootstrap from the floor snapshot (still
    /// chain-verified, still byte-charged) before tailing entries.
    pub fn sync_full(&self) {
        let log = self.log();
        let head = log.seq();
        let mut replicas = self.replicas.lock().expect("replica table lock poisoned");
        for (site, replica) in replicas.iter_mut() {
            if replica.seq() < log.floor_seq() {
                let snap = log.latest_snapshot();
                replica
                    .bootstrap(snap)
                    .expect("the coordinator's own floor snapshot chain-verifies");
                if site != self.coordinator() {
                    self.bootstraps.fetch_add(1, Ordering::Relaxed);
                    self.snapshot_bytes
                        .fetch_add(snap.encoded_len(), Ordering::Relaxed);
                }
            }
            for entry in log.entries_after(replica.seq()) {
                replica
                    .apply(entry)
                    .expect("entries pulled from the coordinator's own log chain-verify");
                if site != self.coordinator() {
                    self.entry_bytes
                        .fetch_add(entry.encoded_len(), Ordering::Relaxed);
                }
            }
            debug_assert_eq!(replica.seq(), head);
        }
    }

    /// Each site's applied log sequence, in site order (the `\catalog`
    /// shell verb's replica listing).
    pub fn replica_seqs(&self) -> Vec<(Location, u64)> {
        self.replicas
            .lock()
            .expect("replica table lock poisoned")
            .iter()
            .map(|(site, r)| (site.clone(), r.seq()))
            .collect()
    }

    /// The set of sites whose catalog-plane link to the coordinator is
    /// cut by an open-ended fault at the current catalog step — their
    /// replica lag is unbounded and will never close on its own.
    fn severed_sites(&self) -> LocationSet {
        let mut severed = LocationSet::new();
        if let Some(plan) = self.faults.as_ref() {
            let step = self.clock.load(Ordering::Relaxed);
            for site in self.storage.locations().iter() {
                if site != self.coordinator() && plan.severed(self.coordinator(), site, step) {
                    severed.insert(site.clone());
                }
            }
        }
        severed
    }

    /// The freshness proof for `pin`: the set of sites whose replica has
    /// applied (and chain-verified) every entry up to the pinned
    /// sequence. Sites outside the set fail safe at transfer time, and
    /// the refusal names the lagging site — distinguishing a replica
    /// that is merely behind from one whose coordinator link is severed
    /// (unbounded lag, will never catch up).
    pub fn stale_guard(&self, pin: CatalogPin) -> StaleGuard {
        let mut fresh = LocationSet::new();
        for (site, replica) in self
            .replicas
            .lock()
            .expect("replica table lock poisoned")
            .iter()
        {
            if replica.has_seen(pin.seq) {
                fresh.insert(site.clone());
            }
        }
        StaleGuard::new(pin, fresh).with_unbounded(self.severed_sites())
    }

    /// The catalog plane's health report: head, compaction floor,
    /// per-replica lag (with its median and maximum), and the lifetime
    /// wipe / bootstrap / chain-reject / byte counters.
    pub fn health(&self) -> CatalogHealth {
        let (head, floor_seq, compactions) = {
            let log = self.log();
            (log.head(), log.floor_seq(), log.compactions())
        };
        let severed = self.severed_sites();
        let replicas: Vec<ReplicaHealth> = self
            .replicas
            .lock()
            .expect("replica table lock poisoned")
            .iter()
            .map(|(site, r)| ReplicaHealth {
                site: site.clone(),
                seq: r.seq(),
                lag: head.seq.saturating_sub(r.seq()),
                unbounded: severed.contains(site),
            })
            .collect();
        let mut lags: Vec<u64> = replicas.iter().map(|r| r.lag).collect();
        lags.sort_unstable();
        CatalogHealth {
            head,
            floor_seq,
            compactions,
            wipes: self.wipes.load(Ordering::Relaxed),
            bootstraps: self.bootstraps.load(Ordering::Relaxed),
            chain_rejects: self.chain_rejects.load(Ordering::Relaxed),
            snapshot_bytes: self.snapshot_bytes.load(Ordering::Relaxed),
            entry_bytes: self.entry_bytes.load(Ordering::Relaxed),
            lag_p50: lags.get(lags.len() / 2).copied().unwrap_or(0),
            lag_max: lags.last().copied().unwrap_or(0),
            replicas,
        }
    }

    /// Everything one execution attempt needs to enforce churn under
    /// `pin`: the pin, the revocation signal, and a freshness guard
    /// built from the current replica states.
    pub fn watch(&self, pin: CatalogPin) -> ChurnWatch {
        ChurnWatch {
            pin,
            signal: self.signal(),
            stale: Some(Arc::new(self.stale_guard(pin))),
        }
    }

    /// The live policies at the head, `(pid, display form)` in pid order.
    pub fn live_policies(&self) -> Vec<(u64, String)> {
        let log = self.log();
        log.live_policies(log.seq())
    }

    /// The pid of the newest live policy whose display form is `expr`,
    /// if any — how the server maps a removed expression back to the
    /// grant it revokes.
    pub fn find_live(&self, expr: &str) -> Option<u64> {
        self.live_policies()
            .into_iter()
            .rev()
            .find(|(_, e)| e == expr)
            .map(|(pid, _)| pid)
    }

    /// Display lines for every appended entry, in sequence order (the
    /// `\catalog` shell verb's history listing).
    pub fn history(&self) -> Vec<String> {
        self.log().entries().iter().map(|e| e.to_string()).collect()
    }

    /// Validate that `seq` names a prefix the coordinator holds, then
    /// return its chain epoch. A sequence compacted below the floor is
    /// a typed [`GeoError::CatalogCompacted`]; one beyond the head is a
    /// policy error.
    pub fn epoch_at(&self, seq: u64) -> Result<u64> {
        let log = self.log();
        if seq < log.floor_seq() {
            return Err(GeoError::CatalogCompacted(format!(
                "catalog seq {seq} was compacted away; the floor snapshot holds seq {}",
                log.floor_seq()
            )));
        }
        log.epoch_at(seq)
            .ok_or_else(|| GeoError::Policy(format!("catalog log has no sequence {seq}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoqp_common::{LocationPattern, TableRef};
    use geoqp_net::StepWindow;
    use geoqp_policy::ShipAttrs;
    use geoqp_storage::Catalog;

    fn storage() -> Arc<Catalog> {
        let mut cat = Catalog::new();
        for (db, site) in [("db1", "L1"), ("db2", "L2"), ("db3", "L3")] {
            cat.add_database(db, Location::new(site)).unwrap();
        }
        cat.add_table(
            "db1",
            "t",
            geoqp_common::Schema::new(vec![
                geoqp_common::Field::new("a", geoqp_common::DataType::Int64),
                geoqp_common::Field::new("b", geoqp_common::DataType::Str),
            ])
            .unwrap(),
            geoqp_storage::TableStats::default(),
        )
        .unwrap();
        Arc::new(cat)
    }

    fn expr(attr: &str) -> PolicyExpression {
        PolicyExpression::basic(
            TableRef::bare("t"),
            ShipAttrs::list([attr]),
            LocationPattern::Star,
            None,
        )
    }

    #[test]
    fn grants_and_revokes_move_the_head_and_publish() {
        let svc = CatalogService::new(storage(), PolicyCatalog::new(), Location::new("L1"));
        let base = svc.head();
        let g = svc.grant(expr("a")).unwrap();
        assert_eq!(g.seq, base.seq + 1);
        assert_eq!(
            svc.signal().revoked_since(0, 0),
            None,
            "grants don't interrupt"
        );
        let r = svc.revoke(0).unwrap();
        assert_eq!(svc.signal().revoked_since(g.seq, 0), Some(r));
        assert!(svc.live_policies().is_empty());
    }

    #[test]
    fn snapshots_are_epoch_pinned_and_cached() {
        let svc = CatalogService::new(storage(), PolicyCatalog::new(), Location::new("L1"));
        let g = svc.grant(expr("a")).unwrap();
        let s0 = svc.snapshot(0).unwrap();
        let s1 = svc.snapshot(g.seq).unwrap();
        assert_ne!(s0.epoch(), s1.epoch());
        assert_eq!(s1.epoch(), g.epoch);
        assert!(Arc::ptr_eq(&s1, &svc.snapshot(g.seq).unwrap()));
    }

    #[test]
    fn partitioned_replicas_go_stale_and_the_guard_refuses_them() {
        let faults = FaultPlan::new(3).with_partition(["L3"], StepWindow::new(0, 100));
        let svc = CatalogService::new(storage(), PolicyCatalog::new(), Location::new("L1"))
            .with_faults(faults);
        let pin = svc.grant(expr("a")).unwrap();
        let frontier = svc.sync_round();
        assert_eq!(frontier, 0, "the partitioned replica is the frontier");
        let guard = svc.stale_guard(pin);
        assert!(
            guard.check_origin(&Location::new("L1")).is_ok(),
            "coordinator"
        );
        assert!(
            guard.check_origin(&Location::new("L2")).is_ok(),
            "healthy replica"
        );
        let err = guard.check_origin(&Location::new("L3")).unwrap_err();
        assert_eq!(err.kind(), "catalog-stale");
        // The partition heals at step 100: the replica catches up.
        svc.sync_at(100);
        assert!(svc
            .stale_guard(pin)
            .check_origin(&Location::new("L3"))
            .is_ok());
    }

    #[test]
    fn crashed_replicas_wipe_then_bootstrap_from_the_floor_snapshot() {
        let faults = FaultPlan::new(5).with_crash("L2", StepWindow::new(1, 3));
        let svc = CatalogService::new(storage(), PolicyCatalog::new(), Location::new("L1"))
            .with_faults(faults)
            .with_auto_compact(0);
        let g1 = svc.grant(expr("a")).unwrap();
        svc.sync_at(0); // L2 is up: it holds seq 1 (via a bootstrap).
        let g2 = svc.grant(expr("b")).unwrap();
        svc.sync_at(1); // L2 crashes holding state: wiped.
        let mid = svc.health();
        assert_eq!(mid.floor_seq, g2.seq, "keep=0 pins the floor to the head");
        assert_eq!(mid.wipes, 1);
        let l2 = |h: &CatalogHealth| {
            h.replicas
                .iter()
                .find(|r| r.site == Location::new("L2"))
                .cloned()
                .unwrap()
        };
        assert_eq!(l2(&mid).seq, 0, "the crash lost everything");
        svc.sync_at(2); // still down
        assert_eq!(
            svc.health().wipes,
            1,
            "a bare replica has nothing left to lose"
        );
        svc.sync_at(4); // recovered: bootstraps straight to the floor
        let end = svc.health();
        assert_eq!(l2(&end).seq, g2.seq);
        assert_eq!(l2(&end).lag, 0);
        assert!(end.bootstraps > mid.bootstraps);
        assert_eq!(end.chain_rejects, 0, "honest snapshots always verify");
        assert!(
            end.snapshot_bytes > 0,
            "snapshot transfers are byte-charged"
        );
        assert_eq!(end.entry_bytes, 0, "keep=0 ships everything as snapshots");
        assert!(svc
            .stale_guard(CatalogPin::new(g2.seq, g2.epoch))
            .check_origin(&Location::new("L2"))
            .is_ok());
        let _ = g1;
    }

    #[test]
    fn compacted_sequences_read_as_typed_errors_but_cached_snapshots_survive() {
        let svc = CatalogService::new(storage(), PolicyCatalog::new(), Location::new("L1"));
        let g1 = svc.grant(expr("a")).unwrap();
        let g2 = svc.grant(expr("b")).unwrap();
        let pinned = svc.snapshot(g1.seq).unwrap(); // materialized before compaction
        svc.compact(g2.seq).unwrap();
        // Regression: a cold read below the floor is typed, never a panic.
        assert_eq!(svc.snapshot(0).unwrap_err().kind(), "catalog-compacted");
        assert_eq!(svc.epoch_at(0).unwrap_err().kind(), "catalog-compacted");
        // In-flight queries pinned before the compaction keep their view.
        assert!(Arc::ptr_eq(&pinned, &svc.snapshot(g1.seq).unwrap()));
        // The floor itself and the head stay readable.
        assert!(svc.snapshot(g2.seq).is_ok());
        assert_eq!(svc.epoch_at(g2.seq).unwrap(), g2.epoch);
        // Compacting below the floor is itself typed.
        assert_eq!(svc.compact(g1.seq).unwrap_err().kind(), "catalog-compacted");
        assert_eq!(svc.health().compactions, 1);
    }

    #[test]
    fn severed_replicas_surface_unbounded_lag_and_named_refusals() {
        let faults = FaultPlan::new(9).with_partition(["L3"], StepWindow::ALWAYS);
        let svc = CatalogService::new(storage(), PolicyCatalog::new(), Location::new("L1"))
            .with_faults(faults);
        let pin = svc.grant(expr("a")).unwrap();
        svc.sync_round();
        let health = svc.health();
        let l3 = health
            .replicas
            .iter()
            .find(|r| r.site == Location::new("L3"))
            .unwrap();
        assert!(l3.unbounded, "an ALWAYS partition can never heal");
        assert_eq!(l3.lag, pin.seq);
        assert_eq!(health.lag_max, pin.seq);
        assert_eq!(health.lag_p50, 0, "the other two replicas are fresh");
        let err = svc
            .stale_guard(pin)
            .check_origin(&Location::new("L3"))
            .unwrap_err();
        match (err.stale_site(), &err) {
            (Some((site, unbounded)), _) => {
                assert_eq!(site, &Location::new("L3"), "the refusal names the site");
                assert!(unbounded);
            }
            _ => panic!("expected a CatalogStale payload, got {err:?}"),
        }
        assert!(err.message().contains("severed"));
    }
}
