//! The live policy-catalog service: the coordinator's versioned log, one
//! chain-verifying replica per site, the fault-gated replication
//! transport between them, and the churn signal that pushes revocations
//! into in-flight queries.
//!
//! This is the glue between three layers that deliberately do not know
//! each other:
//!
//! * `geoqp-policy` owns the [`CatalogLog`] / [`CatalogReplica`] state
//!   machines (append, chain-epoch, replay),
//! * `geoqp-net` owns the [`CatalogGossip`] transport (which entry
//!   sequences get through a fault-scheduled link on one pull round),
//! * `geoqp-common` owns the tiny executor-facing surface
//!   ([`CatalogPin`], [`ChurnSignal`], [`StaleGuard`], `ChurnWatch`).
//!
//! The service wires them to the storage catalog (grant validation needs
//! the governed table's schema) and hands the engine everything churn-
//! aware execution needs: epoch-pinned snapshots at admission, a
//! [`StaleGuard`] built from what each replica can *prove* it has seen,
//! and fresh watches after a mid-flight re-pin.

use geoqp_common::{
    CatalogPin, ChurnEvent, ChurnSignal, ChurnWatch, GeoError, Location, LocationSet, Result,
    StaleGuard,
};
use geoqp_net::{CatalogGossip, FaultPlan};
use geoqp_policy::{CatalogLog, CatalogReplica, PolicyCatalog, PolicyExpression};
use geoqp_storage::Catalog;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Churn wiring for one resilient execution: where snapshots, stale
/// guards, and re-pins come from, plus the catalog pin the query was
/// admitted under.
#[derive(Debug, Clone)]
pub struct ChurnOpts {
    /// The deployment's catalog service.
    pub service: Arc<CatalogService>,
    /// The `(seq, epoch)` snapshot pinned at admission.
    pub pin: CatalogPin,
}

/// The replicated policy-catalog service for one deployment.
///
/// Owns the coordinator's append-only [`CatalogLog`] and a
/// [`CatalogReplica`] per site, connected by pull-based [`CatalogGossip`]
/// over the deployment's simulated network. An optional catalog-plane
/// [`FaultPlan`] makes replica lag, catalog partitions, and crashed
/// replicas replay deterministically from a seed.
#[derive(Debug)]
pub struct CatalogService {
    storage: Arc<Catalog>,
    gossip: CatalogGossip,
    log: Mutex<CatalogLog>,
    replicas: Mutex<BTreeMap<Location, CatalogReplica>>,
    /// Materialized epoch-pinned snapshots, keyed by log sequence. A
    /// snapshot is immutable once materialized (the log is append-only),
    /// so the cache never invalidates.
    snapshots: Mutex<BTreeMap<u64, Arc<PolicyCatalog>>>,
    signal: Arc<ChurnSignal>,
    faults: Option<FaultPlan>,
    /// Catalog-plane step clock: each sync round consumes one step of
    /// the fault schedule, independent of the data plane's clock.
    clock: AtomicU64,
}

impl CatalogService {
    /// A service over `base`, coordinated from `coordinator`, with one
    /// replica per site of the storage catalog and a fault-free catalog
    /// plane.
    pub fn new(
        storage: Arc<Catalog>,
        base: PolicyCatalog,
        coordinator: Location,
    ) -> CatalogService {
        let log = CatalogLog::new(base);
        let replicas = storage
            .locations()
            .iter()
            .map(|site| (site.clone(), log.replica()))
            .collect();
        CatalogService {
            storage,
            gossip: CatalogGossip::new(coordinator),
            log: Mutex::new(log),
            replicas: Mutex::new(replicas),
            snapshots: Mutex::new(BTreeMap::new()),
            signal: Arc::new(ChurnSignal::new()),
            faults: None,
            clock: AtomicU64::new(0),
        }
    }

    /// Drive catalog replication through a seeded fault schedule:
    /// partitions and crashes involving the coordinator link stall a
    /// replica's pulls, which is how a site ends up unable to prove
    /// freshness ([`GeoError::CatalogStale`] at transfer time).
    pub fn with_faults(mut self, faults: FaultPlan) -> CatalogService {
        self.faults = Some(faults);
        self
    }

    /// Replace the churn signal with pre-planned, step-triggered events
    /// (the bench and chaos harnesses): any head published by earlier
    /// [`CatalogService::grant`]/[`CatalogService::revoke`] calls is
    /// discarded, so a log can be scripted up-front and its revocations
    /// released at chosen executor steps instead of immediately.
    pub fn with_planned(mut self, events: Vec<ChurnEvent>) -> CatalogService {
        self.signal = Arc::new(ChurnSignal::with_planned(events));
        self
    }

    fn log(&self) -> MutexGuard<'_, CatalogLog> {
        self.log.lock().expect("catalog log lock poisoned")
    }

    /// The coordinator site holding the log of record.
    pub fn coordinator(&self) -> &Location {
        self.gossip.coordinator()
    }

    /// The storage catalog grants are validated against.
    pub fn storage(&self) -> &Arc<Catalog> {
        &self.storage
    }

    /// The channel revocations reach in-flight queries on.
    pub fn signal(&self) -> Arc<ChurnSignal> {
        Arc::clone(&self.signal)
    }

    /// The coordinator's current head `(seq, epoch)` — what a newly
    /// admitted query pins.
    pub fn head(&self) -> CatalogPin {
        self.log().head()
    }

    /// Append a grant: the expression is validated against its governed
    /// table's schema (resolved through the storage catalog), the epoch
    /// bumps, and the new head is published. Grants never interrupt
    /// in-flight queries — they take effect for queries admitted later.
    pub fn grant(&self, expr: PolicyExpression) -> Result<CatalogPin> {
        let schema = Arc::clone(&self.storage.resolve_one(&expr.table)?.schema);
        let pin = self.log().grant(expr, &schema)?;
        self.signal.publish(pin.seq, pin.epoch, false);
        Ok(pin)
    }

    /// Append a revocation of live policy `pid`, bump the epoch, and
    /// push the new head to in-flight queries: any query caught shipping
    /// on a now-revoked edge aborts its attempt and re-plans under the
    /// new epoch.
    pub fn revoke(&self, pid: u64) -> Result<CatalogPin> {
        let pin = self.log().revoke(pid)?;
        self.signal.publish(pin.seq, pin.epoch, true);
        Ok(pin)
    }

    /// The epoch-pinned catalog snapshot at log sequence `seq`, cached.
    pub fn snapshot(&self, seq: u64) -> Result<Arc<PolicyCatalog>> {
        let mut cache = self.snapshots.lock().expect("snapshot cache lock poisoned");
        if let Some(snap) = cache.get(&seq) {
            return Ok(Arc::clone(snap));
        }
        let snap = Arc::new(self.log().materialize(seq)?);
        cache.insert(seq, Arc::clone(&snap));
        Ok(snap)
    }

    /// One replication round at catalog-plane step `step`: every site
    /// pulls the entries it is missing, in order, each fetch judged by
    /// the fault plan; delivered entries are chain-verified and applied.
    /// Returns the slowest replica's applied sequence (the deployment's
    /// stable frontier).
    pub fn sync_at(&self, step: u64) -> u64 {
        let log = self.log();
        let head = log.seq();
        let mut replicas = self.replicas.lock().expect("replica table lock poisoned");
        let mut frontier = head;
        for (site, replica) in replicas.iter_mut() {
            let target = self
                .gossip
                .pull(site, replica.seq(), head, self.faults.as_ref(), step);
            for entry in log.entries_after(replica.seq()) {
                if entry.seq > target {
                    break;
                }
                replica
                    .apply(entry)
                    .expect("entries pulled from the coordinator's own log chain-verify");
            }
            frontier = frontier.min(replica.seq());
        }
        frontier
    }

    /// [`CatalogService::sync_at`] at the next catalog-plane step.
    pub fn sync_round(&self) -> u64 {
        let step = self.clock.fetch_add(1, Ordering::Relaxed);
        self.sync_at(step)
    }

    /// Replicate everything, ignoring the fault plan — deployment setup
    /// and tests that want a fully fresh fleet.
    pub fn sync_full(&self) {
        let log = self.log();
        let head = log.seq();
        let mut replicas = self.replicas.lock().expect("replica table lock poisoned");
        for replica in replicas.values_mut() {
            for entry in log.entries_after(replica.seq()) {
                replica
                    .apply(entry)
                    .expect("entries pulled from the coordinator's own log chain-verify");
            }
            debug_assert_eq!(replica.seq(), head);
        }
    }

    /// Each site's applied log sequence, in site order (the `\catalog`
    /// shell verb's replica listing).
    pub fn replica_seqs(&self) -> Vec<(Location, u64)> {
        self.replicas
            .lock()
            .expect("replica table lock poisoned")
            .iter()
            .map(|(site, r)| (site.clone(), r.seq()))
            .collect()
    }

    /// The freshness proof for `pin`: the set of sites whose replica has
    /// applied (and chain-verified) every entry up to the pinned
    /// sequence. Sites outside the set fail safe at transfer time.
    pub fn stale_guard(&self, pin: CatalogPin) -> StaleGuard {
        let mut fresh = LocationSet::new();
        for (site, replica) in self
            .replicas
            .lock()
            .expect("replica table lock poisoned")
            .iter()
        {
            if replica.has_seen(pin.seq) {
                fresh.insert(site.clone());
            }
        }
        StaleGuard::new(pin, fresh)
    }

    /// Everything one execution attempt needs to enforce churn under
    /// `pin`: the pin, the revocation signal, and a freshness guard
    /// built from the current replica states.
    pub fn watch(&self, pin: CatalogPin) -> ChurnWatch {
        ChurnWatch {
            pin,
            signal: self.signal(),
            stale: Some(Arc::new(self.stale_guard(pin))),
        }
    }

    /// The live policies at the head, `(pid, display form)` in pid order.
    pub fn live_policies(&self) -> Vec<(u64, String)> {
        let log = self.log();
        log.live_policies(log.seq())
    }

    /// The pid of the newest live policy whose display form is `expr`,
    /// if any — how the server maps a removed expression back to the
    /// grant it revokes.
    pub fn find_live(&self, expr: &str) -> Option<u64> {
        self.live_policies()
            .into_iter()
            .rev()
            .find(|(_, e)| e == expr)
            .map(|(pid, _)| pid)
    }

    /// Display lines for every appended entry, in sequence order (the
    /// `\catalog` shell verb's history listing).
    pub fn history(&self) -> Vec<String> {
        self.log().entries().iter().map(|e| e.to_string()).collect()
    }

    /// Validate that `seq` names a prefix the coordinator holds, then
    /// return its chain epoch.
    pub fn epoch_at(&self, seq: u64) -> Result<u64> {
        self.log()
            .epoch_at(seq)
            .ok_or_else(|| GeoError::Policy(format!("catalog log has no sequence {seq}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoqp_common::{LocationPattern, TableRef};
    use geoqp_net::StepWindow;
    use geoqp_policy::ShipAttrs;
    use geoqp_storage::Catalog;

    fn storage() -> Arc<Catalog> {
        let mut cat = Catalog::new();
        for (db, site) in [("db1", "L1"), ("db2", "L2"), ("db3", "L3")] {
            cat.add_database(db, Location::new(site)).unwrap();
        }
        cat.add_table(
            "db1",
            "t",
            geoqp_common::Schema::new(vec![
                geoqp_common::Field::new("a", geoqp_common::DataType::Int64),
                geoqp_common::Field::new("b", geoqp_common::DataType::Str),
            ])
            .unwrap(),
            geoqp_storage::TableStats::default(),
        )
        .unwrap();
        Arc::new(cat)
    }

    fn expr(attr: &str) -> PolicyExpression {
        PolicyExpression::basic(
            TableRef::bare("t"),
            ShipAttrs::list([attr]),
            LocationPattern::Star,
            None,
        )
    }

    #[test]
    fn grants_and_revokes_move_the_head_and_publish() {
        let svc = CatalogService::new(storage(), PolicyCatalog::new(), Location::new("L1"));
        let base = svc.head();
        let g = svc.grant(expr("a")).unwrap();
        assert_eq!(g.seq, base.seq + 1);
        assert_eq!(
            svc.signal().revoked_since(0, 0),
            None,
            "grants don't interrupt"
        );
        let r = svc.revoke(0).unwrap();
        assert_eq!(svc.signal().revoked_since(g.seq, 0), Some(r));
        assert!(svc.live_policies().is_empty());
    }

    #[test]
    fn snapshots_are_epoch_pinned_and_cached() {
        let svc = CatalogService::new(storage(), PolicyCatalog::new(), Location::new("L1"));
        let g = svc.grant(expr("a")).unwrap();
        let s0 = svc.snapshot(0).unwrap();
        let s1 = svc.snapshot(g.seq).unwrap();
        assert_ne!(s0.epoch(), s1.epoch());
        assert_eq!(s1.epoch(), g.epoch);
        assert!(Arc::ptr_eq(&s1, &svc.snapshot(g.seq).unwrap()));
    }

    #[test]
    fn partitioned_replicas_go_stale_and_the_guard_refuses_them() {
        let faults = FaultPlan::new(3).with_partition(["L3"], StepWindow::new(0, 100));
        let svc = CatalogService::new(storage(), PolicyCatalog::new(), Location::new("L1"))
            .with_faults(faults);
        let pin = svc.grant(expr("a")).unwrap();
        let frontier = svc.sync_round();
        assert_eq!(frontier, 0, "the partitioned replica is the frontier");
        let guard = svc.stale_guard(pin);
        assert!(
            guard.check_origin(&Location::new("L1")).is_ok(),
            "coordinator"
        );
        assert!(
            guard.check_origin(&Location::new("L2")).is_ok(),
            "healthy replica"
        );
        let err = guard.check_origin(&Location::new("L3")).unwrap_err();
        assert_eq!(err.kind(), "catalog-stale");
        // The partition heals at step 100: the replica catches up.
        svc.sync_at(100);
        assert!(svc
            .stale_guard(pin)
            .check_origin(&Location::new("L3"))
            .is_ok());
    }
}
