//! The rule engine: algebraic transformation rules applied to the memo
//! until fixpoint (Volcano's "apply equivalence rules in a top-down
//! fashion", Section 6 — here realized as an exhaustive fixpoint over the
//! memo, which explores the same space).

pub mod transform;

use crate::memo::{GroupId, MExpr, Memo};
use geoqp_common::Result;
use std::collections::HashSet;

/// A logical transformation rule.
pub trait TransformRule: Send + Sync {
    /// Rule name (diagnostics).
    fn name(&self) -> &'static str;

    /// Inspect `expr` (an expression of `group`) and return equivalent
    /// expressions to be added to the same group. May create new child
    /// groups in the memo.
    fn apply(&self, memo: &mut Memo, group: GroupId, expr: &MExpr) -> Result<Vec<MExpr>>;
}

/// The default rule set of the compliance-based optimizer. Filter
/// pushdown and column pruning are *not* explored here — they are
/// dominating rewrites applied exhaustively by the
/// [`normalize`](crate::normalize) pre-pass; the memo explores only the
/// transformations with genuine trade-offs.
pub fn default_rules() -> Vec<Box<dyn TransformRule>> {
    vec![
        Box::new(transform::JoinAssocLeft),
        Box::new(transform::JoinAssocRight),
        Box::new(transform::AggregateJoinPushdown),
        Box::new(transform::ProjectUnionTranspose),
    ]
}

/// Every implemented rule, including the pushdown/pruning rules the
/// default pipeline handles in the normalization pre-pass. Used by rule
/// unit tests and available for experimentation.
pub fn all_rules() -> Vec<Box<dyn TransformRule>> {
    vec![
        Box::new(transform::FilterMerge),
        Box::new(transform::FilterPushdown),
        Box::new(transform::ProjectMerge),
        Box::new(transform::ProjectJoinTranspose),
        Box::new(transform::ProjectUnionTranspose),
        Box::new(transform::AggregateInputPrune),
        Box::new(transform::JoinAssocLeft),
        Box::new(transform::JoinAssocRight),
        Box::new(transform::JoinExchange),
        Box::new(transform::AggregateJoinPushdown),
    ]
}

/// Apply rules to fixpoint. Each `(group, expr, rule)` application is keyed
/// together with a fingerprint of the expression's child groups, so rules
/// that pattern-match into child groups re-fire when those groups gain new
/// alternatives.
pub fn explore(memo: &mut Memo, rules: &[Box<dyn TransformRule>]) -> Result<ExploreStats> {
    let mut applied: HashSet<(usize, usize, usize, usize)> = HashSet::new();
    let mut stats = ExploreStats::default();
    loop {
        let mut changed = false;
        let group_count = memo.group_count();
        for g in 0..group_count {
            let gid = GroupId(g);
            let mut ei = 0;
            while ei < memo.group(gid).exprs.len() {
                let expr = memo.group(gid).exprs[ei].clone();
                let fingerprint: usize = expr
                    .children
                    .iter()
                    .map(|c| memo.group(*c).exprs.len())
                    .sum();
                for (ri, rule) in rules.iter().enumerate() {
                    if !applied.insert((g, ei, ri, fingerprint)) {
                        continue;
                    }
                    let new_exprs = rule.apply(memo, gid, &expr)?;
                    stats.applications += 1;
                    for ne in new_exprs {
                        let ne = MExpr {
                            op: crate::memo::canon_op(ne.op),
                            children: ne.children,
                        };
                        if memo.add_expr(gid, ne)? {
                            changed = true;
                            stats.new_exprs += 1;
                        }
                    }
                }
                ei += 1;
            }
        }
        stats.passes += 1;
        if !changed && memo.group_count() == group_count {
            break;
        }
        if stats.passes > 64 {
            // Safety valve; in practice fixpoint lands within a handful of
            // passes.
            break;
        }
    }
    Ok(stats)
}

/// Exploration statistics.
#[derive(Debug, Default, Clone, Copy)]
pub struct ExploreStats {
    /// Fixpoint passes.
    pub passes: usize,
    /// Rule applications attempted.
    pub applications: u64,
    /// New expressions added.
    pub new_exprs: u64,
}
