//! The logical transformation rules.
//!
//! Together these span the plan space the paper's optimizer explores:
//! filter pushdown and merge, projection pushdown (the *masking* operators
//! that make restricted subplans shippable), join re-association and
//! exchange (join-order enumeration), and **eager aggregation past joins**
//! with count adjustment — the rule Section 6.4 singles out as the one
//! completeness hinges on (without it, Figure 4's only compliant plan is
//! never generated and the query is rejected).

use crate::memo::{GroupId, MExpr, MOp, Memo};
use crate::rules::TransformRule;
use geoqp_common::Result;
use geoqp_expr::{conjoin, predicate::partition_conjuncts, AggCall, AggFunc, ScalarExpr};
use std::collections::{BTreeMap, BTreeSet};

// --------------------------------------------------------------- helpers

fn group_columns(memo: &Memo, g: GroupId) -> BTreeSet<String> {
    memo.group(g)
        .schema
        .names()
        .iter()
        .map(|s| s.to_string())
        .collect()
}

/// Create (or find) the group for `op(children)`.
fn make_group(memo: &mut Memo, op: MOp, children: Vec<GroupId>) -> Result<GroupId> {
    let expr = MExpr {
        op: crate::memo::canon_op(op),
        children,
    };
    let repr = memo.repr_plan_of(&expr)?;
    memo.add_group_with_expr(repr, expr)
}

/// Replace column references by mapped expressions (projection inlining).
fn substitute(expr: &ScalarExpr, map: &BTreeMap<String, ScalarExpr>) -> ScalarExpr {
    match expr {
        ScalarExpr::Column(n) => map.get(n).cloned().unwrap_or_else(|| expr.clone()),
        ScalarExpr::Literal(_) => expr.clone(),
        ScalarExpr::Binary { op, lhs, rhs } => ScalarExpr::Binary {
            op: *op,
            lhs: Box::new(substitute(lhs, map)),
            rhs: Box::new(substitute(rhs, map)),
        },
        ScalarExpr::Unary { op, expr } => ScalarExpr::Unary {
            op: *op,
            expr: Box::new(substitute(expr, map)),
        },
        ScalarExpr::Like {
            expr,
            pattern,
            negated,
        } => ScalarExpr::Like {
            expr: Box::new(substitute(expr, map)),
            pattern: pattern.clone(),
            negated: *negated,
        },
        ScalarExpr::InList {
            expr,
            list,
            negated,
        } => ScalarExpr::InList {
            expr: Box::new(substitute(expr, map)),
            list: list.clone(),
            negated: *negated,
        },
        ScalarExpr::Between {
            expr,
            low,
            high,
            negated,
        } => ScalarExpr::Between {
            expr: Box::new(substitute(expr, map)),
            low: Box::new(substitute(low, map)),
            high: Box::new(substitute(high, map)),
            negated: *negated,
        },
        ScalarExpr::IsNull { expr, negated } => ScalarExpr::IsNull {
            expr: Box::new(substitute(expr, map)),
            negated: *negated,
        },
    }
}

// ------------------------------------------------------------ FilterMerge

/// `σ_p(σ_q(x)) → σ_{p∧q}(x)`
pub struct FilterMerge;

impl TransformRule for FilterMerge {
    fn name(&self) -> &'static str {
        "FilterMerge"
    }

    fn apply(&self, memo: &mut Memo, _group: GroupId, expr: &MExpr) -> Result<Vec<MExpr>> {
        let MOp::Filter { predicate } = &expr.op else {
            return Ok(vec![]);
        };
        let child = expr.children[0];
        let mut out = Vec::new();
        for ce in memo.group(child).exprs.clone() {
            if let MOp::Filter { predicate: inner } = &ce.op {
                out.push(MExpr {
                    op: MOp::Filter {
                        predicate: predicate.clone().and(inner.clone()),
                    },
                    children: ce.children.clone(),
                });
            }
        }
        Ok(out)
    }
}

// --------------------------------------------------------- FilterPushdown

/// Push filters through joins, projections, unions, aggregations, and
/// sorts.
pub struct FilterPushdown;

impl TransformRule for FilterPushdown {
    fn name(&self) -> &'static str {
        "FilterPushdown"
    }

    fn apply(&self, memo: &mut Memo, _group: GroupId, expr: &MExpr) -> Result<Vec<MExpr>> {
        let MOp::Filter { predicate } = &expr.op else {
            return Ok(vec![]);
        };
        let child = expr.children[0];
        let mut out = Vec::new();
        for ce in memo.group(child).exprs.clone() {
            match &ce.op {
                MOp::Join { on, filter } => {
                    let lcols = group_columns(memo, ce.children[0]);
                    let rcols = group_columns(memo, ce.children[1]);
                    let (lparts, rest) = partition_conjuncts(predicate, &lcols);
                    let (rparts, rest) = match conjoin(rest) {
                        None => (Vec::new(), Vec::new()),
                        Some(r) => partition_conjuncts(&r, &rcols),
                    };
                    if lparts.is_empty() && rparts.is_empty() {
                        continue;
                    }
                    let new_l = match conjoin(lparts) {
                        Some(p) => {
                            make_group(memo, MOp::Filter { predicate: p }, vec![ce.children[0]])?
                        }
                        None => ce.children[0],
                    };
                    let new_r = match conjoin(rparts) {
                        Some(p) => {
                            make_group(memo, MOp::Filter { predicate: p }, vec![ce.children[1]])?
                        }
                        None => ce.children[1],
                    };
                    let join_op = MOp::Join {
                        on: on.clone(),
                        filter: filter.clone(),
                    };
                    match conjoin(rest) {
                        None => out.push(MExpr {
                            op: join_op,
                            children: vec![new_l, new_r],
                        }),
                        Some(rest) => {
                            let jg = make_group(memo, join_op, vec![new_l, new_r])?;
                            out.push(MExpr {
                                op: MOp::Filter { predicate: rest },
                                children: vec![jg],
                            });
                        }
                    }
                }
                MOp::Project { exprs } => {
                    let map: BTreeMap<String, ScalarExpr> =
                        exprs.iter().map(|(e, n)| (n.clone(), e.clone())).collect();
                    let inner = substitute(predicate, &map);
                    let fg =
                        make_group(memo, MOp::Filter { predicate: inner }, vec![ce.children[0]])?;
                    out.push(MExpr {
                        op: MOp::Project {
                            exprs: exprs.clone(),
                        },
                        children: vec![fg],
                    });
                }
                MOp::Union => {
                    let mut filtered = Vec::with_capacity(ce.children.len());
                    for c in &ce.children {
                        filtered.push(make_group(
                            memo,
                            MOp::Filter {
                                predicate: predicate.clone(),
                            },
                            vec![*c],
                        )?);
                    }
                    out.push(MExpr {
                        op: MOp::Union,
                        children: filtered,
                    });
                }
                MOp::Aggregate { group_by, aggs } => {
                    // Push only predicates over grouping columns.
                    let gset: BTreeSet<String> = group_by.iter().cloned().collect();
                    if predicate.referenced_columns().is_subset(&gset) {
                        let fg = make_group(
                            memo,
                            MOp::Filter {
                                predicate: predicate.clone(),
                            },
                            vec![ce.children[0]],
                        )?;
                        out.push(MExpr {
                            op: MOp::Aggregate {
                                group_by: group_by.clone(),
                                aggs: aggs.clone(),
                            },
                            children: vec![fg],
                        });
                    }
                }
                MOp::Sort { keys } => {
                    let fg = make_group(
                        memo,
                        MOp::Filter {
                            predicate: predicate.clone(),
                        },
                        vec![ce.children[0]],
                    )?;
                    out.push(MExpr {
                        op: MOp::Sort { keys: keys.clone() },
                        children: vec![fg],
                    });
                }
                _ => {}
            }
        }
        Ok(out)
    }
}

// ----------------------------------------------------------- ProjectMerge

/// `Π_a(Π_b(x)) → Π_{a∘b}(x)`
pub struct ProjectMerge;

impl TransformRule for ProjectMerge {
    fn name(&self) -> &'static str {
        "ProjectMerge"
    }

    fn apply(&self, memo: &mut Memo, _group: GroupId, expr: &MExpr) -> Result<Vec<MExpr>> {
        let MOp::Project { exprs } = &expr.op else {
            return Ok(vec![]);
        };
        let child = expr.children[0];
        let mut out = Vec::new();
        for ce in memo.group(child).exprs.clone() {
            if let MOp::Project { exprs: inner } = &ce.op {
                let map: BTreeMap<String, ScalarExpr> =
                    inner.iter().map(|(e, n)| (n.clone(), e.clone())).collect();
                let merged: Vec<(ScalarExpr, String)> = exprs
                    .iter()
                    .map(|(e, n)| (substitute(e, &map), n.clone()))
                    .collect();
                out.push(MExpr {
                    op: MOp::Project { exprs: merged },
                    children: ce.children.clone(),
                });
            }
        }
        Ok(out)
    }
}

// -------------------------------------------------- ProjectJoinTranspose

/// Push column pruning below a join: `Π(A ⋈ B) → Π(Π(A) ⋈ Π(B))`.
/// This generates the *masking* projections that make restricted source
/// data shippable (Figure 1(b), operator 2).
pub struct ProjectJoinTranspose;

impl TransformRule for ProjectJoinTranspose {
    fn name(&self) -> &'static str {
        "ProjectJoinTranspose"
    }

    fn apply(&self, memo: &mut Memo, _group: GroupId, expr: &MExpr) -> Result<Vec<MExpr>> {
        let MOp::Project { exprs } = &expr.op else {
            return Ok(vec![]);
        };
        let child = expr.children[0];
        let mut out = Vec::new();
        for ce in memo.group(child).exprs.clone() {
            let MOp::Join { on, filter } = &ce.op else {
                continue;
            };
            let mut needed: BTreeSet<String> = BTreeSet::new();
            for (e, _) in exprs {
                needed.extend(e.referenced_columns());
            }
            for (l, r) in on {
                needed.insert(l.clone());
                needed.insert(r.clone());
            }
            if let Some(f) = filter {
                needed.extend(f.referenced_columns());
            }
            let prune = |memo: &mut Memo, g: GroupId| -> Result<Option<GroupId>> {
                let cols = group_columns(memo, g);
                let keep: Vec<String> = memo
                    .group(g)
                    .schema
                    .names()
                    .iter()
                    .filter(|c| needed.contains(**c))
                    .map(|s| s.to_string())
                    .collect();
                if keep.len() == cols.len() || keep.is_empty() {
                    return Ok(None);
                }
                let p = MOp::Project {
                    exprs: keep
                        .into_iter()
                        .map(|c| (ScalarExpr::col(c.clone()), c))
                        .collect(),
                };
                Ok(Some(make_group(memo, p, vec![g])?))
            };
            let new_l = prune(memo, ce.children[0])?;
            let new_r = prune(memo, ce.children[1])?;
            if new_l.is_none() && new_r.is_none() {
                continue;
            }
            let jl = new_l.unwrap_or(ce.children[0]);
            let jr = new_r.unwrap_or(ce.children[1]);
            let jg = make_group(
                memo,
                MOp::Join {
                    on: on.clone(),
                    filter: filter.clone(),
                },
                vec![jl, jr],
            )?;
            out.push(MExpr {
                op: MOp::Project {
                    exprs: exprs.clone(),
                },
                children: vec![jg],
            });
        }
        Ok(out)
    }
}

// ------------------------------------------------- ProjectUnionTranspose

/// `Π(U(x1..xn)) → U(Π(x1)..Π(xn))` — masks each partition at its site.
pub struct ProjectUnionTranspose;

impl TransformRule for ProjectUnionTranspose {
    fn name(&self) -> &'static str {
        "ProjectUnionTranspose"
    }

    fn apply(&self, memo: &mut Memo, _group: GroupId, expr: &MExpr) -> Result<Vec<MExpr>> {
        let MOp::Project { exprs } = &expr.op else {
            return Ok(vec![]);
        };
        let child = expr.children[0];
        let mut out = Vec::new();
        for ce in memo.group(child).exprs.clone() {
            if matches!(ce.op, MOp::Union) {
                let mut projected = Vec::with_capacity(ce.children.len());
                for c in &ce.children {
                    projected.push(make_group(
                        memo,
                        MOp::Project {
                            exprs: exprs.clone(),
                        },
                        vec![*c],
                    )?);
                }
                out.push(MExpr {
                    op: MOp::Union,
                    children: projected,
                });
            }
        }
        Ok(out)
    }
}

// -------------------------------------------------- AggregateInputPrune

/// Insert a column-pruning projection below an aggregation:
/// `Γ_{G,F}(x) → Γ_{G,F}(Π_{G ∪ cols(F)}(x))`. Enables the
/// projection-into-join cascade that masks source tables before shipping.
pub struct AggregateInputPrune;

impl TransformRule for AggregateInputPrune {
    fn name(&self) -> &'static str {
        "AggregateInputPrune"
    }

    fn apply(&self, memo: &mut Memo, _group: GroupId, expr: &MExpr) -> Result<Vec<MExpr>> {
        let MOp::Aggregate { group_by, aggs } = &expr.op else {
            return Ok(vec![]);
        };
        let child = expr.children[0];
        let mut needed: BTreeSet<String> = group_by.iter().cloned().collect();
        for a in aggs {
            if let Some(arg) = &a.arg {
                needed.extend(arg.referenced_columns());
            }
        }
        let all = group_columns(memo, child);
        if needed.len() >= all.len() || needed.is_empty() {
            return Ok(vec![]);
        }
        let keep: Vec<String> = memo
            .group(child)
            .schema
            .names()
            .iter()
            .filter(|c| needed.contains(**c))
            .map(|s| s.to_string())
            .collect();
        let pg = make_group(
            memo,
            MOp::Project {
                exprs: keep
                    .into_iter()
                    .map(|c| (ScalarExpr::col(c.clone()), c))
                    .collect(),
            },
            vec![child],
        )?;
        Ok(vec![MExpr {
            op: MOp::Aggregate {
                group_by: group_by.clone(),
                aggs: aggs.clone(),
            },
            children: vec![pg],
        }])
    }
}

// ---------------------------------------------------------- join algebra

/// Equi-join keys as `(left column, right column)` pairs.
type JoinKeys = Vec<(String, String)>;

/// Split join keys `(l, r)` of an outer join by which side of a nested
/// join their left columns come from.
fn split_keys(on: &[(String, String)], first: &BTreeSet<String>) -> (JoinKeys, JoinKeys) {
    let mut in_first = Vec::new();
    let mut rest = Vec::new();
    for (l, r) in on {
        if first.contains(l) {
            in_first.push((l.clone(), r.clone()));
        } else {
            rest.push((l.clone(), r.clone()));
        }
    }
    (in_first, rest)
}

/// `(A ⋈ B) ⋈ C → A ⋈ (B ⋈ C)` when some outer keys connect B↔C.
pub struct JoinAssocLeft;

impl TransformRule for JoinAssocLeft {
    fn name(&self) -> &'static str {
        "JoinAssocLeft"
    }

    fn apply(&self, memo: &mut Memo, _group: GroupId, expr: &MExpr) -> Result<Vec<MExpr>> {
        let MOp::Join {
            on: on_outer,
            filter: f_outer,
        } = &expr.op
        else {
            return Ok(vec![]);
        };
        let (gl, gc) = (expr.children[0], expr.children[1]);
        let mut out = Vec::new();
        for ce in memo.group(gl).exprs.clone() {
            let MOp::Join {
                on: on_inner,
                filter: f_inner,
            } = &ce.op
            else {
                continue;
            };
            let (ga, gb) = (ce.children[0], ce.children[1]);
            let acols = group_columns(memo, ga);
            // Outer keys whose left column lives in A stay at the new
            // outer join; keys from B move into the new inner join (B⋈C).
            let (keys_a, keys_b) = split_keys(on_outer, &acols);
            if keys_b.is_empty() || !keys_a.is_empty() {
                // Either nothing connects B↔C (the inner join would be a
                // cross join), or the outer keys span both A and B:
                // splitting keys across levels multiplies semantically
                // distinct key placements and explodes the memo on cyclic
                // join graphs — skip mixed splits.
                continue;
            }
            // The inner filter may reference A columns; it must then stay
            // at the outer join.
            let (f_move, f_stay) = match f_inner {
                None => (None, None),
                Some(f) => {
                    if f.referenced_columns().is_subset(&acols) {
                        (None, Some(f.clone()))
                    } else {
                        (Some(f.clone()), None)
                    }
                }
            };
            // New inner: B ⋈ C on keys_b.
            let inner = make_group(
                memo,
                MOp::Join {
                    on: keys_b,
                    filter: None,
                },
                vec![gb, gc],
            )?;
            // New outer: A ⋈ inner on (on_inner ++ keys_a).
            let mut on_new = on_inner.clone();
            on_new.extend(keys_a);
            let filter_new = {
                let parts: Vec<ScalarExpr> = [f_outer.clone(), f_move, f_stay]
                    .into_iter()
                    .flatten()
                    .collect();
                conjoin(parts)
            };
            out.push(MExpr {
                op: MOp::Join {
                    on: on_new,
                    filter: filter_new,
                },
                children: vec![ga, inner],
            });
        }
        Ok(out)
    }
}

/// `A ⋈ (B ⋈ C) → (A ⋈ B) ⋈ C` when some outer keys connect A↔B.
pub struct JoinAssocRight;

impl TransformRule for JoinAssocRight {
    fn name(&self) -> &'static str {
        "JoinAssocRight"
    }

    fn apply(&self, memo: &mut Memo, _group: GroupId, expr: &MExpr) -> Result<Vec<MExpr>> {
        let MOp::Join {
            on: on_outer,
            filter: f_outer,
        } = &expr.op
        else {
            return Ok(vec![]);
        };
        let (ga, gr) = (expr.children[0], expr.children[1]);
        let mut out = Vec::new();
        for ce in memo.group(gr).exprs.clone() {
            let MOp::Join {
                on: on_inner,
                filter: f_inner,
            } = &ce.op
            else {
                continue;
            };
            let (gb, gc) = (ce.children[0], ce.children[1]);
            let bcols = group_columns(memo, gb);
            // Outer keys: (a_col, right_col); right_col ∈ B moves to the
            // new inner join (A⋈B); right_col ∈ C stays at the new outer.
            let mut keys_ab = Vec::new();
            let mut keys_ac = Vec::new();
            for (l, r) in on_outer {
                if bcols.contains(r) {
                    keys_ab.push((l.clone(), r.clone()));
                } else {
                    keys_ac.push((l.clone(), r.clone()));
                }
            }
            if keys_ab.is_empty() || !keys_ac.is_empty() {
                continue; // mixed split (see JoinAssocLeft)
            }
            let (f_move, f_stay) = match f_inner {
                None => (None, None),
                Some(f) => {
                    if f.referenced_columns().is_subset(&bcols) {
                        (Some(f.clone()), None)
                    } else {
                        (None, Some(f.clone()))
                    }
                }
            };
            // New inner: A ⋈ B.
            let inner = make_group(
                memo,
                MOp::Join {
                    on: keys_ab,
                    filter: f_move,
                },
                vec![ga, gb],
            )?;
            // New outer: inner ⋈ C on (on_inner ++ keys_ac).
            let mut on_new = on_inner.clone();
            on_new.extend(keys_ac);
            let parts: Vec<ScalarExpr> = [f_outer.clone(), f_stay].into_iter().flatten().collect();
            out.push(MExpr {
                op: MOp::Join {
                    on: on_new,
                    filter: conjoin(parts),
                },
                children: vec![inner, gc],
            });
        }
        Ok(out)
    }
}

/// `(A ⋈ B) ⋈ C → Π((A ⋈ C) ⋈ B)` when some outer keys connect A↔C.
/// The projection restores the original column order, keeping the group
/// schema invariant.
pub struct JoinExchange;

impl TransformRule for JoinExchange {
    fn name(&self) -> &'static str {
        "JoinExchange"
    }

    fn apply(&self, memo: &mut Memo, group: GroupId, expr: &MExpr) -> Result<Vec<MExpr>> {
        let MOp::Join {
            on: on_outer,
            filter: f_outer,
        } = &expr.op
        else {
            return Ok(vec![]);
        };
        let (gl, gc) = (expr.children[0], expr.children[1]);
        let mut out = Vec::new();
        for ce in memo.group(gl).exprs.clone() {
            let MOp::Join {
                on: on_inner,
                filter: f_inner,
            } = &ce.op
            else {
                continue;
            };
            let (ga, gb) = (ce.children[0], ce.children[1]);
            let acols = group_columns(memo, ga);
            let (keys_ac, keys_bc) = split_keys(on_outer, &acols);
            if keys_ac.is_empty() {
                continue; // nothing connects A↔C
            }
            // Inner filter referencing B columns keeps B adjacent; only
            // exchange when the inner filter (if any) is A-only.
            if let Some(f) = f_inner {
                if !f.referenced_columns().is_subset(&acols) {
                    continue;
                }
            }
            // New inner: A ⋈ C on keys_ac.
            let inner = make_group(
                memo,
                MOp::Join {
                    on: keys_ac,
                    filter: f_inner.clone(),
                },
                vec![ga, gc],
            )?;
            // New outer: (A⋈C) ⋈ B on on_inner (A↔B) plus keys_bc flipped
            // to (c-side…, b-side) orientation: original (b, c) becomes
            // left = c (in A⋈C), right = b.
            let mut on_new = on_inner.clone();
            for (b, c) in keys_bc {
                on_new.push((c, b));
            }
            let jg = make_group(
                memo,
                MOp::Join {
                    on: on_new,
                    filter: f_outer.clone(),
                },
                vec![inner, gb],
            )?;
            // Restore the original column order (A, B, C).
            let order: Vec<(ScalarExpr, String)> = memo
                .group(group)
                .schema
                .names()
                .iter()
                .map(|c| (ScalarExpr::col(*c), c.to_string()))
                .collect();
            out.push(MExpr {
                op: MOp::Project { exprs: order },
                children: vec![jg],
            });
        }
        Ok(out)
    }
}

// --------------------------------------------- AggregateJoinPushdown

/// Eager aggregation past a join with count adjustment (Yan–Larson style):
///
/// `Γ_{G,F}(L ⋈ R) → Γ_{G,F'}(L ⋈ Γ_{(G∩R) ∪ keys(R); partials, cnt}(R))`
///
/// where R-side SUM/MIN/MAX/COUNT become partial aggregates re-aggregated
/// above, and L-side SUMs are multiplied by the per-group row count `cnt`
/// to preserve join multiplicities. This is the transformation that makes
/// Figure 1(b)'s compliant plan (pre-aggregating Supply in Asia)
/// reachable; Section 6.4 notes completeness hinges on it. AVG and
/// L-side `COUNT(col)` block the rule (they do not decompose in this
/// form).
pub struct AggregateJoinPushdown;

impl AggregateJoinPushdown {
    #[allow(clippy::too_many_arguments)]
    fn try_push(
        &self,
        memo: &mut Memo,
        group_by: &[String],
        aggs: &[AggCall],
        on: &[(String, String)],
        push_left: bool,
        children: &[GroupId],
        tag: usize,
    ) -> Result<Option<MExpr>> {
        let (keep_g, push_g) = if push_left {
            (children[1], children[0])
        } else {
            (children[0], children[1])
        };
        let push_cols = group_columns(memo, push_g);
        let keep_cols = group_columns(memo, keep_g);

        // Classify aggregates.
        let mut pushed: Vec<(usize, &AggCall)> = Vec::new();
        let mut kept: Vec<(usize, &AggCall)> = Vec::new();
        let mut needs_cnt = false;
        for (i, a) in aggs.iter().enumerate() {
            if a.func == AggFunc::Avg {
                return Ok(None);
            }
            match &a.arg {
                None => {
                    // COUNT(*): counts joined rows = Σ cnt.
                    needs_cnt = true;
                    kept.push((i, a));
                }
                Some(arg) => {
                    let cols = arg.referenced_columns();
                    if cols.is_subset(&push_cols) {
                        pushed.push((i, a));
                    } else if cols.is_subset(&keep_cols) {
                        match a.func {
                            AggFunc::Sum => {
                                needs_cnt = true;
                                kept.push((i, a));
                            }
                            AggFunc::Min | AggFunc::Max => kept.push((i, a)),
                            // COUNT(col) on the kept side needs NULL-aware
                            // multiplication — not expressible here.
                            AggFunc::Count => return Ok(None),
                            AggFunc::Avg => unreachable!(),
                        }
                    } else {
                        return Ok(None); // mixed-side argument
                    }
                }
            }
        }
        if pushed.is_empty() {
            return Ok(None);
        }

        // Inner grouping: pushed side's share of G plus its join keys.
        let mut inner_groups: Vec<String> = Vec::new();
        for g in group_by {
            if push_cols.contains(g) {
                inner_groups.push(g.clone());
            }
        }
        for (l, r) in on {
            let k = if push_left { l } else { r };
            if !inner_groups.contains(k) {
                inner_groups.push(k.clone());
            }
        }

        // Inner aggregate calls: partials plus (optionally) cnt.
        let mut inner_aggs: Vec<AggCall> = Vec::new();
        let mut partial_name: BTreeMap<usize, String> = BTreeMap::new();
        for (i, a) in &pushed {
            let name = format!("__p{tag}_{i}");
            inner_aggs.push(AggCall {
                func: a.func,
                arg: a.arg.clone(),
                alias: name.clone(),
            });
            partial_name.insert(*i, name);
        }
        let cnt_name = format!("__cnt{tag}");
        if needs_cnt {
            // SUM(1) ≡ COUNT(*), but references no base attribute, so the
            // local-query descriptor stays expressible and AR4 can still
            // evaluate policies over the pre-aggregated side. Group
            // cardinalities are disclosed by any grouped aggregate anyway.
            inner_aggs.push(AggCall::new(AggFunc::Sum, ScalarExpr::lit(1i64), &cnt_name));
        }
        let inner_agg_g = make_group(
            memo,
            MOp::Aggregate {
                group_by: inner_groups,
                aggs: inner_aggs,
            },
            vec![push_g],
        )?;

        // Rebuild the join over the pre-aggregated side. Join key names
        // survive the inner aggregation (they are inner group columns).
        let (jl, jr) = if push_left {
            (inner_agg_g, keep_g)
        } else {
            (keep_g, inner_agg_g)
        };
        let join_g = make_group(
            memo,
            MOp::Join {
                on: on.to_vec(),
                filter: None,
            },
            vec![jl, jr],
        )?;

        // Outer aggregate with rewritten calls, preserving aliases/types.
        let mut outer_aggs: Vec<AggCall> = Vec::with_capacity(aggs.len());
        for (i, a) in aggs.iter().enumerate() {
            if let Some(pname) = partial_name.get(&i) {
                let func = match a.func {
                    AggFunc::Sum | AggFunc::Count => AggFunc::Sum,
                    AggFunc::Min => AggFunc::Min,
                    AggFunc::Max => AggFunc::Max,
                    _ => unreachable!(),
                };
                outer_aggs.push(AggCall {
                    func,
                    arg: Some(ScalarExpr::col(pname.clone())),
                    alias: a.alias.clone(),
                });
            } else {
                match (&a.arg, a.func) {
                    (None, AggFunc::Count) => outer_aggs.push(AggCall {
                        func: AggFunc::Sum,
                        arg: Some(ScalarExpr::col(cnt_name.clone())),
                        alias: a.alias.clone(),
                    }),
                    (Some(arg), AggFunc::Sum) => outer_aggs.push(AggCall {
                        func: AggFunc::Sum,
                        arg: Some(arg.clone().mul(ScalarExpr::col(cnt_name.clone()))),
                        alias: a.alias.clone(),
                    }),
                    (Some(_), AggFunc::Min) | (Some(_), AggFunc::Max) => outer_aggs.push(a.clone()),
                    _ => unreachable!("classified above"),
                }
            }
        }
        Ok(Some(MExpr {
            op: MOp::Aggregate {
                group_by: group_by.to_vec(),
                aggs: outer_aggs,
            },
            children: vec![join_g],
        }))
    }
}

impl TransformRule for AggregateJoinPushdown {
    fn name(&self) -> &'static str {
        "AggregateJoinPushdown"
    }

    fn apply(&self, memo: &mut Memo, group: GroupId, expr: &MExpr) -> Result<Vec<MExpr>> {
        let MOp::Aggregate { group_by, aggs } = &expr.op else {
            return Ok(vec![]);
        };
        // Never re-push an aggregate this rule itself produced (its
        // arguments reference partial columns) — that cascade never
        // terminates and adds nothing: the partials already sit below
        // the join.
        let touches_partials = aggs.iter().any(|a| {
            a.alias.starts_with("__p")
                || a.alias.starts_with("__cnt")
                || a.arg.as_ref().is_some_and(|arg| {
                    arg.referenced_columns()
                        .iter()
                        .any(|c| c.starts_with("__p") || c.starts_with("__cnt"))
                })
        });
        if touches_partials {
            return Ok(vec![]);
        }
        let child = expr.children[0];
        let mut out = Vec::new();
        for ce in memo.group(child).exprs.clone() {
            let MOp::Join { on, filter } = &ce.op else {
                continue;
            };
            if filter.is_some() {
                // A residual join filter may reference pushed-side columns
                // lost by the inner aggregation; skip conservatively.
                continue;
            }
            let tag = group.0;
            if let Some(e) = self.try_push(memo, group_by, aggs, on, false, &ce.children, tag)? {
                out.push(e);
            }
            if let Some(e) = self.try_push(memo, group_by, aggs, on, true, &ce.children, tag)? {
                out.push(e);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{all_rules, explore};
    use geoqp_common::{DataType, Field, Location, Schema, TableRef};
    use geoqp_plan::PlanBuilder;
    use std::sync::Arc;

    fn scan(name: &str, loc: &str, cols: &[&str]) -> PlanBuilder {
        PlanBuilder::scan(
            TableRef::bare(name),
            Location::new(loc),
            Schema::new(
                cols.iter()
                    .map(|c| {
                        Field::new(
                            *c,
                            if c.ends_with("_s") {
                                DataType::Str
                            } else {
                                DataType::Int64
                            },
                        )
                    })
                    .collect(),
            )
            .unwrap(),
        )
    }

    fn explore_plan(plan: Arc<geoqp_plan::LogicalPlan>) -> (Memo, GroupId) {
        let mut memo = Memo::new();
        let root = memo.copy_in(&plan).unwrap();
        explore(&mut memo, &all_rules()).unwrap();
        (memo, root)
    }

    #[test]
    fn filter_pushdown_through_join() {
        let plan = scan("a", "X", &["a_k", "a_v"])
            .join(scan("b", "Y", &["b_k", "b_v"]), vec![("a_k", "b_k")])
            .unwrap()
            .filter(ScalarExpr::col("a_v").gt(ScalarExpr::lit(5i64)))
            .unwrap()
            .build();
        let (memo, root) = explore_plan(plan);
        // The filter group should now contain a Join expression whose left
        // child holds a filtered scan.
        let has_pushed_join = memo
            .group(root)
            .exprs
            .iter()
            .any(|e| matches!(e.op, MOp::Join { .. }));
        assert!(has_pushed_join, "filter not pushed through join");
    }

    #[test]
    fn join_association_generates_alternatives() {
        // Chain a-b-c: both parenthesizations should appear.
        let plan = scan("a", "X", &["a_k"])
            .join(scan("b", "Y", &["b_k", "b_c"]), vec![("a_k", "b_k")])
            .unwrap()
            .join(scan("c", "Z", &["c_k"]), vec![("b_c", "c_k")])
            .unwrap()
            .build();
        let (memo, root) = explore_plan(plan);
        // Root group should have ≥ 2 join expressions: ((ab)c) and (a(bc)).
        let join_exprs = memo
            .group(root)
            .exprs
            .iter()
            .filter(|e| matches!(e.op, MOp::Join { .. }))
            .count();
        assert!(
            join_exprs >= 2,
            "expected associativity alternative, got {join_exprs}"
        );
    }

    #[test]
    fn join_exchange_covers_star_schemas() {
        // Star: f joins d1 and d2 on separate keys.
        let plan = scan("f", "X", &["f_k1", "f_k2"])
            .join(scan("d1", "Y", &["d1_k"]), vec![("f_k1", "d1_k")])
            .unwrap()
            .join(scan("d2", "Z", &["d2_k"]), vec![("f_k2", "d2_k")])
            .unwrap()
            .build();
        let (memo, root) = explore_plan(plan);
        // The exchanged form appears as a Project over ((f⋈d2)⋈d1).
        let has_project = memo
            .group(root)
            .exprs
            .iter()
            .any(|e| matches!(e.op, MOp::Project { .. }));
        assert!(has_project, "exchange alternative missing");
    }

    #[test]
    fn aggregate_pushdown_generates_partial_aggregate() {
        // Γ_{a_v; sum(b_v)}(a ⋈ b) — sum over the right side pushes down.
        let plan = scan("a", "X", &["a_k", "a_v"])
            .join(scan("b", "Y", &["b_k", "b_v"]), vec![("a_k", "b_k")])
            .unwrap()
            .aggregate(
                &["a_v"],
                vec![AggCall::new(AggFunc::Sum, ScalarExpr::col("b_v"), "s")],
            )
            .unwrap()
            .build();
        let (memo, root) = explore_plan(plan);
        // Root group gains an Aggregate over a join with an inner partial
        // aggregate; detect by finding any group with an Aggregate over b.
        let mut found_partial = false;
        for g in memo.groups() {
            for e in &g.exprs {
                if let MOp::Aggregate { aggs, .. } = &e.op {
                    if aggs.iter().any(|a| a.alias.starts_with("__p")) {
                        found_partial = true;
                    }
                }
            }
        }
        assert!(found_partial, "no partial aggregate generated");
        assert!(memo.group(root).exprs.len() >= 2);
    }

    #[test]
    fn aggregate_pushdown_skips_avg() {
        let plan = scan("a", "X", &["a_k", "a_v"])
            .join(scan("b", "Y", &["b_k", "b_v"]), vec![("a_k", "b_k")])
            .unwrap()
            .aggregate(
                &["a_v"],
                vec![AggCall::new(AggFunc::Avg, ScalarExpr::col("b_v"), "m")],
            )
            .unwrap()
            .build();
        let (memo, _) = explore_plan(plan);
        for g in memo.groups() {
            for e in &g.exprs {
                if let MOp::Aggregate { aggs, .. } = &e.op {
                    assert!(
                        !aggs.iter().any(|a| a.alias.starts_with("__p")),
                        "AVG must not be pushed"
                    );
                }
            }
        }
    }

    #[test]
    fn project_prunes_join_inputs() {
        let plan = scan("a", "X", &["a_k", "a_v", "a_w"])
            .join(scan("b", "Y", &["b_k", "b_v"]), vec![("a_k", "b_k")])
            .unwrap()
            .project_columns(&["a_v", "b_v"])
            .unwrap()
            .build();
        let (memo, _root) = explore_plan(plan);
        // Some group should contain a 2-column projection over scan a
        // (a_k for the join key, a_v for the output — a_w pruned).
        let mut pruned = false;
        for g in memo.groups() {
            for e in &g.exprs {
                if let MOp::Project { exprs } = &e.op {
                    let names: Vec<&str> = exprs.iter().map(|(_, n)| n.as_str()).collect();
                    if names == vec!["a_k", "a_v"] {
                        pruned = true;
                    }
                }
            }
        }
        assert!(pruned, "masking projection not generated");
    }

    #[test]
    fn exploration_terminates_on_larger_chains() {
        // 6-way chain join: exploration must terminate within budget.
        let mut b = scan("t0", "L0", &["t0_k", "t0_n"]);
        for i in 1..6 {
            let prev_link = format!("t{}_n", i - 1);
            let this_key = format!("t{i}_k");
            b = b
                .join(
                    scan(
                        &format!("t{i}"),
                        &format!("L{i}"),
                        &[&this_key, &format!("t{i}_n")],
                    ),
                    vec![(prev_link.as_str(), this_key.as_str())],
                )
                .unwrap();
        }
        let plan = b.build();
        let (memo, root) = explore_plan(plan);
        assert!(memo.group_count() > 10);
        assert!(!memo.group(root).exprs.is_empty());
    }
}
