//! The compliant query processing engine (Figure 2's architecture):
//! policy catalog + compliance-based optimizer + query executor over
//! simulated geo-distributed sites.

use crate::annotate::{fill_stats, AnnotateMode, AnnotatedNode, Annotator};
use crate::churn::{CatalogService, ChurnOpts};
use crate::compliance::{check_compliance, ship_audit_info, ship_traits};
use crate::distributed::{CatalogSource, SimShip};
use crate::memo::Memo;
use crate::rules::{default_rules, explore};
use crate::site_selector::{select_sites_with, Objective};
use geoqp_common::{
    CancelToken, CatalogPin, ChurnWatch, GeoError, Location, LocationSet, QueryDeadline, Result,
    Rows, RunControl,
};
use geoqp_exec::RetryPolicy;
use geoqp_net::{
    FaultPlan, HedgeConfig, LinkHealth, LinkReport, NetworkTopology, RelayEvent, TransferLog,
};
use geoqp_plan::logical::LogicalPlan;
use geoqp_plan::{PhysOp, PhysicalPlan};
use geoqp_policy::{ImplicationMemo, PolicyCatalog, PolicyEvaluator};
use geoqp_runtime::{
    fingerprint, stitch, CheckpointSpec, CheckpointStore, Runtime, RuntimeConfig, RuntimeMetrics,
};
use geoqp_storage::Catalog;
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Instant;

/// Which executor runs a located plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RuntimeMode {
    /// The single-threaded recursive interpreter: sites take turns, each
    /// SHIP moves one monolithic batch.
    #[default]
    Sequential,
    /// The concurrent pipelined runtime (`geoqp-runtime`): one worker
    /// thread per plan fragment, streaming bounded-batch exchanges at
    /// SHIP boundaries, per-batch Definition-1 audit.
    Parallel,
}

/// Which optimizer to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptimizerMode {
    /// The paper's compliance-based optimizer (annotation rules + Pareto
    /// traits + compliant site selection).
    Compliant,
    /// The traditional cost-based baseline: same search engine and cost
    /// model, policies ignored, every site legal (Section 7.1's baseline).
    Traditional,
}

/// Knobs for [`Engine::optimize_opts`]: the placement objective plus two
/// ablation switches used by the experiment harness.
#[derive(Debug, Clone, Default)]
pub struct OptimizerOptions {
    /// Phase-2 placement objective.
    pub objective: Objective,
    /// Ablation: drop the eager-aggregation rule (Section 6.4's
    /// completeness discussion — masking-by-aggregation plans become
    /// unreachable and affected queries are rejected).
    pub disable_aggregate_pushdown: bool,
    /// Ablation: cap each memo group's Pareto frontier; `Some(1)` keeps
    /// only the cheapest candidate, discarding trait diversity.
    pub frontier_cap: Option<usize>,
}

/// Timing and search-space measurements for one optimization run.
#[derive(Debug, Clone, Default)]
pub struct OptimizeStats {
    /// Phase-1 (plan annotator) time, ms.
    pub phase1_ms: f64,
    /// Phase-2 (site selector) time, ms.
    pub phase2_ms: f64,
    /// Total optimization time, ms.
    pub total_ms: f64,
    /// Memo groups after exploration.
    pub memo_groups: usize,
    /// Memo expressions after exploration.
    pub memo_exprs: usize,
    /// Physical candidates across all frontiers.
    pub candidates: usize,
    /// `η` — expressions passing overlap + implication in Algorithm 1
    /// (the paper's Figure 7 measure).
    pub eta: u64,
    /// Policy-evaluator invocations.
    pub policy_invocations: u64,
    /// Phase-2 estimated shipping cost, ms.
    pub est_ship_cost_ms: f64,
    /// Implication-memo hits during this optimization (verdicts served
    /// without re-running the prover).
    pub memo_hits: u64,
    /// Implication-memo misses (proofs actually run).
    pub memo_misses: u64,
    /// `(operator, location)` DP states Algorithm 2 explored for the
    /// chosen placement (site-selector memo size).
    pub dp_states: usize,
}

/// A fully optimized query.
#[derive(Debug)]
pub struct OptimizedQuery {
    /// Located physical plan with explicit SHIPs.
    pub physical: Arc<PhysicalPlan>,
    /// The annotated plan phase 1 produced (Figure 4-style traits).
    pub annotated: AnnotatedNode,
    /// The normalized logical plan phase 1 ran on — retained so a live
    /// policy revocation can re-run the *whole* optimizer (both phases)
    /// under the new catalog snapshot mid-execution.
    pub logical: Arc<LogicalPlan>,
    /// Measurements.
    pub stats: OptimizeStats,
    /// Where the result materializes.
    pub result_location: Location,
}

/// The result of executing a distributed plan.
#[derive(Debug)]
pub struct ExecutionResult {
    /// The result rows (at the plan's result location).
    pub rows: Rows,
    /// Every cross-site transfer performed, with exact bytes and
    /// simulated cost under the message cost model.
    pub transfers: TransferLog,
}

/// The result of executing a distributed plan on the parallel runtime.
#[derive(Debug)]
pub struct ParallelResult {
    /// The result rows (at the plan's result location).
    pub rows: Rows,
    /// Every exchange batch delivered (and every dropped attempt), in
    /// the canonical normalized order.
    pub transfers: TransferLog,
    /// Per-site and per-exchange observability for the run.
    pub metrics: RuntimeMetrics,
}

/// The result of a fault-tolerant execution with compliant failover.
#[derive(Debug)]
pub struct ResilientResult {
    /// The result rows (at the plan's result location).
    pub rows: Rows,
    /// Every transfer and dropped attempt across all execution tries.
    pub transfers: TransferLog,
    /// How many times the engine re-ran site selection around a failure.
    pub replans: usize,
    /// How many of those re-plans were forced by a mid-flight policy
    /// revocation (the query re-pinned to a newer catalog epoch).
    pub churn_replans: u64,
    /// Quiesce-free grant retries: times a `NonCompliant` refusal under
    /// the revocation's pin was answered by re-pinning forward onto a
    /// newer grant and re-optimizing (bounded to once per epoch
    /// advance). A completed query with `grant_retries > 0` was rescued
    /// by a grant that landed while it was in flight.
    pub grant_retries: u64,
    /// Sites excluded from execution traits during failover.
    pub excluded: LocationSet,
    /// The plan that finally completed (the original one when
    /// `replans == 0`; a stitched resume plan when checkpoints matched).
    pub physical: Arc<PhysicalPlan>,
    /// SHIP edges a failover re-plan served from a retained checkpoint.
    pub checkpoint_hits: u64,
    /// SHIP edges a failover re-plan had to recompute (checkpoint lost
    /// with its home site, or never taken).
    pub checkpoint_misses: u64,
    /// Encoded bytes served from checkpoints instead of recomputation.
    pub resumed_bytes: u64,
    /// Bytes shipped after the first attempt failed — the recovery
    /// traffic that checkpoint/resume exists to shrink.
    pub recomputed_bytes: u64,
    /// Hedged backup transfers launched (0 when hedging is off).
    pub hedges_launched: u64,
    /// Hedged backups that delivered before their primary.
    pub hedges_won: u64,
    /// Hedged backups that routed via a compliant relay site.
    pub relays_used: u64,
    /// Circuit-breaker closed → open transitions across all link lanes.
    pub breaker_trips: u64,
    /// Gray links a breaker condemned: failover re-plans priced these at
    /// ∞ in Algorithm 2's cost model instead of excluding a site (both
    /// endpoints stayed in the execution traits).
    pub avoided_links: Vec<(Location, Location)>,
    /// Condemned gray links whose condemnation was waived because
    /// Algorithm 2 found no compliant placement avoiding them: the query
    /// rode the degraded link (still hedging) instead of rejecting.
    pub waived_links: Vec<(Location, Location)>,
    /// The final folded health state of every observed link lane (empty
    /// when hedging is off), for `\health`-style reporting.
    pub link_health: Vec<LinkReport>,
    /// Every relay a hedged backup routed through, with the lane it
    /// served — each one was audit-checked against the producing
    /// subtree's shipping trait before a byte moved.
    pub relay_events: Vec<RelayEvent>,
}

/// Knobs for [`Engine::execute_resilient_opts`]: the failover budget plus
/// the robustness controls this layer adds.
#[derive(Debug, Clone)]
pub struct FailoverOpts {
    /// How many times the engine may re-run site selection around a
    /// failure before giving up.
    pub max_replans: usize,
    /// Retain completed SHIP edges in a checkpoint store and stitch
    /// failover re-plans against it, so only lost work re-executes.
    pub resume: bool,
    /// Simulated-clock completion budget for the whole resilient run.
    pub deadline: Option<QueryDeadline>,
    /// Cooperative abort flag, polled at batch granularity.
    pub cancel: Option<CancelToken>,
    /// Gray-failure defense: score link health per transfer, launch
    /// compliant hedged backups on links whose EWMA crosses the hedge
    /// threshold, and let an exhausted breaker trigger a soft-exclusion
    /// re-plan. `None` disables hedging and breakers entirely.
    pub hedge: Option<HedgeConfig>,
    /// Run every sequential attempt on the vectorized columnar engine.
    /// Rows, shipped bytes, audits, and fault replay are identical to
    /// the row engine; only CPU time changes.
    pub columnar: bool,
    /// Morsel workers per site for parallel-runtime attempts (columnar
    /// only; `1` keeps kernels inline). Like `columnar`, this changes
    /// CPU time and nothing observable: rows, bytes, transfer logs, and
    /// fault replay are worker-count-invariant.
    pub workers_per_site: usize,
    /// Live policy churn: the catalog service and the epoch pinned at
    /// admission. Execution re-audits SHIP edges against revocations at
    /// batch granularity, refuses transfers from replicas that cannot
    /// prove freshness, and re-plans through the checkpoint-stitching
    /// path when a revocation lands mid-flight. `None` runs against the
    /// frozen catalog, exactly as before.
    pub churn: Option<ChurnOpts>,
}

impl FailoverOpts {
    /// Resume-enabled failover with `max_replans` re-plans, no deadline,
    /// no cancel token, hedging off.
    pub fn new(max_replans: usize) -> FailoverOpts {
        FailoverOpts {
            max_replans,
            resume: true,
            deadline: None,
            cancel: None,
            hedge: None,
            columnar: false,
            workers_per_site: 1,
            churn: None,
        }
    }

    /// Pin this execution to `pin` of `service`'s catalog and enforce
    /// live churn: per-batch revocation checks, stale-origin fail-safe,
    /// and compliant mid-flight re-planning.
    pub fn with_churn(mut self, service: Arc<CatalogService>, pin: CatalogPin) -> FailoverOpts {
        self.churn = Some(ChurnOpts { service, pin });
        self
    }

    /// Enable link-health scoring, circuit breakers, and compliant hedged
    /// transfers for every attempt of the resilient run.
    pub fn with_hedge(mut self, config: HedgeConfig) -> FailoverOpts {
        self.hedge = Some(config);
        self
    }

    /// Run sequential attempts on the vectorized columnar engine.
    pub fn with_columnar(mut self, columnar: bool) -> FailoverOpts {
        self.columnar = columnar;
        self
    }

    /// Set the morsel workers per site for parallel-runtime attempts.
    pub fn with_workers(mut self, workers_per_site: usize) -> FailoverOpts {
        self.workers_per_site = workers_per_site.max(1);
        self
    }

    /// The control surface for one attempt, `base_ms` of simulated time
    /// already spent by earlier attempts.
    fn control(&self, base_ms: f64) -> RunControl {
        RunControl {
            cancel: self.cancel.clone(),
            deadline: self.deadline,
            base_ms,
        }
    }
}

impl Default for FailoverOpts {
    fn default() -> FailoverOpts {
        FailoverOpts::new(0)
    }
}

/// The engine: catalog, policies, and network.
pub struct Engine {
    catalog: Arc<Catalog>,
    policies: Arc<PolicyCatalog>,
    topology: NetworkTopology,
    /// Implication-verdict cache shared by every evaluator the engine
    /// creates — across AR1–AR4 annotation, plan enumeration, audits,
    /// and failover re-plans. Epoch-scoped to the policy catalog.
    implication_memo: ImplicationMemo,
}

impl Engine {
    /// Assemble an engine.
    pub fn new(
        catalog: Arc<Catalog>,
        policies: Arc<PolicyCatalog>,
        topology: NetworkTopology,
    ) -> Engine {
        Engine {
            catalog,
            policies,
            topology,
            implication_memo: ImplicationMemo::new(),
        }
    }

    /// The engine-wide implication memo (hit/miss counters feed
    /// optimizer metrics reporting).
    pub fn implication_memo(&self) -> &ImplicationMemo {
        &self.implication_memo
    }

    /// A sibling engine over the same deployment but a different policy
    /// catalog snapshot — the epoch bump after a grant or revoke. The
    /// implication memo starts **cold**: a verdict proven under the old
    /// catalog must never be served under the new one.
    pub fn fork_with_policies(&self, policies: Arc<PolicyCatalog>) -> Engine {
        Engine {
            catalog: Arc::clone(&self.catalog),
            policies,
            topology: self.topology.clone(),
            implication_memo: ImplicationMemo::new(),
        }
    }

    /// A policy evaluator wired to the engine's shared implication memo.
    fn evaluator(&self) -> PolicyEvaluator<'_> {
        PolicyEvaluator::with_memo(
            &self.policies,
            self.catalog.locations(),
            &self.implication_memo,
        )
    }

    /// The catalog.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// The policy catalog.
    pub fn policies(&self) -> &Arc<PolicyCatalog> {
        &self.policies
    }

    /// The network topology.
    pub fn topology(&self) -> &NetworkTopology {
        &self.topology
    }

    /// Optimize a logical plan. With [`OptimizerMode::Compliant`], the
    /// returned plan is guaranteed compliant (Theorem 1); a legal-plan-free
    /// search space yields [`GeoError::QueryRejected`]. With
    /// [`OptimizerMode::Traditional`], policies are ignored entirely —
    /// the experiment harness audits those plans afterwards.
    pub fn optimize(
        &self,
        plan: &Arc<LogicalPlan>,
        mode: OptimizerMode,
        result_location: Option<Location>,
    ) -> Result<OptimizedQuery> {
        self.optimize_opts(plan, mode, result_location, &OptimizerOptions::default())
    }

    /// [`Engine::optimize`] with explicit [`OptimizerOptions`].
    pub fn optimize_opts(
        &self,
        plan: &Arc<LogicalPlan>,
        mode: OptimizerMode,
        result_location: Option<Location>,
        options: &OptimizerOptions,
    ) -> Result<OptimizedQuery> {
        let t_start = Instant::now();

        // Phase 1: normalize (dominating rewrites), explore, annotate.
        let normalized = crate::normalize::normalize_plan(plan)?;
        let mut memo = Memo::new();
        let root = memo.copy_in(&normalized)?;
        let mut rules = default_rules();
        if options.disable_aggregate_pushdown {
            rules.retain(|r| r.name() != "AggregateJoinPushdown");
        }
        explore(&mut memo, &rules)?;

        let evaluator = self.evaluator();
        let memo_base = (self.implication_memo.hits(), self.implication_memo.misses());
        let annotate_mode = match mode {
            OptimizerMode::Compliant => AnnotateMode::Compliant,
            OptimizerMode::Traditional => AnnotateMode::Traditional,
        };
        let mut annotator = Annotator::new(&self.catalog, &evaluator, annotate_mode);
        if let Some(cap) = options.frontier_cap {
            annotator = annotator.with_frontier_cap(cap);
        }
        let frontiers = annotator.annotate(&memo)?;

        let best = frontiers
            .best_root(root, result_location.as_ref())
            .ok_or_else(|| {
                GeoError::QueryRejected(
                    "no compliant execution plan exists in the explored search space".into(),
                )
            })?
            .clone();
        let mut annotated = frontiers.extract(&memo, &best);
        fill_stats(&mut annotated, &best.logical, &self.catalog);
        let phase1_ms = t_start.elapsed().as_secs_f64() * 1e3;

        // Phase 2: site selection.
        let t2 = Instant::now();
        let sited = select_sites_with(
            &annotated,
            &self.topology,
            result_location.as_ref(),
            options.objective,
        )?;
        let phase2_ms = t2.elapsed().as_secs_f64() * 1e3;

        if mode == OptimizerMode::Compliant {
            // Theorem 1 safety net: the emitted plan must audit clean.
            debug_assert!(
                check_compliance(&sited.physical, &evaluator, &self.catalog).is_ok(),
                "Theorem 1 violated: compliant optimizer emitted a non-compliant plan"
            );
        }

        Ok(OptimizedQuery {
            physical: sited.physical,
            annotated,
            logical: normalized,
            result_location: sited.result_location,
            stats: OptimizeStats {
                phase1_ms,
                phase2_ms,
                total_ms: phase1_ms + phase2_ms,
                memo_groups: memo.group_count(),
                memo_exprs: memo.expr_count(),
                candidates: frontiers.stats().candidates,
                eta: evaluator.eta(),
                policy_invocations: evaluator.invocations(),
                est_ship_cost_ms: sited.est_ship_cost_ms,
                memo_hits: self.implication_memo.hits() - memo_base.0,
                memo_misses: self.implication_memo.misses() - memo_base.1,
                dp_states: sited.dp_states,
            },
        })
    }

    /// Audit a physical plan against the policies (Definition 1).
    pub fn audit(&self, plan: &PhysicalPlan) -> Result<()> {
        check_compliance(plan, &self.evaluator(), &self.catalog)
    }

    /// Execute a located physical plan over the per-site databases,
    /// simulating every SHIP with real byte accounting.
    pub fn execute(&self, plan: &PhysicalPlan) -> Result<ExecutionResult> {
        let source = CatalogSource::new(&self.catalog);
        let mut ship = SimShip::new(&self.topology);
        let rows = geoqp_exec::execute(plan, &source, &mut ship)?;
        Ok(ExecutionResult {
            rows,
            transfers: ship.into_log(),
        })
    }

    /// [`Engine::execute`] on the vectorized columnar engine: scans are
    /// zero-copy reads of each table's cached columnar mirror, operators
    /// run the typed kernels, and SHIP edges hand `Arc`'d batches to the
    /// simulator with bytes computed from column metadata. Result rows,
    /// row order, shipped bytes, and audit outcomes are identical to the
    /// row engine's.
    pub fn execute_columnar(&self, plan: &PhysicalPlan) -> Result<ExecutionResult> {
        let source = CatalogSource::new(&self.catalog);
        let mut ship = SimShip::new(&self.topology);
        let rows = geoqp_exec::execute_columnar(plan, &source, &mut ship)?;
        Ok(ExecutionResult {
            rows,
            transfers: ship.into_log(),
        })
    }

    /// Execute a plan with fault injection active but no failover: a
    /// single try under `faults`, transient errors retried per `retry`.
    pub fn execute_with_faults(
        &self,
        plan: &PhysicalPlan,
        faults: &FaultPlan,
        retry: &RetryPolicy,
    ) -> Result<ExecutionResult> {
        let (outcome, transfers) = self.try_execute_with_faults(plan, faults, retry, false);
        outcome.map(|rows| ExecutionResult { rows, transfers })
    }

    /// [`Engine::execute_with_faults`] on the columnar engine. The
    /// columnar interpreter recurses in the row engine's exact order, so
    /// fault-clock ticks — and therefore the whole failure replay — are
    /// bit-identical between the two.
    pub fn execute_with_faults_columnar(
        &self,
        plan: &PhysicalPlan,
        faults: &FaultPlan,
        retry: &RetryPolicy,
    ) -> Result<ExecutionResult> {
        let (outcome, transfers) = self.try_execute_with_faults(plan, faults, retry, true);
        outcome.map(|rows| ExecutionResult { rows, transfers })
    }

    /// One execution try under faults, returning the transfer log even on
    /// failure (dropped attempts are evidence the failover path reports).
    fn try_execute_with_faults(
        &self,
        plan: &PhysicalPlan,
        faults: &FaultPlan,
        retry: &RetryPolicy,
        columnar: bool,
    ) -> (Result<Rows>, TransferLog) {
        let source = CatalogSource::new(&self.catalog).with_faults(faults, retry.clone());
        let mut ship = SimShip::new(&self.topology).with_faults(faults, retry.clone());
        let outcome = if columnar {
            geoqp_exec::execute_columnar(plan, &source, &mut ship)
        } else {
            geoqp_exec::execute(plan, &source, &mut ship)
        };
        (outcome, ship.into_log())
    }

    /// The per-SHIP-edge shipping traits the parallel runtime audits each
    /// batch against (pre-order).
    fn ship_audits(&self, plan: &PhysicalPlan) -> Result<Vec<LocationSet>> {
        ship_traits(plan, &self.evaluator(), &self.catalog)
    }

    /// Per-SHIP-edge audit traits *and* checkpoint specs (fingerprint of
    /// the producer subtree + its shipping trait + logical content), both
    /// in pre-order SHIP order.
    fn ship_specs(&self, plan: &PhysicalPlan) -> Result<(Vec<LocationSet>, Vec<CheckpointSpec>)> {
        let audits = ship_audit_info(plan, &self.evaluator(), &self.catalog)?;
        let epoch = self.policies.epoch();
        let mut fps = Vec::new();
        collect_ship_fingerprints(plan, epoch, &mut fps);
        debug_assert_eq!(fps.len(), audits.len());
        let specs = audits
            .iter()
            .zip(fps)
            .map(|(a, fingerprint)| CheckpointSpec {
                fingerprint,
                legal: a.legal.clone(),
                logical: Arc::clone(&a.logical),
            })
            .collect();
        Ok((audits.into_iter().map(|a| a.legal).collect(), specs))
    }

    /// Execute a located plan on the concurrent pipelined runtime: one
    /// worker thread per plan fragment, streaming bounded-batch exchanges
    /// at SHIP edges, and the Definition-1 audit enforced on every batch.
    ///
    /// Row results, shipped bytes, and total network cost are identical
    /// to [`Engine::execute`]; simulated completion time is the pipelined
    /// critical path instead of the sequential sum.
    pub fn execute_parallel(&self, plan: &PhysicalPlan) -> Result<ParallelResult> {
        self.execute_parallel_opts(plan, None, &RetryPolicy::none(), &RuntimeConfig::default())
    }

    /// [`Engine::execute_parallel`] with fault injection and explicit
    /// exchange configuration.
    pub fn execute_parallel_opts(
        &self,
        plan: &PhysicalPlan,
        faults: Option<&FaultPlan>,
        retry: &RetryPolicy,
        config: &RuntimeConfig,
    ) -> Result<ParallelResult> {
        let audits = self.ship_audits(plan)?;
        let source = CatalogSource::new(&self.catalog);
        let mut runtime = Runtime::new(&self.topology).with_config(config.clone());
        if let Some(faults) = faults {
            runtime = runtime.with_faults(faults, retry.clone());
        }
        let out = runtime.run(plan, &source, Some(&audits))?;
        Ok(ParallelResult {
            rows: out.rows,
            transfers: out.transfers,
            metrics: out.metrics,
        })
    }

    /// Execute with fault injection *and* compliant failover re-planning.
    ///
    /// When an execution attempt dies on a [`GeoError::SiteUnavailable`]
    /// that survived its retry budget, the failed site is excluded from
    /// every execution trait `ℰ_n` of the annotated plan, Algorithm 2
    /// site selection is re-run over what remains, the new placement is
    /// re-verified against Definition 1 by the compliance checker, and
    /// execution resumes on the new plan — up to `max_replans` times.
    ///
    /// The failover path never falls back to a non-compliant placement:
    /// if no operator placement survives the failure, the typed policy
    /// error ([`GeoError::QueryRejected`]) is returned instead.
    pub fn execute_resilient(
        &self,
        optimized: &OptimizedQuery,
        faults: &FaultPlan,
        retry: &RetryPolicy,
        max_replans: usize,
    ) -> Result<ResilientResult> {
        self.execute_resilient_opts(optimized, faults, retry, &FailoverOpts::new(max_replans))
    }

    /// [`Engine::execute_resilient`] with explicit [`FailoverOpts`]:
    /// checkpoint/resume, a simulated-clock deadline, and cooperative
    /// cancellation.
    pub fn execute_resilient_opts(
        &self,
        optimized: &OptimizedQuery,
        faults: &FaultPlan,
        retry: &RetryPolicy,
        opts: &FailoverOpts,
    ) -> Result<ResilientResult> {
        let store = CheckpointStore::new();
        self.execute_resilient_store(optimized, faults, retry, opts, &store)
    }

    /// [`Engine::execute_resilient_opts`] over a caller-provided
    /// [`CheckpointStore`], so tests and tools can inspect what was
    /// retained where.
    pub fn execute_resilient_store(
        &self,
        optimized: &OptimizedQuery,
        faults: &FaultPlan,
        retry: &RetryPolicy,
        opts: &FailoverOpts,
        store: &CheckpointStore,
    ) -> Result<ResilientResult> {
        let health = opts
            .hedge
            .as_ref()
            .map(|h| LinkHealth::new(h.health.clone()));
        self.resilient_loop(
            optimized,
            opts,
            store,
            health.as_ref(),
            |engine, physical, base_ms, watch| {
                // The sequential interpreter completes SHIPs in left-to-right
                // post-order, not pre-order — both the checkpoint specs and
                // the hedge legality sets must follow that order.
                let wired = opts.resume || opts.hedge.is_some();
                let (audits, specs) = if wired {
                    match engine.ship_specs(physical) {
                        Ok(x) => x,
                        Err(e) => return (Err(e), TransferLog::new()),
                    }
                } else {
                    (Vec::new(), Vec::new())
                };
                let order = if wired {
                    exec_ship_order(physical, audits.len())
                } else {
                    Vec::new()
                };
                let control = opts.control(base_ms);
                let mut source = CatalogSource::new(&engine.catalog)
                    .with_faults(faults, retry.clone())
                    .with_control(control.clone());
                if opts.resume {
                    source = source.with_resume(store);
                }
                let mut ship = SimShip::new(&engine.topology)
                    .with_faults(faults, retry.clone())
                    .with_control(control);
                if opts.resume {
                    let specs = order.iter().map(|&i| specs[i].clone()).collect();
                    ship = ship.with_capture(store, specs);
                }
                if let (Some(health), Some(config)) = (health.as_ref(), opts.hedge.as_ref()) {
                    let legal = order.iter().map(|&i| audits[i].clone()).collect();
                    ship = ship.with_hedge(health, config.clone(), legal);
                }
                if let Some(watch) = watch {
                    ship = ship.with_churn(watch.clone());
                }
                let outcome = if opts.columnar {
                    geoqp_exec::execute_columnar(physical, &source, &mut ship)
                } else {
                    geoqp_exec::execute(physical, &source, &mut ship)
                };
                (outcome, ship.into_log())
            },
        )
    }

    /// [`Engine::execute_resilient`] on the parallel runtime: each failover
    /// attempt runs concurrently and pipelined, and the metrics of the
    /// attempt that completed are returned alongside the result.
    pub fn execute_resilient_parallel(
        &self,
        optimized: &OptimizedQuery,
        faults: &FaultPlan,
        retry: &RetryPolicy,
        max_replans: usize,
        config: &RuntimeConfig,
    ) -> Result<(ResilientResult, RuntimeMetrics)> {
        self.execute_resilient_parallel_opts(
            optimized,
            faults,
            retry,
            &FailoverOpts::new(max_replans),
            config,
        )
    }

    /// [`Engine::execute_resilient_parallel`] with explicit
    /// [`FailoverOpts`].
    pub fn execute_resilient_parallel_opts(
        &self,
        optimized: &OptimizedQuery,
        faults: &FaultPlan,
        retry: &RetryPolicy,
        opts: &FailoverOpts,
        config: &RuntimeConfig,
    ) -> Result<(ResilientResult, RuntimeMetrics)> {
        let store = CheckpointStore::new();
        self.execute_resilient_parallel_store(optimized, faults, retry, opts, config, &store)
    }

    /// [`Engine::execute_resilient_parallel_opts`] over a caller-provided
    /// [`CheckpointStore`].
    #[allow(clippy::too_many_arguments)]
    pub fn execute_resilient_parallel_store(
        &self,
        optimized: &OptimizedQuery,
        faults: &FaultPlan,
        retry: &RetryPolicy,
        opts: &FailoverOpts,
        config: &RuntimeConfig,
        store: &CheckpointStore,
    ) -> Result<(ResilientResult, RuntimeMetrics)> {
        let mut metrics = None;
        let health = opts
            .hedge
            .as_ref()
            .map(|h| LinkHealth::new(h.health.clone()));
        let result = self.resilient_loop(
            optimized,
            opts,
            store,
            health.as_ref(),
            |engine, physical, base_ms, watch| {
                let (audits, specs) = match engine.ship_specs(physical) {
                    Ok(x) => x,
                    Err(e) => return (Err(e), TransferLog::new()),
                };
                let source = CatalogSource::new(&engine.catalog);
                let mut runtime = Runtime::new(&engine.topology)
                    .with_faults(faults, retry.clone())
                    .with_config(config.clone())
                    .with_control(opts.control(base_ms));
                if opts.resume {
                    runtime = runtime.with_checkpoints(store, specs);
                }
                if let (Some(health), Some(hedge)) = (health.as_ref(), opts.hedge.as_ref()) {
                    runtime = runtime.with_hedge(health, hedge.clone());
                }
                if let Some(watch) = watch {
                    runtime = runtime.with_churn(watch.clone());
                }
                let (outcome, log) = runtime.try_run(physical, &source, Some(&audits));
                (
                    outcome.map(|(rows, m)| {
                        metrics = Some(m);
                        rows
                    }),
                    log,
                )
            },
        )?;
        let metrics = metrics.expect("a successful parallel attempt recorded its metrics");
        Ok((result, metrics))
    }

    /// The shared failover skeleton: try, exclude the failed site (or —
    /// for a breaker-condemned gray link — price the link at ∞ without
    /// excluding anything), drop dead checkpoints, re-run Algorithm 2,
    /// stitch against surviving checkpoints, re-audit, repeat.
    fn resilient_loop(
        &self,
        optimized: &OptimizedQuery,
        opts: &FailoverOpts,
        store: &CheckpointStore,
        health: Option<&LinkHealth>,
        mut try_once: impl FnMut(
            &Engine,
            &Arc<PhysicalPlan>,
            f64,
            Option<&ChurnWatch>,
        ) -> (Result<Rows>, TransferLog),
    ) -> Result<ResilientResult> {
        let mut physical = Arc::clone(&optimized.physical);
        let mut excluded = LocationSet::new();
        let mut avoided: BTreeSet<(Location, Location)> = BTreeSet::new();
        let mut replans = 0usize;
        let mut churn_replans = 0u64;
        let mut grant_retries = 0u64;
        // The newest grant sequence a retry has already consumed: each
        // retry must see a strictly newer grant, so a refusal retries at
        // most once per epoch advance and can never spin.
        let mut last_grant_retry_seq = opts.churn.as_ref().map_or(0, |c| c.pin.seq);
        let mut transfers = TransferLog::new();
        let mut first_attempt_bytes = None;
        // Live churn state: the engine and annotated plan of the *current*
        // catalog pin. A mid-flight revocation forks a fresh engine over
        // the new snapshot and re-optimizes from the logical plan; until
        // then both stay `None` and the admission-time ones apply.
        let mut watch: Option<ChurnWatch> = opts.churn.as_ref().map(|c| c.service.watch(c.pin));
        let mut forked_engine: Option<Engine> = None;
        let mut churned: Option<OptimizedQuery> = None;
        loop {
            let engine: &Engine = forked_engine.as_ref().unwrap_or(self);
            let annotated = churned
                .as_ref()
                .map_or(&optimized.annotated, |o| &o.annotated);
            let (attempt, log) =
                try_once(engine, &physical, transfers.total_cost_ms(), watch.as_ref());
            transfers.absorb(log);
            match attempt {
                Ok(rows) => {
                    let recovered_from =
                        first_attempt_bytes.unwrap_or_else(|| transfers.total_bytes());
                    return Ok(ResilientResult {
                        rows,
                        replans,
                        churn_replans,
                        grant_retries,
                        excluded,
                        physical,
                        checkpoint_hits: store.hits(),
                        checkpoint_misses: store.misses(),
                        resumed_bytes: store.resumed_bytes(),
                        recomputed_bytes: transfers.total_bytes() - recovered_from,
                        hedges_launched: health.map_or(0, |h| h.hedges_launched()),
                        hedges_won: health.map_or(0, |h| h.hedges_won()),
                        relays_used: health.map_or(0, |h| h.relays_used()),
                        breaker_trips: health.map_or(0, |h| h.breaker_trips()),
                        avoided_links: avoided.into_iter().collect(),
                        waived_links: health.map_or_else(Vec::new, |h| h.waived_links()),
                        link_health: health.map_or_else(Vec::new, |h| h.snapshot()),
                        relay_events: health.map_or_else(Vec::new, |h| h.relay_events()),
                        transfers,
                    });
                }
                Err(e) => {
                    first_attempt_bytes.get_or_insert(transfers.total_bytes());
                    // A mid-flight revocation: re-pin to the new catalog
                    // head, re-run the whole optimizer under it, migrate
                    // surviving checkpoints to the new epoch, and retry —
                    // or refuse typed if no compliant placement remains.
                    if let (Some((churn_seq, churn_epoch)), Some(churn)) =
                        (e.churn_head(), opts.churn.as_ref())
                    {
                        if replans >= opts.max_replans {
                            return Err(GeoError::NonCompliant(format!(
                                "revocation at catalog seq {churn_seq} caught the query \
                                 in flight and the re-plan budget ({}) is exhausted; \
                                 refusing to finish under the revoked catalog",
                                opts.max_replans
                            )));
                        }
                        replans += 1;
                        churn_replans += 1;
                        let old_epoch = engine.policies.epoch();
                        let abort_step = e.churn_step().unwrap_or(0);
                        let mut new_pin = CatalogPin::new(churn_seq, churn_epoch);
                        let (forked, reoptimized) = loop {
                            let policies = churn.service.snapshot(new_pin.seq)?;
                            let forked = self.fork_with_policies(policies);
                            // Give the catalog plane one replication round
                            // to chase the new head; sites still behind
                            // stay in the stale guard and fail safe at
                            // transfer time.
                            churn.service.sync_round();
                            match forked.optimize(
                                &optimized.logical,
                                OptimizerMode::Compliant,
                                Some(optimized.result_location.clone()),
                            ) {
                                Ok(reopt) => break (forked, reopt),
                                Err(GeoError::QueryRejected(m)) => {
                                    // Quiesce-free grant retry: the query
                                    // was refused under this pin, but a
                                    // grant that had already landed by the
                                    // abort step may have re-grown the
                                    // legal set. Policies are additive
                                    // (Definition 1 re-audits the whole
                                    // plan below), so re-pinning forward
                                    // is sound — and it is bounded: each
                                    // retry must consume a strictly newer
                                    // grant than the last.
                                    if let Some(grant_head) = churn
                                        .service
                                        .signal()
                                        .granted_since(new_pin.seq, abort_step)
                                    {
                                        if grant_head.seq > last_grant_retry_seq {
                                            last_grant_retry_seq = grant_head.seq;
                                            grant_retries += 1;
                                            new_pin = grant_head;
                                            continue;
                                        }
                                    }
                                    return Err(GeoError::NonCompliant(format!(
                                        "no compliant placement survives the revocation at \
                                         catalog seq {}: {m}",
                                        new_pin.seq
                                    )));
                                }
                                Err(other) => return Err(other),
                            }
                        };
                        // Re-apply failure state accumulated by earlier
                        // attempts: dead sites leave the traits, condemned
                        // gray links stay priced at ∞.
                        let next_physical = if excluded.is_empty() && avoided.is_empty() {
                            Arc::clone(&reoptimized.physical)
                        } else {
                            let plan_topology = if avoided.is_empty() {
                                None
                            } else {
                                Some(self.topology.avoiding_links(&avoided))
                            };
                            let ann = reoptimized
                                .annotated
                                .excluding_sites(&excluded)
                                .ok_or_else(|| {
                                    GeoError::NonCompliant(format!(
                                        "no compliant placement survives the revocation at \
                                         catalog seq {} with {excluded} excluded",
                                        new_pin.seq
                                    ))
                                })?;
                            select_sites_with(
                                &ann,
                                plan_topology.as_ref().unwrap_or(&self.topology),
                                Some(&optimized.result_location),
                                Objective::TotalCost,
                            )?
                            .physical
                        };
                        let next = if opts.resume {
                            // Migrate retained checkpoints across the epoch
                            // bump: homes still inside the (possibly
                            // shrunken) shipping trait are re-keyed to the
                            // new epoch, homes the revocation outlawed are
                            // dropped. Then stitch as usual.
                            let mut old_fps = Vec::new();
                            collect_ship_fingerprints(&next_physical, old_epoch, &mut old_fps);
                            let (_, specs) = forked.ship_specs(&next_physical)?;
                            debug_assert_eq!(old_fps.len(), specs.len());
                            for (old_fp, spec) in old_fps.iter().zip(&specs) {
                                store.migrate(*old_fp, spec.fingerprint, &spec.legal);
                            }
                            stitch(&next_physical, store, forked.policies.epoch())?.plan
                        } else {
                            next_physical
                        };
                        // Definition-1 audit under the *new* catalog —
                        // resume edges included.
                        check_compliance(&next, &forked.evaluator(), &forked.catalog)?;
                        watch = Some(churn.service.watch(new_pin));
                        physical = next;
                        churned = Some(reoptimized);
                        forked_engine = Some(forked);
                        continue;
                    }
                    let breaker = e
                        .breaker_link()
                        .map(|(from, to)| (from.clone(), to.clone()));
                    if breaker.is_none() && e.failed_site().is_none() {
                        // Not an availability failure (e.g. a deadline or
                        // cancellation); nothing to re-plan around.
                        return Err(e);
                    }
                    if replans >= opts.max_replans {
                        return Err(e);
                    }
                    let just_condemned = breaker.clone();
                    if let Some(link) = breaker {
                        // Soft exclusion: both endpoints of the gray link
                        // are alive, so no site leaves the execution
                        // traits and no checkpoints are dropped — the
                        // re-planner just stops routing over the link.
                        avoided.insert(link);
                    } else {
                        let site = e
                            .failed_site()
                            .cloned()
                            .expect("availability checked above");
                        if site == optimized.result_location {
                            return Err(GeoError::QueryRejected(format!(
                                "result site {site} is unavailable; no compliant \
                                 failover can deliver the result there"
                            )));
                        }
                        excluded.insert(site.clone());
                        // The crashed site's retained state died with it.
                        store.drop_site(&site);
                    }
                    replans += 1;

                    // Re-run Algorithm 2 with the failed sites excluded
                    // from every execution trait and every condemned gray
                    // link priced at ∞. Execution still runs on the real
                    // topology — only planning costs change.
                    let plan_topology = if avoided.is_empty() {
                        None
                    } else {
                        Some(self.topology.avoiding_links(&avoided))
                    };
                    let replanned = annotated
                        .excluding_sites(&excluded)
                        .ok_or_else(|| {
                            GeoError::QueryRejected(format!(
                                "no compliant placement survives the failure of {excluded}: \
                                 an operator's execution trait became empty"
                            ))
                        })
                        .and_then(|annotated| {
                            select_sites_with(
                                &annotated,
                                plan_topology.as_ref().unwrap_or(&self.topology),
                                Some(&optimized.result_location),
                                Objective::TotalCost,
                            )
                        });
                    // A condemned gray link may admit no compliant
                    // detour: every placement Algorithm 2 can produce
                    // crosses it (compliance pins the endpoints). Gray is
                    // not dead — the link delivers, just slowly — so
                    // rather than rejecting a query that was completing,
                    // waive the condemnation: the breaker gate stops
                    // firing for that link while health scoring and
                    // hedging continue, and the current plan retries.
                    let replanned = match (replanned, &just_condemned) {
                        (Err(GeoError::QueryRejected(_)), Some((from, to))) => {
                            avoided.remove(&(from.clone(), to.clone()));
                            let table = health.expect("breaker errors require a health table");
                            table.waive(from, to);
                            continue;
                        }
                        (outcome, _) => outcome,
                    };
                    // Stitch the failover placement against surviving
                    // checkpoints: subtrees whose fingerprint still has a
                    // live, trait-legal checkpoint become ResumeScan
                    // leaves, so only lost work re-executes.
                    let next = match replanned {
                        Ok(sited) if opts.resume => {
                            stitch(&sited.physical, store, engine.policies.epoch())?.plan
                        }
                        Ok(sited) => sited.physical,
                        Err(e) if opts.resume => {
                            // Algorithm 2 has no placement without the dead
                            // site — it hosts a base table, say, so some
                            // operator's execution trait emptied (c1 pins
                            // its scans there). Surviving checkpoints are
                            // the last line of recovery: stitch the plan
                            // that just failed, replacing every subtree
                            // whose output already reached a live home with
                            // a ResumeScan leaf, and retry. Completed work
                            // never re-executes, and if the outage was
                            // transient the remainder now succeeds; a
                            // permanently dead site fails the retry again,
                            // and once stitching stops making progress the
                            // typed error surfaces. Bounded by
                            // `max_replans` like any other re-plan.
                            let outcome = stitch(&physical, store, engine.policies.epoch())?;
                            if outcome.hits == 0 || Arc::ptr_eq(&outcome.plan, &physical) {
                                return Err(e);
                            }
                            outcome.plan
                        }
                        Err(e) => return Err(e),
                    };
                    // Definition-1 audit of the failover placement —
                    // including every resume edge; a violation here would
                    // be a Theorem-1 bug (or an illegal checkpoint home),
                    // and must surface as an error, never execute
                    // silently.
                    check_compliance(&next, &engine.evaluator(), &engine.catalog)?;
                    physical = next;
                }
            }
        }
    }

    /// Parse, lower, and optimize a SQL query in one step.
    pub fn optimize_sql(
        &self,
        sql: &str,
        mode: OptimizerMode,
        result_location: Option<Location>,
    ) -> Result<OptimizedQuery> {
        let ast = geoqp_parser::parse_query(sql)?;
        let plan = geoqp_parser::lower_query(&ast, &self.catalog)?;
        self.optimize(&plan, mode, result_location)
    }

    /// Parse, lower, optimize, execute: the full pipeline of Figure 2.
    pub fn run_sql(
        &self,
        sql: &str,
        mode: OptimizerMode,
        result_location: Option<Location>,
    ) -> Result<(OptimizedQuery, ExecutionResult)> {
        let optimized = self.optimize_sql(sql, mode, result_location)?;
        let result = self.execute(&optimized.physical)?;
        Ok((optimized, result))
    }

    /// [`Engine::run_sql`] with execution on the vectorized columnar
    /// engine.
    pub fn run_sql_columnar(
        &self,
        sql: &str,
        mode: OptimizerMode,
        result_location: Option<Location>,
    ) -> Result<(OptimizedQuery, ExecutionResult)> {
        let optimized = self.optimize_sql(sql, mode, result_location)?;
        let result = self.execute_columnar(&optimized.physical)?;
        Ok((optimized, result))
    }

    /// Parse, lower, optimize, and execute on the chosen runtime.
    pub fn run_sql_parallel(
        &self,
        sql: &str,
        mode: OptimizerMode,
        result_location: Option<Location>,
    ) -> Result<(OptimizedQuery, ParallelResult)> {
        let optimized = self.optimize_sql(sql, mode, result_location)?;
        let result = self.execute_parallel(&optimized.physical)?;
        Ok((optimized, result))
    }

    /// The full pipeline under fault injection with compliant failover on
    /// the parallel runtime.
    pub fn run_sql_resilient_parallel(
        &self,
        sql: &str,
        mode: OptimizerMode,
        result_location: Option<Location>,
        faults: &FaultPlan,
        retry: &RetryPolicy,
        max_replans: usize,
    ) -> Result<(OptimizedQuery, ResilientResult, RuntimeMetrics)> {
        let optimized = self.optimize_sql(sql, mode, result_location)?;
        let (result, metrics) = self.execute_resilient_parallel(
            &optimized,
            faults,
            retry,
            max_replans,
            &RuntimeConfig::default(),
        )?;
        Ok((optimized, result, metrics))
    }

    /// The full pipeline under fault injection with compliant failover.
    pub fn run_sql_resilient(
        &self,
        sql: &str,
        mode: OptimizerMode,
        result_location: Option<Location>,
        faults: &FaultPlan,
        retry: &RetryPolicy,
        max_replans: usize,
    ) -> Result<(OptimizedQuery, ResilientResult)> {
        let optimized = self.optimize_sql(sql, mode, result_location)?;
        let result = self.execute_resilient(&optimized, faults, retry, max_replans)?;
        Ok((optimized, result))
    }

    /// [`Engine::run_sql_resilient`] with explicit [`FailoverOpts`].
    pub fn run_sql_resilient_opts(
        &self,
        sql: &str,
        mode: OptimizerMode,
        result_location: Option<Location>,
        faults: &FaultPlan,
        retry: &RetryPolicy,
        opts: &FailoverOpts,
    ) -> Result<(OptimizedQuery, ResilientResult)> {
        let optimized = self.optimize_sql(sql, mode, result_location)?;
        let result = self.execute_resilient_opts(&optimized, faults, retry, opts)?;
        Ok((optimized, result))
    }

    /// [`Engine::run_sql_resilient_parallel`] with explicit
    /// [`FailoverOpts`].
    #[allow(clippy::too_many_arguments)]
    pub fn run_sql_resilient_parallel_opts(
        &self,
        sql: &str,
        mode: OptimizerMode,
        result_location: Option<Location>,
        faults: &FaultPlan,
        retry: &RetryPolicy,
        opts: &FailoverOpts,
    ) -> Result<(OptimizedQuery, ResilientResult, RuntimeMetrics)> {
        let optimized = self.optimize_sql(sql, mode, result_location)?;
        let config = RuntimeConfig {
            columnar: opts.columnar,
            workers_per_site: opts.workers_per_site,
            ..RuntimeConfig::default()
        };
        let (result, metrics) =
            self.execute_resilient_parallel_opts(&optimized, faults, retry, opts, &config)?;
        Ok((optimized, result, metrics))
    }
}

/// Fingerprint every SHIP edge's producer subtree, in pre-order SHIP
/// order (matching [`ship_audit_info`]).
fn collect_ship_fingerprints(plan: &PhysicalPlan, epoch: u64, out: &mut Vec<u64>) {
    if matches!(plan.op, PhysOp::Ship) {
        out.push(fingerprint(&plan.inputs[0], epoch));
    }
    for c in &plan.inputs {
        collect_ship_fingerprints(c, epoch, out);
    }
}

/// The pre-order SHIP index of each SHIP in the order the sequential
/// interpreter completes them: left-to-right post-order (a SHIP finishes
/// only after every SHIP inside its producer subtree has). Checkpoint
/// specs and hedge legality sets — both produced in pre-order — are
/// permuted through this before they meet the interpreter.
fn exec_ship_order(plan: &PhysicalPlan, ships: usize) -> Vec<usize> {
    fn walk(plan: &PhysicalPlan, next_pre: &mut usize, out: &mut Vec<usize>) {
        let my_pre = if matches!(plan.op, PhysOp::Ship) {
            let id = *next_pre;
            *next_pre += 1;
            Some(id)
        } else {
            None
        };
        for c in &plan.inputs {
            walk(c, next_pre, out);
        }
        if let Some(id) = my_pre {
            out.push(id);
        }
    }
    let mut order = Vec::with_capacity(ships);
    walk(plan, &mut 0, &mut order);
    debug_assert_eq!(order.len(), ships);
    order
}
