//! # geoqp-core
//!
//! The paper's primary contribution: a **compliance-based query optimizer**
//! for geo-distributed query processing, plus the engine that executes its
//! plans over simulated sites.
//!
//! The optimizer follows Section 6's two-phase design:
//!
//! 1. **Plan annotator** (phase 1): a Volcano-style memo optimizer. Logical
//!    alternatives are enumerated by transformation rules (join
//!    commutativity/associativity, filter pushdown, projection pushdown,
//!    **aggregation pushdown past joins** — the rule Section 6.4 identifies
//!    as necessary for completeness). Physical candidates are derived
//!    bottom-up; each candidate carries the two new logical properties of
//!    Section 6.1 — the **execution trait** `ℰ_n` and **shipping trait**
//!    `𝒮_n` — derived by annotation rules AR1–AR4. The compliance-based
//!    cost function prices any operator with an empty execution trait at
//!    infinity, which here manifests as dropping the candidate. Per memo
//!    group a Pareto frontier over (cost, traits) is kept, treating
//!    geo-locations as *interesting properties*.
//! 2. **Site selector** (phase 2): Algorithm 2 — memoized dynamic
//!    programming over `(operator, location ∈ ℰ)` using the `α + β·b`
//!    message cost model, emitting explicit SHIP operators.
//!
//! [`compliance`] provides the independent Definition-1 checker used both to
//! validate Theorem 1 (the optimizer never emits a non-compliant plan) and
//! to audit the traditional baseline's plans in the experiments.
//!
//! [`engine::Engine::execute_resilient`] adds fault tolerance on top: when
//! a site dies mid-query (simulated by a `geoqp-net` fault plan), the
//! engine re-runs phase 2 with the dead site excluded from every execution
//! trait and re-verifies the placement against Definition 1 before
//! resuming — failures degrade into typed errors, never into
//! non-compliant dataflows.

pub mod annotate;
pub mod churn;
pub mod compliance;
pub mod cost;
pub mod distributed;
pub mod engine;
pub mod explain;
pub mod memo;
pub mod normalize;
pub mod rules;
pub mod site_selector;

pub use annotate::{AnnotatedNode, Annotator};
pub use churn::{CatalogHealth, CatalogService, ChurnOpts, ReplicaHealth};
pub use compliance::{check_compliance, ship_audit_info, ship_traits, ShipAudit};
pub use engine::{
    Engine, ExecutionResult, FailoverOpts, OptimizeStats, OptimizedQuery, OptimizerMode,
    OptimizerOptions, ParallelResult, ResilientResult, RuntimeMode,
};
pub use site_selector::{select_sites, select_sites_with, Objective, SitedPlan};

// The parallel runtime's knobs and metrics, re-exported so front ends can
// configure [`Engine::execute_parallel_opts`] and render `\metrics` without
// depending on `geoqp-runtime` directly — plus the failover checkpoint
// store, so tests and tools can inspect what was retained where.
pub use geoqp_runtime::{Checkpoint, CheckpointStore, RuntimeConfig, RuntimeMetrics};

// The gray-failure defense knobs and reports, re-exported so front ends
// can enable hedged transfers ([`FailoverOpts::with_hedge`]) and render
// `\health` without depending on `geoqp-net` directly.
pub use geoqp_net::{BreakerState, HealthConfig, HedgeConfig, LinkReport, LinkState, RelayEvent};
