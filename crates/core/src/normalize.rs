//! Deterministic plan normalization, run once before memo exploration.
//!
//! Two rewrites that are *always* at least as good — for the phase-1 cost
//! model and for compliance — are applied exhaustively up front rather
//! than explored as alternatives:
//!
//! * **filter pushdown**: moving a conjunct toward its source strengthens
//!   the local query's predicate `P_q`, which can only make more policy
//!   expressions applicable under the implication test (and never fewer),
//!   while reducing cardinalities;
//! * **column pruning** (projection pushdown): dropping unused columns
//!   shrinks the accessed-attribute set `A_q`, which can only grow the
//!   legal-location sets Algorithm 1 derives — these are exactly the
//!   paper's "masking via projection" operators (Figure 1(b), operator 2).
//!
//! Keeping dominated alternatives out of the memo leaves exploration to
//! the transformations where real trade-offs exist: join re-association /
//! exchange and aggregation pushdown past joins.

use geoqp_common::{Result, Schema};
use geoqp_expr::{conjoin, ScalarExpr};
use geoqp_plan::logical::LogicalPlan;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Normalize a plan: push filters down, prune columns, merge trivial
/// projections. Semantics-preserving.
pub fn normalize_plan(plan: &Arc<LogicalPlan>) -> Result<Arc<LogicalPlan>> {
    let filtered = push_filters(plan, Vec::new())?;
    let required: BTreeSet<String> = filtered
        .schema()
        .names()
        .iter()
        .map(|s| s.to_string())
        .collect();
    let pruned = prune(&filtered, &required)?;
    let simplified = simplify_projects(&pruned)?;
    // Pruning lets supersets flow through joins; restore the original
    // output shape if it drifted.
    if simplified.schema() == plan.schema() {
        Ok(simplified)
    } else {
        let names = plan.schema().names();
        Ok(Arc::new(LogicalPlan::project_columns(simplified, &names)?))
    }
}

/// Substitute projection outputs into an expression.
fn substitute(expr: &ScalarExpr, map: &BTreeMap<String, ScalarExpr>) -> ScalarExpr {
    match expr {
        ScalarExpr::Column(n) => map.get(n).cloned().unwrap_or_else(|| expr.clone()),
        ScalarExpr::Literal(_) => expr.clone(),
        ScalarExpr::Binary { op, lhs, rhs } => ScalarExpr::Binary {
            op: *op,
            lhs: Box::new(substitute(lhs, map)),
            rhs: Box::new(substitute(rhs, map)),
        },
        ScalarExpr::Unary { op, expr } => ScalarExpr::Unary {
            op: *op,
            expr: Box::new(substitute(expr, map)),
        },
        ScalarExpr::Like {
            expr,
            pattern,
            negated,
        } => ScalarExpr::Like {
            expr: Box::new(substitute(expr, map)),
            pattern: pattern.clone(),
            negated: *negated,
        },
        ScalarExpr::InList {
            expr,
            list,
            negated,
        } => ScalarExpr::InList {
            expr: Box::new(substitute(expr, map)),
            list: list.clone(),
            negated: *negated,
        },
        ScalarExpr::Between {
            expr,
            low,
            high,
            negated,
        } => ScalarExpr::Between {
            expr: Box::new(substitute(expr, map)),
            low: Box::new(substitute(low, map)),
            high: Box::new(substitute(high, map)),
            negated: *negated,
        },
        ScalarExpr::IsNull { expr, negated } => ScalarExpr::IsNull {
            expr: Box::new(substitute(expr, map)),
            negated: *negated,
        },
    }
}

/// Push a set of incoming conjuncts (over the node's output schema) as far
/// down as possible; returns a plan equivalent to
/// `σ_{∧incoming}(plan)`.
fn push_filters(plan: &Arc<LogicalPlan>, incoming: Vec<ScalarExpr>) -> Result<Arc<LogicalPlan>> {
    match plan.as_ref() {
        LogicalPlan::Filter { input, predicate } => {
            let mut preds = incoming;
            preds.extend(
                geoqp_expr::split_conjunction(predicate)
                    .into_iter()
                    .cloned(),
            );
            push_filters(input, preds)
        }
        LogicalPlan::Project { input, exprs, .. } => {
            let map: BTreeMap<String, ScalarExpr> =
                exprs.iter().map(|(e, n)| (n.clone(), e.clone())).collect();
            let below: Vec<ScalarExpr> = incoming.iter().map(|p| substitute(p, &map)).collect();
            let child = push_filters(input, below)?;
            Ok(Arc::new(LogicalPlan::project(child, exprs.clone())?))
        }
        LogicalPlan::Join {
            left,
            right,
            on,
            filter,
            ..
        } => {
            let lcols: BTreeSet<String> = left
                .schema()
                .names()
                .iter()
                .map(|s| s.to_string())
                .collect();
            let rcols: BTreeSet<String> = right
                .schema()
                .names()
                .iter()
                .map(|s| s.to_string())
                .collect();
            let mut lparts = Vec::new();
            let mut rparts = Vec::new();
            let mut residual = Vec::new();
            let mut all = incoming;
            if let Some(f) = filter {
                all.extend(geoqp_expr::split_conjunction(f).into_iter().cloned());
            }
            for c in all {
                let cols = c.referenced_columns();
                if cols.is_subset(&lcols) {
                    lparts.push(c);
                } else if cols.is_subset(&rcols) {
                    rparts.push(c);
                } else {
                    residual.push(c);
                }
            }
            let new_left = push_filters(left, lparts)?;
            let new_right = push_filters(right, rparts)?;
            Ok(Arc::new(LogicalPlan::join(
                new_left,
                new_right,
                on.clone(),
                conjoin(residual),
            )?))
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
            ..
        } => {
            let gset: BTreeSet<String> = group_by.iter().cloned().collect();
            let (push, stay): (Vec<_>, Vec<_>) = incoming
                .into_iter()
                .partition(|p| p.referenced_columns().is_subset(&gset));
            let child = push_filters(input, push)?;
            let agg = Arc::new(LogicalPlan::aggregate(
                child,
                group_by.clone(),
                aggs.clone(),
            )?);
            wrap_filter(agg, stay)
        }
        LogicalPlan::Union { inputs, .. } => {
            let new_inputs: Vec<Arc<LogicalPlan>> = inputs
                .iter()
                .map(|i| push_filters(i, incoming.clone()))
                .collect::<Result<_>>()?;
            Ok(Arc::new(LogicalPlan::union(new_inputs)?))
        }
        LogicalPlan::Sort { input, keys } => {
            let child = push_filters(input, incoming)?;
            Ok(Arc::new(LogicalPlan::sort(child, keys.clone())?))
        }
        // Filters do not commute with LIMIT.
        LogicalPlan::Limit { input, fetch } => {
            let child = push_filters(input, Vec::new())?;
            wrap_filter(Arc::new(LogicalPlan::limit(child, *fetch)), incoming)
        }
        LogicalPlan::TableScan { .. } => wrap_filter(Arc::clone(plan), incoming),
    }
}

fn wrap_filter(plan: Arc<LogicalPlan>, preds: Vec<ScalarExpr>) -> Result<Arc<LogicalPlan>> {
    match conjoin(preds) {
        None => Ok(plan),
        Some(p) => Ok(Arc::new(LogicalPlan::filter(plan, p)?)),
    }
}

/// Prune unused columns top-down. `required` is the set of output columns
/// the parent needs; the returned plan's schema is a superset of it (the
/// parent wraps with a projection when an exact shape is needed).
fn prune(plan: &Arc<LogicalPlan>, required: &BTreeSet<String>) -> Result<Arc<LogicalPlan>> {
    match plan.as_ref() {
        LogicalPlan::TableScan { schema, .. } => {
            let keep: Vec<&str> = schema
                .names()
                .into_iter()
                .filter(|c| required.contains(*c))
                .collect();
            if keep.len() == schema.len() || keep.is_empty() {
                Ok(Arc::clone(plan))
            } else {
                Ok(Arc::new(LogicalPlan::project_columns(
                    Arc::clone(plan),
                    &keep,
                )?))
            }
        }
        LogicalPlan::Filter { input, predicate } => {
            let mut need = required.clone();
            need.extend(predicate.referenced_columns());
            let child = prune(input, &need)?;
            Ok(Arc::new(LogicalPlan::filter(child, predicate.clone())?))
        }
        LogicalPlan::Project { input, exprs, .. } => {
            // Keep only required output expressions (all when the parent
            // requires everything).
            let kept: Vec<(ScalarExpr, String)> = exprs
                .iter()
                .filter(|(_, n)| required.contains(n))
                .cloned()
                .collect();
            let kept = if kept.is_empty() { exprs.clone() } else { kept };
            let mut need = BTreeSet::new();
            for (e, _) in &kept {
                need.extend(e.referenced_columns());
            }
            let child = prune(input, &need)?;
            Ok(Arc::new(LogicalPlan::project(child, kept)?))
        }
        LogicalPlan::Join {
            left,
            right,
            on,
            filter,
            ..
        } => {
            let mut need = required.clone();
            for (l, r) in on {
                need.insert(l.clone());
                need.insert(r.clone());
            }
            if let Some(f) = filter {
                need.extend(f.referenced_columns());
            }
            let lneed: BTreeSet<String> = left
                .schema()
                .names()
                .iter()
                .filter(|c| need.contains(**c))
                .map(|s| s.to_string())
                .collect();
            let rneed: BTreeSet<String> = right
                .schema()
                .names()
                .iter()
                .filter(|c| need.contains(**c))
                .map(|s| s.to_string())
                .collect();
            // Children may return supersets (e.g. nested joins keep their
            // own key columns); extra already-accessed columns are
            // harmless for both cost and compliance, and wrapping a join
            // in a projection here would hide the Join-over-Join pattern
            // from the re-association rules.
            let new_left = prune(left, &lneed)?;
            let new_right = prune(right, &rneed)?;
            Ok(Arc::new(LogicalPlan::join(
                new_left,
                new_right,
                on.clone(),
                filter.clone(),
            )?))
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
            ..
        } => {
            let mut need: BTreeSet<String> = group_by.iter().cloned().collect();
            for a in aggs {
                if let Some(arg) = &a.arg {
                    need.extend(arg.referenced_columns());
                }
            }
            let child = prune(input, &need)?;
            Ok(Arc::new(LogicalPlan::aggregate(
                child,
                group_by.clone(),
                aggs.clone(),
            )?))
        }
        LogicalPlan::Union { inputs, .. } => {
            // Branch schemas must stay identical: prune all with the same
            // requirement, then shape all to it.
            let shaped: Vec<Arc<LogicalPlan>> = inputs
                .iter()
                .map(|i| shape(prune(i, required)?, required))
                .collect::<Result<_>>()?;
            Ok(Arc::new(LogicalPlan::union(shaped)?))
        }
        LogicalPlan::Sort { input, keys } => {
            let mut need = required.clone();
            for k in keys {
                need.insert(k.column.clone());
            }
            let child = prune(input, &need)?;
            Ok(Arc::new(LogicalPlan::sort(child, keys.clone())?))
        }
        LogicalPlan::Limit { input, fetch } => {
            let child = prune(input, required)?;
            Ok(Arc::new(LogicalPlan::limit(child, *fetch)))
        }
    }
}

/// Wrap with a projection so that the plan outputs exactly the columns in
/// `want` (schema order), unless it already does.
fn shape(plan: Arc<LogicalPlan>, want: &BTreeSet<String>) -> Result<Arc<LogicalPlan>> {
    let keep: Vec<String> = plan
        .schema()
        .names()
        .iter()
        .filter(|c| want.contains(**c))
        .map(|s| s.to_string())
        .collect();
    if keep.len() == plan.schema().len() || keep.is_empty() {
        return Ok(plan);
    }
    let refs: Vec<&str> = keep.iter().map(String::as_str).collect();
    Ok(Arc::new(LogicalPlan::project_columns(plan, &refs)?))
}

/// Merge adjacent projections and drop identity projections.
fn simplify_projects(plan: &Arc<LogicalPlan>) -> Result<Arc<LogicalPlan>> {
    let children: Vec<Arc<LogicalPlan>> = plan
        .children()
        .iter()
        .map(|c| simplify_projects(c))
        .collect::<Result<_>>()?;
    let rebuilt = Arc::new(plan.with_children(children)?);
    if let LogicalPlan::Project { input, exprs, .. } = rebuilt.as_ref() {
        // Identity projection?
        if is_identity(exprs, input.schema()) {
            return Ok(Arc::clone(input));
        }
        // Merge Project(Project(x)).
        if let LogicalPlan::Project {
            input: inner_input,
            exprs: inner_exprs,
            ..
        } = input.as_ref()
        {
            let map: BTreeMap<String, ScalarExpr> = inner_exprs
                .iter()
                .map(|(e, n)| (n.clone(), e.clone()))
                .collect();
            let merged: Vec<(ScalarExpr, String)> = exprs
                .iter()
                .map(|(e, n)| (substitute(e, &map), n.clone()))
                .collect();
            if is_identity(&merged, inner_input.schema()) {
                return Ok(Arc::clone(inner_input));
            }
            return Ok(Arc::new(LogicalPlan::project(
                Arc::clone(inner_input),
                merged,
            )?));
        }
    }
    Ok(rebuilt)
}

fn is_identity(exprs: &[(ScalarExpr, String)], input: &Schema) -> bool {
    exprs.len() == input.len()
        && exprs
            .iter()
            .zip(input.names())
            .all(|((e, n), c)| e.as_column() == Some(c) && n == c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoqp_common::{DataType, Field, Location, TableRef};
    use geoqp_plan::PlanBuilder;

    fn scan(name: &str, loc: &str, cols: &[&str]) -> PlanBuilder {
        PlanBuilder::scan(
            TableRef::bare(name),
            Location::new(loc),
            Schema::new(
                cols.iter()
                    .map(|c| Field::new(*c, DataType::Int64))
                    .collect(),
            )
            .unwrap(),
        )
    }

    #[test]
    fn filters_sink_to_scans() {
        let plan = scan("a", "X", &["a_k", "a_v"])
            .join(scan("b", "Y", &["b_k", "b_v"]), vec![("a_k", "b_k")])
            .unwrap()
            .filter(
                ScalarExpr::col("a_v")
                    .gt(ScalarExpr::lit(1i64))
                    .and(ScalarExpr::col("b_v").lt(ScalarExpr::lit(9i64))),
            )
            .unwrap()
            .build();
        let n = normalize_plan(&plan).unwrap();
        // Top must be the join; both sides filtered.
        let LogicalPlan::Join { left, right, .. } = n.as_ref() else {
            panic!("expected join at top, got {}", n.name());
        };
        assert!(matches!(left.as_ref(), LogicalPlan::Filter { .. }));
        assert!(matches!(right.as_ref(), LogicalPlan::Filter { .. }));
    }

    #[test]
    fn cross_side_conjunct_becomes_join_residual() {
        let plan = scan("a", "X", &["a_k", "a_v"])
            .join(scan("b", "Y", &["b_k", "b_v"]), vec![("a_k", "b_k")])
            .unwrap()
            .filter(ScalarExpr::col("a_v").lt(ScalarExpr::col("b_v")))
            .unwrap()
            .build();
        let n = normalize_plan(&plan).unwrap();
        let LogicalPlan::Join { filter, .. } = n.as_ref() else {
            panic!("expected join at top");
        };
        assert!(filter.is_some());
    }

    #[test]
    fn columns_prune_below_join() {
        let plan = scan("a", "X", &["a_k", "a_v", "a_unused"])
            .join(scan("b", "Y", &["b_k", "b_v"]), vec![("a_k", "b_k")])
            .unwrap()
            .project_columns(&["a_v", "b_v"])
            .unwrap()
            .build();
        let n = normalize_plan(&plan).unwrap();
        let mut saw_pruned_scan_side = false;
        n.visit(&mut |p| {
            if let LogicalPlan::Project { exprs, input, .. } = p {
                if matches!(input.as_ref(), LogicalPlan::TableScan { .. }) {
                    let names: Vec<&str> = exprs.iter().map(|(_, s)| s.as_str()).collect();
                    if names == vec!["a_k", "a_v"] {
                        saw_pruned_scan_side = true;
                    }
                }
            }
        });
        assert!(
            saw_pruned_scan_side,
            "a_unused not pruned:\n{}",
            geoqp_plan::display::display_logical(&n)
        );
    }

    #[test]
    fn filters_do_not_cross_limit() {
        let plan = scan("a", "X", &["a_k"])
            .limit(5)
            .filter(ScalarExpr::col("a_k").gt(ScalarExpr::lit(0i64)))
            .unwrap()
            .build();
        let n = normalize_plan(&plan).unwrap();
        assert!(matches!(n.as_ref(), LogicalPlan::Filter { .. }));
        let LogicalPlan::Filter { input, .. } = n.as_ref() else {
            unreachable!()
        };
        assert!(matches!(input.as_ref(), LogicalPlan::Limit { .. }));
    }

    #[test]
    fn identity_projects_vanish() {
        let plan = scan("a", "X", &["a_k", "a_v"])
            .project_columns(&["a_k", "a_v"])
            .unwrap()
            .project_columns(&["a_k", "a_v"])
            .unwrap()
            .build();
        let n = normalize_plan(&plan).unwrap();
        assert!(matches!(n.as_ref(), LogicalPlan::TableScan { .. }));
    }

    #[test]
    fn schema_is_preserved() {
        let plan = scan("a", "X", &["a_k", "a_v", "a_w"])
            .join(scan("b", "Y", &["b_k", "b_v"]), vec![("a_k", "b_k")])
            .unwrap()
            .filter(ScalarExpr::col("a_w").gt(ScalarExpr::lit(3i64)))
            .unwrap()
            .project_columns(&["a_v", "b_v"])
            .unwrap()
            .build();
        let n = normalize_plan(&plan).unwrap();
        assert_eq!(n.schema(), plan.schema());
    }

    #[test]
    fn filter_substitutes_through_projection() {
        let plan = scan("a", "X", &["a_k"])
            .project(vec![(
                ScalarExpr::col("a_k").add(ScalarExpr::lit(1i64)),
                "k1".into(),
            )])
            .unwrap()
            .filter(ScalarExpr::col("k1").gt(ScalarExpr::lit(10i64)))
            .unwrap()
            .build();
        let n = normalize_plan(&plan).unwrap();
        // The filter lands below the projection, over (a_k + 1) > 10.
        let mut filter_below = false;
        n.visit(&mut |p| {
            if let LogicalPlan::Filter { predicate, .. } = p {
                if predicate.to_string().contains("a_k + 1") {
                    filter_below = true;
                }
            }
        });
        assert!(filter_below, "{}", geoqp_plan::display::display_logical(&n));
    }
}
