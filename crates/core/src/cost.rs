//! Cardinality estimation and the phase-1 cost model.
//!
//! Phase 1 of the two-phase optimizer costs plans as if all tables were
//! local (Section 6: "cost functions are based on input cardinalities");
//! data-shipping costs enter only in phase 2. The estimator is a standard
//! textbook one: per-column NDVs from base-table statistics, independence
//! across predicates, containment for equi-joins.

use geoqp_common::Value;
use geoqp_expr::{BinaryOp, ScalarExpr};
use geoqp_plan::logical::LogicalPlan;
use geoqp_storage::Catalog;
use std::collections::BTreeMap;

/// Estimated statistics for a plan node's output.
#[derive(Debug, Clone)]
pub struct PlanStats {
    /// Row count.
    pub rows: f64,
    /// Average row width in bytes.
    pub width: f64,
    /// Per-column distinct-value estimates.
    pub ndv: BTreeMap<String, f64>,
}

impl PlanStats {
    fn ndv_of(&self, col: &str) -> f64 {
        self.ndv
            .get(col)
            .copied()
            .unwrap_or((self.rows / 10.0).max(1.0))
            .min(self.rows.max(1.0))
    }

    /// Estimated output bytes (what phase 2 prices per SHIP).
    pub fn bytes(&self) -> f64 {
        self.rows * self.width
    }
}

/// Estimate the statistics of a logical plan against catalog base stats.
pub fn estimate(plan: &LogicalPlan, catalog: &Catalog) -> PlanStats {
    match plan {
        LogicalPlan::TableScan { table, schema, .. } => {
            let (rows, mut ndv_src) = match catalog.resolve_one(table) {
                Ok(entry) => {
                    let nd: BTreeMap<String, f64> = schema
                        .fields()
                        .iter()
                        .map(|f| (f.name.clone(), entry.stats.ndv_of(&f.name) as f64))
                        .collect();
                    (entry.stats.row_count as f64, nd)
                }
                Err(_) => (1000.0, BTreeMap::new()),
            };
            for f in schema.fields() {
                ndv_src
                    .entry(f.name.clone())
                    .or_insert((1000.0f64 / 10.0).max(1.0));
            }
            PlanStats {
                rows,
                width: schema.estimated_row_width() as f64,
                ndv: ndv_src,
            }
        }
        LogicalPlan::Filter { input, predicate } => {
            let mut s = estimate(input, catalog);
            let sel = selectivity(predicate, &s);
            s.rows = (s.rows * sel).max(1.0);
            cap_ndv(&mut s);
            s
        }
        LogicalPlan::Project { input, exprs, .. } => {
            let s = estimate(input, catalog);
            let mut ndv = BTreeMap::new();
            for (e, name) in exprs {
                let n = match e.as_column() {
                    Some(c) => s.ndv_of(c),
                    None => s.rows,
                };
                ndv.insert(name.clone(), n.min(s.rows.max(1.0)));
            }
            PlanStats {
                rows: s.rows,
                width: plan.schema().estimated_row_width() as f64,
                ndv,
            }
        }
        LogicalPlan::Join {
            left,
            right,
            on,
            filter,
            ..
        } => {
            let l = estimate(left, catalog);
            let r = estimate(right, catalog);
            let mut rows = l.rows * r.rows;
            for (lk, rk) in on {
                let d = l.ndv_of(lk).max(r.ndv_of(rk)).max(1.0);
                rows /= d;
            }
            let mut s = PlanStats {
                rows: rows.max(1.0),
                width: plan.schema().estimated_row_width() as f64,
                ndv: l.ndv.into_iter().chain(r.ndv).collect(),
            };
            if let Some(f) = filter {
                s.rows = (s.rows * selectivity(f, &s)).max(1.0);
            }
            cap_ndv(&mut s);
            s
        }
        LogicalPlan::Aggregate {
            input, group_by, ..
        } => {
            let s = estimate(input, catalog);
            let mut groups = 1.0f64;
            for g in group_by {
                groups *= s.ndv_of(g);
            }
            let rows = groups.min(s.rows).max(1.0);
            let mut ndv = BTreeMap::new();
            for f in plan.schema().fields() {
                let n = if group_by.contains(&f.name) {
                    s.ndv_of(&f.name)
                } else {
                    rows
                };
                ndv.insert(f.name.clone(), n.min(rows));
            }
            PlanStats {
                rows,
                width: plan.schema().estimated_row_width() as f64,
                ndv,
            }
        }
        LogicalPlan::Union { inputs, .. } => {
            let parts: Vec<PlanStats> = inputs.iter().map(|i| estimate(i, catalog)).collect();
            let rows: f64 = parts.iter().map(|p| p.rows).sum();
            let mut ndv = BTreeMap::new();
            for p in &parts {
                for (c, n) in &p.ndv {
                    let e = ndv.entry(c.clone()).or_insert(0.0);
                    *e += n;
                }
            }
            for n in ndv.values_mut() {
                *n = n.min(rows.max(1.0));
            }
            PlanStats {
                rows: rows.max(1.0),
                width: plan.schema().estimated_row_width() as f64,
                ndv,
            }
        }
        LogicalPlan::Sort { input, .. } => estimate(input, catalog),
        LogicalPlan::Limit { input, fetch } => {
            let mut s = estimate(input, catalog);
            s.rows = s.rows.min(*fetch as f64).max(1.0);
            cap_ndv(&mut s);
            s
        }
    }
}

fn cap_ndv(s: &mut PlanStats) {
    let rows = s.rows.max(1.0);
    for n in s.ndv.values_mut() {
        *n = n.min(rows);
    }
}

/// Heuristic selectivity of a predicate over input statistics.
pub fn selectivity(pred: &ScalarExpr, stats: &PlanStats) -> f64 {
    match pred {
        ScalarExpr::Binary { op, lhs, rhs } => match op {
            BinaryOp::And => selectivity(lhs, stats) * selectivity(rhs, stats),
            BinaryOp::Or => {
                let a = selectivity(lhs, stats);
                let b = selectivity(rhs, stats);
                (a + b - a * b).clamp(0.0, 1.0)
            }
            BinaryOp::Eq => match (lhs.as_column(), rhs.as_literal()) {
                (Some(c), Some(_)) => 1.0 / stats.ndv_of(c).max(1.0),
                _ => match (lhs.as_column(), rhs.as_column()) {
                    (Some(a), Some(b)) => 1.0 / stats.ndv_of(a).max(stats.ndv_of(b)).max(1.0),
                    _ => 0.1,
                },
            },
            BinaryOp::NotEq => 0.9,
            BinaryOp::Lt | BinaryOp::LtEq | BinaryOp::Gt | BinaryOp::GtEq => 0.3,
            _ => 1.0,
        },
        ScalarExpr::Unary {
            op: geoqp_expr::UnaryOp::Not,
            expr,
        } => (1.0 - selectivity(expr, stats)).clamp(0.01, 1.0),
        ScalarExpr::Like { negated, .. } => {
            if *negated {
                0.75
            } else {
                0.25
            }
        }
        ScalarExpr::InList {
            expr,
            list,
            negated,
        } => {
            let base = match expr.as_column() {
                Some(c) => (list.len() as f64 / stats.ndv_of(c).max(1.0)).min(1.0),
                None => 0.2,
            };
            if *negated {
                (1.0 - base).clamp(0.01, 1.0)
            } else {
                base
            }
        }
        ScalarExpr::Between { negated, .. } => {
            if *negated {
                0.75
            } else {
                0.25
            }
        }
        ScalarExpr::IsNull { negated, .. } => {
            if *negated {
                0.95
            } else {
                0.05
            }
        }
        ScalarExpr::Literal(Value::Bool(true)) => 1.0,
        ScalarExpr::Literal(Value::Bool(false)) => 0.0,
        _ => 0.5,
    }
}

/// Phase-1 local cost of one operator, given its input/output cardinalities
/// (child subtree costs are added by the caller).
pub fn local_op_cost(plan_kind: OpKind, inputs: &[&PlanStats], out_rows: f64) -> f64 {
    match plan_kind {
        OpKind::Scan => out_rows,
        OpKind::Filter => inputs[0].rows,
        OpKind::Project => inputs[0].rows * 0.8,
        OpKind::Join => 1.2 * (inputs[0].rows + inputs[1].rows) + out_rows,
        OpKind::Aggregate => 1.5 * inputs[0].rows + out_rows,
        OpKind::Sort => {
            let n = inputs[0].rows.max(2.0);
            n * n.log2()
        }
        OpKind::Union => inputs.iter().map(|s| s.rows).sum(),
        OpKind::Limit => out_rows,
    }
}

/// Operator kinds for costing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Table scan.
    Scan,
    /// Filter.
    Filter,
    /// Projection.
    Project,
    /// Hash join.
    Join,
    /// Hash aggregation.
    Aggregate,
    /// Sort.
    Sort,
    /// Union.
    Union,
    /// Limit.
    Limit,
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoqp_common::{DataType, Field, Location, Schema, TableRef};
    use geoqp_plan::PlanBuilder;
    use geoqp_storage::TableStats;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_database("db-1", Location::new("L1")).unwrap();
        c.add_database("db-2", Location::new("L2")).unwrap();
        c.add_table(
            "db-1",
            "customer",
            Schema::new(vec![
                Field::new("c_custkey", DataType::Int64),
                Field::new("c_mktseg", DataType::Str),
            ])
            .unwrap(),
            TableStats::new(1500, 30.0)
                .with_ndv("c_custkey", 1500)
                .with_ndv("c_mktseg", 5),
        )
        .unwrap();
        c.add_table(
            "db-2",
            "orders",
            Schema::new(vec![
                Field::new("o_orderkey", DataType::Int64),
                Field::new("o_custkey", DataType::Int64),
            ])
            .unwrap(),
            TableStats::new(15000, 16.0)
                .with_ndv("o_orderkey", 15000)
                .with_ndv("o_custkey", 1000),
        )
        .unwrap();
        c
    }

    fn customer(c: &Catalog) -> PlanBuilder {
        let e = c.resolve_one(&TableRef::bare("customer")).unwrap();
        PlanBuilder::scan(
            e.table.clone(),
            e.location.clone(),
            e.schema.as_ref().clone(),
        )
    }

    fn orders(c: &Catalog) -> PlanBuilder {
        let e = c.resolve_one(&TableRef::bare("orders")).unwrap();
        PlanBuilder::scan(
            e.table.clone(),
            e.location.clone(),
            e.schema.as_ref().clone(),
        )
    }

    #[test]
    fn scan_uses_catalog_stats() {
        let c = catalog();
        let s = estimate(&customer(&c).build(), &c);
        assert_eq!(s.rows, 1500.0);
        assert_eq!(s.ndv["c_mktseg"], 5.0);
    }

    #[test]
    fn equality_filter_uses_ndv() {
        let c = catalog();
        let plan = customer(&c)
            .filter(ScalarExpr::col("c_mktseg").eq(ScalarExpr::lit("BUILDING")))
            .unwrap()
            .build();
        let s = estimate(&plan, &c);
        assert_eq!(s.rows, 300.0); // 1500 / 5
    }

    #[test]
    fn pk_fk_join_estimates_child_cardinality() {
        let c = catalog();
        let plan = customer(&c)
            .join(orders(&c), vec![("c_custkey", "o_custkey")])
            .unwrap()
            .build();
        let s = estimate(&plan, &c);
        // 1500 × 15000 / max(1500, 1000) = 15000.
        assert_eq!(s.rows, 15000.0);
    }

    #[test]
    fn aggregate_rows_bounded_by_group_ndv() {
        let c = catalog();
        let plan = customer(&c)
            .aggregate(&["c_mktseg"], vec![geoqp_expr::AggCall::count_star("n")])
            .unwrap()
            .build();
        let s = estimate(&plan, &c);
        assert_eq!(s.rows, 5.0);
    }

    #[test]
    fn limit_caps_rows() {
        let c = catalog();
        let plan = customer(&c).limit(7).build();
        assert_eq!(estimate(&plan, &c).rows, 7.0);
    }

    #[test]
    fn selectivity_combinators() {
        let c = catalog();
        let s = estimate(&customer(&c).build(), &c);
        let eq = ScalarExpr::col("c_mktseg").eq(ScalarExpr::lit("X"));
        let rng = ScalarExpr::col("c_custkey").gt(ScalarExpr::lit(10i64));
        assert!((selectivity(&eq, &s) - 0.2).abs() < 1e-9);
        assert!((selectivity(&rng, &s) - 0.3).abs() < 1e-9);
        let and = eq.clone().and(rng.clone());
        assert!((selectivity(&and, &s) - 0.06).abs() < 1e-9);
        let or = eq.or(rng);
        assert!((selectivity(&or, &s) - (0.2 + 0.3 - 0.06)).abs() < 1e-9);
    }
}
