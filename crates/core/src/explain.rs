//! EXPLAIN-style rendering of annotated plans, in the spirit of the
//! paper's Figure 4: every operator with its execution trait `ℰ` and
//! shipping trait `𝒮`.

use crate::annotate::AnnotatedNode;
use crate::memo::MOp;
use std::fmt::Write as _;

/// Render an annotated plan with traits.
pub fn display_annotated(node: &AnnotatedNode) -> String {
    let mut out = String::new();
    fmt(node, 0, &mut out);
    out
}

fn fmt(node: &AnnotatedNode, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    let label = match &node.op {
        MOp::Scan {
            table, location, ..
        } => format!("Scan {table} @ {location}"),
        MOp::Filter { predicate } => format!("Filter {predicate}"),
        MOp::Project { exprs } => {
            let cols: Vec<String> = exprs
                .iter()
                .map(|(e, n)| {
                    if e.as_column() == Some(n.as_str()) {
                        n.clone()
                    } else {
                        format!("{e} AS {n}")
                    }
                })
                .collect();
            format!("Project {}", cols.join(", "))
        }
        MOp::Join { on, .. } => {
            let keys: Vec<String> = on.iter().map(|(l, r)| format!("{l}={r}")).collect();
            format!("Join {}", keys.join(" AND "))
        }
        MOp::Aggregate { group_by, aggs } => {
            let a: Vec<String> = aggs.iter().map(|x| x.to_string()).collect();
            format!("Aggregate [{}] [{}]", group_by.join(", "), a.join(", "))
        }
        MOp::Union => "Union".to_string(),
        MOp::Sort { keys } => {
            let k: Vec<String> = keys
                .iter()
                .map(|s| format!("{}{}", s.column, if s.descending { " DESC" } else { "" }))
                .collect();
            format!("Sort {}", k.join(", "))
        }
        MOp::Limit { fetch } => format!("Limit {fetch}"),
    };
    let _ = writeln!(
        out,
        "{pad}{label}   ℰ={} 𝒮={} rows≈{:.0}",
        node.exec, node.ship, node.rows
    );
    for c in &node.children {
        fmt(c, depth + 1, out);
    }
}
