//! The **plan annotator** — phase 1 of the two-phase optimizer
//! (Section 6.2).
//!
//! After logical exploration, physical candidates are derived bottom-up
//! over the memo. Each candidate carries the paper's two new logical
//! properties:
//!
//! * **execution trait** `ℰ_n` — where the operator may legally execute,
//! * **shipping trait** `𝒮_n` — where its output may legally be shipped,
//!
//! derived by the annotation rules of Section 6.1:
//!
//! * **AR1**: a tablescan's `ℰ` is the table's source location;
//! * **AR2**: `ℰ_n ⊇ ⋂_{n' ∈ in(n)} 𝒮_{n'}`;
//! * **AR3**: `𝒮_n ⊇ ℰ_n`;
//! * **AR4**: `𝒮_n ⊇ 𝒜(Q_n, D, P_D)` when `Q_n` is a local query over a
//!   single database (the policy evaluator's domain).
//!
//! The compliance-based cost function assigns infinite cost to operators
//! with an empty execution trait; bottom-up, such candidates can never be
//! completed into an executable plan (single-database subplans always
//! retain their home location), so they are dropped outright. Per group a
//! **Pareto frontier** over `(cost, ℰ, 𝒮)` is kept — the "geo-locations as
//! interesting properties" of the paper: a cheaper plan may not shadow a
//! costlier one that alone carries the traits a parent needs.

use crate::cost::{estimate, local_op_cost, OpKind, PlanStats};
use crate::memo::{build_plan, GroupId, MExpr, MOp, Memo};
use geoqp_common::{GeoError, Location, LocationSet, Result, Schema};
use geoqp_plan::descriptor::describe_local;
use geoqp_plan::logical::LogicalPlan;
use geoqp_policy::PolicyEvaluator;
use geoqp_storage::Catalog;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Default upper bound on a group's Pareto frontier; beyond it the
/// cheapest candidates win (generous — frontiers are typically tiny).
pub const DEFAULT_MAX_FRONTIER: usize = 32;

/// One physical candidate of a group.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The operator (1:1 logical→physical mapping in this engine).
    pub op: MOp,
    /// `(child group, candidate index within that group's frontier)`.
    pub children: Vec<(GroupId, usize)>,
    /// Phase-1 (location-agnostic) cost of the whole subtree.
    pub cost: f64,
    /// Execution trait `ℰ`.
    pub exec: LocationSet,
    /// Shipping trait `𝒮`.
    pub ship: LocationSet,
    /// The concrete logical plan of this candidate (feeds AR4 and the
    /// compliance checker).
    pub logical: Arc<LogicalPlan>,
}

/// An extracted, annotated operator tree — the "annotated QEP" phase 1
/// hands to the site selector.
#[derive(Debug, Clone)]
pub struct AnnotatedNode {
    /// Operator.
    pub op: MOp,
    /// Output schema.
    pub schema: Arc<Schema>,
    /// Execution trait.
    pub exec: LocationSet,
    /// Shipping trait.
    pub ship: LocationSet,
    /// Estimated output rows.
    pub rows: f64,
    /// Estimated output row width (bytes).
    pub width: f64,
    /// Children.
    pub children: Vec<AnnotatedNode>,
}

impl AnnotatedNode {
    /// Count operators.
    pub fn node_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(AnnotatedNode::node_count)
            .sum::<usize>()
    }

    /// Estimated output bytes.
    pub fn bytes(&self) -> f64 {
        self.rows * self.width
    }

    /// A copy of the tree with `dead` sites removed from every execution
    /// trait — the input to failover re-planning (re-running Algorithm 2
    /// around crashed sites). Shipping traits are left untouched: they
    /// encode what the *policies* permit, which an outage does not change.
    /// Returns `None` when some operator's execution trait empties — no
    /// compliant placement survives the loss of those sites.
    pub fn excluding_sites(&self, dead: &LocationSet) -> Option<AnnotatedNode> {
        let exec: LocationSet = self
            .exec
            .iter()
            .filter(|l| !dead.contains(l))
            .cloned()
            .collect();
        if exec.is_empty() {
            return None;
        }
        let children = self
            .children
            .iter()
            .map(|c| c.excluding_sites(dead))
            .collect::<Option<Vec<_>>>()?;
        Some(AnnotatedNode {
            op: self.op.clone(),
            schema: Arc::clone(&self.schema),
            exec,
            ship: self.ship.clone(),
            rows: self.rows,
            width: self.width,
            children,
        })
    }
}

/// Whether compliance machinery is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnnotateMode {
    /// Derive traits via AR1–AR4 and drop un-annotatable candidates.
    Compliant,
    /// Traditional baseline: every operator may run anywhere (scans stay
    /// pinned to their table's site), policies are ignored.
    Traditional,
}

/// Phase-1 annotator.
pub struct Annotator<'a> {
    catalog: &'a Catalog,
    evaluator: &'a PolicyEvaluator<'a>,
    mode: AnnotateMode,
    frontier_cap: usize,
}

impl<'a> Annotator<'a> {
    /// Create an annotator.
    pub fn new(
        catalog: &'a Catalog,
        evaluator: &'a PolicyEvaluator<'a>,
        mode: AnnotateMode,
    ) -> Annotator<'a> {
        Annotator {
            catalog,
            evaluator,
            mode,
            frontier_cap: DEFAULT_MAX_FRONTIER,
        }
    }

    /// Override the per-group Pareto frontier bound. A cap of 1 degrades
    /// the optimizer to "cheapest plan only" — the ablation showing why
    /// the paper treats geo-locations as interesting properties.
    pub fn with_frontier_cap(mut self, cap: usize) -> Annotator<'a> {
        self.frontier_cap = cap.max(1);
        self
    }

    /// Compute every group's Pareto frontier, bottom-up over the memo.
    pub fn annotate(&self, memo: &Memo) -> Result<Frontiers> {
        let topo = topo_order(memo)?;
        let mut frontiers: Vec<Vec<Candidate>> = vec![Vec::new(); memo.group_count()];
        let mut stats: Vec<Option<PlanStats>> = vec![None; memo.group_count()];

        for gid in topo.order {
            let group = memo.group(gid);
            let gstats = estimate(&group.repr, self.catalog);
            let mut cands: Vec<Candidate> = Vec::new();
            for (ei, expr) in group.exprs.iter().enumerate() {
                if topo.skipped.contains(&(gid.0, ei)) {
                    continue;
                }
                self.expand_expr(memo, expr, &gstats, &frontiers, &stats, &mut cands)?;
            }
            pareto_prune(&mut cands, self.frontier_cap);
            frontiers[gid.0] = cands;
            stats[gid.0] = Some(gstats);
        }
        Ok(Frontiers { frontiers, stats })
    }

    fn expand_expr(
        &self,
        _memo: &Memo,
        expr: &MExpr,
        gstats: &PlanStats,
        frontiers: &[Vec<Candidate>],
        stats: &[Option<PlanStats>],
        out: &mut Vec<Candidate>,
    ) -> Result<()> {
        // Gather child frontiers; an empty child frontier kills the expr.
        let child_frontiers: Vec<&[Candidate]> = expr
            .children
            .iter()
            .map(|c| frontiers[c.0].as_slice())
            .collect();
        if child_frontiers.iter().any(|f| f.is_empty()) && !expr.children.is_empty() {
            return Ok(());
        }
        let child_stats: Vec<&PlanStats> = expr
            .children
            .iter()
            .map(|c| stats[c.0].as_ref().expect("topological order"))
            .collect();

        let kind = match &expr.op {
            MOp::Scan { .. } => OpKind::Scan,
            MOp::Filter { .. } => OpKind::Filter,
            MOp::Project { .. } => OpKind::Project,
            MOp::Join { .. } => OpKind::Join,
            MOp::Aggregate { .. } => OpKind::Aggregate,
            MOp::Union => OpKind::Union,
            MOp::Sort { .. } => OpKind::Sort,
            MOp::Limit { .. } => OpKind::Limit,
        };
        let op_cost = local_op_cost(kind, &child_stats, gstats.rows);

        // Leaf.
        if expr.children.is_empty() {
            let MOp::Scan { location, .. } = &expr.op else {
                return Err(GeoError::Optimize("non-scan leaf".into()));
            };
            let exec = LocationSet::singleton(location.clone()); // AR1
            let logical = build_plan(&expr.op, vec![])?;
            let ship = self.ship_trait(&exec, &logical);
            out.push(Candidate {
                op: expr.op.clone(),
                children: vec![],
                cost: op_cost,
                exec,
                ship,
                logical,
            });
            return Ok(());
        }

        // Cross product of child candidates.
        let mut combo = vec![0usize; expr.children.len()];
        loop {
            let picked: Vec<&Candidate> = combo
                .iter()
                .enumerate()
                .map(|(i, &j)| &child_frontiers[i][j])
                .collect();

            // AR2: ℰ = ⋂ children 𝒮 (universe in traditional mode).
            let exec = match self.mode {
                AnnotateMode::Traditional => self.evaluator.universe().clone(),
                AnnotateMode::Compliant => {
                    let mut e = picked[0].ship.clone();
                    for p in &picked[1..] {
                        e.intersect_with(&p.ship);
                    }
                    e
                }
            };
            if !exec.is_empty() {
                let cost = op_cost + picked.iter().map(|p| p.cost).sum::<f64>();
                let children: Vec<(GroupId, usize)> = expr
                    .children
                    .iter()
                    .zip(&combo)
                    .map(|(g, j)| (*g, *j))
                    .collect();
                let logical = build_plan(
                    &expr.op,
                    picked.iter().map(|p| Arc::clone(&p.logical)).collect(),
                )?;
                let ship = self.ship_trait(&exec, &logical);
                out.push(Candidate {
                    op: expr.op.clone(),
                    children,
                    cost,
                    exec,
                    ship,
                    logical,
                });
            }

            // Advance the mixed-radix counter.
            let mut i = 0;
            loop {
                if i == combo.len() {
                    return Ok(());
                }
                combo[i] += 1;
                if combo[i] < child_frontiers[i].len() {
                    break;
                }
                combo[i] = 0;
                i += 1;
            }
        }
    }

    /// AR3 + AR4.
    fn ship_trait(&self, exec: &LocationSet, logical: &Arc<LogicalPlan>) -> LocationSet {
        match self.mode {
            AnnotateMode::Traditional => self.evaluator.universe().clone(),
            AnnotateMode::Compliant => {
                let mut ship = exec.clone(); // AR3
                if let Some(local) = describe_local(logical) {
                    ship.union_with(&self.evaluator.evaluate(&local)); // AR4
                }
                ship
            }
        }
    }
}

/// The annotator's output: per-group Pareto frontiers plus statistics.
pub struct Frontiers {
    frontiers: Vec<Vec<Candidate>>,
    stats: Vec<Option<PlanStats>>,
}

impl Frontiers {
    /// The Pareto frontier of a group.
    pub fn of(&self, g: GroupId) -> &[Candidate] {
        &self.frontiers[g.0]
    }

    /// Pick the best root candidate: minimum cost, optionally requiring
    /// the result to be shippable to `result_location`. `None` when the
    /// group has no viable candidate — the query is rejected.
    pub fn best_root(
        &self,
        root: GroupId,
        result_location: Option<&Location>,
    ) -> Option<&Candidate> {
        self.frontiers[root.0]
            .iter()
            .filter(|c| match result_location {
                None => true,
                Some(l) => c.ship.contains(l),
            })
            .min_by(|a, b| a.cost.total_cmp(&b.cost))
    }

    /// Extract the annotated operator tree rooted at a candidate.
    #[allow(clippy::only_used_in_recursion)]
    pub fn extract(&self, memo: &Memo, cand: &Candidate) -> AnnotatedNode {
        let children: Vec<AnnotatedNode> = cand
            .children
            .iter()
            .map(|(g, j)| self.extract(memo, &self.frontiers[g.0][*j]))
            .collect();
        let (schema, rows, width) = {
            let logical = &cand.logical;
            let schema = logical.schema_ref();
            // Stats for this node come from the logical estimate of its
            // own subtree (group stats are keyed by group, but the
            // candidate knows its schema; rows/width from group stats of
            // its children are already folded into cost — here we estimate
            // for phase 2's byte pricing).
            (schema, 0.0, 0.0)
        };
        let mut node = AnnotatedNode {
            op: cand.op.clone(),
            schema,
            exec: cand.exec.clone(),
            ship: cand.ship.clone(),
            rows,
            width,
            children,
        };
        // rows/width are refilled by the caller via `fill_stats`.
        node.width = node.schema.estimated_row_width() as f64;
        node
    }

    /// Group statistics.
    pub fn stats_of(&self, g: GroupId) -> Option<&PlanStats> {
        self.stats[g.0].as_ref()
    }
}

/// Fill in row estimates for an extracted tree by re-estimating each
/// node's logical content against the catalog.
pub fn fill_stats(node: &mut AnnotatedNode, logical: &Arc<LogicalPlan>, catalog: &Catalog) {
    let s = estimate(logical, catalog);
    node.rows = s.rows;
    node.width = s.width;
    let child_plans: Vec<&Arc<LogicalPlan>> = logical.children();
    for (child, plan) in node.children.iter_mut().zip(child_plans) {
        fill_stats(child, plan, catalog);
    }
}

/// Pareto pruning: drop candidates dominated in (cost, ℰ, 𝒮).
fn pareto_prune(cands: &mut Vec<Candidate>, cap: usize) {
    cands.sort_by(|a, b| a.cost.total_cmp(&b.cost));
    let mut kept: Vec<Candidate> = Vec::new();
    'outer: for c in cands.drain(..) {
        for k in &kept {
            // kept entries have cost ≤ c.cost by sort order.
            if k.ship.is_superset(&c.ship) && k.exec.is_superset(&c.exec) {
                continue 'outer;
            }
        }
        if kept.len() < cap {
            kept.push(c);
        }
    }
    *cands = kept;
}

/// Topological order of groups (children before parents).
fn topo_order(memo: &Memo) -> Result<TopoOrder> {
    let n = memo.group_count();
    let mut state = vec![0u8; n]; // 0 = unvisited, 1 = visiting, 2 = done
    let mut order = Vec::with_capacity(n);
    let mut skipped: HashSet<(usize, usize)> = HashSet::new();
    // Iterative DFS to avoid stack overflows on deep memos. Back-edges
    // (cycles introduced by cross-group expression duplication during
    // exploration) mark the offending expression as skipped instead of
    // failing: the originally inserted plan is always acyclic, so every
    // group keeps at least its structural derivation.
    for start in 0..n {
        if state[start] != 0 {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        state[start] = 1;
        while let Some(&mut (g, ref mut ci)) = stack.last_mut() {
            // Flattened (expr index, child group) pairs of g.
            let children: Vec<(usize, usize)> = memo
                .group(GroupId(g))
                .exprs
                .iter()
                .enumerate()
                .flat_map(|(ei, e)| e.children.iter().map(move |c| (ei, c.0)))
                .collect();
            if *ci < children.len() {
                let (ei, c) = children[*ci];
                *ci += 1;
                match state[c] {
                    0 => {
                        state[c] = 1;
                        stack.push((c, 0));
                    }
                    1 => {
                        // Back-edge: this expression would close a cycle.
                        skipped.insert((g, ei));
                    }
                    _ => {}
                }
            } else {
                state[g] = 2;
                order.push(GroupId(g));
                stack.pop();
            }
        }
    }
    Ok(TopoOrder { order, skipped })
}

/// Bottom-up processing order with cycle-breaking skip set.
struct TopoOrder {
    order: Vec<GroupId>,
    /// `(group, expr index)` pairs excluded from candidate expansion.
    skipped: HashSet<(usize, usize)>,
}

/// Deduplicated child-group edges and frontier sizes, for diagnostics.
#[derive(Debug, Default, Clone, Copy)]
pub struct AnnotateStats {
    /// Total candidates across all frontiers.
    pub candidates: usize,
}

impl Frontiers {
    /// Diagnostics.
    pub fn stats(&self) -> AnnotateStats {
        AnnotateStats {
            candidates: self.frontiers.iter().map(Vec::len).sum(),
        }
    }
}

#[allow(dead_code)]
fn _assert_traits() {
    fn is_send<T: Send>() {}
    is_send::<HashMap<usize, usize>>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memo::Memo;
    use geoqp_common::{DataType, Field, LocationPattern, TableRef};
    use geoqp_plan::PlanBuilder;
    use geoqp_policy::{PolicyCatalog, PolicyExpression, ShipAttrs};
    use geoqp_storage::TableStats;

    fn deployment() -> (Catalog, PolicyCatalog) {
        let mut catalog = Catalog::new();
        catalog.add_database("db-n", Location::new("N")).unwrap();
        catalog.add_database("db-e", Location::new("E")).unwrap();
        let cust = geoqp_common::Schema::new(vec![
            Field::new("c_k", DataType::Int64),
            Field::new("c_name", DataType::Str),
            Field::new("c_secret", DataType::Str),
        ])
        .unwrap();
        let ord = geoqp_common::Schema::new(vec![
            Field::new("o_k", DataType::Int64),
            Field::new("o_price", DataType::Float64),
        ])
        .unwrap();
        catalog
            .add_table("db-n", "cust", cust.clone(), TableStats::new(100, 30.0))
            .unwrap();
        catalog
            .add_table("db-e", "ord", ord.clone(), TableStats::new(1000, 17.0))
            .unwrap();
        let mut policies = PolicyCatalog::new();
        policies
            .register(
                PolicyExpression::basic(
                    TableRef::bare("cust"),
                    ShipAttrs::list(["c_k", "c_name"]),
                    LocationPattern::Star,
                    None,
                ),
                &cust,
            )
            .unwrap();
        policies
            .register(
                PolicyExpression::basic(
                    TableRef::bare("ord"),
                    ShipAttrs::Star,
                    LocationPattern::Star,
                    None,
                ),
                &ord,
            )
            .unwrap();
        (catalog, policies)
    }

    fn scan(catalog: &Catalog, t: &str) -> PlanBuilder {
        let e = catalog.resolve_one(&TableRef::bare(t)).unwrap();
        PlanBuilder::scan(
            e.table.clone(),
            e.location.clone(),
            e.schema.as_ref().clone(),
        )
    }

    #[test]
    fn ar1_pins_scans_and_ar3_ar4_extend_shipping() {
        let (catalog, policies) = deployment();
        let universe = catalog.locations().clone();
        let evaluator = PolicyEvaluator::new(&policies, &universe);
        let annotator = Annotator::new(&catalog, &evaluator, AnnotateMode::Compliant);

        // Masked customer projection: AR1 → ℰ = {N}; AR3 ∪ AR4 → 𝒮 = {N, E}.
        let plan = scan(&catalog, "cust")
            .project_columns(&["c_k", "c_name"])
            .unwrap()
            .build();
        let mut memo = Memo::new();
        let root = memo.copy_in(&plan).unwrap();
        let frontiers = annotator.annotate(&memo).unwrap();
        let cands = frontiers.of(root);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].exec, LocationSet::singleton(Location::new("N")));
        assert_eq!(cands[0].ship, LocationSet::from_iter(["N", "E"]));

        // The raw scan (with c_secret) ships nowhere beyond home.
        let raw = scan(&catalog, "cust").build();
        let mut memo = Memo::new();
        let root = memo.copy_in(&raw).unwrap();
        let frontiers = annotator.annotate(&memo).unwrap();
        assert_eq!(
            frontiers.of(root)[0].ship,
            LocationSet::singleton(Location::new("N"))
        );
    }

    #[test]
    fn ar2_intersects_children_shipping_traits() {
        let (catalog, policies) = deployment();
        let universe = catalog.locations().clone();
        let evaluator = PolicyEvaluator::new(&policies, &universe);
        let annotator = Annotator::new(&catalog, &evaluator, AnnotateMode::Compliant);

        // Join of masked customer ({N,E}) with orders ({N,E}): ℰ = {N, E}.
        let plan = scan(&catalog, "cust")
            .project_columns(&["c_k", "c_name"])
            .unwrap()
            .join(scan(&catalog, "ord"), vec![("c_k", "o_k")])
            .unwrap()
            .build();
        let mut memo = Memo::new();
        let root = memo.copy_in(&plan).unwrap();
        let frontiers = annotator.annotate(&memo).unwrap();
        assert_eq!(
            frontiers.of(root)[0].exec,
            LocationSet::from_iter(["N", "E"])
        );

        // Join with the raw customer ({N}): ℰ collapses to {N}.
        let plan = scan(&catalog, "cust")
            .join(scan(&catalog, "ord"), vec![("c_k", "o_k")])
            .unwrap()
            .build();
        let mut memo = Memo::new();
        let root = memo.copy_in(&plan).unwrap();
        let frontiers = annotator.annotate(&memo).unwrap();
        assert_eq!(
            frontiers.of(root)[0].exec,
            LocationSet::singleton(Location::new("N"))
        );
    }

    #[test]
    fn traditional_mode_grants_everything_but_pins_scans() {
        let (catalog, policies) = deployment();
        let universe = catalog.locations().clone();
        let evaluator = PolicyEvaluator::new(&policies, &universe);
        let annotator = Annotator::new(&catalog, &evaluator, AnnotateMode::Traditional);
        let plan = scan(&catalog, "cust")
            .join(scan(&catalog, "ord"), vec![("c_k", "o_k")])
            .unwrap()
            .build();
        let mut memo = Memo::new();
        let root = memo.copy_in(&plan).unwrap();
        let frontiers = annotator.annotate(&memo).unwrap();
        assert_eq!(frontiers.of(root)[0].exec, universe);
        // Scans stay pinned regardless of mode.
        let leaf = memo
            .groups()
            .iter()
            .find(|g| matches!(g.exprs[0].op, crate::memo::MOp::Scan { .. }))
            .unwrap();
        assert_eq!(frontiers.of(leaf.id)[0].exec.len(), 1);
    }

    #[test]
    fn pareto_prune_keeps_trait_diverse_candidates() {
        let mk = |cost: f64, ship: &[&str]| Candidate {
            op: crate::memo::MOp::Union,
            children: vec![],
            cost,
            exec: LocationSet::from_iter(ship.iter().copied()),
            ship: LocationSet::from_iter(ship.iter().copied()),
            logical: Arc::new(geoqp_plan::LogicalPlan::scan(
                geoqp_common::TableRef::bare("x"),
                Location::new("X"),
                geoqp_common::Schema::empty(),
            )),
        };
        // Cheap-narrow, costly-wide, dominated-costly-narrow.
        let mut cands = vec![mk(10.0, &["A"]), mk(20.0, &["A", "B"]), mk(30.0, &["A"])];
        pareto_prune(&mut cands, 32);
        assert_eq!(cands.len(), 2, "dominated candidate must drop");
        assert!(cands.iter().any(|c| c.cost == 10.0));
        assert!(cands.iter().any(|c| c.cost == 20.0));
        // Cap of 1 keeps only the cheapest.
        let mut cands = vec![mk(10.0, &["A"]), mk(20.0, &["A", "B"])];
        pareto_prune(&mut cands, 1);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].cost, 10.0);
    }
}
