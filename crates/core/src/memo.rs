//! The memo: groups of equivalent logical expressions.
//!
//! A classic Volcano/Cascades memo specialized for this optimizer: groups
//! hold logical multi-expressions (`MExpr`) whose children are group ids.
//! Full logical subtrees are deduplicated on insertion via a plan index, so
//! transformation rules that re-derive a known subtree reconnect to its
//! existing group instead of growing the memo.

use geoqp_common::{GeoError, Location, Result, Schema, TableRef};
use geoqp_expr::{AggCall, ScalarExpr};
use geoqp_plan::logical::{LogicalPlan, SortKey};
use std::collections::HashMap;
use std::sync::Arc;

/// A group identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(pub usize);

/// The operator of a logical multi-expression (children factored out into
/// group ids).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum MOp {
    /// Leaf scan.
    Scan {
        /// The table.
        table: TableRef,
        /// Its site.
        location: Location,
        /// Its schema.
        schema: Arc<Schema>,
    },
    /// Filter.
    Filter {
        /// The predicate.
        predicate: ScalarExpr,
    },
    /// Projection.
    Project {
        /// `(expr, name)` pairs.
        exprs: Vec<(ScalarExpr, String)>,
    },
    /// Inner equi-join.
    Join {
        /// Key pairs.
        on: Vec<(String, String)>,
        /// Residual condition.
        filter: Option<ScalarExpr>,
    },
    /// Aggregation.
    Aggregate {
        /// Group columns.
        group_by: Vec<String>,
        /// Aggregate calls.
        aggs: Vec<AggCall>,
    },
    /// Bag union.
    Union,
    /// Sort.
    Sort {
        /// Sort keys.
        keys: Vec<SortKey>,
    },
    /// Limit.
    Limit {
        /// Row budget.
        fetch: usize,
    },
}

impl MOp {
    /// Short name for diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            MOp::Scan { .. } => "Scan",
            MOp::Filter { .. } => "Filter",
            MOp::Project { .. } => "Project",
            MOp::Join { .. } => "Join",
            MOp::Aggregate { .. } => "Aggregate",
            MOp::Union => "Union",
            MOp::Sort { .. } => "Sort",
            MOp::Limit { .. } => "Limit",
        }
    }
}

/// A logical multi-expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MExpr {
    /// Operator.
    pub op: MOp,
    /// Child groups, in order.
    pub children: Vec<GroupId>,
}

/// One equivalence class of logical expressions.
#[derive(Debug)]
pub struct Group {
    /// This group's id.
    pub id: GroupId,
    /// The equivalent expressions.
    pub exprs: Vec<MExpr>,
    /// Output schema shared by all expressions.
    pub schema: Arc<Schema>,
    /// A representative logical plan (the one first inserted), used for
    /// cardinality estimation.
    pub repr: Arc<LogicalPlan>,
}

/// The memo.
#[derive(Debug, Default)]
pub struct Memo {
    groups: Vec<Group>,
    /// Dedup of (expr) → group containing it.
    expr_index: HashMap<MExpr, GroupId>,
    /// Dedup of full logical subtrees → group, keyed by a shape-erased
    /// fingerprint: join-tree *structure* is flattened away (leaves in
    /// order, key/filter sets sorted), so every re-association of the same
    /// join block maps to one group. Without this, an n-way chain creates
    /// a group per parenthesization (Catalan growth).
    plan_index: HashMap<String, GroupId>,
    /// Total expressions (memo-size budget).
    expr_count: usize,
}

/// Hard cap on memo expressions; exceeding it aborts optimization with an
/// `Optimize` error rather than consuming unbounded memory.
pub const MAX_MEMO_EXPRS: usize = 400_000;

impl Memo {
    /// Empty memo.
    pub fn new() -> Memo {
        Memo::default()
    }

    /// All groups.
    pub fn groups(&self) -> &[Group] {
        &self.groups
    }

    /// A group by id.
    pub fn group(&self, id: GroupId) -> &Group {
        &self.groups[id.0]
    }

    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Number of expressions across all groups.
    pub fn expr_count(&self) -> usize {
        self.expr_count
    }

    /// Insert a full logical plan, returning its group. Identical subtrees
    /// share groups.
    pub fn copy_in(&mut self, plan: &Arc<LogicalPlan>) -> Result<GroupId> {
        let key = fingerprint(plan);
        if let Some(g) = self.plan_index.get(&key) {
            return Ok(*g);
        }
        let children: Vec<GroupId> = plan
            .children()
            .iter()
            .map(|c| self.copy_in(c))
            .collect::<Result<_>>()?;
        let op = op_of(plan);
        let expr = MExpr { op, children };
        let gid = match self.expr_index.get(&expr) {
            Some(g) => *g,
            None => {
                let gid = self.new_group(plan.schema_ref(), Arc::clone(plan));
                self.add_expr_to_group(gid, expr)?;
                gid
            }
        };
        self.plan_index.insert(key, gid);
        Ok(gid)
    }

    /// Add an expression to an existing group (rule output). Returns true
    /// when the expression is new to the group.
    pub fn add_expr(&mut self, group: GroupId, expr: MExpr) -> Result<bool> {
        // Self-references would create cycles; rules never need them.
        if expr.children.contains(&group) {
            return Ok(false);
        }
        if let Some(existing) = self.expr_index.get(&expr) {
            // Already known somewhere. If it is in this group, nothing to
            // do; if elsewhere, we skip rather than merge groups — parents
            // referencing either group still see equivalent plans.
            let _ = existing;
            if self.groups[group.0].exprs.contains(&expr) {
                return Ok(false);
            }
            if *self.expr_index.get(&expr).unwrap() != group {
                // Record it in this group too (cheap duplication instead of
                // group merging).
                self.groups[group.0].exprs.push(expr);
                self.expr_count += 1;
                return Ok(true);
            }
            return Ok(false);
        }
        self.add_expr_to_group(group, expr)?;
        Ok(true)
    }

    /// Create a fresh group seeded by a rule-produced expression whose
    /// representative plan is `repr`.
    pub fn add_group_with_expr(&mut self, repr: Arc<LogicalPlan>, expr: MExpr) -> Result<GroupId> {
        let key = fingerprint(&repr);
        if let Some(g) = self.plan_index.get(&key) {
            // The subtree is already known (possibly via a different join
            // shape): reuse its group and record the expression there.
            let gid = *g;
            let _ = self.add_expr(gid, expr);
            return Ok(gid);
        }
        let gid = self.new_group(repr.schema_ref(), Arc::clone(&repr));
        self.add_expr_to_group(gid, expr)?;
        self.plan_index.insert(key, gid);
        Ok(gid)
    }

    fn new_group(&mut self, schema: Arc<Schema>, repr: Arc<LogicalPlan>) -> GroupId {
        let id = GroupId(self.groups.len());
        self.groups.push(Group {
            id,
            exprs: Vec::new(),
            schema,
            repr,
        });
        id
    }

    fn add_expr_to_group(&mut self, gid: GroupId, expr: MExpr) -> Result<()> {
        if self.expr_count >= MAX_MEMO_EXPRS {
            return Err(GeoError::Optimize(format!(
                "memo budget exhausted ({MAX_MEMO_EXPRS} expressions)"
            )));
        }
        self.expr_index.insert(expr.clone(), gid);
        self.groups[gid.0].exprs.push(expr);
        self.expr_count += 1;
        Ok(())
    }

    /// Reconstruct a concrete logical plan for an expression, using each
    /// child group's representative. Used to build representatives for
    /// rule-produced subtrees.
    pub fn repr_plan_of(&self, expr: &MExpr) -> Result<Arc<LogicalPlan>> {
        let children: Vec<Arc<LogicalPlan>> = expr
            .children
            .iter()
            .map(|g| Arc::clone(&self.group(*g).repr))
            .collect();
        build_plan(&expr.op, children)
    }
}

/// A canonical, join-shape-erased serialization of a logical plan, used as
/// the memo's group-identity key. Maximal blocks of inner equi-joins are
/// flattened to `(leaf fingerprints in order, sorted key pairs, sorted
/// residual conjuncts)`; every other operator serializes structurally.
/// Leaf *order* is kept (output column order is part of a group's schema),
/// so only re-associations — not permutations — unify.
pub fn fingerprint(plan: &LogicalPlan) -> String {
    use std::fmt::Write as _;
    fn flatten<'a>(
        plan: &'a LogicalPlan,
        leaves: &mut Vec<&'a LogicalPlan>,
        keys: &mut Vec<String>,
        filters: &mut Vec<String>,
    ) {
        match plan {
            LogicalPlan::Join {
                left,
                right,
                on,
                filter,
                ..
            } => {
                flatten(left, leaves, keys, filters);
                flatten(right, leaves, keys, filters);
                for (l, r) in on {
                    keys.push(format!("{l}={r}"));
                }
                if let Some(f) = filter {
                    for c in geoqp_expr::split_conjunction(f) {
                        filters.push(c.to_string());
                    }
                }
            }
            other => leaves.push(other),
        }
    }
    match plan {
        LogicalPlan::Join { .. } => {
            let mut leaves = Vec::new();
            let mut keys = Vec::new();
            let mut filters = Vec::new();
            flatten(plan, &mut leaves, &mut keys, &mut filters);
            keys.sort();
            keys.dedup();
            filters.sort();
            filters.dedup();
            let mut out = String::from("J[");
            for l in leaves {
                let _ = write!(out, "{};", fingerprint(l));
            }
            let _ = write!(out, "|{}|{}]", keys.join(","), filters.join(","));
            out
        }
        LogicalPlan::TableScan {
            table, location, ..
        } => format!("S[{table}@{location}]"),
        LogicalPlan::Filter { input, predicate } => {
            format!("F[{}|{}]", predicate, fingerprint(input))
        }
        LogicalPlan::Project { input, exprs, .. } => {
            let mut out = String::from("P[");
            for (e, n) in exprs {
                let _ = write!(out, "{e} as {n},");
            }
            let _ = write!(out, "|{}]", fingerprint(input));
            out
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
            ..
        } => {
            let a: Vec<String> = aggs.iter().map(|c| c.to_string()).collect();
            format!(
                "A[{}|{}|{}]",
                group_by.join(","),
                a.join(","),
                fingerprint(input)
            )
        }
        LogicalPlan::Union { inputs, .. } => {
            let parts: Vec<String> = inputs.iter().map(|i| fingerprint(i)).collect();
            format!("U[{}]", parts.join(";"))
        }
        LogicalPlan::Sort { input, keys } => {
            let k: Vec<String> = keys
                .iter()
                .map(|s| format!("{}{}", s.column, if s.descending { "-" } else { "+" }))
                .collect();
            format!("O[{}|{}]", k.join(","), fingerprint(input))
        }
        LogicalPlan::Limit { input, fetch } => {
            format!("L[{fetch}|{}]", fingerprint(input))
        }
    }
}

/// Canonicalize an operator so that semantically identical derivations
/// deduplicate: join key pairs are sorted, and predicates are rebuilt from
/// sorted, deduplicated conjuncts. Without this, rule chains that conjoin
/// the same conditions in different orders explode the memo.
pub fn canon_op(op: MOp) -> MOp {
    match op {
        MOp::Join { mut on, filter } => {
            on.sort();
            on.dedup();
            MOp::Join {
                on,
                filter: filter.map(canon_pred),
            }
        }
        MOp::Filter { predicate } => MOp::Filter {
            predicate: canon_pred(predicate),
        },
        other => other,
    }
}

/// Sort and deduplicate the conjuncts of a predicate.
pub fn canon_pred(p: geoqp_expr::ScalarExpr) -> geoqp_expr::ScalarExpr {
    let mut parts: Vec<(String, geoqp_expr::ScalarExpr)> = geoqp_expr::split_conjunction(&p)
        .into_iter()
        .map(|c| (c.to_string(), c.clone()))
        .collect();
    parts.sort_by(|a, b| a.0.cmp(&b.0));
    parts.dedup_by(|a, b| a.0 == b.0);
    geoqp_expr::conjoin(parts.into_iter().map(|(_, c)| c)).expect("non-empty conjunction")
}

/// Extract the memo operator from a plan node.
pub fn op_of(plan: &LogicalPlan) -> MOp {
    match plan {
        LogicalPlan::TableScan {
            table,
            location,
            schema,
        } => MOp::Scan {
            table: table.clone(),
            location: location.clone(),
            schema: Arc::clone(schema),
        },
        LogicalPlan::Filter { predicate, .. } => MOp::Filter {
            predicate: predicate.clone(),
        },
        LogicalPlan::Project { exprs, .. } => MOp::Project {
            exprs: exprs.clone(),
        },
        LogicalPlan::Join { on, filter, .. } => MOp::Join {
            on: on.clone(),
            filter: filter.clone(),
        },
        LogicalPlan::Aggregate { group_by, aggs, .. } => MOp::Aggregate {
            group_by: group_by.clone(),
            aggs: aggs.clone(),
        },
        LogicalPlan::Union { .. } => MOp::Union,
        LogicalPlan::Sort { keys, .. } => MOp::Sort { keys: keys.clone() },
        LogicalPlan::Limit { fetch, .. } => MOp::Limit { fetch: *fetch },
    }
}

/// Build a concrete plan node from an operator and child plans.
pub fn build_plan(op: &MOp, mut children: Vec<Arc<LogicalPlan>>) -> Result<Arc<LogicalPlan>> {
    let plan = match op {
        MOp::Scan {
            table,
            location,
            schema,
        } => LogicalPlan::TableScan {
            table: table.clone(),
            location: location.clone(),
            schema: Arc::clone(schema),
        },
        MOp::Filter { predicate } => {
            LogicalPlan::filter(children.pop().unwrap(), predicate.clone())?
        }
        MOp::Project { exprs } => LogicalPlan::project(children.pop().unwrap(), exprs.clone())?,
        MOp::Join { on, filter } => {
            let right = children.pop().unwrap();
            let left = children.pop().unwrap();
            LogicalPlan::join(left, right, on.clone(), filter.clone())?
        }
        MOp::Aggregate { group_by, aggs } => {
            LogicalPlan::aggregate(children.pop().unwrap(), group_by.clone(), aggs.clone())?
        }
        MOp::Union => LogicalPlan::union(children)?,
        MOp::Sort { keys } => LogicalPlan::sort(children.pop().unwrap(), keys.clone())?,
        MOp::Limit { fetch } => LogicalPlan::limit(children.pop().unwrap(), *fetch),
    };
    Ok(Arc::new(plan))
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoqp_common::{DataType, Field};
    use geoqp_plan::PlanBuilder;

    fn scan(name: &str, loc: &str) -> PlanBuilder {
        PlanBuilder::scan(
            TableRef::bare(name),
            Location::new(loc),
            Schema::new(vec![
                Field::new(format!("{name}_k"), DataType::Int64),
                Field::new(format!("{name}_v"), DataType::Str),
            ])
            .unwrap(),
        )
    }

    #[test]
    fn copy_in_dedups_shared_subtrees() {
        let a = scan("a", "X").build();
        let j = PlanBuilder::from_plan(Arc::clone(&a))
            .join(scan("b", "Y"), vec![("a_k", "b_k")])
            .unwrap()
            .build();
        let mut memo = Memo::new();
        let g1 = memo.copy_in(&j).unwrap();
        assert_eq!(memo.group_count(), 3);
        // Re-inserting the same tree hits the plan index.
        let g2 = memo.copy_in(&j).unwrap();
        assert_eq!(g1, g2);
        assert_eq!(memo.group_count(), 3);
        // Inserting a sub-tree lands in its existing group.
        let ga = memo.copy_in(&a).unwrap();
        assert_eq!(memo.group(ga).exprs.len(), 1);
    }

    #[test]
    fn add_expr_rejects_self_reference() {
        let a = scan("a", "X").build();
        let mut memo = Memo::new();
        let g = memo.copy_in(&a).unwrap();
        let self_ref = MExpr {
            op: MOp::Limit { fetch: 1 },
            children: vec![g],
        };
        // Same group as child → refused.
        assert!(!memo.add_expr(g, self_ref).unwrap());
    }

    #[test]
    fn repr_plan_round_trip() {
        let j = scan("a", "X")
            .join(scan("b", "Y"), vec![("a_k", "b_k")])
            .unwrap()
            .build();
        let mut memo = Memo::new();
        let g = memo.copy_in(&j).unwrap();
        let expr = memo.group(g).exprs[0].clone();
        let plan = memo.repr_plan_of(&expr).unwrap();
        assert_eq!(plan, j);
    }

    #[test]
    fn duplicate_expr_in_same_group_is_ignored() {
        let a = scan("a", "X").build();
        let f = PlanBuilder::from_plan(a)
            .filter(ScalarExpr::col("a_k").gt(ScalarExpr::lit(0i64)))
            .unwrap()
            .build();
        let mut memo = Memo::new();
        let g = memo.copy_in(&f).unwrap();
        let expr = memo.group(g).exprs[0].clone();
        assert!(!memo.add_expr(g, expr).unwrap());
        assert_eq!(memo.group(g).exprs.len(), 1);
    }
}

#[cfg(test)]
mod canon_tests {
    use super::*;
    use geoqp_expr::ScalarExpr;

    #[test]
    fn canon_pred_sorts_and_dedups_conjuncts() {
        let a = ScalarExpr::col("x").gt(ScalarExpr::lit(1i64));
        let b = ScalarExpr::col("y").lt(ScalarExpr::lit(2i64));
        let p1 = canon_pred(a.clone().and(b.clone()));
        let p2 = canon_pred(b.clone().and(a.clone()));
        assert_eq!(p1, p2, "conjunct order must not matter");
        let p3 = canon_pred(a.clone().and(a.clone()).and(b.clone()));
        assert_eq!(p3, p1, "duplicate conjuncts must collapse");
        // Disjunctions are atoms for canonicalization purposes.
        let d = a.clone().or(b.clone());
        assert_eq!(canon_pred(d.clone()), d);
    }

    #[test]
    fn canon_op_sorts_join_keys() {
        let j1 = canon_op(MOp::Join {
            on: vec![("b".into(), "y".into()), ("a".into(), "x".into())],
            filter: None,
        });
        let j2 = canon_op(MOp::Join {
            on: vec![("a".into(), "x".into()), ("b".into(), "y".into())],
            filter: None,
        });
        assert_eq!(j1, j2);
        let j3 = canon_op(MOp::Join {
            on: vec![
                ("a".into(), "x".into()),
                ("a".into(), "x".into()),
                ("b".into(), "y".into()),
            ],
            filter: None,
        });
        assert_eq!(j3, j1, "duplicate key pairs must collapse");
    }

    #[test]
    fn canon_op_leaves_other_ops_alone() {
        let p = MOp::Project {
            exprs: vec![
                (ScalarExpr::col("b"), "b".into()),
                (ScalarExpr::col("a"), "a".into()),
            ],
        };
        assert_eq!(canon_op(p.clone()), p, "projection order is semantic");
    }
}
