//! Distributed execution plumbing: a catalog-backed data source and a
//! network-simulating SHIP handler.

use geoqp_common::{GeoError, Location, Result, Rows, Schema, TableRef};
use geoqp_exec::{DataSource, ShipHandler};
use geoqp_net::{NetworkTopology, TransferLog};
use geoqp_storage::Catalog;
use std::sync::Arc;

/// Scans base tables from the per-site databases of a [`Catalog`].
pub struct CatalogSource<'a> {
    catalog: &'a Catalog,
}

impl<'a> CatalogSource<'a> {
    /// Create a source over the catalog.
    pub fn new(catalog: &'a Catalog) -> CatalogSource<'a> {
        CatalogSource { catalog }
    }
}

impl DataSource for CatalogSource<'_> {
    fn scan(&self, table: &TableRef, location: &Location) -> Result<Rows> {
        let entries = self.catalog.resolve(table);
        let entry = entries
            .iter()
            .find(|e| e.location == *location)
            .ok_or_else(|| {
                GeoError::Execution(format!("no table {table} at {location}"))
            })?;
        let data = entry.data().ok_or_else(|| {
            GeoError::Execution(format!(
                "table {table} at {location} has no materialized data; \
                 attach rows with TableEntry::set_data"
            ))
        })?;
        Ok(data.to_rows())
    }
}

/// Serializes every shipped batch to bytes, charges the network simulator
/// for the exact volume, and decodes the batch on "arrival" — so the
/// simulated WAN carries real byte counts, not estimates.
pub struct SimShip<'a> {
    topology: &'a NetworkTopology,
    log: TransferLog,
}

impl<'a> SimShip<'a> {
    /// Create a handler over a topology with an empty transfer log.
    pub fn new(topology: &'a NetworkTopology) -> SimShip<'a> {
        SimShip {
            topology,
            log: TransferLog::new(),
        }
    }

    /// Take the accumulated transfer log.
    pub fn into_log(self) -> TransferLog {
        self.log
    }

    /// Borrow the log.
    pub fn log(&self) -> &TransferLog {
        &self.log
    }
}

impl ShipHandler for SimShip<'_> {
    fn ship(
        &mut self,
        from: &Location,
        to: &Location,
        rows: Rows,
        schema: &Schema,
    ) -> Result<Rows> {
        let encoded = rows.encode();
        self.log.record(
            self.topology,
            from,
            to,
            encoded.len() as u64,
            rows.len() as u64,
        );
        Rows::decode(&encoded, schema.len()).ok_or_else(|| {
            GeoError::Execution("wire corruption: batch failed to decode".into())
        })
    }
}

/// Convenience: an owned catalog source for engines holding `Arc<Catalog>`.
pub struct ArcCatalogSource {
    catalog: Arc<Catalog>,
}

impl ArcCatalogSource {
    /// Create from a shared catalog.
    pub fn new(catalog: Arc<Catalog>) -> ArcCatalogSource {
        ArcCatalogSource { catalog }
    }
}

impl DataSource for ArcCatalogSource {
    fn scan(&self, table: &TableRef, location: &Location) -> Result<Rows> {
        CatalogSource::new(&self.catalog).scan(table, location)
    }
}
