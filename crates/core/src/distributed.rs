//! Distributed execution plumbing: a catalog-backed data source and a
//! network-simulating SHIP handler, both optionally consulting a
//! [`FaultPlan`] so availability faults surface as typed
//! [`GeoError::SiteUnavailable`] errors during execution.

use geoqp_common::{
    ChurnWatch, ColumnarBatch, GeoError, Location, LocationSet, Result, Rows, RunControl, Schema,
    TableRef, Unavailable,
};
use geoqp_exec::{DataSource, RetryPolicy, ShipHandler};
use geoqp_net::{
    backup_beats, plan_hedge, run_hedge, FaultPlan, FaultVerdict, HedgeConfig, LinkHealth,
    NetworkTopology, RelayEvent, TransferLog, TransferRecord,
};
use geoqp_runtime::{CheckpointSpec, CheckpointStore};
use geoqp_storage::Catalog;
use std::sync::Arc;

/// Scans base tables from the per-site databases of a [`Catalog`]. With
/// faults attached, every scan attempt consults the fault plan's crash
/// windows under the retry policy before touching the data. With a
/// checkpoint store attached, [`PhysOp::ResumeScan`] leaves read retained
/// intermediate results instead of recomputing them.
pub struct CatalogSource<'a> {
    catalog: &'a Catalog,
    faults: Option<&'a FaultPlan>,
    retry: RetryPolicy,
    control: RunControl,
    resume_from: Option<&'a CheckpointStore>,
}

impl<'a> CatalogSource<'a> {
    /// Create a source over the catalog.
    pub fn new(catalog: &'a Catalog) -> CatalogSource<'a> {
        CatalogSource {
            catalog,
            faults: None,
            retry: RetryPolicy::none(),
            control: RunControl::unlimited(),
            resume_from: None,
        }
    }

    /// Attach a fault plan and retry policy.
    pub fn with_faults(mut self, faults: &'a FaultPlan, retry: RetryPolicy) -> CatalogSource<'a> {
        self.faults = Some(faults);
        self.retry = retry;
        self
    }

    /// Attach cancellation/deadline controls; scans poll the cancel token.
    pub fn with_control(mut self, control: RunControl) -> CatalogSource<'a> {
        self.control = control;
        self
    }

    /// Attach a checkpoint store for resolving `ResumeScan` leaves.
    pub fn with_resume(mut self, store: &'a CheckpointStore) -> CatalogSource<'a> {
        self.resume_from = Some(store);
        self
    }

    /// Gate a leaf read on its site's crash windows, one fault-clock step
    /// per attempt under the retry policy.
    fn site_gate(&self, location: &Location, what: &str) -> Result<()> {
        if let Some(faults) = self.faults {
            // Each attempt consumes one logical step; a bounded crash
            // window counts as transient, so a retry can outlast it.
            self.retry.run(|_| {
                let step = faults.tick();
                match faults.site_down_until(location, step) {
                    None => Ok(()),
                    Some(end) => Err(GeoError::SiteUnavailable(Unavailable {
                        site: Some(location.clone()),
                        link: None,
                        transient: end != u64::MAX,
                        breaker: false,
                        message: format!("{what} failed: site {location} is down at step {step}"),
                    })),
                }
            })?;
        }
        Ok(())
    }
}

impl<'a> CatalogSource<'a> {
    /// Resolve and fetch the materialized table behind a scan, after
    /// cancellation and availability gates. Shared by the row and
    /// columnar scan paths so both consume fault-clock ticks identically.
    fn gated_data(
        &self,
        table: &TableRef,
        location: &Location,
    ) -> Result<Arc<geoqp_storage::Table>> {
        self.control
            .check_cancel(&format!("scan of {table} at {location}"))?;
        self.site_gate(location, &format!("scan of {table}"))?;
        let entries = self.catalog.resolve(table);
        let entry = entries
            .iter()
            .find(|e| e.location == *location)
            .ok_or_else(|| GeoError::Execution(format!("no table {table} at {location}")))?;
        entry.data().ok_or_else(|| {
            GeoError::Execution(format!(
                "table {table} at {location} has no materialized data; \
                 attach rows with TableEntry::set_data"
            ))
        })
    }
}

impl DataSource for CatalogSource<'_> {
    fn scan(&self, table: &TableRef, location: &Location) -> Result<Rows> {
        Ok(self.gated_data(table, location)?.to_rows())
    }

    fn scan_columnar(
        &self,
        table: &TableRef,
        location: &Location,
        arity: usize,
    ) -> Result<Arc<ColumnarBatch>> {
        let _ = arity;
        // Zero-copy: the table's cached columnar mirror, shared by `Arc`.
        // No per-scan row cloning, unlike the row path's `to_rows`.
        Ok(self.gated_data(table, location)?.to_columnar())
    }

    fn resume(&self, fingerprint: u64, location: &Location, arity: usize) -> Result<Rows> {
        self.control.check_cancel(&format!(
            "resume of checkpoint {fingerprint:016x} at {location}"
        ))?;
        // The checkpoint's home site must be up to serve its rows — a
        // resume leaf is gated by availability exactly like a tablescan.
        self.site_gate(
            location,
            &format!("resume of checkpoint {fingerprint:016x}"),
        )?;
        let store = self.resume_from.ok_or_else(|| {
            GeoError::Execution(format!(
                "no checkpoint store attached: cannot resume fragment \
                 {fingerprint:016x} at {location}"
            ))
        })?;
        let cp = store.get(fingerprint, location).ok_or_else(|| {
            GeoError::Execution(format!(
                "checkpoint {fingerprint:016x} is not homed at {location}"
            ))
        })?;
        let _ = arity;
        Rows::decode(&cp.encoded, cp.arity).ok_or_else(|| {
            GeoError::Execution("checkpoint corruption: batch failed to decode".into())
        })
    }
}

/// Serializes every shipped batch to bytes, charges the network simulator
/// for the exact volume, and decodes the batch on "arrival" — so the
/// simulated WAN carries real byte counts, not estimates.
///
/// With faults attached, every transfer attempt consults the
/// [`FaultPlan`] at the next logical step: drops are retried under the
/// [`RetryPolicy`] with simulated exponential backoff (charged to the
/// transfer's cost), and an exhausted budget or permanent fault surfaces
/// as [`GeoError::SiteUnavailable`] with the failing link identified.
pub struct SimShip<'a> {
    topology: &'a NetworkTopology,
    log: TransferLog,
    faults: Option<&'a FaultPlan>,
    retry: RetryPolicy,
    control: RunControl,
    capture: Option<(&'a CheckpointStore, Vec<CheckpointSpec>)>,
    next_spec: usize,
    hedge: Option<(&'a LinkHealth, HedgeConfig)>,
    // Per-SHIP-edge shipping traits 𝒮ₙ in execution order: the only
    // sites a hedged relay may route through.
    legal_sets: Vec<LocationSet>,
    next_edge: usize,
    churn: Option<ChurnWatch>,
}

impl<'a> SimShip<'a> {
    /// Create a handler over a topology with an empty transfer log.
    pub fn new(topology: &'a NetworkTopology) -> SimShip<'a> {
        SimShip {
            topology,
            log: TransferLog::new(),
            faults: None,
            retry: RetryPolicy::none(),
            control: RunControl::unlimited(),
            capture: None,
            next_spec: 0,
            hedge: None,
            legal_sets: Vec::new(),
            next_edge: 0,
            churn: None,
        }
    }

    /// Enforce live policy churn: before each SHIP edge moves, a site
    /// whose catalog replica cannot prove the pinned sequence refuses to
    /// originate ([`GeoError::CatalogStale`]), and a revocation newer
    /// than the pin aborts the attempt ([`GeoError::PolicyChurn`]) so
    /// the failover loop can re-plan under the new epoch. The churn
    /// clock is the edge index — the sequential interpreter ships one
    /// monolithic batch per edge.
    pub fn with_churn(mut self, watch: ChurnWatch) -> SimShip<'a> {
        self.churn = Some(watch);
        self
    }

    /// Attach a fault plan and retry policy.
    pub fn with_faults(mut self, faults: &'a FaultPlan, retry: RetryPolicy) -> SimShip<'a> {
        self.faults = Some(faults);
        self.retry = retry;
        self
    }

    /// Attach cancellation/deadline controls. The deadline is checked
    /// against accumulated simulated transfer cost before each delivery
    /// is committed to the log.
    pub fn with_control(mut self, control: RunControl) -> SimShip<'a> {
        self.control = control;
        self
    }

    /// Attach a checkpoint store plus per-edge specs in **execution
    /// order** (the order SHIPs complete in the sequential interpreter:
    /// left-to-right post-order). Every fully delivered edge is retained
    /// at both endpoints for failover resume.
    pub fn with_capture(
        mut self,
        store: &'a CheckpointStore,
        specs: Vec<CheckpointSpec>,
    ) -> SimShip<'a> {
        self.capture = Some((store, specs));
        self
    }

    /// Attach gray-failure defenses: a shared [`LinkHealth`] table (so
    /// breaker state survives across failover attempts) plus hedge
    /// tuning and the per-SHIP-edge shipping traits `𝒮ₙ` in execution
    /// order — the only sites a hedged relay may legally route through.
    pub fn with_hedge(
        mut self,
        health: &'a LinkHealth,
        config: HedgeConfig,
        legal_sets: Vec<LocationSet>,
    ) -> SimShip<'a> {
        self.hedge = Some((health, config));
        self.legal_sets = legal_sets;
        self
    }

    /// Take the accumulated transfer log.
    pub fn into_log(self) -> TransferLog {
        self.log
    }

    /// Borrow the log.
    pub fn log(&self) -> &TransferLog {
        &self.log
    }
}

impl SimShip<'_> {
    /// The transfer core shared by the row and columnar SHIP paths:
    /// fault gating with retries, gray-failure hedging, deadline
    /// enforcement, log accounting, and checkpoint capture for one edge
    /// carrying `bytes` over `n_rows` rows. `encode` materializes the
    /// wire bytes and is invoked only when a checkpoint store is
    /// attached — the columnar path otherwise never encodes.
    fn transfer(
        &mut self,
        from: &Location,
        to: &Location,
        bytes: u64,
        n_rows: u64,
        schema_len: usize,
        encode: impl FnOnce() -> Vec<u8>,
    ) -> Result<()> {
        self.control.check_cancel(&format!("SHIP {from} -> {to}"))?;
        let model_ms = self.topology.ship_cost_ms(from, to, bytes as f64);
        let edge = self.next_edge;
        self.next_edge += 1;
        if let Some(watch) = &self.churn {
            if from != to {
                if let Some(guard) = &watch.stale {
                    guard.check_origin(from)?;
                }
            }
            if let Some(head) = watch.signal.revoked_since(watch.pin.seq, edge as u64) {
                return Err(GeoError::policy_churn(
                    head.seq,
                    head.epoch,
                    edge as u64,
                    format!(
                        "policy revocation at catalog seq {} landed while SHIP \
                         {from} -> {to} was in flight under pinned seq {}",
                        head.seq, watch.pin.seq
                    ),
                ));
            }
        }
        // Gray-failure gate, from pre-transfer health state: a breaker
        // open past its budget condemns the link (soft exclusion for the
        // re-planner); a link past the hedge threshold races a backup.
        let mut backup_route: Option<Option<Location>> = None;
        if let Some((health, _)) = &self.hedge {
            if from != to {
                if health.breaker_exhausted(from, to, 0) {
                    let state = health.state(from, to, 0);
                    return Err(GeoError::breaker_open(
                        from.clone(),
                        to.clone(),
                        format!(
                            "circuit breaker for link {from} -> {to} is open past its \
                             budget ({} trips, EWMA cost ratio {:.2}): soft-excluding \
                             the link",
                            state.trips, state.ewma_ratio
                        ),
                    ));
                }
                if health.should_hedge(from, to, 0) {
                    let ratio = health.state(from, to, 0).ewma_ratio;
                    let via = self.legal_sets.get(edge).and_then(|legal| {
                        plan_hedge(self.topology, from, to, bytes as f64, legal, ratio)
                    });
                    backup_route = Some(via);
                }
            }
        }
        let health = self.hedge.as_ref().map(|(h, _)| *h);
        let mut last_step = 0u64;
        let primary = match self.faults {
            None => Ok((1, 0.0, 0)),
            Some(faults) => {
                let log = &mut self.log;
                self.retry
                    .run(|_| {
                        let step = faults.tick();
                        last_step = step;
                        match faults.check_transfer(from, to, step) {
                            FaultVerdict::Deliver { extra_delay_ms } => {
                                if let Some(h) = health.filter(|_| from != to) {
                                    h.observe_delivery(
                                        from,
                                        to,
                                        0,
                                        step,
                                        model_ms,
                                        model_ms + extra_delay_ms,
                                    );
                                }
                                Ok((extra_delay_ms, step))
                            }
                            // A gray link delivers at factor × the model;
                            // the surcharge rides in extra_ms so the log
                            // prices the transfer honestly.
                            FaultVerdict::Degraded {
                                factor,
                                extra_delay_ms,
                            } => {
                                let surcharge = (factor - 1.0) * model_ms + extra_delay_ms;
                                if let Some(h) = health.filter(|_| from != to) {
                                    h.observe_delivery(
                                        from,
                                        to,
                                        0,
                                        step,
                                        model_ms,
                                        model_ms + surcharge,
                                    );
                                }
                                Ok((surcharge, step))
                            }
                            FaultVerdict::Drop {
                                transient,
                                culprit,
                                reason,
                            } => {
                                log.record_fault(step, from, to, reason.clone());
                                if let Some(h) = health.filter(|_| from != to) {
                                    h.observe_failure(from, to, 0, step);
                                }
                                Err(GeoError::SiteUnavailable(Unavailable {
                                    // A crashed endpoint is what re-planning
                                    // must exclude; for pure link/partition
                                    // faults, route away from the destination.
                                    site: culprit.or_else(|| Some(to.clone())),
                                    link: Some((from.clone(), to.clone())),
                                    transient,
                                    breaker: false,
                                    message: reason,
                                }))
                            }
                        }
                    })
                    .map(|d| (d.attempts, d.value.0 + d.backoff_ms, d.value.1))
            }
        };
        // The hedge race: the backup launches after a short delay, on
        // independent fault coins, and may route via a relay site — but
        // only one inside the producing subtree's 𝒮ₙ. First delivery
        // wins; a primary that failed outright is rescued by a delivered
        // backup.
        let mut rescued_by_backup = false;
        if let Some(via) = backup_route {
            let (health, config) = self.hedge.as_ref().expect("hedge config present");
            let empty = LocationSet::new();
            let legal = self.legal_sets.get(edge).unwrap_or(&empty);
            let primary_arrival = primary.as_ref().ok().map(|(_, extra, _)| model_ms + extra);
            // One monolithic transfer per edge: every leg pays its full
            // α + β·b — there is no stream to amortize headers over.
            let run = run_hedge(
                |a, b| self.topology.ship_cost_ms(a, b, bytes as f64),
                self.faults,
                config,
                from,
                to,
                via.as_ref(),
                legal,
                last_step,
                // The sequential clock ticks per transfer, so the base
                // step itself already varies: no batch coin needed.
                0,
                primary_arrival,
            )?;
            for leg in &run.legs {
                if leg.delivered {
                    // Every transmitted backup leg is cost-charged: the
                    // shipped-bytes overhead of hedging is real.
                    self.log.push(TransferRecord {
                        step: leg.step,
                        from: leg.from.clone(),
                        to: leg.to.clone(),
                        bytes,
                        rows: n_rows,
                        cost_ms: leg.cost_ms,
                        attempts: 1,
                    });
                } else {
                    self.log.record_fault(
                        leg.step,
                        &leg.from,
                        &leg.to,
                        "hedged backup leg dropped".into(),
                    );
                }
            }
            let backup_won = match (primary_arrival, run.backup_arrival_ms) {
                (Some(p), Some(b)) => backup_beats(b, p),
                (None, Some(_)) => true,
                _ => false,
            };
            rescued_by_backup = primary_arrival.is_none() && run.backup_arrival_ms.is_some();
            health.note_hedge(
                backup_won,
                run.relay.as_ref().map(|r| RelayEvent {
                    lane: 0,
                    from: from.clone(),
                    to: to.clone(),
                    via: r.clone(),
                }),
            );
        }
        let (attempts, extra_ms, step) = match primary {
            Ok(delivered) => delivered,
            Err(e) if rescued_by_backup => {
                // The backup already delivered (and was charged above):
                // the transfer succeeds without a primary record.
                let _ = e;
                (0, 0.0, last_step)
            }
            Err(e) => return Err(e),
        };
        // The simulated clock is the transfer log: the deadline trips as
        // soon as accumulated cost plus this delivery would exceed the
        // budget, before the delivery is committed.
        let cost_ms = if attempts > 0 {
            model_ms + extra_ms
        } else {
            0.0
        };
        self.control.check_deadline(
            self.log.total_cost_ms() + cost_ms,
            &format!("SHIP {from} -> {to}"),
        )?;
        if attempts > 0 {
            self.log.record_delivery(
                self.topology,
                from,
                to,
                bytes,
                n_rows,
                attempts,
                extra_ms,
                step,
            );
        }
        // The edge fully delivered: retain its output for failover
        // resume, at both endpoints — the producer computed it there (its
        // site is in ℰ ⊆ 𝒮) and the consumer legally received it. An
        // illegal home is a typed refusal from the store, not a silent
        // choice.
        if let Some((store, specs)) = &self.capture {
            let spec = specs.get(self.next_spec).ok_or_else(|| {
                GeoError::Execution(
                    "checkpoint spec underflow: more SHIPs executed than edges audited".into(),
                )
            })?;
            self.next_spec += 1;
            let encoded = encode();
            for home in [to, from] {
                store.put(
                    spec.fingerprint,
                    home.clone(),
                    &spec.legal,
                    &spec.logical,
                    encoded.clone(),
                    n_rows,
                    schema_len,
                )?;
            }
        }
        Ok(())
    }
}

impl ShipHandler for SimShip<'_> {
    fn ship(
        &mut self,
        from: &Location,
        to: &Location,
        rows: Rows,
        schema: &Schema,
    ) -> Result<Rows> {
        let encoded = rows.encode();
        let bytes = encoded.len() as u64;
        self.transfer(from, to, bytes, rows.len() as u64, schema.len(), || {
            encoded.clone()
        })?;
        Rows::decode(&encoded, schema.len())
            .ok_or_else(|| GeoError::Execution("wire corruption: batch failed to decode".into()))
    }

    fn ship_columnar(
        &mut self,
        from: &Location,
        to: &Location,
        batch: Arc<ColumnarBatch>,
        schema: &Schema,
    ) -> Result<Arc<ColumnarBatch>> {
        // Byte accounting comes from column metadata
        // ([`ColumnarBatch::encoded_size`] equals the wire encoding's
        // length exactly), so the simulator charges identical bytes to
        // the row path without ever materializing the encoding. The
        // delivered batch is the same `Arc` — zero-copy hand-off.
        let bytes = batch.encoded_size() as u64;
        self.transfer(from, to, bytes, batch.len() as u64, schema.len(), || {
            batch.to_rows().encode()
        })?;
        Ok(batch)
    }
}

/// Convenience: an owned catalog source for engines holding `Arc<Catalog>`.
pub struct ArcCatalogSource {
    catalog: Arc<Catalog>,
}

impl ArcCatalogSource {
    /// Create from a shared catalog.
    pub fn new(catalog: Arc<Catalog>) -> ArcCatalogSource {
        ArcCatalogSource { catalog }
    }
}

impl DataSource for ArcCatalogSource {
    fn scan(&self, table: &TableRef, location: &Location) -> Result<Rows> {
        CatalogSource::new(&self.catalog).scan(table, location)
    }

    fn scan_columnar(
        &self,
        table: &TableRef,
        location: &Location,
        arity: usize,
    ) -> Result<Arc<ColumnarBatch>> {
        CatalogSource::new(&self.catalog).scan_columnar(table, location, arity)
    }
}
