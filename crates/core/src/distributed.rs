//! Distributed execution plumbing: a catalog-backed data source and a
//! network-simulating SHIP handler, both optionally consulting a
//! [`FaultPlan`] so availability faults surface as typed
//! [`GeoError::SiteUnavailable`] errors during execution.

use geoqp_common::{GeoError, Location, Result, Rows, Schema, TableRef, Unavailable};
use geoqp_exec::{DataSource, RetryPolicy, ShipHandler};
use geoqp_net::{FaultPlan, FaultVerdict, NetworkTopology, TransferLog};
use geoqp_storage::Catalog;
use std::sync::Arc;

/// Scans base tables from the per-site databases of a [`Catalog`]. With
/// faults attached, every scan attempt consults the fault plan's crash
/// windows under the retry policy before touching the data.
pub struct CatalogSource<'a> {
    catalog: &'a Catalog,
    faults: Option<&'a FaultPlan>,
    retry: RetryPolicy,
}

impl<'a> CatalogSource<'a> {
    /// Create a source over the catalog.
    pub fn new(catalog: &'a Catalog) -> CatalogSource<'a> {
        CatalogSource {
            catalog,
            faults: None,
            retry: RetryPolicy::none(),
        }
    }

    /// Attach a fault plan and retry policy.
    pub fn with_faults(mut self, faults: &'a FaultPlan, retry: RetryPolicy) -> CatalogSource<'a> {
        self.faults = Some(faults);
        self.retry = retry;
        self
    }
}

impl DataSource for CatalogSource<'_> {
    fn scan(&self, table: &TableRef, location: &Location) -> Result<Rows> {
        if let Some(faults) = self.faults {
            // Each attempt consumes one logical step; a bounded crash
            // window counts as transient, so a retry can outlast it.
            self.retry.run(|_| {
                let step = faults.tick();
                match faults.site_down_until(location, step) {
                    None => Ok(()),
                    Some(end) => Err(GeoError::SiteUnavailable(Unavailable {
                        site: Some(location.clone()),
                        link: None,
                        transient: end != u64::MAX,
                        message: format!(
                            "scan of {table} failed: site {location} is down at step {step}"
                        ),
                    })),
                }
            })?;
        }
        let entries = self.catalog.resolve(table);
        let entry = entries
            .iter()
            .find(|e| e.location == *location)
            .ok_or_else(|| GeoError::Execution(format!("no table {table} at {location}")))?;
        let data = entry.data().ok_or_else(|| {
            GeoError::Execution(format!(
                "table {table} at {location} has no materialized data; \
                 attach rows with TableEntry::set_data"
            ))
        })?;
        Ok(data.to_rows())
    }
}

/// Serializes every shipped batch to bytes, charges the network simulator
/// for the exact volume, and decodes the batch on "arrival" — so the
/// simulated WAN carries real byte counts, not estimates.
///
/// With faults attached, every transfer attempt consults the
/// [`FaultPlan`] at the next logical step: drops are retried under the
/// [`RetryPolicy`] with simulated exponential backoff (charged to the
/// transfer's cost), and an exhausted budget or permanent fault surfaces
/// as [`GeoError::SiteUnavailable`] with the failing link identified.
pub struct SimShip<'a> {
    topology: &'a NetworkTopology,
    log: TransferLog,
    faults: Option<&'a FaultPlan>,
    retry: RetryPolicy,
}

impl<'a> SimShip<'a> {
    /// Create a handler over a topology with an empty transfer log.
    pub fn new(topology: &'a NetworkTopology) -> SimShip<'a> {
        SimShip {
            topology,
            log: TransferLog::new(),
            faults: None,
            retry: RetryPolicy::none(),
        }
    }

    /// Attach a fault plan and retry policy.
    pub fn with_faults(mut self, faults: &'a FaultPlan, retry: RetryPolicy) -> SimShip<'a> {
        self.faults = Some(faults);
        self.retry = retry;
        self
    }

    /// Take the accumulated transfer log.
    pub fn into_log(self) -> TransferLog {
        self.log
    }

    /// Borrow the log.
    pub fn log(&self) -> &TransferLog {
        &self.log
    }
}

impl ShipHandler for SimShip<'_> {
    fn ship(
        &mut self,
        from: &Location,
        to: &Location,
        rows: Rows,
        schema: &Schema,
    ) -> Result<Rows> {
        let encoded = rows.encode();
        let (attempts, extra_ms, step) = match self.faults {
            None => (1, 0.0, 0),
            Some(faults) => {
                let log = &mut self.log;
                let delivered = self.retry.run(|_| {
                    let step = faults.tick();
                    match faults.check_transfer(from, to, step) {
                        FaultVerdict::Deliver { extra_delay_ms } => Ok((extra_delay_ms, step)),
                        FaultVerdict::Drop {
                            transient,
                            culprit,
                            reason,
                        } => {
                            log.record_fault(step, from, to, reason.clone());
                            Err(GeoError::SiteUnavailable(Unavailable {
                                // A crashed endpoint is what re-planning
                                // must exclude; for pure link/partition
                                // faults, route away from the destination.
                                site: culprit.or_else(|| Some(to.clone())),
                                link: Some((from.clone(), to.clone())),
                                transient,
                                message: reason,
                            }))
                        }
                    }
                })?;
                let (extra_delay_ms, step) = delivered.value;
                (
                    delivered.attempts,
                    extra_delay_ms + delivered.backoff_ms,
                    step,
                )
            }
        };
        self.log.record_delivery(
            self.topology,
            from,
            to,
            encoded.len() as u64,
            rows.len() as u64,
            attempts,
            extra_ms,
            step,
        );
        Rows::decode(&encoded, schema.len())
            .ok_or_else(|| GeoError::Execution("wire corruption: batch failed to decode".into()))
    }
}

/// Convenience: an owned catalog source for engines holding `Arc<Catalog>`.
pub struct ArcCatalogSource {
    catalog: Arc<Catalog>,
}

impl ArcCatalogSource {
    /// Create from a shared catalog.
    pub fn new(catalog: Arc<Catalog>) -> ArcCatalogSource {
        ArcCatalogSource { catalog }
    }
}

impl DataSource for ArcCatalogSource {
    fn scan(&self, table: &TableRef, location: &Location) -> Result<Rows> {
        CatalogSource::new(&self.catalog).scan(table, location)
    }
}
