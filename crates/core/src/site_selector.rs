//! The **site selector** — phase 2 of the two-phase optimizer
//! (Section 6.3, Algorithm 2).
//!
//! Given an annotated plan, choose for every operator an execution
//! location from its execution trait `ℰ`, minimizing total data-shipping
//! cost under the message cost model `ShipCost(i→j, b) = α_ij + β_ij·b`.
//! The algorithm is the paper's memoized recursive DP: `CostOf(n, l)` is
//! the minimum cost of producing `n`'s output at location `l`, computed
//! from each input's best `(location, ship)` combination. Explicit SHIP
//! operators are inserted wherever a child's chosen location differs from
//! its parent's.
//!
//! Because parents only ever place themselves inside `⋂ 𝒮(child)`
//! (annotation rule AR2) and children's execution traits are subsets of
//! their shipping traits (AR3), every SHIP this phase inserts targets a
//! location inside the shipped subplan's shipping trait — which is the
//! induction Theorem 1's soundness proof rests on.

use crate::annotate::AnnotatedNode;
use crate::memo::MOp;
use geoqp_common::{GeoError, Location, Result};
use geoqp_net::NetworkTopology;
use geoqp_plan::{PhysOp, PhysicalPlan};
use std::collections::HashMap;
use std::sync::Arc;

/// The placement objective.
///
/// The paper's experiments use total communication cost; its Section 3.3
/// discussion notes the methods "can also be adapted to other cost models
/// (e.g., that determine query response time)" — that adaptation is the
/// `ResponseTime` variant: inputs transfer in parallel, so a node's cost
/// is the *maximum* over its inputs rather than the sum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Objective {
    /// Minimize total bytes·β + per-transfer α over all SHIPs.
    #[default]
    TotalCost,
    /// Minimize the critical path of transfers (parallel inputs).
    ResponseTime,
}

/// The outcome of site selection.
#[derive(Debug)]
pub struct SitedPlan {
    /// The located physical plan with explicit SHIP operators.
    pub physical: Arc<PhysicalPlan>,
    /// Estimated total shipping cost (ms) under the message cost model.
    pub est_ship_cost_ms: f64,
    /// The location holding the final result.
    pub result_location: Location,
    /// Distinct `(operator, location)` states Algorithm 2 memoized while
    /// costing and reconstructing this placement — the DP search volume.
    pub dp_states: usize,
}

/// Run Algorithm 2 over an annotated plan. When `result_location` is
/// given, the final result is additionally shipped there (and its cost
/// included); the location must be in the root's shipping trait, which
/// phase 1 guarantees by candidate selection.
pub fn select_sites(
    root: &AnnotatedNode,
    topology: &NetworkTopology,
    result_location: Option<&Location>,
) -> Result<SitedPlan> {
    select_sites_with(root, topology, result_location, Objective::TotalCost)
}

/// [`select_sites`] with an explicit placement objective.
pub fn select_sites_with(
    root: &AnnotatedNode,
    topology: &NetworkTopology,
    result_location: Option<&Location>,
    objective: Objective,
) -> Result<SitedPlan> {
    let mut ids = HashMap::new();
    number(root, &mut ids, &mut 0);
    let mut memo: HashMap<(usize, Location), f64> = HashMap::new();

    // Choose the root location.
    let mut best: Option<(Location, f64)> = None;
    for l in root.exec.iter() {
        let c = cost_of(root, l, topology, &ids, &mut memo, objective)?;
        let total = match result_location {
            Some(res) => c + topology.ship_cost_ms(l, res, root.bytes()),
            None => c,
        };
        if best.as_ref().is_none_or(|(_, b)| total < *b) {
            best = Some((l.clone(), total));
        }
    }
    let (root_loc, total) = best.ok_or_else(|| {
        GeoError::QueryRejected("annotated plan has an empty root execution trait".into())
    })?;
    if total.is_infinite() {
        return Err(GeoError::QueryRejected(
            "no placement has finite cost: an operator's execution trait is empty, \
             or every compliant route crosses a condemned link"
                .into(),
        ));
    }

    let mut physical = assign(root, &root_loc, topology, &ids, &mut memo, objective)?;
    let mut result_loc = root_loc;
    if let Some(res) = result_location {
        if *res != result_loc {
            physical = PhysicalPlan::ship(physical, res.clone());
            result_loc = res.clone();
        }
    }
    Ok(SitedPlan {
        physical,
        est_ship_cost_ms: total,
        result_location: result_loc,
        dp_states: memo.len(),
    })
}

fn number(node: &AnnotatedNode, ids: &mut HashMap<*const AnnotatedNode, usize>, next: &mut usize) {
    ids.insert(node as *const AnnotatedNode, *next);
    *next += 1;
    for c in &node.children {
        number(c, ids, next);
    }
}

/// `CostOf(n, l)` — Algorithm 2 lines 3–18.
fn cost_of(
    node: &AnnotatedNode,
    l: &Location,
    topology: &NetworkTopology,
    ids: &HashMap<*const AnnotatedNode, usize>,
    memo: &mut HashMap<(usize, Location), f64>,
    objective: Objective,
) -> Result<f64> {
    let id = ids[&(node as *const AnnotatedNode)];
    if let Some(c) = memo.get(&(id, l.clone())) {
        return Ok(*c);
    }
    let cost = if node.children.is_empty() {
        // Base case: a tablescan is free at its own site, impossible
        // elsewhere (ℰ is the singleton source location, so `l` is it).
        0.0
    } else {
        let mut total = 0.0;
        for child in &node.children {
            let mut best = f64::INFINITY;
            for l2 in child.exec.iter() {
                let ship = topology.ship_cost_ms(l2, l, child.bytes());
                let c = ship + cost_of(child, l2, topology, ids, memo, objective)?;
                if c < best {
                    best = c;
                }
            }
            // An infinite best is a placement with no usable route to
            // `l` — an empty execution trait, or every path priced at ∞
            // by a condemned link. It propagates as a cost, not an
            // error: other locations of the ancestors may still admit a
            // finite plan, and only the root decides rejection.
            match objective {
                Objective::TotalCost => total += best,
                // Inputs transfer in parallel: the slowest path governs.
                Objective::ResponseTime => total = total.max(best),
            }
        }
        total
    };
    memo.insert((id, l.clone()), cost);
    Ok(cost)
}

/// Reconstruct the optimal assignment and build the physical tree.
fn assign(
    node: &AnnotatedNode,
    l: &Location,
    topology: &NetworkTopology,
    ids: &HashMap<*const AnnotatedNode, usize>,
    memo: &mut HashMap<(usize, Location), f64>,
    objective: Objective,
) -> Result<Arc<PhysicalPlan>> {
    let mut phys_children = Vec::with_capacity(node.children.len());
    for child in &node.children {
        let mut best: Option<(Location, f64)> = None;
        for l2 in child.exec.iter() {
            let ship = topology.ship_cost_ms(l2, l, child.bytes());
            let c = ship + cost_of(child, l2, topology, ids, memo, objective)?;
            if best.as_ref().is_none_or(|(_, b)| c < *b) {
                best = Some((l2.clone(), c));
            }
        }
        let (child_loc, _) =
            best.ok_or_else(|| GeoError::QueryRejected("child has empty execution trait".into()))?;
        let built = assign(child, &child_loc, topology, ids, memo, objective)?;
        phys_children.push(PhysicalPlan::ship(built, l.clone()));
    }
    let op = phys_op(&node.op);
    Ok(Arc::new(PhysicalPlan::new(
        op,
        Arc::clone(&node.schema),
        l.clone(),
        phys_children,
    )?))
}

/// Map logical memo operators onto physical operators (the engine's
/// implementation rules: hash join, hash aggregation).
pub fn phys_op(op: &MOp) -> PhysOp {
    match op {
        MOp::Scan { table, .. } => PhysOp::Scan {
            table: table.clone(),
        },
        MOp::Filter { predicate } => PhysOp::Filter {
            predicate: predicate.clone(),
        },
        MOp::Project { exprs } => PhysOp::Project {
            exprs: exprs.clone(),
        },
        MOp::Join { on, filter } => PhysOp::HashJoin {
            left_keys: on.iter().map(|(l, _)| l.clone()).collect(),
            right_keys: on.iter().map(|(_, r)| r.clone()).collect(),
            filter: filter.clone(),
        },
        MOp::Aggregate { group_by, aggs } => PhysOp::HashAggregate {
            group_by: group_by.clone(),
            aggs: aggs.clone(),
        },
        MOp::Union => PhysOp::Union,
        MOp::Sort { keys } => PhysOp::Sort { keys: keys.clone() },
        MOp::Limit { fetch } => PhysOp::Limit { fetch: *fetch },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoqp_common::{DataType, Field, LocationSet, Schema, TableRef};
    use geoqp_net::topology::Link;

    fn loc(n: &str) -> Location {
        Location::new(n)
    }

    fn schema() -> Arc<Schema> {
        Arc::new(Schema::new(vec![Field::new("x", DataType::Int64)]).unwrap())
    }

    fn leaf(at: &str, rows: f64) -> AnnotatedNode {
        AnnotatedNode {
            op: MOp::Scan {
                table: TableRef::bare(format!("t_{at}")),
                location: loc(at),
                schema: Arc::new(Schema::new(vec![Field::new("x", DataType::Int64)]).unwrap()),
            },
            schema: schema(),
            exec: LocationSet::singleton(loc(at)),
            ship: LocationSet::from_iter(["A", "B", "C"]),
            rows,
            width: 10.0,
            children: vec![],
        }
    }

    fn join(exec: &[&str], children: Vec<AnnotatedNode>, rows: f64) -> AnnotatedNode {
        AnnotatedNode {
            op: MOp::Join {
                on: vec![("x".into(), "x".into())],
                filter: None,
            },
            schema: schema(),
            exec: LocationSet::from_iter(exec.iter().copied()),
            ship: LocationSet::from_iter(exec.iter().copied()),
            rows,
            width: 10.0,
            children,
        }
    }

    /// A topology where shipping is priced purely per byte (α = 0), so the
    /// optimum is easy to reason about by hand.
    fn per_byte_topology() -> NetworkTopology {
        let mut t = NetworkTopology::uniform(
            LocationSet::from_iter(["A", "B", "C"]),
            0.0,
            125.0, // β = 1/15625 ms per byte... use explicit links below
        );
        for a in ["A", "B", "C"] {
            for b in ["A", "B", "C"] {
                if a != b {
                    t.set_link(
                        loc(a),
                        loc(b),
                        Link {
                            alpha_ms: 0.0,
                            beta_ms_per_byte: 1.0,
                        },
                    );
                }
            }
        }
        t
    }

    #[test]
    fn gravity_pulls_join_to_the_big_side() {
        // 1000-row table at A, 10-row table at B; join may run at A or B.
        // Cheapest: move the small side to A.
        let plan = join(&["A", "B"], vec![leaf("A", 1000.0), leaf("B", 10.0)], 500.0);
        let sited = select_sites(&plan, &per_byte_topology(), None).unwrap();
        let transfers = sited.physical.transfers();
        assert_eq!(transfers, vec![(loc("B"), loc("A"))]);
        assert!((sited.est_ship_cost_ms - 100.0).abs() < 1e-9); // 10 rows × 10 B
    }

    #[test]
    fn result_location_charges_the_final_ship() {
        let plan = join(&["A", "B"], vec![leaf("A", 1000.0), leaf("B", 10.0)], 500.0);
        let sited = select_sites(&plan, &per_byte_topology(), Some(&loc("C"))).unwrap();
        assert_eq!(sited.result_location, loc("C"));
        // 10×10 bytes B→A plus 500×10 bytes A→C.
        assert!((sited.est_ship_cost_ms - (100.0 + 5000.0)).abs() < 1e-9);
        assert_eq!(sited.physical.ship_count(), 2);
    }

    #[test]
    fn dp_matches_brute_force_on_a_two_level_tree() {
        // Join of (join of A,B) with C, middle join placeable anywhere.
        let inner = join(
            &["A", "B", "C"],
            vec![leaf("A", 50.0), leaf("B", 70.0)],
            30.0,
        );
        let outer = join(&["A", "B", "C"], vec![inner, leaf("C", 90.0)], 10.0);
        let topo = per_byte_topology();
        let sited = select_sites(&outer, &topo, None).unwrap();

        // Brute force over (outer loc, inner loc).
        let mut best = f64::INFINITY;
        for l_out in ["A", "B", "C"] {
            for l_in in ["A", "B", "C"] {
                let c = topo.ship_cost_ms(&loc("A"), &loc(l_in), 500.0)
                    + topo.ship_cost_ms(&loc("B"), &loc(l_in), 700.0)
                    + topo.ship_cost_ms(&loc(l_in), &loc(l_out), 300.0)
                    + topo.ship_cost_ms(&loc("C"), &loc(l_out), 900.0);
                if c < best {
                    best = c;
                }
            }
        }
        assert!(
            (sited.est_ship_cost_ms - best).abs() < 1e-9,
            "DP {} vs brute force {best}",
            sited.est_ship_cost_ms
        );
    }

    #[test]
    fn response_time_prefers_parallel_paths() {
        // Two equally big inputs at A and B; a join placeable at A, B or C.
        // Total cost: run at A or B (one 1000-byte ship). Response time:
        // running at C ships both in parallel (critical path 1000) — same
        // as the best sequential path, but crucially the *costs differ*
        // between objectives on asymmetric inputs:
        let plan = join(
            &["A", "B", "C"],
            vec![leaf("A", 100.0), leaf("B", 60.0)],
            10.0,
        );
        let topo = per_byte_topology();
        let total = select_sites_with(&plan, &topo, None, Objective::TotalCost).unwrap();
        let rt = select_sites_with(&plan, &topo, None, Objective::ResponseTime).unwrap();
        // Total cost: ship the smaller (600 B) side to A → 600.
        assert!((total.est_ship_cost_ms - 600.0).abs() < 1e-9);
        // Response time: the same placement has critical path 600; placing
        // at C would make it max(1000, 600) = 1000. So the DP must report
        // 600, not a sum.
        assert!((rt.est_ship_cost_ms - 600.0).abs() < 1e-9);
        assert_eq!(total.physical.transfers(), rt.physical.transfers());
    }

    #[test]
    fn response_time_differs_from_total_cost_when_paths_split() {
        // Children at A and B; join exec restricted to {C}. Both must ship.
        let plan = join(&["C"], vec![leaf("A", 100.0), leaf("B", 100.0)], 10.0);
        let topo = per_byte_topology();
        let total = select_sites_with(&plan, &topo, None, Objective::TotalCost).unwrap();
        let rt = select_sites_with(&plan, &topo, None, Objective::ResponseTime).unwrap();
        assert!((total.est_ship_cost_ms - 2000.0).abs() < 1e-9); // sum
        assert!((rt.est_ship_cost_ms - 1000.0).abs() < 1e-9); // max
    }

    #[test]
    fn empty_execution_trait_is_a_rejection() {
        let plan = join(&[], vec![leaf("A", 10.0), leaf("B", 10.0)], 5.0);
        let err = select_sites(&plan, &per_byte_topology(), None).unwrap_err();
        assert_eq!(err.kind(), "rejected");
    }
}
