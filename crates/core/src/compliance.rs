//! The independent Definition-1 compliance checker.
//!
//! Recomputes execution/shipping traits bottom-up over a *final, located*
//! physical plan, straight from the policy catalog — without trusting any
//! optimizer state — and verifies that every operator executes inside its
//! derived execution trait and every SHIP targets a location inside its
//! input's derived shipping trait.
//!
//! This is the closed form of Definition 1's conditions under annotation
//! rules AR1–AR4: condition **c1** for tablescans, condition **c2** via
//! `ℰ(o) = ⋂_{o' ∈ in(o)} 𝒮(o')` with
//! `𝒮(o) = ℰ(o) ∪ 𝒜(Q_o, D, P_D)` for single-database subqueries.
//!
//! The checker serves two roles in the reproduction: it validates
//! Theorem 1 against the compliant optimizer (property-tested), and it
//! audits the traditional baseline's plans to produce the C/NC labels of
//! Figures 5(a), 6(g), and 6(h).

use geoqp_common::{GeoError, LocationSet, Result};
use geoqp_plan::descriptor::describe_local;
use geoqp_plan::logical::LogicalPlan;
use geoqp_plan::{PhysOp, PhysicalPlan};
use geoqp_policy::PolicyEvaluator;
use geoqp_storage::Catalog;
use std::collections::HashMap;
use std::sync::Arc;

/// Audit a located physical plan against the dataflow policies. Returns
/// `Ok(())` for compliant plans and a [`GeoError::NonCompliant`] naming
/// the offending operator otherwise.
pub fn check_compliance(
    plan: &PhysicalPlan,
    evaluator: &PolicyEvaluator<'_>,
    catalog: &Catalog,
) -> Result<()> {
    walk(plan, evaluator, catalog, true, &mut HashMap::new()).map(|_| ())
}

/// Derive the shipping trait `𝒮` of every SHIP's *input*, in pre-order
/// SHIP order — the per-edge audit sets the parallel runtime checks each
/// batch against before it leaves the producer site.
///
/// The derivation is **lenient**: Definition-1 violations do not abort it
/// (a traditional-optimizer plan may be non-compliant), so the offending
/// edge is caught at execution time by the runtime's per-batch audit
/// rather than here. Only structural failures (an unresolvable or
/// misplaced tablescan) are errors.
pub fn ship_traits(
    plan: &PhysicalPlan,
    evaluator: &PolicyEvaluator<'_>,
    catalog: &Catalog,
) -> Result<Vec<LocationSet>> {
    Ok(ship_audit_info(plan, evaluator, catalog)?
        .into_iter()
        .map(|a| a.legal)
        .collect())
}

/// What the checker derived for one SHIP edge's input subtree: the
/// shipping trait `𝒮` (the sites where the subtree's output may legally
/// travel — and therefore persist) and its logical content. The failover
/// checkpoint layer stores both alongside the retained rows, so a
/// stitched `ResumeScan` can be re-audited by [`check_compliance`]
/// without trusting the stitcher.
#[derive(Debug, Clone)]
pub struct ShipAudit {
    /// The edge input's derived shipping trait `𝒮`.
    pub legal: LocationSet,
    /// The edge input's logical content.
    pub logical: Arc<LogicalPlan>,
}

/// [`ship_traits`] with the logical content attached — same lenient
/// derivation, same pre-order SHIP order.
pub fn ship_audit_info(
    plan: &PhysicalPlan,
    evaluator: &PolicyEvaluator<'_>,
    catalog: &Catalog,
) -> Result<Vec<ShipAudit>> {
    let mut by_node = HashMap::new();
    walk(plan, evaluator, catalog, false, &mut by_node)?;
    let mut out = Vec::new();
    collect_preorder(plan, &by_node, &mut out);
    Ok(out)
}

fn collect_preorder(
    plan: &PhysicalPlan,
    by_node: &HashMap<usize, ShipAudit>,
    out: &mut Vec<ShipAudit>,
) {
    if matches!(plan.op, PhysOp::Ship) {
        if let Some(s) = by_node.get(&node_key(plan)) {
            out.push(s.clone());
        }
    }
    for c in &plan.inputs {
        collect_preorder(c, by_node, out);
    }
}

fn node_key(p: &PhysicalPlan) -> usize {
    p as *const PhysicalPlan as usize
}

/// Bottom-up result: the subtree's shipping trait and its logical content.
struct Derived {
    ship: LocationSet,
    logical: Arc<LogicalPlan>,
}

fn walk(
    plan: &PhysicalPlan,
    evaluator: &PolicyEvaluator<'_>,
    catalog: &Catalog,
    strict: bool,
    ships: &mut HashMap<usize, ShipAudit>,
) -> Result<Derived> {
    match &plan.op {
        PhysOp::Scan { table } => {
            // Condition c1: a tablescan executes at the table's location.
            let entry = catalog.resolve_one(table).map_err(|e| {
                GeoError::NonCompliant(format!("cannot resolve scanned table: {e}"))
            })?;
            if entry.location != plan.location {
                return Err(GeoError::NonCompliant(format!(
                    "tablescan of {} executes at {} but the table lives at {}",
                    table, plan.location, entry.location
                )));
            }
            let logical: Arc<LogicalPlan> = Arc::new(LogicalPlan::TableScan {
                table: table.clone(),
                location: entry.location.clone(),
                schema: Arc::clone(&plan.schema),
            });
            let mut ship = LocationSet::singleton(plan.location.clone());
            augment_with_policy(&mut ship, &logical, evaluator);
            Ok(Derived { ship, logical })
        }
        PhysOp::ResumeScan {
            fingerprint,
            legal,
            logical,
        } => {
            // A resume leaf reads a checkpointed subtree's output. Its
            // shipping trait is the trait the subtree had when the
            // checkpoint was taken (recorded on the node, derived by this
            // same walk over the original plan), so ancestors — including
            // the resume edge's SHIP — audit exactly as if the subtree
            // were still there. The leaf's own location is the
            // checkpoint's home and must be inside that trait: a
            // checkpoint homed at an illegal site is a Definition-1
            // violation, not a recovery optimization.
            if strict && !legal.contains(&plan.location) {
                return Err(GeoError::NonCompliant(format!(
                    "resume of checkpoint {fingerprint:016x} at {} which is outside \
                     its shipping trait {legal}",
                    plan.location
                )));
            }
            Ok(Derived {
                ship: legal.clone(),
                logical: Arc::clone(logical),
            })
        }
        PhysOp::Ship => {
            let input = walk(&plan.inputs[0], evaluator, catalog, strict, ships)?;
            ships.insert(
                node_key(plan),
                ShipAudit {
                    legal: input.ship.clone(),
                    logical: Arc::clone(&input.logical),
                },
            );
            if strict && !input.ship.contains(&plan.location) {
                return Err(GeoError::NonCompliant(format!(
                    "SHIP {} → {} violates dataflow policies (legal: {})",
                    plan.inputs[0].location, plan.location, input.ship
                )));
            }
            // Moving data does not change which destinations are legal
            // for it.
            Ok(input)
        }
        other => {
            let children: Vec<Derived> = plan
                .inputs
                .iter()
                .map(|c| walk(c, evaluator, catalog, strict, ships))
                .collect::<Result<_>>()?;
            // Condition c2 via AR2: the operator's location must be legal
            // for every input.
            let mut exec = children[0].ship.clone();
            for c in &children[1..] {
                exec.intersect_with(&c.ship);
            }
            if strict && !exec.contains(&plan.location) {
                return Err(GeoError::NonCompliant(format!(
                    "{} executes at {} outside its derived execution trait {}",
                    other.name(),
                    plan.location,
                    exec
                )));
            }
            let logical = rebuild_logical(
                other,
                children.iter().map(|c| Arc::clone(&c.logical)).collect(),
            )?;
            // AR3 ∪ AR4.
            let mut ship = exec;
            augment_with_policy(&mut ship, &logical, evaluator);
            Ok(Derived { ship, logical })
        }
    }
}

fn augment_with_policy(
    ship: &mut LocationSet,
    logical: &Arc<LogicalPlan>,
    evaluator: &PolicyEvaluator<'_>,
) {
    if let Some(local) = describe_local(logical) {
        ship.union_with(&evaluator.evaluate(&local));
    }
}

/// Reconstruct the logical content of a physical operator (Ships already
/// removed by the caller).
fn rebuild_logical(op: &PhysOp, mut children: Vec<Arc<LogicalPlan>>) -> Result<Arc<LogicalPlan>> {
    let plan = match op {
        PhysOp::Scan { .. } | PhysOp::Ship | PhysOp::ResumeScan { .. } => {
            unreachable!("handled by walk")
        }
        PhysOp::Filter { predicate } => {
            LogicalPlan::filter(children.pop().unwrap(), predicate.clone())?
        }
        PhysOp::Project { exprs } => LogicalPlan::project(children.pop().unwrap(), exprs.clone())?,
        PhysOp::HashJoin {
            left_keys,
            right_keys,
            filter,
        } => {
            let right = children.pop().unwrap();
            let left = children.pop().unwrap();
            let on = left_keys
                .iter()
                .cloned()
                .zip(right_keys.iter().cloned())
                .collect();
            LogicalPlan::join(left, right, on, filter.clone())?
        }
        PhysOp::HashAggregate { group_by, aggs } => {
            LogicalPlan::aggregate(children.pop().unwrap(), group_by.clone(), aggs.to_vec())?
        }
        PhysOp::Sort { keys } => LogicalPlan::sort(children.pop().unwrap(), keys.clone())?,
        PhysOp::Limit { fetch } => LogicalPlan::limit(children.pop().unwrap(), *fetch),
        PhysOp::Union => LogicalPlan::union(children)?,
    };
    Ok(Arc::new(plan))
}
