//! Replication property test for the versioned catalog log.
//!
//! Over 10 000 seeded grant/revoke/partition schedules, every replica's
//! reconstructed catalog at epoch *e* must be byte-identical to the
//! coordinator's at *e*, and no replica may ever report an epoch it
//! cannot reconstruct. Partitions are modelled as withheld deliveries (a
//! stalled replica simply stops advancing), lag as short in-order
//! prefixes, and a byzantine transport as occasional tampered or
//! out-of-order entries — which the chain verification must refuse,
//! leaving the replica exactly where it was.

use geoqp_common::{DataType, Field, GeoError, LocationPattern, Schema, TableRef};
use geoqp_expr::ScalarExpr;
use geoqp_policy::{
    CatalogAction, CatalogLog, CatalogReplica, PolicyCatalog, PolicyExpression, ShipAttrs,
};

const COLS: [&str; 4] = ["a", "b", "c", "d"];
const SCHEDULES: u64 = 10_000;
const REPLICAS: usize = 3;
const MAX_OPS: u64 = 8;

fn schema() -> Schema {
    Schema::new(
        COLS.iter()
            .map(|c| {
                Field::new(
                    *c,
                    if *c == "d" {
                        DataType::Str
                    } else {
                        DataType::Int64
                    },
                )
            })
            .collect(),
    )
    .unwrap()
}

/// Deterministic PRNG — same generator the bench harness seeds runs with.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded policy expression over the test table: random attribute
/// subset, sometimes `ship *`, sometimes predicated — enough variety
/// that canonical lines differ in attrs, table_attrs, and predicate.
fn arb_expr(rng: &mut u64) -> PolicyExpression {
    let r = splitmix64(rng);
    let attrs = if r.is_multiple_of(5) {
        ShipAttrs::Star
    } else {
        let mut picked = Vec::new();
        for (i, c) in COLS.iter().enumerate() {
            if (r >> (8 + i)) & 1 == 1 {
                picked.push(*c);
            }
        }
        if picked.is_empty() {
            picked.push(COLS[(r >> 16) as usize % COLS.len()]);
        }
        ShipAttrs::list(picked)
    };
    let predicate = if r.is_multiple_of(3) {
        let col = COLS[(r >> 20) as usize % 3]; // int columns only
        let v = ((r >> 24) % 10) as i64 - 5;
        Some(ScalarExpr::col(col).gt(ScalarExpr::lit(v)))
    } else {
        None
    };
    PolicyExpression::basic(TableRef::bare("t"), attrs, LocationPattern::Star, predicate)
}

fn base_catalog() -> PolicyCatalog {
    let mut cat = PolicyCatalog::new();
    cat.register(
        PolicyExpression::basic(
            TableRef::bare("t"),
            ShipAttrs::list(["a"]),
            LocationPattern::Star,
            None,
        ),
        &schema(),
    )
    .unwrap();
    cat
}

/// Check every replication invariant for one replica against the
/// coordinator's log.
fn check_replica(seed: u64, log: &CatalogLog, replica: &CatalogReplica) {
    assert!(
        replica.seq() <= log.seq(),
        "seed {seed}: replica at seq {} is ahead of the log head {}",
        replica.seq(),
        log.seq()
    );
    // The epoch a replica reports must be one it can reconstruct — and
    // reconstructing it must land on the coordinator's epoch for the
    // same prefix.
    let coordinator_epoch = log
        .epoch_at(replica.seq())
        .expect("replica seq is within the log");
    assert_eq!(
        replica.epoch(),
        coordinator_epoch,
        "seed {seed}: replica epoch diverges at seq {}",
        replica.seq()
    );
    // Byte-identical materialization at every prefix the replica holds.
    for seq in 0..=replica.seq() {
        let ours = replica.materialize(seq).unwrap();
        let theirs = log.materialize(seq).unwrap();
        assert_eq!(
            ours.canonical_bytes(),
            theirs.canonical_bytes(),
            "seed {seed}: replica snapshot at seq {seq} is not byte-identical"
        );
        assert_eq!(ours.epoch(), theirs.epoch());
    }
    // A prefix the replica has not seen must refuse to materialize
    // rather than guess.
    assert!(replica.materialize(replica.seq() + 1).is_err());
}

#[test]
fn replicas_reconstruct_the_coordinator_byte_identically_over_10k_schedules() {
    let schema = schema();
    let mut stalled_schedules = 0u64;
    let mut refusals = 0u64;
    for seed in 0..SCHEDULES {
        let mut rng = seed.wrapping_mul(0x9e37_79b9).wrapping_add(2021);
        let mut log = CatalogLog::new(base_catalog());
        let mut replicas: Vec<CatalogReplica> = (0..REPLICAS).map(|_| log.replica()).collect();
        // A partitioned replica receives nothing for the whole schedule.
        let partitioned = splitmix64(&mut rng) as usize % (REPLICAS + 1); // REPLICAS = none
        let ops = 1 + splitmix64(&mut rng) % MAX_OPS;
        for _ in 0..ops {
            match splitmix64(&mut rng) % 4 {
                // Grant a fresh policy.
                0 => {
                    let expr = arb_expr(&mut rng);
                    log.grant(expr, &schema).unwrap();
                }
                // Revoke a random live pid (skip when nothing is live).
                1 => {
                    let live = log.live_policies(log.seq());
                    if !live.is_empty() {
                        let (pid, _) = live[splitmix64(&mut rng) as usize % live.len()];
                        log.revoke(pid).unwrap();
                    }
                }
                // Deliver an in-order prefix of the backlog to one
                // replica; length 0 models lag on a healthy link.
                2 => {
                    let r = splitmix64(&mut rng) as usize % REPLICAS;
                    if r == partitioned {
                        continue;
                    }
                    let backlog = log.entries_after(replicas[r].seq());
                    if backlog.is_empty() {
                        continue;
                    }
                    let take = splitmix64(&mut rng) as usize % (backlog.len() + 1);
                    for entry in &backlog[..take] {
                        replicas[r].apply(entry).unwrap();
                    }
                }
                // Byzantine transport: a tampered, replayed, or gapped
                // entry. All must be refused with the replica unchanged.
                _ => {
                    let r = splitmix64(&mut rng) as usize % REPLICAS;
                    let before_seq = replicas[r].seq();
                    let before_epoch = replicas[r].epoch();
                    let next = log.entries_after(before_seq).first().cloned();
                    let forged = match splitmix64(&mut rng) % 3 {
                        // Epoch flipped: fails chain verification.
                        0 => next.clone().map(|mut e| {
                            e.epoch ^= 1;
                            e
                        }),
                        // Content mutated under the claimed epoch.
                        1 => next.clone().map(|mut e| {
                            match &mut e.action {
                                CatalogAction::Grant { pid, .. } => *pid += 100,
                                CatalogAction::Revoke { pid } => *pid += 100,
                            }
                            e
                        }),
                        // Out of order: skip ahead past the frontier.
                        _ => log.entries_after(before_seq).get(1).cloned(),
                    };
                    if let Some(entry) = forged {
                        assert!(
                            replicas[r].apply(&entry).is_err(),
                            "seed {seed}: forged entry seq {} was accepted",
                            entry.seq
                        );
                        refusals += 1;
                        assert_eq!(replicas[r].seq(), before_seq);
                        assert_eq!(
                            replicas[r].epoch(),
                            before_epoch,
                            "seed {seed}: a refused entry moved the replica's epoch"
                        );
                    }
                }
            }
            for replica in &replicas {
                check_replica(seed, &log, replica);
            }
        }
        // Heal everything except the partition: a lagged replica always
        // converges to the coordinator's head, byte for byte.
        for (r, replica) in replicas.iter_mut().enumerate() {
            if r == partitioned {
                continue;
            }
            for entry in log.entries_after(replica.seq()).to_vec() {
                replica.apply(&entry).unwrap();
            }
            assert_eq!(replica.seq(), log.seq(), "seed {seed}: healed replica lags");
            assert_eq!(replica.epoch(), log.epoch());
            assert_eq!(
                replica
                    .materialize(replica.seq())
                    .unwrap()
                    .canonical_bytes(),
                log.materialize(log.seq()).unwrap().canonical_bytes()
            );
        }
        // The partitioned replica stays frozen but internally sound: it
        // proves exactly the prefix it holds, nothing newer.
        if partitioned < REPLICAS {
            let frozen = &replicas[partitioned];
            check_replica(seed, &log, frozen);
            if frozen.seq() < log.seq() {
                stalled_schedules += 1;
                assert!(!frozen.has_seen(log.seq()));
            }
        }
    }
    assert!(
        stalled_schedules > 1_000,
        "partitions must actually stall replicas ({stalled_schedules} schedules)"
    );
    assert!(
        refusals > 1_000,
        "byzantine deliveries must actually occur ({refusals} refusals)"
    );
}

/// Bootstrap-equivalence property: over 10 000 seeded schedules that mix
/// grants, revocations, lagged delivery, mid-schedule compaction, and
/// replica crashes, a replica recovered from the latest snapshot plus the
/// tail must be **byte-identical** — at every prefix it can still
/// reconstruct — to a twin that replayed the full history from seq 0.
/// Reads below a compaction floor must fail typed (`CatalogCompacted`),
/// never panic, and a wiped replica stranded below the floor must refuse
/// plain tail entries (gap) until a snapshot bootstrap re-floors it.
#[test]
fn snapshot_bootstrapped_replicas_match_replay_from_zero_over_10k_schedules() {
    let schema = schema();
    let mut compactions = 0u64;
    let mut bootstraps = 0u64;
    let mut truncated_reads = 0u64;
    for seed in 0..SCHEDULES {
        let mut rng = seed.wrapping_mul(0x2545_f491).wrapping_add(0x5eed);
        let mut log = CatalogLog::new(base_catalog());
        // The twin replays every entry from seq 0 and is never wiped or
        // compacted: it is the ground truth a bootstrap must reproduce.
        let mut twin = log.replica();
        // The subject lags, crashes, and recovers through snapshots.
        let mut subject = log.replica();
        let ops = 2 + splitmix64(&mut rng) % MAX_OPS;
        for _ in 0..ops {
            match splitmix64(&mut rng) % 8 {
                // Mutations, weighted toward grants so the live set grows.
                // The twin is caught up immediately after each one, so no
                // later compaction can truncate history it has not seen.
                0..=2 => {
                    let expr = arb_expr(&mut rng);
                    log.grant(expr, &schema).unwrap();
                    for entry in log.entries_after(twin.seq()).to_vec() {
                        twin.apply(&entry).unwrap();
                    }
                }
                3 => {
                    let live = log.live_policies(log.seq());
                    if !live.is_empty() {
                        let (pid, _) = live[splitmix64(&mut rng) as usize % live.len()];
                        log.revoke(pid).unwrap();
                        for entry in log.entries_after(twin.seq()).to_vec() {
                            twin.apply(&entry).unwrap();
                        }
                    }
                }
                // Delivery: an in-order prefix of whatever the subject's
                // link can still serve — possibly empty, modelling lag. A
                // subject stranded below the floor must refuse the
                // truncated tail and recover through a snapshot.
                4 | 5 => {
                    if subject.seq() < log.floor_seq() {
                        if let Some(entry) = log.entries_after(log.floor_seq()).first() {
                            assert!(
                                subject.apply(&entry.clone()).is_err(),
                                "seed {seed}: a stranded replica applied a tail entry \
                                 across the truncated gap"
                            );
                        }
                        truncated_reads += 1;
                        subject.bootstrap(log.latest_snapshot()).unwrap();
                        bootstraps += 1;
                    }
                    let backlog = log.entries_after(subject.seq()).to_vec();
                    let take = splitmix64(&mut rng) as usize % (backlog.len() + 1);
                    for entry in &backlog[..take] {
                        subject.apply(entry).unwrap();
                    }
                }
                // Compaction at a random still-held sequence.
                6 => {
                    let (floor, head) = (log.floor_seq(), log.seq());
                    if head > floor {
                        let at = floor + 1 + splitmix64(&mut rng) % (head - floor);
                        log.compact(at).unwrap();
                        compactions += 1;
                    }
                }
                // Crash: the subject loses everything it applied.
                _ => subject.wipe(),
            }
            // Every prefix the subject can reconstruct is byte-identical
            // to the twin's replay-from-0 view of the same sequence.
            for seq in subject.floor_seq()..=subject.seq() {
                assert_eq!(
                    subject.materialize(seq).unwrap().canonical_bytes(),
                    twin.materialize(seq).unwrap().canonical_bytes(),
                    "seed {seed}: bootstrapped subject diverges from the \
                     replay-from-0 twin at seq {seq}"
                );
            }
        }
        // Heal: bootstrap if stranded, then drain the tail. The subject
        // must land on the coordinator's head byte for byte.
        if subject.seq() < log.floor_seq() {
            subject.bootstrap(log.latest_snapshot()).unwrap();
            bootstraps += 1;
        }
        for entry in log.entries_after(subject.seq()).to_vec() {
            subject.apply(&entry).unwrap();
        }
        assert_eq!(subject.seq(), log.seq(), "seed {seed}: healed subject lags");
        assert_eq!(subject.epoch(), log.epoch());
        assert_eq!(subject.epoch(), twin.epoch());
        assert_eq!(
            subject
                .materialize(subject.seq())
                .unwrap()
                .canonical_bytes(),
            twin.materialize(twin.seq()).unwrap().canonical_bytes(),
            "seed {seed}: healed subject head is not byte-identical to the twin"
        );
        // Truncated prefixes read as typed errors on log and replica both.
        if log.floor_seq() > 0 {
            assert!(matches!(
                log.materialize(log.floor_seq() - 1),
                Err(GeoError::CatalogCompacted(_))
            ));
        }
        if subject.floor_seq() > 0 {
            assert!(matches!(
                subject.materialize(subject.floor_seq() - 1),
                Err(GeoError::CatalogCompacted(_))
            ));
        }
    }
    assert!(
        compactions > 2_000,
        "compaction must actually occur ({compactions} compactions)"
    );
    assert!(
        bootstraps > 500,
        "snapshot bootstraps must actually occur ({bootstraps} bootstraps, \
         {truncated_reads} truncated reads)"
    );
}

#[test]
fn identically_seeded_schedules_produce_identical_heads() {
    let schema = schema();
    for seed in [0u64, 7, 2021] {
        let run = |mut rng: u64| {
            let mut log = CatalogLog::new(base_catalog());
            for _ in 0..6 {
                if splitmix64(&mut rng).is_multiple_of(2) {
                    log.grant(arb_expr(&mut rng), &schema).unwrap();
                } else {
                    let live = log.live_policies(log.seq());
                    if !live.is_empty() {
                        let (pid, _) = live[splitmix64(&mut rng) as usize % live.len()];
                        log.revoke(pid).unwrap();
                    }
                }
            }
            (
                log.head(),
                log.materialize(log.seq()).unwrap().canonical_bytes(),
            )
        };
        assert_eq!(run(seed), run(seed), "seed {seed} must replay identically");
    }
}
