//! Property tests for the policy evaluator.
//!
//! * **Additivity / monotonicity**: the disclosure model is additive —
//!   registering one more expression can only *grow* (never shrink) the
//!   legal-location set of any query. The experiment generators rely on
//!   this to pad policy sets without breaking the compliant-plan
//!   guarantee.
//! * **Predicate monotonicity**: strengthening a query's predicate can
//!   only grow the legal set (more expressions become implied).
//! * **Masking monotonicity**: dropping output attributes can only grow
//!   the legal set (the paper's masking-via-projection rationale).

use geoqp_common::{DataType, Field, Location, LocationPattern, LocationSet, Schema, TableRef};
use geoqp_expr::{AggCall, AggFunc, ScalarExpr};
use geoqp_plan::descriptor::describe_local;
use geoqp_plan::PlanBuilder;
use geoqp_policy::{PolicyCatalog, PolicyEvaluator, PolicyExpression, ShipAttrs};
use proptest::prelude::*;

const COLS: [&str; 5] = ["a", "b", "c", "d", "e"];
const LOCS: [&str; 4] = ["l1", "l2", "l3", "l4"];

fn schema() -> Schema {
    Schema::new(
        COLS.iter()
            .map(|c| {
                Field::new(
                    *c,
                    if *c == "e" {
                        DataType::Str
                    } else {
                        DataType::Int64
                    },
                )
            })
            .collect(),
    )
    .unwrap()
}

fn universe() -> LocationSet {
    LocationSet::from_iter(LOCS.iter().copied())
}

/// An arbitrary policy expression over the test table.
fn arb_expr() -> impl Strategy<Value = PolicyExpression> {
    let attrs = proptest::sample::subsequence(COLS.to_vec(), 1..=COLS.len());
    let locs = proptest::sample::subsequence(LOCS.to_vec(), 1..=LOCS.len());
    let pred = proptest::option::of((0usize..4, -5i64..5, any::<bool>()).prop_map(|(c, v, gt)| {
        let col = ScalarExpr::col(COLS[c]);
        if gt {
            col.gt(ScalarExpr::lit(v))
        } else {
            col.lt_eq(ScalarExpr::lit(v))
        }
    }));
    let aggregate = any::<bool>();
    (attrs, locs, pred, aggregate).prop_map(|(attrs, locs, pred, aggregate)| {
        let to = LocationPattern::Set(LocationSet::from_iter(locs));
        if aggregate {
            PolicyExpression::aggregate(
                TableRef::bare("t"),
                ShipAttrs::list(attrs),
                [AggFunc::Sum, AggFunc::Avg],
                ["c".to_string(), "e".to_string()],
                to,
                pred,
            )
        } else {
            PolicyExpression::basic(TableRef::bare("t"), ShipAttrs::list(attrs), to, pred)
        }
    })
}

fn catalog_of(exprs: &[PolicyExpression]) -> PolicyCatalog {
    let s = schema();
    let mut cat = PolicyCatalog::new();
    for e in exprs {
        cat.register(e.clone(), &s).unwrap();
    }
    cat
}

/// A random describable local query: optional filter, projection or
/// aggregation.
fn arb_query() -> impl Strategy<Value = std::sync::Arc<geoqp_plan::LogicalPlan>> {
    let out = proptest::sample::subsequence(vec!["a", "b", "c", "d", "e"], 1..=4);
    let pred = proptest::option::of(
        (0usize..4, -5i64..5).prop_map(|(c, v)| ScalarExpr::col(COLS[c]).gt(ScalarExpr::lit(v))),
    );
    let aggregate = any::<bool>();
    (out, pred, aggregate).prop_map(|(out, pred, aggregate)| {
        let mut b = PlanBuilder::scan(TableRef::bare("t"), Location::new("home"), schema());
        if let Some(p) = pred {
            b = b.filter(p).unwrap();
        }
        if aggregate {
            b.aggregate(
                &["c"],
                vec![AggCall::new(AggFunc::Sum, ScalarExpr::col("a"), "s")],
            )
            .unwrap()
            .build()
        } else {
            b.project_columns(&out).unwrap().build()
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn adding_expressions_is_monotone(
        base in proptest::collection::vec(arb_expr(), 0..5),
        extra in arb_expr(),
        query in arb_query(),
    ) {
        let uni = universe();
        let q = describe_local(&query).unwrap();

        let small = catalog_of(&base);
        let ev_small = PolicyEvaluator::new(&small, &uni);
        let before = ev_small.evaluate(&q);

        let mut bigger = base.clone();
        bigger.push(extra);
        let big = catalog_of(&bigger);
        let ev_big = PolicyEvaluator::new(&big, &uni);
        let after = ev_big.evaluate(&q);

        prop_assert!(
            before.is_subset(&after),
            "adding an expression shrank 𝒜: {before} → {after}"
        );
    }

    #[test]
    fn strengthening_the_predicate_is_monotone(
        exprs in proptest::collection::vec(arb_expr(), 1..5),
        threshold in -5i64..5,
    ) {
        let uni = universe();
        let cat = catalog_of(&exprs);
        let ev = PolicyEvaluator::new(&cat, &uni);

        let weak = PlanBuilder::scan(TableRef::bare("t"), Location::new("home"), schema())
            .filter(ScalarExpr::col("a").gt(ScalarExpr::lit(threshold)))
            .unwrap()
            .project_columns(&["a", "b"])
            .unwrap()
            .build();
        let strong = PlanBuilder::scan(TableRef::bare("t"), Location::new("home"), schema())
            .filter(ScalarExpr::col("a").gt(ScalarExpr::lit(threshold + 3)))
            .unwrap()
            .project_columns(&["a", "b"])
            .unwrap()
            .build();
        let l_weak = ev.evaluate(&describe_local(&weak).unwrap());
        let l_strong = ev.evaluate(&describe_local(&strong).unwrap());
        prop_assert!(
            l_weak.is_subset(&l_strong),
            "stronger predicate lost locations: {l_weak} vs {l_strong}"
        );
    }

    #[test]
    fn masking_attributes_is_monotone(
        exprs in proptest::collection::vec(arb_expr(), 1..5),
    ) {
        let uni = universe();
        let cat = catalog_of(&exprs);
        let ev = PolicyEvaluator::new(&cat, &uni);
        let wide = PlanBuilder::scan(TableRef::bare("t"), Location::new("home"), schema())
            .project_columns(&["a", "b", "c"])
            .unwrap()
            .build();
        let narrow = PlanBuilder::scan(TableRef::bare("t"), Location::new("home"), schema())
            .project_columns(&["a"])
            .unwrap()
            .build();
        let l_wide = ev.evaluate(&describe_local(&wide).unwrap());
        let l_narrow = ev.evaluate(&describe_local(&narrow).unwrap());
        prop_assert!(
            l_wide.is_subset(&l_narrow),
            "masking lost locations: {l_wide} vs {l_narrow}"
        );
    }
}
