//! The implication memo: optimizer-side caching of `P_q ⟹ P_e` verdicts.
//!
//! Algorithm 1's line-3 implication test dominates policy-evaluation
//! cost, and the optimizer asks it for the *same* (query predicate,
//! policy expression) pairs over and over: annotation rules AR1–AR4
//! evaluate overlapping subtrees of one query, the dynamic-programming
//! enumeration revisits the same local queries under different join
//! orders, and the resilient loop re-plans the same query after every
//! fault. The prover is pure — its verdict depends only on the two
//! predicates — so the verdicts memoize perfectly.
//!
//! Keys are `(predicate fingerprint, expression id)`, scoped to one
//! policy-catalog **epoch** ([`crate::PolicyCatalog::epoch`]): the first
//! probe under a new epoch clears the table, so a changed catalog can
//! never serve stale verdicts (expression ids are reused across
//! registrations, fingerprints are not content-bound to the catalog).
//! Hit/miss counters feed the engine's optimizer metrics.

use geoqp_expr::ScalarExpr;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Fingerprint of an optional query predicate, as used in memo keys.
/// Structural: two structurally equal predicates collide intentionally.
pub fn predicate_fingerprint(p: Option<&ScalarExpr>) -> u64 {
    let mut h = DefaultHasher::new();
    match p {
        None => 0u8.hash(&mut h),
        Some(e) => {
            1u8.hash(&mut h);
            e.hash(&mut h);
        }
    }
    h.finish()
}

/// Verdicts keyed by `(predicate fingerprint, expression id)`.
type Verdicts = HashMap<(u64, usize), bool>;

/// A shared, epoch-scoped cache of implication verdicts.
#[derive(Debug, Default)]
pub struct ImplicationMemo {
    /// `(current epoch, verdicts)`; one lock so an epoch check and the
    /// probe it guards are atomic.
    state: Mutex<(u64, Verdicts)>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ImplicationMemo {
    /// An empty memo.
    pub fn new() -> ImplicationMemo {
        ImplicationMemo::default()
    }

    /// Return the memoized verdict for `(pred_fp, expr_id)` under
    /// `epoch`, computing and storing it via `prove` on a miss. An epoch
    /// change (policy catalog edited) drops every cached verdict first.
    pub fn check(
        &self,
        epoch: u64,
        pred_fp: u64,
        expr_id: usize,
        prove: impl FnOnce() -> bool,
    ) -> bool {
        let mut state = self.state.lock().expect("memo lock poisoned");
        if state.0 != epoch {
            state.0 = epoch;
            state.1.clear();
        }
        if let Some(&v) = state.1.get(&(pred_fp, expr_id)) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return v;
        }
        // The prover is pure and lock-cheap at this scale; holding the
        // lock keeps concurrent re-plans from proving the same pair twice.
        let v = prove();
        state.1.insert((pred_fp, expr_id), v);
        self.misses.fetch_add(1, Ordering::Relaxed);
        v
    }

    /// Memo hits since creation (or the last [`reset_counters`]).
    ///
    /// [`reset_counters`]: ImplicationMemo::reset_counters
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Memo misses (= implication proofs actually run through the memo).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Cached verdicts currently held.
    pub fn len(&self) -> usize {
        self.state.lock().expect("memo lock poisoned").1.len()
    }

    /// True when no verdicts are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fraction of lookups served from the cache since creation (or the
    /// last counter reset); 0 when nothing has been looked up.
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = (self.hits(), self.misses());
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    /// Zero the hit/miss counters (cached verdicts are kept).
    pub fn reset_counters(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memoizes_per_key_and_counts() {
        let m = ImplicationMemo::new();
        let mut proofs = 0;
        for _ in 0..3 {
            let v = m.check(1, 42, 7, || {
                proofs += 1;
                true
            });
            assert!(v);
        }
        assert_eq!(proofs, 1, "verdict must be proven once");
        assert_eq!(m.hits(), 2);
        assert_eq!(m.misses(), 1);
        // A different key proves again.
        assert!(!m.check(1, 42, 8, || false));
        assert_eq!(m.misses(), 2);
    }

    #[test]
    fn epoch_bump_invalidates() {
        let m = ImplicationMemo::new();
        assert!(m.check(1, 5, 0, || true));
        assert_eq!(m.len(), 1);
        // Same key, new epoch: the old verdict must not be served.
        assert!(!m.check(2, 5, 0, || false));
        assert_eq!(m.len(), 1);
        assert_eq!(m.hits(), 0);
        assert_eq!(m.misses(), 2);
    }

    #[test]
    fn predicate_fingerprint_is_structural() {
        use geoqp_expr::ScalarExpr as E;
        let a = E::col("x").gt(E::lit(5i64));
        let b = E::col("x").gt(E::lit(5i64));
        let c = E::col("x").gt(E::lit(6i64));
        assert_eq!(
            predicate_fingerprint(Some(&a)),
            predicate_fingerprint(Some(&b))
        );
        assert_ne!(
            predicate_fingerprint(Some(&a)),
            predicate_fingerprint(Some(&c))
        );
        assert_ne!(predicate_fingerprint(None), predicate_fingerprint(Some(&a)));
    }
}
