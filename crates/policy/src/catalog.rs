//! The policy catalog (Figure 2's "policy catalog").

use crate::expression::{PolicyExpression, PolicyKind};
use geoqp_common::{Result, Schema, TableRef};
use std::collections::BTreeSet;
use std::fmt;

/// A policy expression as stored in the catalog: validated against the
/// governed table's schema, with `ship *` expanded and the table's full
/// attribute set recorded (needed by the evaluator's multi-table grouping
/// check).
#[derive(Debug, Clone)]
pub struct RegisteredExpression {
    /// Stable id (registration order).
    pub id: usize,
    /// The original expression.
    pub expr: PolicyExpression,
    /// `A_e`, fully expanded.
    pub attrs: BTreeSet<String>,
    /// All attributes of the governed table.
    pub table_attrs: BTreeSet<String>,
}

impl RegisteredExpression {
    /// True when the expression governs `table` (any of its tables).
    pub fn governs(&self, table: &TableRef) -> bool {
        self.expr.tables().any(|t| t.matches(table))
    }

    /// True when the expression applies to a query reading `tables`:
    /// every governed table must be among the query's tables (a
    /// multi-table expression only speaks for the *joined* data; paper
    /// footnote 4).
    pub fn applies_to<'a>(&self, mut tables: impl Iterator<Item = &'a TableRef> + Clone) -> bool {
        self.expr
            .tables()
            .all(|et| tables.clone().any(|qt| et.matches(qt)))
            && tables.any(|qt| self.governs(qt))
    }
}

impl fmt::Display for RegisteredExpression {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}: {}", self.id, self.expr)
    }
}

/// All dataflow policies known to the deployment. Populated offline by the
/// data officers (Figure 2), read at optimization time by the policy
/// evaluator.
#[derive(Debug, Clone, Default)]
pub struct PolicyCatalog {
    expressions: Vec<RegisteredExpression>,
    /// When the catalog is a snapshot materialized from a versioned
    /// catalog log, the log's deterministic chain epoch overrides the
    /// content hash — so revoke-then-regrant can never silently return
    /// to an old epoch and resurrect stale checkpoints or memo verdicts.
    pinned_epoch: Option<u64>,
}

impl PolicyCatalog {
    /// Empty catalog.
    pub fn new() -> PolicyCatalog {
        PolicyCatalog::default()
    }

    /// Register an expression, validating it against the governed table's
    /// schema. Returns the assigned id.
    pub fn register(&mut self, expr: PolicyExpression, table_schema: &Schema) -> Result<usize> {
        let attrs = expr.validate(table_schema)?;
        let table_attrs = table_schema
            .fields()
            .iter()
            .map(|f| f.name.clone())
            .collect();
        let id = self.expressions.len();
        self.expressions.push(RegisteredExpression {
            id,
            expr,
            attrs,
            table_attrs,
        });
        Ok(id)
    }

    /// Crate-internal: rebuild a catalog from already-validated
    /// registered expressions — the versioned log's materialization
    /// path, where validation happened once at append time. Callers are
    /// responsible for id renumbering (registration order).
    pub(crate) fn from_registered(expressions: Vec<RegisteredExpression>) -> PolicyCatalog {
        debug_assert!(expressions.iter().enumerate().all(|(i, e)| e.id == i));
        PolicyCatalog {
            expressions,
            pinned_epoch: None,
        }
    }

    /// All expressions, in registration order.
    pub fn expressions(&self) -> &[RegisteredExpression] {
        &self.expressions
    }

    /// Expressions governing a table.
    pub fn for_table<'a>(
        &'a self,
        table: &'a TableRef,
    ) -> impl Iterator<Item = &'a RegisteredExpression> + 'a {
        self.expressions.iter().filter(move |e| e.governs(table))
    }

    /// Number of registered expressions.
    pub fn len(&self) -> usize {
        self.expressions.len()
    }

    /// True when no expression is registered — under the conservative
    /// disclosure model this means *nothing* may leave its source site.
    pub fn is_empty(&self) -> bool {
        self.expressions.is_empty()
    }

    /// A stable content hash of the registered expressions — the
    /// *policy-catalog epoch*. Checkpoint fingerprints mix this in so
    /// that intermediate results retained under one policy set can never
    /// be resumed under a different one: a changed catalog changes every
    /// fingerprint, and every lookup misses.
    pub fn epoch(&self) -> u64 {
        self.pinned_epoch.unwrap_or_else(|| self.content_epoch())
    }

    /// The content hash itself, ignoring any pinned log epoch.
    pub fn content_epoch(&self) -> u64 {
        // FNV-1a over each expression's canonical display form.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for e in &self.expressions {
            for b in e.to_string().bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            h ^= 0xff;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }

    /// Pin the catalog's epoch to a versioned-log chain epoch. Set by
    /// [`CatalogLog::materialize`](crate::CatalogLog::materialize) on
    /// every snapshot it produces; everything keyed by `epoch()` —
    /// checkpoint fingerprints, the implication memo, the server's plan
    /// cache — then follows the log's history instead of raw content.
    pub fn pin_epoch(&mut self, epoch: u64) {
        self.pinned_epoch = Some(epoch);
    }

    /// The canonical byte rendering of the catalog's registered
    /// expressions, one display line per expression. Two catalogs are
    /// the *same* exactly when these bytes match — the replication
    /// property tests compare coordinator and replica snapshots with it.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for e in &self.expressions {
            out.extend_from_slice(e.to_string().as_bytes());
            out.push(b'\n');
        }
        out
    }

    /// Count of basic / aggregate expressions (experiment reporting).
    pub fn kind_counts(&self) -> (usize, usize) {
        let basic = self
            .expressions
            .iter()
            .filter(|e| matches!(e.expr.kind, PolicyKind::Basic))
            .count();
        (basic, self.expressions.len() - basic)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expression::ShipAttrs;
    use geoqp_common::{DataType, Field, LocationPattern};
    use geoqp_expr::AggFunc;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Str),
        ])
        .unwrap()
    }

    #[test]
    fn register_and_filter_by_table() {
        let mut cat = PolicyCatalog::new();
        cat.register(
            PolicyExpression::basic(
                TableRef::qualified("db-1", "t"),
                ShipAttrs::Star,
                LocationPattern::Star,
                None,
            ),
            &schema(),
        )
        .unwrap();
        cat.register(
            PolicyExpression::aggregate(
                TableRef::qualified("db-2", "u"),
                ShipAttrs::list(["a"]),
                [AggFunc::Sum],
                [],
                LocationPattern::Star,
                None,
            ),
            &schema(),
        )
        .unwrap();
        assert_eq!(cat.len(), 2);
        assert_eq!(cat.kind_counts(), (1, 1));
        assert_eq!(cat.for_table(&TableRef::qualified("db-1", "t")).count(), 1);
        // A bare reference matches any database's table of that name.
        assert_eq!(cat.for_table(&TableRef::bare("u")).count(), 1);
        assert_eq!(cat.for_table(&TableRef::bare("nope")).count(), 0);
    }

    #[test]
    fn register_rejects_invalid() {
        let mut cat = PolicyCatalog::new();
        let bad = PolicyExpression::basic(
            TableRef::bare("t"),
            ShipAttrs::list(["ghost"]),
            LocationPattern::Star,
            None,
        );
        assert!(cat.register(bad, &schema()).is_err());
        assert!(cat.is_empty());
    }

    #[test]
    fn epoch_tracks_catalog_content() {
        let mut a = PolicyCatalog::new();
        let mut b = PolicyCatalog::new();
        assert_eq!(a.epoch(), b.epoch(), "empty catalogs share an epoch");
        let expr = || {
            PolicyExpression::basic(
                TableRef::bare("t"),
                ShipAttrs::list(["a"]),
                LocationPattern::Star,
                None,
            )
        };
        a.register(expr(), &schema()).unwrap();
        assert_ne!(a.epoch(), b.epoch(), "registering must change the epoch");
        b.register(expr(), &schema()).unwrap();
        assert_eq!(a.epoch(), b.epoch(), "same content, same epoch");
    }

    #[test]
    fn star_attrs_expand_and_table_attrs_recorded() {
        let mut cat = PolicyCatalog::new();
        cat.register(
            PolicyExpression::basic(
                TableRef::bare("t"),
                ShipAttrs::Star,
                LocationPattern::Star,
                None,
            ),
            &schema(),
        )
        .unwrap();
        let e = &cat.expressions()[0];
        assert_eq!(e.attrs.len(), 2);
        assert_eq!(e.table_attrs.len(), 2);
    }
}
