//! # geoqp-policy
//!
//! Dataflow policies: the declarative `SHIP … FROM … TO …` **policy
//! expressions** of the paper's Section 4, the per-database **policy
//! catalog**, and the **policy evaluation algorithm** `𝒜(q, D, P_D)`
//! (Section 5, Algorithm 1) that computes the set of locations a local
//! query's output may legally be shipped to.
//!
//! The disclosure model is conservative (Section 4): nothing may be shipped
//! anywhere unless some expression allows it, and the evaluator errs toward
//! the empty location set whenever a query shape falls outside the summary
//! language.

pub mod catalog;
pub mod evaluator;
pub mod expression;
pub mod log;
pub mod memo;
pub mod negative;

pub use catalog::{PolicyCatalog, RegisteredExpression};
pub use evaluator::PolicyEvaluator;
pub use expression::{PolicyExpression, PolicyKind, ShipAttrs};
pub use log::{CatalogAction, CatalogEntry, CatalogLog, CatalogReplica, CatalogSnapshot};
pub use memo::{predicate_fingerprint, ImplicationMemo};
pub use negative::{expand_denials, DenyExpression};
