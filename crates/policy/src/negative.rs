//! Negative policy expressions and their closed-world expansion.
//!
//! The paper's disclosure model (Section 4) is conservative: nothing ships
//! unless some expression allows it. It notes that "in some cases negative
//! instances, i.e., specifying what is *not* allowed, may be more
//! convenient. This can be handled by an additional preprocessing step
//! under a closed world assumption." This module implements that step.
//!
//! A [`DenyExpression`] states that certain cells must **not** reach
//! certain locations:
//!
//! ```text
//! deny ship <attrs|*> from <table> to <locations|*> [where <condition>]
//! ```
//!
//! [`expand_denials`] turns a set of denials for one table into ordinary
//! positive [`PolicyExpression`]s under the closed world assumption:
//! per destination, every attribute not named by a denial is granted
//! outright, and an attribute denied only for rows satisfying `φ` is
//! granted for rows satisfying `¬φ` (so a query predicate must *imply the
//! complement* for the grant to apply — exactly the sound direction).

use crate::expression::{PolicyExpression, ShipAttrs};
use geoqp_common::{GeoError, Location, LocationPattern, LocationSet, Result, Schema, TableRef};
use geoqp_expr::ScalarExpr;
use std::collections::{BTreeMap, BTreeSet};

/// A negative ("deny") dataflow statement.
#[derive(Debug, Clone, PartialEq)]
pub struct DenyExpression {
    /// The governed table.
    pub table: TableRef,
    /// Attributes whose shipment is denied (`*` = all).
    pub attrs: ShipAttrs,
    /// Destinations the denial applies to (`*` = everywhere off-site).
    pub to: LocationPattern,
    /// Optional row scope: only rows satisfying this predicate are denied.
    /// `None` denies the attribute for all rows.
    pub predicate: Option<ScalarExpr>,
}

impl DenyExpression {
    /// Construct a denial.
    pub fn new(
        table: TableRef,
        attrs: ShipAttrs,
        to: LocationPattern,
        predicate: Option<ScalarExpr>,
    ) -> DenyExpression {
        DenyExpression {
            table,
            attrs,
            to,
            predicate,
        }
    }

    /// Validate against the table schema, returning the explicit denied
    /// attribute set.
    pub fn validate(&self, schema: &Schema) -> Result<BTreeSet<String>> {
        let attrs = match &self.attrs {
            ShipAttrs::Star => schema
                .fields()
                .iter()
                .map(|f| f.name.clone())
                .collect::<BTreeSet<_>>(),
            ShipAttrs::List(list) => {
                for a in list {
                    if schema.index_of(a).is_none() {
                        return Err(GeoError::Policy(format!(
                            "denied attribute `{a}` not in table `{}`",
                            self.table
                        )));
                    }
                }
                list.clone()
            }
        };
        if let Some(p) = &self.predicate {
            for c in p.referenced_columns() {
                if schema.index_of(&c).is_none() {
                    return Err(GeoError::Policy(format!(
                        "denial predicate column `{c}` not in table `{}`",
                        self.table
                    )));
                }
            }
        }
        Ok(attrs)
    }
}

impl std::fmt::Display for DenyExpression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deny ship ")?;
        match &self.attrs {
            ShipAttrs::Star => write!(f, "*")?,
            ShipAttrs::List(list) => {
                write!(f, "{}", list.iter().cloned().collect::<Vec<_>>().join(", "))?
            }
        }
        write!(f, " from {} to {}", self.table, self.to)?;
        if let Some(p) = &self.predicate {
            write!(f, " where {p}")?;
        }
        Ok(())
    }
}

/// Expand a table's denials into positive policy expressions under the
/// closed world assumption.
///
/// For each destination `l` in `universe`:
///
/// * attributes denied unconditionally for `l` are simply omitted;
/// * attributes denied only for rows satisfying `φ₁, φ₂, …` are granted
///   `where ¬φ₁ ∧ ¬φ₂ ∧ …`;
/// * everything else is granted outright.
///
/// Destinations with identical outcomes are merged into one expression, so
/// the output stays compact.
pub fn expand_denials(
    table: &TableRef,
    schema: &Schema,
    denials: &[DenyExpression],
    universe: &LocationSet,
) -> Result<Vec<PolicyExpression>> {
    for d in denials {
        if !d.table.matches(table) {
            return Err(GeoError::Policy(format!(
                "denial for `{}` passed to expansion of `{}`",
                d.table, table
            )));
        }
        d.validate(schema)?;
    }
    let all_attrs: Vec<String> = schema.fields().iter().map(|f| f.name.clone()).collect();

    // Per destination, compute (fully denied attrs, conditionally denied
    // attr → denial predicates), then merge destinations with identical
    // outcomes via a string signature.
    let mut grants: Vec<PolicyExpression> = Vec::new();
    let mut grouped: BTreeMap<String, (Vec<Location>, Vec<PolicyExpression>)> = BTreeMap::new();

    for l in universe.iter() {
        let mut full: BTreeSet<String> = BTreeSet::new();
        let mut cond: BTreeMap<String, Vec<ScalarExpr>> = BTreeMap::new();
        for d in denials {
            if !d.to.allows(l, universe) {
                continue;
            }
            let denied = d.validate(schema)?;
            match &d.predicate {
                None => full.extend(denied),
                Some(p) => {
                    for a in denied {
                        cond.entry(a).or_default().push(p.clone());
                    }
                }
            }
        }
        // Attributes free to ship to l.
        let free: Vec<String> = all_attrs
            .iter()
            .filter(|a| !full.contains(*a) && !cond.contains_key(*a))
            .cloned()
            .collect();
        // Conditionally denied attrs, grouped by their guard (¬φ₁ ∧ ¬φ₂…).
        let mut by_guard: BTreeMap<String, (ScalarExpr, Vec<String>)> = BTreeMap::new();
        for (a, preds) in &cond {
            if full.contains(a) {
                continue;
            }
            let guard = preds
                .iter()
                .cloned()
                .map(ScalarExpr::not)
                .reduce(ScalarExpr::and)
                .expect("non-empty");
            by_guard
                .entry(guard.to_string())
                .or_insert_with(|| (guard, Vec::new()))
                .1
                .push(a.clone());
        }

        // Signature for grouping identical destinations.
        let mut sig = format!("free:{}", free.join(","));
        let mut per_loc: Vec<PolicyExpression> = Vec::new();
        if !free.is_empty() {
            per_loc.push(PolicyExpression::basic(
                table.clone(),
                ShipAttrs::list(free.iter().map(String::as_str)),
                LocationPattern::Set(LocationSet::singleton(l.clone())),
                None,
            ));
        }
        for (key, (guard, attrs)) in by_guard {
            sig.push_str(&format!(";guard[{key}]:{}", attrs.join(",")));
            per_loc.push(PolicyExpression::basic(
                table.clone(),
                ShipAttrs::list(attrs.iter().map(String::as_str)),
                LocationPattern::Set(LocationSet::singleton(l.clone())),
                Some(guard),
            ));
        }
        let entry = grouped.entry(sig).or_insert_with(|| (Vec::new(), per_loc));
        entry.0.push(l.clone());
    }

    // Merge destination groups.
    for (_, (locs, exprs)) in grouped {
        let to = LocationPattern::Set(locs.into_iter().collect());
        for mut e in exprs {
            e.to = to.clone();
            grants.push(e);
        }
    }
    Ok(grants)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::PolicyCatalog;
    use geoqp_common::{DataType, Field};
    use geoqp_expr::ScalarExpr;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("name", DataType::Str),
            Field::new("salary", DataType::Float64),
            Field::new("dept", DataType::Str),
        ])
        .unwrap()
    }

    fn universe() -> LocationSet {
        LocationSet::from_iter(["A", "B", "C"])
    }

    fn register_all(exprs: Vec<PolicyExpression>) -> PolicyCatalog {
        let s = schema();
        let mut cat = PolicyCatalog::new();
        for e in exprs {
            cat.register(e, &s).unwrap();
        }
        cat
    }

    /// Helper: evaluate a plain projection of `attrs` with optional pred.
    fn legal_for(
        cat: &PolicyCatalog,
        uni: &LocationSet,
        attrs: &[&str],
        pred: Option<ScalarExpr>,
    ) -> LocationSet {
        use geoqp_plan::descriptor::describe_local;
        use geoqp_plan::PlanBuilder;
        let mut b = PlanBuilder::scan(
            TableRef::bare("emp"),
            geoqp_common::Location::new("HOME"),
            schema(),
        );
        if let Some(p) = pred {
            b = b.filter(p).unwrap();
        }
        let plan = b.project_columns(attrs).unwrap().build();
        let q = describe_local(&plan).unwrap();
        crate::evaluator::PolicyEvaluator::new(cat, uni).evaluate(&q)
    }

    #[test]
    fn unconditional_denial_blocks_attr_everywhere_it_names() {
        // Salaries may not go to B or C; everything else is free.
        let denials = vec![DenyExpression::new(
            TableRef::bare("emp"),
            ShipAttrs::list(["salary"]),
            LocationPattern::Set(LocationSet::from_iter(["B", "C"])),
            None,
        )];
        let grants =
            expand_denials(&TableRef::bare("emp"), &schema(), &denials, &universe()).unwrap();
        let cat = register_all(grants);
        let uni = universe();

        assert_eq!(
            legal_for(&cat, &uni, &["name"], None),
            uni,
            "undenied attrs are free everywhere"
        );
        assert_eq!(
            legal_for(&cat, &uni, &["salary"], None),
            LocationSet::from_iter(["A"]),
            "salary only reaches A"
        );
        assert_eq!(
            legal_for(&cat, &uni, &["name", "salary"], None),
            LocationSet::from_iter(["A"])
        );
    }

    #[test]
    fn conditional_denial_requires_complement_implication() {
        // Engineering rows may not leave at all (deny … to * where dept).
        let denials = vec![DenyExpression::new(
            TableRef::bare("emp"),
            ShipAttrs::Star,
            LocationPattern::Star,
            Some(ScalarExpr::col("dept").eq(ScalarExpr::lit("engineering"))),
        )];
        let grants =
            expand_denials(&TableRef::bare("emp"), &schema(), &denials, &universe()).unwrap();
        let cat = register_all(grants);
        let uni = universe();

        // Without a predicate nothing can be proven out of engineering.
        assert!(legal_for(&cat, &uni, &["name"], None).is_empty());
        // Explicitly excluding engineering unlocks everything.
        let p = ScalarExpr::col("dept").not_eq(ScalarExpr::lit("engineering"));
        assert_eq!(legal_for(&cat, &uni, &["name"], Some(p.clone())), uni);
        // A different department value implies the complement too.
        let p2 = ScalarExpr::col("dept").eq(ScalarExpr::lit("sales"));
        assert_eq!(legal_for(&cat, &uni, &["name", "id"], Some(p2)), uni);
        // Selecting engineering rows is blocked.
        let p3 = ScalarExpr::col("dept").eq(ScalarExpr::lit("engineering"));
        assert!(legal_for(&cat, &uni, &["name"], Some(p3)).is_empty());
        let _ = p;
    }

    #[test]
    fn no_denials_means_everything_ships_everywhere() {
        let grants = expand_denials(&TableRef::bare("emp"), &schema(), &[], &universe()).unwrap();
        // One merged expression covering all attrs and all destinations.
        assert_eq!(grants.len(), 1);
        let cat = register_all(grants);
        let uni = universe();
        assert_eq!(
            legal_for(&cat, &uni, &["id", "name", "salary", "dept"], None),
            uni
        );
    }

    #[test]
    fn destinations_with_identical_outcomes_merge() {
        let denials = vec![DenyExpression::new(
            TableRef::bare("emp"),
            ShipAttrs::list(["salary"]),
            LocationPattern::Set(LocationSet::from_iter(["B", "C"])),
            None,
        )];
        let grants =
            expand_denials(&TableRef::bare("emp"), &schema(), &denials, &universe()).unwrap();
        // Two groups: {A} (everything) and {B, C} (everything but salary).
        assert_eq!(grants.len(), 2);
        assert!(grants.iter().any(|g| g.to.to_string() == "B, C"));
    }

    #[test]
    fn overlapping_conditional_denials_conjoin_complements() {
        let denials = vec![
            DenyExpression::new(
                TableRef::bare("emp"),
                ShipAttrs::list(["salary"]),
                LocationPattern::Star,
                Some(ScalarExpr::col("salary").gt(ScalarExpr::lit(100000.0))),
            ),
            DenyExpression::new(
                TableRef::bare("emp"),
                ShipAttrs::list(["salary"]),
                LocationPattern::Star,
                Some(ScalarExpr::col("dept").eq(ScalarExpr::lit("executive"))),
            ),
        ];
        let grants =
            expand_denials(&TableRef::bare("emp"), &schema(), &denials, &universe()).unwrap();
        let cat = register_all(grants);
        let uni = universe();
        // Must exclude BOTH denied regions.
        let ok = ScalarExpr::col("salary")
            .lt_eq(ScalarExpr::lit(100000.0))
            .and(ScalarExpr::col("dept").eq(ScalarExpr::lit("sales")));
        assert_eq!(legal_for(&cat, &uni, &["salary"], Some(ok)), uni);
        let only_one = ScalarExpr::col("salary").lt_eq(ScalarExpr::lit(100000.0));
        assert!(legal_for(&cat, &uni, &["salary"], Some(only_one)).is_empty());
    }

    #[test]
    fn validation_rejects_unknown_attrs() {
        let d = DenyExpression::new(
            TableRef::bare("emp"),
            ShipAttrs::list(["ghost"]),
            LocationPattern::Star,
            None,
        );
        assert!(d.validate(&schema()).is_err());
        assert!(expand_denials(&TableRef::bare("emp"), &schema(), &[d], &universe()).is_err());
        let wrong_table = DenyExpression::new(
            TableRef::bare("other"),
            ShipAttrs::Star,
            LocationPattern::Star,
            None,
        );
        assert!(expand_denials(
            &TableRef::bare("emp"),
            &schema(),
            &[wrong_table],
            &universe()
        )
        .is_err());
    }

    #[test]
    fn display_reads_naturally() {
        let d = DenyExpression::new(
            TableRef::bare("emp"),
            ShipAttrs::list(["salary"]),
            LocationPattern::Star,
            Some(ScalarExpr::col("dept").eq(ScalarExpr::lit("executive"))),
        );
        assert_eq!(
            d.to_string(),
            "deny ship salary from emp to * where (dept = 'executive')"
        );
    }
}
