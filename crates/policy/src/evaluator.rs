//! The policy evaluation algorithm `𝒜(q, D, P_D)` — Algorithm 1 of the
//! paper's Section 5.
//!
//! Given the local-query descriptor of a single-database subquery and the
//! policy catalog, the evaluator associates with every *accessed* attribute
//! `a` the set `L_a` of locations some expression allows it to reach, and
//! returns the intersection `⋂_{a} L_a`.
//!
//! Two clarifications the paper's examples force (and which only make the
//! evaluator more conservative, never less):
//!
//! * **Accessed attributes.** `A_q` covers every attribute the query
//!   *accesses* — output expressions, selection predicates, and grouping
//!   keys. Section 3.1's example demands this:
//!   `𝒜(Π_name(σ_acctbal=100(C)), D_N, P_N) = {N}` even though `acctbal`
//!   never appears in the output — the shipped rows still reveal that every
//!   customer's balance equals 100. A predicate-only attribute is legal
//!   under a basic expression listing it, or under an aggregate
//!   expression's `group by` list.
//! * **Multi-table local queries.** When one site hosts several tables
//!   (Table 2's L1 holds Customer *and* Orders), a local subquery may join
//!   them. Each expression governs one table, so the grouping-subset check
//!   of line 7 applies to the query's grouping attributes restricted to the
//!   governed table (`G_q ∩ attrs(t_e) ⊆ G_e`).
//!
//! The evaluator also maintains the `η` counter the paper's Figure 7 uses:
//! the number of times an expression passes both the attribute-overlap and
//! implication tests (i.e. Algorithm 1 reaches line 4).

use crate::catalog::PolicyCatalog;
use crate::expression::PolicyKind;
use crate::memo::{predicate_fingerprint, ImplicationMemo};
use geoqp_common::{Location, LocationSet};
use geoqp_expr::implication::implies_opt;
use geoqp_plan::descriptor::{LocalQuery, OutputShape};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};

/// Evaluates dataflow policies against local queries.
#[derive(Debug)]
pub struct PolicyEvaluator<'a> {
    catalog: &'a PolicyCatalog,
    universe: &'a LocationSet,
    /// Shared implication-verdict cache; `None` proves every test fresh.
    memo: Option<&'a ImplicationMemo>,
    eta: AtomicU64,
    invocations: AtomicU64,
}

impl<'a> PolicyEvaluator<'a> {
    /// Create an evaluator over a catalog, with `universe` the deployment's
    /// full location set (resolves `to *`).
    pub fn new(catalog: &'a PolicyCatalog, universe: &'a LocationSet) -> PolicyEvaluator<'a> {
        PolicyEvaluator {
            catalog,
            universe,
            memo: None,
            eta: AtomicU64::new(0),
            invocations: AtomicU64::new(0),
        }
    }

    /// [`PolicyEvaluator::new`] with a shared [`ImplicationMemo`]: line-3
    /// implication verdicts are served from (and recorded into) the memo,
    /// keyed by predicate fingerprint × expression id under the catalog's
    /// current epoch. Evaluators across AR1–AR4, plan enumeration, and
    /// failover re-plans may share one memo; verdicts transfer because
    /// the prover is pure.
    pub fn with_memo(
        catalog: &'a PolicyCatalog,
        universe: &'a LocationSet,
        memo: &'a ImplicationMemo,
    ) -> PolicyEvaluator<'a> {
        PolicyEvaluator {
            catalog,
            universe,
            memo: Some(memo),
            eta: AtomicU64::new(0),
            invocations: AtomicU64::new(0),
        }
    }

    /// `𝒜(q, D, P_D)`: the locations the query's output may be shipped to,
    /// *excluding* the always-legal source location (which annotation rule
    /// AR3 contributes in the optimizer).
    pub fn evaluate(&self, q: &LocalQuery) -> LocationSet {
        self.invocations.fetch_add(1, Ordering::Relaxed);

        // Accessed attributes: output ∪ predicate ∪ grouping.
        let mut accessed: BTreeSet<String> = q.output.output_attrs();
        if let Some(p) = &q.predicate {
            accessed.extend(p.referenced_columns());
        }
        let (group_attrs, agg_attrs): (BTreeSet<String>, BTreeMap<String, geoqp_expr::AggFunc>) =
            match &q.output {
                OutputShape::Plain { .. } => (BTreeSet::new(), BTreeMap::new()),
                OutputShape::Aggregated {
                    group_attrs,
                    agg_attrs,
                    ..
                } => (group_attrs.clone(), agg_attrs.clone()),
            };
        accessed.extend(group_attrs.iter().cloned());

        if accessed.is_empty() {
            // A query accessing no attributes discloses nothing; still, the
            // conservative model grants no remote destinations.
            return LocationSet::new();
        }

        // Line 1: L_a ← ∅ for every accessed attribute.
        let mut l_a: BTreeMap<&str, LocationSet> = accessed
            .iter()
            .map(|a| (a.as_str(), LocationSet::new()))
            .collect();

        // Memo key parts, computed once per evaluation.
        let memo_key = self.memo.map(|m| {
            (
                m,
                self.catalog.epoch(),
                predicate_fingerprint(q.predicate.as_ref()),
            )
        });

        for e in self.catalog.expressions() {
            // The expression must govern the query's tables — all of its
            // tables for multi-table expressions (footnote 4)...
            if !e.applies_to(q.tables.iter()) {
                continue;
            }
            // ... and share *ship* attributes with the query (line 2:
            // A_q ∩ A_e ≠ ∅; grouping attributes only become relevant in
            // lines 8–10 once this gate passes).
            if !accessed.iter().any(|a| e.attrs.contains(a)) {
                continue;
            }
            // Line 3: the implication test, memoized when a memo is
            // attached (the prover is pure, so cached verdicts are exact).
            let implied = match &memo_key {
                Some((m, epoch, fp)) => m.check(*epoch, *fp, e.id, || {
                    implies_opt(q.predicate.as_ref(), e.expr.predicate.as_ref())
                }),
                None => implies_opt(q.predicate.as_ref(), e.expr.predicate.as_ref()),
            };
            if !implied {
                continue;
            }
            // Reached line 4: count toward η.
            self.eta.fetch_add(1, Ordering::Relaxed);

            let grant = e.expr.to.resolve(self.universe);
            match &e.expr.kind {
                // Lines 4–5 (and case 2: an aggregate query's inputs are
                // "less aggregated" than a basic expression's cells, so the
                // same rule applies).
                PolicyKind::Basic => {
                    for a in &accessed {
                        if e.attrs.contains(a) {
                            l_a.get_mut(a.as_str()).unwrap().union_with(&grant);
                        }
                    }
                }
                // Lines 6–10.
                PolicyKind::Aggregate {
                    functions,
                    group_by,
                } => {
                    if !q.output.is_aggregated() {
                        continue; // line 6: only aggregation queries
                    }
                    // Line 7: G_q (restricted to this table) ⊆ G_e;
                    // the empty subset is allowed.
                    let gq_local: BTreeSet<&String> = group_attrs
                        .iter()
                        .filter(|g| e.table_attrs.contains(*g))
                        .collect();
                    if !gq_local.iter().all(|g| group_by.contains(*g)) {
                        continue;
                    }
                    // Lines 8–10.
                    for a in &accessed {
                        let in_ge = group_by.contains(a);
                        let aggregated_ok = e.attrs.contains(a)
                            && agg_attrs.get(a).is_some_and(|f| functions.contains(f));
                        if in_ge || aggregated_ok {
                            l_a.get_mut(a.as_str()).unwrap().union_with(&grant);
                        }
                    }
                }
            }
        }

        // Line 11: ⋂_{a ∈ A_q} L_a.
        let mut iter = l_a.values();
        let mut result = iter.next().cloned().unwrap_or_default();
        for s in iter {
            result.intersect_with(s);
            if result.is_empty() {
                break;
            }
        }
        result
    }

    /// Like [`PolicyEvaluator::evaluate`], additionally including the
    /// query's own source location, which is always legal (the form the
    /// paper's Section 3.1 examples use).
    pub fn evaluate_with_home(&self, q: &LocalQuery) -> LocationSet {
        let mut s = self.evaluate(q);
        s.insert(q.location.clone());
        s
    }

    /// The deployment's location universe.
    pub fn universe(&self) -> &LocationSet {
        self.universe
    }

    /// The `η` counter: expressions that passed overlap + implication.
    pub fn eta(&self) -> u64 {
        self.eta.load(Ordering::Relaxed)
    }

    /// Total `evaluate` calls.
    pub fn invocations(&self) -> u64 {
        self.invocations.load(Ordering::Relaxed)
    }

    /// Reset both counters.
    pub fn reset_counters(&self) {
        self.eta.store(0, Ordering::Relaxed);
        self.invocations.store(0, Ordering::Relaxed);
    }
}

/// A home-location result for a `LocalQuery` (used by conservative
/// fallbacks when description fails: data may stay where it is).
pub fn home_only(location: &Location) -> LocationSet {
    LocationSet::singleton(location.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expression::{PolicyExpression, ShipAttrs};
    use geoqp_common::{DataType, Field, LocationPattern, Schema, TableRef};
    use geoqp_expr::AggCall;
    use geoqp_expr::{AggFunc, ScalarExpr};
    use geoqp_plan::builder::PlanBuilder;
    use geoqp_plan::descriptor::describe_local;

    fn t_schema() -> Schema {
        Schema::new(
            ["a", "b", "c", "d", "e", "f", "g"]
                .iter()
                .map(|n| {
                    Field::new(
                        *n,
                        if *n == "c" || *n == "e" {
                            DataType::Str
                        } else {
                            DataType::Float64
                        },
                    )
                })
                .map(|mut f| {
                    if f.name == "a" || f.name == "b" || f.name == "d" {
                        f.data_type = DataType::Int64;
                    }
                    f
                })
                .collect(),
        )
        .unwrap()
    }

    fn locs(names: &[&str]) -> LocationPattern {
        LocationPattern::Set(LocationSet::from_iter(names.iter().copied()))
    }

    /// The catalog of the paper's Table 1.
    fn table1_catalog() -> PolicyCatalog {
        let t = TableRef::bare("t");
        let schema = t_schema();
        let mut cat = PolicyCatalog::new();
        // e1 ≡ ship A, B, C from T to l2, l3
        cat.register(
            PolicyExpression::basic(
                t.clone(),
                ShipAttrs::list(["a", "b", "c"]),
                locs(&["l2", "l3"]),
                None,
            ),
            &schema,
        )
        .unwrap();
        // e2 ≡ ship A, B from T to l1, l2, l3, l4
        cat.register(
            PolicyExpression::basic(
                t.clone(),
                ShipAttrs::list(["a", "b"]),
                locs(&["l1", "l2", "l3", "l4"]),
                None,
            ),
            &schema,
        )
        .unwrap();
        // e3 ≡ ship A, D from T to l1, l3 where B > 10
        cat.register(
            PolicyExpression::basic(
                t.clone(),
                ShipAttrs::list(["a", "d"]),
                locs(&["l1", "l3"]),
                Some(ScalarExpr::col("b").gt(ScalarExpr::lit(10i64))),
            ),
            &schema,
        )
        .unwrap();
        // e4 ≡ ship F, G as aggregates sum, avg from T to l1, l2 group by E, C
        cat.register(
            PolicyExpression::aggregate(
                t,
                ShipAttrs::list(["f", "g"]),
                [AggFunc::Sum, AggFunc::Avg],
                ["e".to_string(), "c".to_string()],
                locs(&["l1", "l2"]),
                None,
            ),
            &schema,
        )
        .unwrap();
        cat
    }

    fn universe() -> LocationSet {
        LocationSet::from_iter(["l1", "l2", "l3", "l4"])
    }

    fn t_scan() -> PlanBuilder {
        PlanBuilder::scan(
            TableRef::bare("t"),
            geoqp_common::Location::new("l0"),
            t_schema(),
        )
    }

    #[test]
    fn table1_q1_select_project() {
        // q1 ≡ Π_{A,C,D}(σ_{B>15}(T))  →  { l3 }
        let plan = t_scan()
            .filter(ScalarExpr::col("b").gt(ScalarExpr::lit(15i64)))
            .unwrap()
            .project_columns(&["a", "c", "d"])
            .unwrap()
            .build();
        let q = describe_local(&plan).unwrap();
        let cat = table1_catalog();
        let uni = universe();
        let ev = PolicyEvaluator::new(&cat, &uni);
        let result = ev.evaluate(&q);
        assert_eq!(result, LocationSet::from_iter(["l3"]));
        // e1, e2, e3 pass implication+overlap; e4 shares no attrs → η = 3.
        assert_eq!(ev.eta(), 3);
        assert_eq!(ev.invocations(), 1);
    }

    #[test]
    fn table1_q2_aggregate() {
        // q2 ≡ Γ_{C; sum(F*(1−G))}(T)  →  { l1, l2 }
        let plan = t_scan()
            .aggregate(
                &["c"],
                vec![AggCall::new(
                    AggFunc::Sum,
                    ScalarExpr::col("f").mul(ScalarExpr::lit(1i64).sub(ScalarExpr::col("g"))),
                    "s",
                )],
            )
            .unwrap()
            .build();
        let q = describe_local(&plan).unwrap();
        let cat = table1_catalog();
        let uni = universe();
        let ev = PolicyEvaluator::new(&cat, &uni);
        let result = ev.evaluate(&q);
        assert_eq!(result, LocationSet::from_iter(["l1", "l2"]));
    }

    #[test]
    fn aggregate_query_grouping_not_subset_fails() {
        // Grouping by D ∉ G_e(e4): e4 contributes nothing to f/g.
        let plan = t_scan()
            .aggregate(
                &["d"],
                vec![AggCall::new(AggFunc::Sum, ScalarExpr::col("f"), "s")],
            )
            .unwrap()
            .build();
        let q = describe_local(&plan).unwrap();
        let cat = table1_catalog();
        let uni = universe();
        let ev = PolicyEvaluator::new(&cat, &uni);
        assert!(ev.evaluate(&q).is_empty());
    }

    #[test]
    fn aggregate_query_disallowed_function_fails() {
        // MIN ∉ F_e(e4).
        let plan = t_scan()
            .aggregate(
                &["c"],
                vec![AggCall::new(AggFunc::Min, ScalarExpr::col("f"), "m")],
            )
            .unwrap()
            .build();
        let q = describe_local(&plan).unwrap();
        let cat = table1_catalog();
        let uni = universe();
        let ev = PolicyEvaluator::new(&cat, &uni);
        assert!(ev.evaluate(&q).is_empty());
    }

    #[test]
    fn raw_projection_of_aggregate_only_attr_fails() {
        // Example 2: Π_f(T) cannot be shipped at all (f only under e4,
        // which requires aggregation).
        let plan = t_scan().project_columns(&["f"]).unwrap().build();
        let q = describe_local(&plan).unwrap();
        let cat = table1_catalog();
        let uni = universe();
        let ev = PolicyEvaluator::new(&cat, &uni);
        assert!(ev.evaluate(&q).is_empty());
    }

    #[test]
    fn global_aggregate_empty_group_subset_allowed() {
        // Γ_{sum(f)}(T): G_q = ∅ ⊆ G_e — allowed, footnote 6.
        let plan = t_scan()
            .aggregate(
                &[],
                vec![AggCall::new(AggFunc::Sum, ScalarExpr::col("f"), "s")],
            )
            .unwrap()
            .build();
        let q = describe_local(&plan).unwrap();
        let cat = table1_catalog();
        let uni = universe();
        let ev = PolicyEvaluator::new(&cat, &uni);
        assert_eq!(ev.evaluate(&q), LocationSet::from_iter(["l1", "l2"]));
    }

    #[test]
    fn predicate_attribute_must_be_covered() {
        // Section 3.1: Π_a(σ_{d=100}(T)) — d accessed via predicate; d is
        // covered by e3 only, whose own predicate (b > 10) is not implied.
        let plan = t_scan()
            .filter(ScalarExpr::col("d").eq(ScalarExpr::lit(100i64)))
            .unwrap()
            .project_columns(&["a"])
            .unwrap()
            .build();
        let q = describe_local(&plan).unwrap();
        let cat = table1_catalog();
        let uni = universe();
        let ev = PolicyEvaluator::new(&cat, &uni);
        assert!(ev.evaluate(&q).is_empty());
        assert_eq!(ev.evaluate_with_home(&q), LocationSet::from_iter(["l0"]));
    }

    #[test]
    fn predicate_strengthening_unlocks_expression() {
        // Π_{a,d}(σ_{b>15}(T)): b>15 ⟹ b>10, so e3 grants {l1,l3} to d.
        let plan = t_scan()
            .filter(ScalarExpr::col("b").gt(ScalarExpr::lit(15i64)))
            .unwrap()
            .project_columns(&["a", "d"])
            .unwrap()
            .build();
        let q = describe_local(&plan).unwrap();
        let cat = table1_catalog();
        let uni = universe();
        let ev = PolicyEvaluator::new(&cat, &uni);
        // L_a ⊇ {l1..l4}, L_d = {l1,l3}, L_b(accessed) = {l1,l2,l3,l4}.
        assert_eq!(ev.evaluate(&q), LocationSet::from_iter(["l1", "l3"]));

        // Weaker predicate b > 5 does not imply b > 10 → d uncovered.
        let plan = t_scan()
            .filter(ScalarExpr::col("b").gt(ScalarExpr::lit(5i64)))
            .unwrap()
            .project_columns(&["a", "d"])
            .unwrap()
            .build();
        let q = describe_local(&plan).unwrap();
        assert!(ev.evaluate(&q).is_empty());
    }

    #[test]
    fn star_to_resolves_against_universe() {
        let schema = Schema::new(vec![Field::new("x", DataType::Int64)]).unwrap();
        let mut cat = PolicyCatalog::new();
        cat.register(
            PolicyExpression::basic(
                TableRef::bare("u"),
                ShipAttrs::Star,
                LocationPattern::Star,
                None,
            ),
            &schema,
        )
        .unwrap();
        let uni = LocationSet::from_iter(["p", "q", "r"]);
        let plan = PlanBuilder::scan(
            TableRef::bare("u"),
            geoqp_common::Location::new("p"),
            schema,
        )
        .build();
        let q = describe_local(&plan).unwrap();
        let ev = PolicyEvaluator::new(&cat, &uni);
        assert_eq!(ev.evaluate(&q), uni);
    }

    #[test]
    fn empty_catalog_grants_nothing() {
        let cat = PolicyCatalog::new();
        let uni = universe();
        let ev = PolicyEvaluator::new(&cat, &uni);
        let plan = t_scan().project_columns(&["a"]).unwrap().build();
        let q = describe_local(&plan).unwrap();
        assert!(ev.evaluate(&q).is_empty());
        assert_eq!(ev.eta(), 0);
    }

    #[test]
    fn memoized_evaluation_matches_fresh_and_records_hits() {
        let cat = table1_catalog();
        let uni = universe();
        let memo = crate::memo::ImplicationMemo::new();
        let plan = t_scan()
            .filter(ScalarExpr::col("b").gt(ScalarExpr::lit(15i64)))
            .unwrap()
            .project_columns(&["a", "c", "d"])
            .unwrap()
            .build();
        let q = describe_local(&plan).unwrap();

        let fresh = PolicyEvaluator::new(&cat, &uni).evaluate(&q);
        let ev = PolicyEvaluator::with_memo(&cat, &uni, &memo);
        let first = ev.evaluate(&q);
        assert_eq!(first, fresh);
        assert_eq!(memo.hits(), 0, "first pass proves everything");
        let proofs = memo.misses();
        assert!(proofs > 0);

        // Second evaluation of the same query: all verdicts served.
        let second = ev.evaluate(&q);
        assert_eq!(second, fresh);
        assert_eq!(memo.misses(), proofs, "no new proofs on a repeat");
        assert_eq!(memo.hits(), proofs);
        // η counts memo-served passes identically.
        assert_eq!(ev.eta(), 6);
    }

    #[test]
    fn grouping_attr_of_aggregate_expression_is_shippable() {
        // Γ_{c; sum(f)}(T): c ∈ G_e(e4) → allowed via e4 (and e1).
        let plan = t_scan()
            .aggregate(
                &["c"],
                vec![AggCall::new(AggFunc::Sum, ScalarExpr::col("f"), "s")],
            )
            .unwrap()
            .build();
        let q = describe_local(&plan).unwrap();
        let cat = table1_catalog();
        let uni = universe();
        let ev = PolicyEvaluator::new(&cat, &uni);
        assert_eq!(ev.evaluate(&q), LocationSet::from_iter(["l1", "l2"]));
    }
}

#[cfg(test)]
mod multi_table_tests {
    use super::*;
    use crate::catalog::PolicyCatalog;
    use crate::expression::{PolicyExpression, ShipAttrs};
    use geoqp_common::{DataType, Field, Location, LocationPattern, Schema, TableRef};
    use geoqp_expr::ScalarExpr;
    use geoqp_plan::builder::PlanBuilder;
    use geoqp_plan::descriptor::describe_local;

    fn cust_schema() -> Schema {
        Schema::new(vec![
            Field::new("c_k", DataType::Int64),
            Field::new("c_name", DataType::Str),
        ])
        .unwrap()
    }
    fn ord_schema() -> Schema {
        Schema::new(vec![
            Field::new("o_k", DataType::Int64),
            Field::new("o_price", DataType::Float64),
        ])
        .unwrap()
    }

    /// A multi-table expression (footnote 4): the *joined* customer–order
    /// rows may ship, provided the query joins on the stated predicate.
    fn catalog() -> PolicyCatalog {
        let joined = cust_schema().join(&ord_schema()).unwrap();
        let mut cat = PolicyCatalog::new();
        let e = PolicyExpression::basic(
            TableRef::bare("cust"),
            ShipAttrs::list(["c_name", "o_price", "c_k", "o_k"]),
            LocationPattern::Set(LocationSet::from_iter(["E"])),
            Some(ScalarExpr::col("c_k").eq(ScalarExpr::col("o_k"))),
        )
        .with_joined_tables([TableRef::bare("ord")]);
        cat.register(e, &joined).unwrap();
        cat
    }

    fn joined_query(extra_pred: Option<ScalarExpr>) -> geoqp_plan::descriptor::LocalQuery {
        let c = PlanBuilder::scan(TableRef::bare("cust"), Location::new("N"), cust_schema());
        let o = PlanBuilder::scan(TableRef::bare("ord"), Location::new("N"), ord_schema());
        let mut b = c.join(o, vec![("c_k", "o_k")]).unwrap();
        if let Some(p) = extra_pred {
            b = b.filter(p).unwrap();
        }
        let plan = b.project_columns(&["c_name", "o_price"]).unwrap().build();
        describe_local(&plan).unwrap()
    }

    #[test]
    fn joined_query_matches_multi_table_expression() {
        let cat = catalog();
        let uni = LocationSet::from_iter(["N", "E"]);
        let ev = PolicyEvaluator::new(&cat, &uni);
        // The join predicate in P_q implies the expression's predicate
        // (canonically oriented equality atoms match syntactically).
        assert_eq!(
            ev.evaluate(&joined_query(None)),
            LocationSet::from_iter(["E"])
        );
    }

    #[test]
    fn single_table_query_cannot_use_multi_table_expression() {
        let cat = catalog();
        let uni = LocationSet::from_iter(["N", "E"]);
        let ev = PolicyEvaluator::new(&cat, &uni);
        // A scan of customer alone is NOT governed by the joined grant.
        let plan = PlanBuilder::scan(TableRef::bare("cust"), Location::new("N"), cust_schema())
            .project_columns(&["c_name"])
            .unwrap()
            .build();
        let q = describe_local(&plan).unwrap();
        assert!(ev.evaluate(&q).is_empty());
    }

    #[test]
    fn stronger_join_predicates_still_apply() {
        let cat = catalog();
        let uni = LocationSet::from_iter(["N", "E"]);
        let ev = PolicyEvaluator::new(&cat, &uni);
        let q = joined_query(Some(ScalarExpr::col("o_price").gt(ScalarExpr::lit(10.0))));
        assert_eq!(ev.evaluate(&q), LocationSet::from_iter(["E"]));
    }
}
