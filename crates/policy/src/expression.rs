//! The policy expression model.

use geoqp_common::{GeoError, LocationPattern, Result, Schema, TableRef};
use geoqp_expr::{AggFunc, ScalarExpr};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// The `ship` attribute list: `*` or an explicit list.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShipAttrs {
    /// `ship *` — every column of the table.
    Star,
    /// `ship a, b, c`.
    List(BTreeSet<String>),
}

impl ShipAttrs {
    /// Build from attribute names.
    pub fn list<I, S>(attrs: I) -> ShipAttrs
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        ShipAttrs::List(
            attrs
                .into_iter()
                .map(|s| s.as_ref().to_ascii_lowercase())
                .collect(),
        )
    }
}

/// Whether the expression is basic (Select–Project, Section 4.1) or
/// aggregate (Select–Project–GroupBy, Section 4.2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyKind {
    /// A basic expression: the listed cells may be shipped as-is.
    Basic,
    /// An aggregate expression: the listed attributes may only be shipped
    /// aggregated by one of `functions`, grouped by any subset of
    /// `group_by` (including the empty subset).
    Aggregate {
        /// `F_e` — the allowed aggregation functions.
        functions: BTreeSet<AggFunc>,
        /// `G_e` — the allowed grouping attributes.
        group_by: BTreeSet<String>,
    },
}

/// A single dataflow policy expression:
///
/// ```text
/// ship <attrs> [as aggregates <funcs>] from <table> to <locations>
///      [where <condition>] [group by <attrs>]
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyExpression {
    /// The governed table (qualified as `db.table` or bare).
    pub table: TableRef,
    /// Additional governed tables for multi-table expressions (paper
    /// footnote 4: "one can specify a policy expression over more than one
    /// base table. In this case, the condition list in the where clause of
    /// the expression must contain the join predicate"). Empty for the
    /// common single-table case.
    #[serde(default)]
    pub joined_tables: Vec<TableRef>,
    /// `A_e` — the ship attribute list.
    pub attrs: ShipAttrs,
    /// `L_e` — the destinations the cells may be shipped to.
    pub to: LocationPattern,
    /// `P_e` — the optional row condition.
    pub predicate: Option<ScalarExpr>,
    /// Basic or aggregate.
    pub kind: PolicyKind,
}

impl PolicyExpression {
    /// A basic expression.
    pub fn basic(
        table: TableRef,
        attrs: ShipAttrs,
        to: LocationPattern,
        predicate: Option<ScalarExpr>,
    ) -> PolicyExpression {
        PolicyExpression {
            table,
            joined_tables: Vec::new(),
            attrs,
            to,
            predicate,
            kind: PolicyKind::Basic,
        }
    }

    /// Extend the expression to govern additional joined tables
    /// (footnote 4). The `where` clause is expected to carry the join
    /// predicate; the registration schema must cover all tables' columns.
    pub fn with_joined_tables(
        mut self,
        tables: impl IntoIterator<Item = TableRef>,
    ) -> PolicyExpression {
        self.joined_tables = tables.into_iter().collect();
        self
    }

    /// All governed tables (primary first).
    pub fn tables(&self) -> impl Iterator<Item = &TableRef> {
        std::iter::once(&self.table).chain(self.joined_tables.iter())
    }

    /// An aggregate expression.
    pub fn aggregate(
        table: TableRef,
        attrs: ShipAttrs,
        functions: impl IntoIterator<Item = AggFunc>,
        group_by: impl IntoIterator<Item = String>,
        to: LocationPattern,
        predicate: Option<ScalarExpr>,
    ) -> PolicyExpression {
        PolicyExpression {
            table,
            joined_tables: Vec::new(),
            attrs,
            to,
            predicate,
            kind: PolicyKind::Aggregate {
                functions: functions.into_iter().collect(),
                group_by: group_by
                    .into_iter()
                    .map(|s| s.to_ascii_lowercase())
                    .collect(),
            },
        }
    }

    /// Validate against the governed table's schema and expand `ship *`
    /// into the full attribute set. Returns the explicit `A_e`.
    pub fn validate(&self, schema: &Schema) -> Result<BTreeSet<String>> {
        let attrs = match &self.attrs {
            ShipAttrs::Star => schema
                .fields()
                .iter()
                .map(|f| f.name.clone())
                .collect::<BTreeSet<_>>(),
            ShipAttrs::List(list) => {
                for a in list {
                    if schema.index_of(a).is_none() {
                        return Err(GeoError::Policy(format!(
                            "ship attribute `{a}` not in table `{}`",
                            self.table
                        )));
                    }
                }
                list.clone()
            }
        };
        if let Some(p) = &self.predicate {
            for c in p.referenced_columns() {
                if schema.index_of(&c).is_none() {
                    return Err(GeoError::Policy(format!(
                        "predicate column `{c}` not in table `{}`",
                        self.table
                    )));
                }
            }
        }
        if let PolicyKind::Aggregate {
            functions,
            group_by,
        } = &self.kind
        {
            if functions.is_empty() {
                return Err(GeoError::Policy(
                    "aggregate expression needs at least one function".into(),
                ));
            }
            for g in group_by {
                if schema.index_of(g).is_none() {
                    return Err(GeoError::Policy(format!(
                        "group-by attribute `{g}` not in table `{}`",
                        self.table
                    )));
                }
            }
        }
        Ok(attrs)
    }
}

impl fmt::Display for PolicyExpression {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ship ")?;
        match &self.attrs {
            ShipAttrs::Star => write!(f, "*")?,
            ShipAttrs::List(list) => {
                write!(f, "{}", list.iter().cloned().collect::<Vec<_>>().join(", "))?;
            }
        }
        if let PolicyKind::Aggregate { functions, .. } = &self.kind {
            let fs: Vec<String> = functions.iter().map(|x| x.to_string()).collect();
            write!(f, " as aggregates {}", fs.join(", "))?;
        }
        write!(f, " from {}", self.table)?;
        for t in &self.joined_tables {
            write!(f, ", {t}")?;
        }
        write!(f, " to {}", self.to)?;
        if let Some(p) = &self.predicate {
            write!(f, " where {p}")?;
        }
        if let PolicyKind::Aggregate { group_by, .. } = &self.kind {
            if !group_by.is_empty() {
                write!(
                    f,
                    " group by {}",
                    group_by.iter().cloned().collect::<Vec<_>>().join(", ")
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoqp_common::{DataType, Field, LocationSet};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("custkey", DataType::Int64),
            Field::new("name", DataType::Str),
            Field::new("acctbal", DataType::Float64),
            Field::new("mktseg", DataType::Str),
        ])
        .unwrap()
    }

    fn to(locs: &[&str]) -> LocationPattern {
        LocationPattern::Set(LocationSet::from_iter(locs.iter().copied()))
    }

    #[test]
    fn star_expands_to_all_attrs() {
        let e = PolicyExpression::basic(
            TableRef::bare("customer"),
            ShipAttrs::Star,
            LocationPattern::Star,
            None,
        );
        let attrs = e.validate(&schema()).unwrap();
        assert_eq!(attrs.len(), 4);
    }

    #[test]
    fn validation_catches_unknown_attrs() {
        let e = PolicyExpression::basic(
            TableRef::bare("customer"),
            ShipAttrs::list(["ghost"]),
            LocationPattern::Star,
            None,
        );
        assert!(e.validate(&schema()).is_err());

        let e = PolicyExpression::basic(
            TableRef::bare("customer"),
            ShipAttrs::list(["name"]),
            LocationPattern::Star,
            Some(ScalarExpr::col("ghost").gt(ScalarExpr::lit(1i64))),
        );
        assert!(e.validate(&schema()).is_err());

        let e = PolicyExpression::aggregate(
            TableRef::bare("customer"),
            ShipAttrs::list(["acctbal"]),
            [AggFunc::Sum],
            ["ghost".to_string()],
            LocationPattern::Star,
            None,
        );
        assert!(e.validate(&schema()).is_err());

        let e = PolicyExpression::aggregate(
            TableRef::bare("customer"),
            ShipAttrs::list(["acctbal"]),
            [],
            [],
            LocationPattern::Star,
            None,
        );
        assert!(e.validate(&schema()).is_err());
    }

    #[test]
    fn display_round_trips_paper_examples() {
        // Example 1, first expression.
        let e = PolicyExpression::basic(
            TableRef::bare("customer"),
            ShipAttrs::list(["custkey", "name"]),
            to(&["Asia", "Europe"]),
            None,
        );
        assert_eq!(
            e.to_string(),
            "ship custkey, name from customer to Asia, Europe"
        );

        // Example 2.
        let e = PolicyExpression::aggregate(
            TableRef::bare("customer"),
            ShipAttrs::list(["acctbal"]),
            [AggFunc::Sum, AggFunc::Avg],
            ["mktseg".to_string(), "region".to_string()],
            LocationPattern::Star,
            None,
        );
        assert_eq!(
            e.to_string(),
            "ship acctbal as aggregates SUM, AVG from customer to * group by mktseg, region"
        );
    }

    #[test]
    fn attrs_are_case_insensitive() {
        let e = PolicyExpression::basic(
            TableRef::bare("customer"),
            ShipAttrs::list(["Name", "MKTSEG"]),
            LocationPattern::Star,
            None,
        );
        let attrs = e.validate(&schema()).unwrap();
        assert!(attrs.contains("name"));
        assert!(attrs.contains("mktseg"));
    }
}
