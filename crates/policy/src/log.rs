//! The versioned policy-catalog log and its per-site replicas.
//!
//! Policies stop being a frozen set: every grant or revoke is an entry in
//! an append-only [`CatalogLog`], and each entry deterministically bumps
//! the *epoch* — a chain hash over the whole log prefix, seeded with the
//! base catalog's content hash. Chaining (rather than re-hashing content)
//! means revoke-then-regrant never returns to an old epoch, so nothing
//! keyed by epoch (checkpoints, the implication memo, the server's plan
//! cache) can ever be resurrected across a revocation.
//!
//! Epochs are hashes and therefore unordered; freshness is proven by the
//! monotone **sequence number**. A query pins `(seq, epoch)` at admission
//! ([`CatalogPin`]); a replica that has applied entries up to that
//! sequence — verifying the chain as it goes — can prove it has seen the
//! pinned catalog, and one that cannot must fail safe
//! (`GeoError::CatalogStale`).
//!
//! Grant entries carry their expression pre-validated and pre-expanded
//! (the attribute sets [`PolicyCatalog::register`] would compute), so
//! replaying a log prefix needs no schema access: coordinator and replica
//! materialize byte-identical snapshots from the same prefix.
//!
//! The log does not grow without bound: [`CatalogLog::compact`]
//! materializes the live state at a sequence into a [`CatalogSnapshot`]
//! (whose hash is *chain-anchored* — folded from the chain epoch at that
//! sequence over the canonical live-policy lines) and truncates the
//! prefix. Reads below the resulting **floor** return a typed
//! `GeoError::CatalogCompacted`, never a panic and never head state. A
//! replica that lost its state (catalog-plane crash) re-bootstraps by
//! installing the latest snapshot — verifying the snapshot hash first —
//! and then applying tail entries, which chain-verify from the snapshot
//! epoch exactly as they would from the base.

use crate::catalog::{PolicyCatalog, RegisteredExpression};
use crate::expression::PolicyExpression;
use geoqp_common::{CatalogPin, GeoError, Result, Schema};
use std::collections::BTreeSet;
use std::fmt;

/// What one log entry does to the catalog.
///
/// Grants dwarf revocations by size, but logs are short-lived vectors
/// cloned whole during replica delivery — boxing the expression would
/// add an allocation per grant for no measurable win.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum CatalogAction {
    /// Add a policy expression. `attrs` / `table_attrs` are the
    /// validated expansions registration would compute, captured at
    /// append time so replay is schema-free.
    Grant {
        /// The stable policy id the grant creates.
        pid: u64,
        /// The expression itself.
        expr: PolicyExpression,
        /// `A_e`, fully expanded against the governed table's schema.
        attrs: BTreeSet<String>,
        /// All attributes of the governed table.
        table_attrs: BTreeSet<String>,
    },
    /// Remove the policy with the given stable id.
    Revoke {
        /// The policy id being revoked.
        pid: u64,
    },
}

/// One appended grant or revoke, with the chain epoch its prefix hashes
/// to.
#[derive(Debug, Clone, PartialEq)]
pub struct CatalogEntry {
    /// 1-based position in the log (0 is the base catalog).
    pub seq: u64,
    /// Chain epoch of the log prefix ending at this entry.
    pub epoch: u64,
    /// The change itself.
    pub action: CatalogAction,
}

impl CatalogEntry {
    /// The canonical line the chain hash folds in for this entry. Covers
    /// everything that affects materialization, so a replica verifying
    /// the chain has verified the content.
    fn canonical(&self) -> String {
        match &self.action {
            CatalogAction::Grant {
                pid,
                expr,
                attrs,
                table_attrs,
            } => {
                let csv = |s: &BTreeSet<String>| s.iter().cloned().collect::<Vec<_>>().join(",");
                format!(
                    "{}:grant:{}:{}|{}|{}",
                    self.seq,
                    pid,
                    expr,
                    csv(attrs),
                    csv(table_attrs)
                )
            }
            CatalogAction::Revoke { pid } => format!("{}:revoke:{}", self.seq, pid),
        }
    }

    /// Whether this entry revokes a policy.
    pub fn is_revocation(&self) -> bool {
        matches!(self.action, CatalogAction::Revoke { .. })
    }

    /// Encoded size of this entry on the replication wire: the canonical
    /// line plus the `(seq, epoch)` header. Catalog-plane transfers are
    /// byte-charged like any other transfer.
    pub fn encoded_len(&self) -> u64 {
        self.canonical().len() as u64 + 16
    }
}

impl fmt::Display for CatalogEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.action {
            CatalogAction::Grant { pid, expr, .. } => {
                write!(
                    f,
                    "#{} grant p{pid}: {expr} (epoch {:016x})",
                    self.seq, self.epoch
                )
            }
            CatalogAction::Revoke { pid } => {
                write!(f, "#{} revoke p{pid} (epoch {:016x})", self.seq, self.epoch)
            }
        }
    }
}

/// Fold one canonical entry line into the chain: FNV-1a seeded with the
/// previous epoch (perturbed so an empty line still moves the hash).
fn chain_epoch(prev: u64, line: &str) -> u64 {
    let mut h = prev ^ 0x9e37_79b9_7f4a_7c15;
    for b in line.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// The materialized catalog at one log sequence, with a chain-anchored
/// hash: the compaction unit and the replica-bootstrap transfer payload.
///
/// The hash folds the chain epoch at `seq` through the snapshot header
/// and every canonical live-policy line, so it commits to the full log
/// history (via the epoch) *and* the exact live state. A replica accepts
/// a snapshot only after recomputing the hash from the received content;
/// tail entries applied afterwards chain-verify from the snapshot epoch.
#[derive(Debug, Clone)]
pub struct CatalogSnapshot {
    seq: u64,
    epoch: u64,
    hash: u64,
    /// Live `(pid, expression)` state at `seq`, in grant order. Pids are
    /// the stable log-assigned ids, *not* the dense registration ids a
    /// materialized [`PolicyCatalog`] renumbers to.
    live: Vec<(u64, RegisteredExpression)>,
    next_pid: u64,
}

impl CatalogSnapshot {
    fn build(seq: u64, epoch: u64, live: Vec<(u64, RegisteredExpression)>, next_pid: u64) -> Self {
        let mut snap = CatalogSnapshot {
            seq,
            epoch,
            hash: 0,
            live,
            next_pid,
        };
        snap.hash = snap.compute_hash();
        snap
    }

    /// The canonical line for one live policy — same shape as a grant
    /// entry's chain line, so the hash covers everything that affects
    /// materialization.
    fn line(pid: u64, e: &RegisteredExpression) -> String {
        let csv = |s: &BTreeSet<String>| s.iter().cloned().collect::<Vec<_>>().join(",");
        format!("{pid}:{}|{}|{}", e.expr, csv(&e.attrs), csv(&e.table_attrs))
    }

    fn compute_hash(&self) -> u64 {
        let mut h = chain_epoch(
            self.epoch,
            &format!("snapshot:{}:{}", self.seq, self.next_pid),
        );
        for (pid, e) in &self.live {
            h = chain_epoch(h, &Self::line(*pid, e));
        }
        h
    }

    /// The log sequence this snapshot materializes.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The chain epoch at that sequence.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The chain-anchored snapshot hash.
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// Number of live policies in the snapshot.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether the snapshot holds no live policies.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Recompute the hash from the carried content and compare against
    /// the claimed one — what a bootstrapping replica does before
    /// installing a snapshot it received over the wire.
    pub fn verify(&self) -> bool {
        self.hash == self.compute_hash()
    }

    /// Encoded size on the replication wire: header plus every canonical
    /// live-policy line. Snapshot transfers are byte-charged like any
    /// other transfer.
    pub fn encoded_len(&self) -> u64 {
        let lines: u64 = self
            .live
            .iter()
            .map(|(pid, e)| Self::line(*pid, e).len() as u64 + 1)
            .sum();
        lines + 32 // seq + epoch + hash + next_pid
    }

    /// Materialize this snapshot into an epoch-pinned [`PolicyCatalog`]
    /// (ids renumbered densely, exactly as a log replay would).
    pub fn materialize(&self) -> PolicyCatalog {
        let exprs = self
            .live
            .iter()
            .enumerate()
            .map(|(id, (_, e))| {
                let mut e = e.clone();
                e.id = id;
                e
            })
            .collect();
        let mut cat = PolicyCatalog::from_registered(exprs);
        cat.pin_epoch(self.epoch);
        cat
    }
}

/// Replay `entries` up to absolute sequence `seq` over the floor
/// snapshot into a fresh catalog pinned at `epoch`. Shared by
/// coordinator and replica so the two can only ever disagree if the
/// chain verification already failed. `entries[0]` must be the entry at
/// `floor.seq() + 1`.
fn replay(
    floor: &CatalogSnapshot,
    entries: &[CatalogEntry],
    seq: u64,
    epoch: u64,
) -> Result<PolicyCatalog> {
    if seq < floor.seq || seq - floor.seq > entries.len() as u64 {
        return Err(GeoError::Policy(format!(
            "catalog holds seqs {}..={}; cannot materialize seq {seq}",
            floor.seq,
            floor.seq + entries.len() as u64
        )));
    }
    let exprs = live_state(floor, entries, seq)
        .into_iter()
        .enumerate()
        .map(|(id, (_, mut e))| {
            e.id = id;
            e
        })
        .collect();
    let mut snapshot = PolicyCatalog::from_registered(exprs);
    snapshot.pin_epoch(epoch);
    Ok(snapshot)
}

/// The live `(pid, expression)` state after replaying `entries` up to
/// absolute sequence `seq` over the floor.
fn live_state(
    floor: &CatalogSnapshot,
    entries: &[CatalogEntry],
    seq: u64,
) -> Vec<(u64, RegisteredExpression)> {
    let mut live = floor.live.clone();
    for entry in &entries[..(seq - floor.seq) as usize] {
        match &entry.action {
            CatalogAction::Grant {
                pid,
                expr,
                attrs,
                table_attrs,
            } => live.push((
                *pid,
                RegisteredExpression {
                    id: 0,
                    expr: expr.clone(),
                    attrs: attrs.clone(),
                    table_attrs: table_attrs.clone(),
                },
            )),
            CatalogAction::Revoke { pid } => live.retain(|(p, _)| p != pid),
        }
    }
    live
}

/// The pids live (granted and not yet revoked) at absolute sequence
/// `seq`.
fn live_pids(floor: &CatalogSnapshot, entries: &[CatalogEntry], seq: u64) -> BTreeSet<u64> {
    live_state(floor, entries, seq)
        .iter()
        .map(|(pid, _)| *pid)
        .collect()
}

/// The coordinator's append-only catalog log: the base catalog at
/// sequence 0 plus every grant/revoke since, each bumping the chain
/// epoch deterministically. Compaction replaces the oldest prefix with
/// its materialized [`CatalogSnapshot`] (the **floor**); the entries the
/// log retains always cover `floor.seq() + 1 ..= seq()`.
#[derive(Debug, Clone)]
pub struct CatalogLog {
    /// The deployment's static seq-0 state — what a brand-new replica
    /// starts from. Never moves, even after compaction.
    base: CatalogSnapshot,
    /// The newest compaction point (== `base` before any compaction).
    floor: CatalogSnapshot,
    /// Retained entries, seqs `floor.seq() + 1 ..=`.
    entries: Vec<CatalogEntry>,
    next_pid: u64,
    compactions: u64,
}

impl CatalogLog {
    /// Start a log from the deployment's base catalog. Sequence 0 *is*
    /// the base: its epoch is the base content hash, so a log that has
    /// seen no churn keys everything exactly as the frozen catalog did.
    pub fn new(base: PolicyCatalog) -> CatalogLog {
        let base_epoch = base.content_epoch();
        let next_pid = base.len() as u64;
        let live = base
            .expressions()
            .iter()
            .map(|e| (e.id as u64, e.clone()))
            .collect();
        let base = CatalogSnapshot::build(0, base_epoch, live, next_pid);
        CatalogLog {
            floor: base.clone(),
            base,
            entries: Vec::new(),
            next_pid,
            compactions: 0,
        }
    }

    /// The current head: `(seq, epoch)` of the newest entry (or the base
    /// when the log is empty).
    pub fn head(&self) -> CatalogPin {
        CatalogPin::new(self.seq(), self.epoch())
    }

    /// The newest appended sequence (floor plus retained entries).
    pub fn seq(&self) -> u64 {
        self.floor.seq + self.entries.len() as u64
    }

    /// Chain epoch at the head.
    pub fn epoch(&self) -> u64 {
        self.entries.last().map_or(self.floor.epoch, |e| e.epoch)
    }

    /// The compaction floor: the oldest sequence the log can still
    /// reconstruct exactly. 0 until the first [`CatalogLog::compact`].
    pub fn floor_seq(&self) -> u64 {
        self.floor.seq
    }

    /// How many times the log has been compacted.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// The newest snapshot — the floor itself. What a bootstrapping
    /// replica is shipped.
    pub fn latest_snapshot(&self) -> &CatalogSnapshot {
        &self.floor
    }

    /// Chain epoch at `seq`, if the log still holds that prefix (`None`
    /// for sequences past the head *or* compacted below the floor).
    pub fn epoch_at(&self, seq: u64) -> Option<u64> {
        if seq < self.floor.seq {
            None
        } else if seq == self.floor.seq {
            Some(self.floor.epoch)
        } else {
            self.entries
                .get((seq - self.floor.seq) as usize - 1)
                .map(|e| e.epoch)
        }
    }

    /// Every retained entry, in sequence order (compacted entries are
    /// gone — they live on only inside the floor snapshot).
    pub fn entries(&self) -> &[CatalogEntry] {
        &self.entries
    }

    /// The retained entries a replica at `seq` still needs, in order. A
    /// replica below the floor cannot catch up from entries at all: the
    /// whole retained tail is returned, but applying it would gap — such
    /// a replica must bootstrap from [`CatalogLog::latest_snapshot`]
    /// first.
    pub fn entries_after(&self, seq: u64) -> &[CatalogEntry] {
        let idx = seq.saturating_sub(self.floor.seq) as usize;
        &self.entries[idx.min(self.entries.len())..]
    }

    /// Compact the log at `seq`: materialize the live state there into a
    /// chain-anchored snapshot, make it the new floor, and truncate every
    /// retained entry at or below it. Reads below the new floor return
    /// `GeoError::CatalogCompacted` from then on. Compacting at the
    /// current floor is a no-op; compacting below it is the typed error.
    pub fn compact(&mut self, seq: u64) -> Result<CatalogSnapshot> {
        if seq < self.floor.seq {
            return Err(GeoError::CatalogCompacted(format!(
                "catalog seq {seq} is below the compaction floor at seq {}; \
                 its exact state is no longer reconstructible",
                self.floor.seq
            )));
        }
        if seq > self.seq() {
            return Err(GeoError::Policy(format!(
                "catalog log head is seq {}; cannot compact at seq {seq}",
                self.seq()
            )));
        }
        if seq == self.floor.seq {
            return Ok(self.floor.clone());
        }
        let epoch = self.epoch_at(seq).expect("seq bounds checked above");
        let live = live_state(&self.floor, &self.entries, seq);
        // The pid frontier *as of `seq`* — every grant at or below the
        // compaction point has consumed its pid, whether still live or
        // already revoked, so pids can never be reused across the floor.
        let next_pid = self.floor.next_pid
            + self.entries[..(seq - self.floor.seq) as usize]
                .iter()
                .filter(|e| !e.is_revocation())
                .count() as u64;
        let snapshot = CatalogSnapshot::build(seq, epoch, live, next_pid);
        self.entries.drain(..(seq - self.floor.seq) as usize);
        self.floor = snapshot.clone();
        self.compactions += 1;
        Ok(snapshot)
    }

    /// Append a grant: validate the expression against the governed
    /// table's schema (expanding `ship *` and capturing the table's
    /// attribute set, exactly as [`PolicyCatalog::register`] would),
    /// assign the next stable policy id, and bump the epoch. The new
    /// policy only affects queries admitted at or after the returned
    /// head — in-flight pins are undisturbed.
    pub fn grant(&mut self, expr: PolicyExpression, table_schema: &Schema) -> Result<CatalogPin> {
        let attrs = expr.validate(table_schema)?;
        let table_attrs = table_schema
            .fields()
            .iter()
            .map(|f| f.name.clone())
            .collect();
        let pid = self.next_pid;
        self.next_pid += 1;
        self.append(CatalogAction::Grant {
            pid,
            expr,
            attrs,
            table_attrs,
        })
    }

    /// Append a revocation of the live policy `pid` and bump the epoch.
    /// Unlike grants, revocations are pushed to in-flight queries via
    /// the churn signal: a query shipping on a now-revoked edge aborts
    /// and re-plans under the new epoch.
    pub fn revoke(&mut self, pid: u64) -> Result<CatalogPin> {
        if !live_pids(&self.floor, &self.entries, self.seq()).contains(&pid) {
            return Err(GeoError::Policy(format!(
                "cannot revoke p{pid}: no such live policy at catalog seq {}",
                self.seq()
            )));
        }
        self.append(CatalogAction::Revoke { pid })
    }

    fn append(&mut self, action: CatalogAction) -> Result<CatalogPin> {
        let seq = self.seq() + 1;
        let mut entry = CatalogEntry {
            seq,
            epoch: 0,
            action,
        };
        entry.epoch = chain_epoch(self.epoch(), &entry.canonical());
        let pin = CatalogPin::new(seq, entry.epoch);
        self.entries.push(entry);
        Ok(pin)
    }

    /// Materialize the catalog as of sequence `seq`, pinned to that
    /// prefix's chain epoch. `seq == 0` reproduces the base catalog
    /// (same expressions, same epoch). A sequence below the compaction
    /// floor is gone for good and returns the typed
    /// `GeoError::CatalogCompacted`.
    pub fn materialize(&self, seq: u64) -> Result<PolicyCatalog> {
        if seq < self.floor.seq {
            return Err(GeoError::CatalogCompacted(format!(
                "catalog seq {seq} was compacted away; the oldest \
                 reconstructible state is the floor snapshot at seq {}",
                self.floor.seq
            )));
        }
        let epoch = self.epoch_at(seq).ok_or_else(|| {
            GeoError::Policy(format!(
                "catalog log head is seq {}; cannot materialize seq {seq}",
                self.seq()
            ))
        })?;
        replay(&self.floor, &self.entries, seq, epoch)
    }

    /// The live policies at `seq`: `(pid, display form)` pairs in pid
    /// order — the `\catalog` shell verb's listing.
    pub fn live_policies(&self, seq: u64) -> Vec<(u64, String)> {
        let seq = seq.clamp(self.floor.seq, self.seq());
        let mut out: Vec<(u64, String)> = live_state(&self.floor, &self.entries, seq)
            .iter()
            .map(|(pid, e)| (*pid, e.expr.to_string()))
            .collect();
        out.sort_by_key(|(pid, _)| *pid);
        out
    }

    /// A fresh replica of this log's *base* (sequence 0), ready to apply
    /// entries as the replication transport delivers them. If the log
    /// has compacted past 0, the replica must bootstrap from
    /// [`CatalogLog::latest_snapshot`] before entries can land.
    pub fn replica(&self) -> CatalogReplica {
        CatalogReplica {
            base: self.base.clone(),
            floor: self.base.clone(),
            entries: Vec::new(),
        }
    }
}

/// A site's copy of the catalog log: applies entries strictly in
/// sequence order, re-deriving and verifying the chain epoch for each.
/// Because an entry that fails verification is refused, a replica can
/// never report an epoch it cannot reconstruct — `epoch()` always names
/// a prefix the replica holds in full.
///
/// A replica's state above its static `base` is volatile: a
/// catalog-plane crash [`CatalogReplica::wipe`]s it back to the base,
/// after which it re-bootstraps by installing a coordinator snapshot
/// ([`CatalogReplica::bootstrap`], which verifies the snapshot hash
/// before accepting) and applying the retained tail entries on top.
#[derive(Debug, Clone)]
pub struct CatalogReplica {
    /// The deployment's static seq-0 state — survives wipes.
    base: CatalogSnapshot,
    /// The snapshot this replica's entries replay over: the base, or an
    /// installed (hash-verified) coordinator snapshot after a bootstrap.
    floor: CatalogSnapshot,
    entries: Vec<CatalogEntry>,
}

impl CatalogReplica {
    /// The newest sequence this replica holds.
    pub fn seq(&self) -> u64 {
        self.floor.seq + self.entries.len() as u64
    }

    /// Chain epoch of the applied prefix.
    pub fn epoch(&self) -> u64 {
        self.entries.last().map_or(self.floor.epoch, |e| e.epoch)
    }

    /// The oldest sequence this replica can reconstruct: 0 until a
    /// bootstrap installs a newer snapshot floor.
    pub fn floor_seq(&self) -> u64 {
        self.floor.seq
    }

    /// Whether this replica can prove it has seen log sequence `seq`.
    pub fn has_seen(&self, seq: u64) -> bool {
        self.seq() >= seq
    }

    /// Apply the next entry. Refuses gaps (entries must arrive in
    /// sequence) and chain mismatches (a tampered or corrupted entry
    /// hashes to the wrong epoch), leaving the replica unchanged.
    pub fn apply(&mut self, entry: &CatalogEntry) -> Result<()> {
        if entry.seq != self.seq() + 1 {
            return Err(GeoError::Policy(format!(
                "replica at seq {} cannot apply entry seq {} (gap)",
                self.seq(),
                entry.seq
            )));
        }
        let expected = chain_epoch(self.epoch(), &entry.canonical());
        if entry.epoch != expected {
            return Err(GeoError::Policy(format!(
                "entry seq {} fails chain verification: claims epoch {:016x}, \
                 chain derives {expected:016x}",
                entry.seq, entry.epoch
            )));
        }
        self.entries.push(entry.clone());
        Ok(())
    }

    /// A catalog-plane crash: everything above the static base is lost.
    /// The replica drops back to sequence 0 and must re-prove every
    /// sequence from scratch — via entry replay, or a snapshot bootstrap
    /// when the coordinator has compacted past what replay can reach.
    pub fn wipe(&mut self) {
        self.floor = self.base.clone();
        self.entries.clear();
    }

    /// Install a coordinator snapshot as this replica's new floor — the
    /// recovery path after a wipe (or for a fresh replica facing an
    /// already-compacted log). The snapshot hash is recomputed from the
    /// received content and verified before anything is accepted; a
    /// snapshot older than what the replica already holds is refused
    /// (bootstrap never rewinds). On success the replica holds exactly
    /// `snapshot.seq()` and tail entries chain-verify from the snapshot
    /// epoch.
    pub fn bootstrap(&mut self, snapshot: &CatalogSnapshot) -> Result<()> {
        if !snapshot.verify() {
            return Err(GeoError::Policy(format!(
                "snapshot at seq {} fails chain verification: claims hash \
                 {:016x}, content derives {:016x}; refusing to install",
                snapshot.seq,
                snapshot.hash,
                snapshot.compute_hash()
            )));
        }
        if snapshot.seq < self.seq() {
            return Err(GeoError::Policy(format!(
                "replica at seq {} refuses to rewind onto a snapshot at \
                 seq {}",
                self.seq(),
                snapshot.seq
            )));
        }
        self.floor = snapshot.clone();
        self.entries.clear();
        Ok(())
    }

    /// Materialize the replica's catalog as of `seq` — must be a prefix
    /// the replica holds. Byte-identical to the coordinator's
    /// [`CatalogLog::materialize`] at the same sequence. A sequence
    /// below the replica's floor was compacted away upstream and returns
    /// the typed `GeoError::CatalogCompacted` — never a panic, and never
    /// silently the head state.
    pub fn materialize(&self, seq: u64) -> Result<PolicyCatalog> {
        if seq < self.floor.seq {
            return Err(GeoError::CatalogCompacted(format!(
                "replica's floor is the snapshot at seq {}; seq {seq} was \
                 compacted away and cannot be materialized",
                self.floor.seq
            )));
        }
        let epoch = self.epoch_at_local(seq).ok_or_else(|| {
            GeoError::Policy(format!(
                "replica holds up to seq {}; cannot materialize seq {seq}",
                self.seq()
            ))
        })?;
        replay(&self.floor, &self.entries, seq, epoch)
    }

    fn epoch_at_local(&self, seq: u64) -> Option<u64> {
        if seq == self.floor.seq {
            Some(self.floor.epoch)
        } else if seq > self.floor.seq {
            self.entries
                .get((seq - self.floor.seq) as usize - 1)
                .map(|e| e.epoch)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expression::ShipAttrs;
    use geoqp_common::{DataType, Field, LocationPattern, TableRef};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Str),
        ])
        .unwrap()
    }

    fn expr(attr: &str) -> PolicyExpression {
        PolicyExpression::basic(
            TableRef::bare("t"),
            ShipAttrs::list([attr]),
            LocationPattern::Star,
            None,
        )
    }

    fn base() -> PolicyCatalog {
        let mut cat = PolicyCatalog::new();
        cat.register(expr("a"), &schema()).unwrap();
        cat
    }

    #[test]
    fn grants_and_revokes_bump_the_epoch_deterministically() {
        let mut log1 = CatalogLog::new(base());
        let mut log2 = CatalogLog::new(base());
        assert_eq!(log1.head(), log2.head());
        assert_eq!(log1.epoch(), base().epoch(), "seq 0 is the base catalog");

        let p1 = log1.grant(expr("b"), &schema()).unwrap();
        let p2 = log2.grant(expr("b"), &schema()).unwrap();
        assert_eq!(p1, p2, "identical appends hash identically");
        assert_ne!(p1.epoch, log1.epoch_at(0).unwrap());

        log1.revoke(1).unwrap();
        log2.revoke(1).unwrap();
        assert_eq!(log1.head(), log2.head());
    }

    #[test]
    fn revoke_then_regrant_never_returns_to_an_old_epoch() {
        let mut log = CatalogLog::new(base());
        let after_grant = log.grant(expr("b"), &schema()).unwrap();
        log.revoke(1).unwrap();
        let after_regrant = log.grant(expr("b"), &schema()).unwrap();
        // Content at seq 3 equals content at seq 1 (modulo ids), but the
        // chain epoch remembers the history.
        assert_ne!(after_regrant.epoch, after_grant.epoch);
        let snap1 = log.materialize(1).unwrap();
        let snap3 = log.materialize(3).unwrap();
        assert_eq!(snap1.canonical_bytes(), snap3.canonical_bytes());
        assert_ne!(snap1.epoch(), snap3.epoch());
    }

    #[test]
    fn materialize_replays_grants_and_revokes() {
        let mut log = CatalogLog::new(base());
        log.grant(expr("b"), &schema()).unwrap(); // pid 1
        log.revoke(0).unwrap(); // drop the base policy
        let snap = log.materialize(2).unwrap();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap.epoch(), log.epoch());
        assert_eq!(log.live_policies(2), vec![(1, expr("b").to_string())]);
        // seq 0 reproduces the base, epoch included.
        let at0 = log.materialize(0).unwrap();
        assert_eq!(at0.canonical_bytes(), base().canonical_bytes());
        assert_eq!(at0.epoch(), base().epoch());
    }

    #[test]
    fn revoking_a_dead_or_unknown_pid_is_refused() {
        let mut log = CatalogLog::new(base());
        assert!(log.revoke(7).is_err());
        log.revoke(0).unwrap();
        assert!(log.revoke(0).is_err(), "already revoked");
    }

    #[test]
    fn replica_verifies_the_chain_and_matches_the_coordinator() {
        let mut log = CatalogLog::new(base());
        log.grant(expr("b"), &schema()).unwrap();
        log.revoke(0).unwrap();

        let mut replica = log.replica();
        for entry in log.entries() {
            replica.apply(entry).unwrap();
        }
        assert_eq!(replica.seq(), log.seq());
        assert_eq!(replica.epoch(), log.epoch());
        for seq in 0..=log.seq() {
            assert_eq!(
                replica.materialize(seq).unwrap().canonical_bytes(),
                log.materialize(seq).unwrap().canonical_bytes(),
            );
        }
    }

    #[test]
    fn replica_refuses_gaps_and_tampered_entries() {
        let mut log = CatalogLog::new(base());
        log.grant(expr("b"), &schema()).unwrap();
        log.grant(expr("a"), &schema()).unwrap();

        let mut replica = log.replica();
        // Gap: entry 2 before entry 1.
        assert!(replica.apply(&log.entries()[1]).is_err());
        assert_eq!(replica.seq(), 0);

        // Tampered epoch.
        let mut forged = log.entries()[0].clone();
        forged.epoch ^= 1;
        assert!(replica.apply(&forged).is_err());
        assert_eq!(
            replica.seq(),
            0,
            "a refused entry leaves the replica unchanged"
        );

        // Tampered content under the original epoch.
        let mut forged = log.entries()[0].clone();
        if let CatalogAction::Grant { pid, .. } = &mut forged.action {
            *pid += 10;
        }
        assert!(replica.apply(&forged).is_err());

        replica.apply(&log.entries()[0]).unwrap();
        replica.apply(&log.entries()[1]).unwrap();
        assert!(replica.has_seen(2));
    }

    #[test]
    fn compaction_truncates_the_prefix_and_keeps_the_head_reachable() {
        let mut log = CatalogLog::new(base());
        log.grant(expr("b"), &schema()).unwrap(); // seq 1
        log.revoke(0).unwrap(); // seq 2
        log.grant(expr("a"), &schema()).unwrap(); // seq 3
        let head_bytes = log.materialize(3).unwrap().canonical_bytes();
        let head_epoch = log.epoch();

        let snap = log.compact(2).unwrap();
        assert_eq!(snap.seq(), 2);
        assert_eq!(snap.epoch(), log.epoch_at(2).unwrap());
        assert!(snap.verify());
        assert_eq!(log.floor_seq(), 2);
        assert_eq!(log.compactions(), 1);
        assert_eq!(log.entries().len(), 1, "only the tail survives");

        // Everything at or above the floor still materializes
        // byte-identically; the head is untouched.
        assert_eq!(log.materialize(3).unwrap().canonical_bytes(), head_bytes);
        assert_eq!(log.epoch(), head_epoch);
        assert_eq!(
            log.materialize(2).unwrap().canonical_bytes(),
            snap.materialize().canonical_bytes()
        );

        // Reads below the floor are typed, never a panic or head state.
        for seq in [0, 1] {
            let err = log.materialize(seq).unwrap_err();
            assert_eq!(err.kind(), "catalog-compacted", "seq {seq}");
        }
        assert_eq!(log.epoch_at(1), None);
        assert_eq!(log.compact(1).unwrap_err().kind(), "catalog-compacted");

        // Compacting at the floor is a no-op returning the same snapshot.
        let again = log.compact(2).unwrap();
        assert_eq!(again.hash(), snap.hash());
        assert_eq!(log.compactions(), 1);

        // Appends keep working across the floor, and pids never reuse
        // compacted ones.
        let pin = log.grant(expr("b"), &schema()).unwrap();
        assert_eq!(pin.seq, 4);
        let pids: Vec<u64> = log.live_policies(4).iter().map(|(p, _)| *p).collect();
        assert_eq!(pids, vec![1, 2, 3], "pids 0..=2 were consumed before");
    }

    #[test]
    fn wiped_replica_bootstraps_from_a_verified_snapshot_plus_tail() {
        let mut log = CatalogLog::new(base());
        log.grant(expr("b"), &schema()).unwrap();
        log.revoke(0).unwrap();
        log.grant(expr("a"), &schema()).unwrap();

        // A replica that replayed everything from seq 0.
        let mut from_zero = log.replica();
        for entry in log.entries() {
            from_zero.apply(entry).unwrap();
        }

        // Compact, then crash-wipe a second replica and bootstrap it.
        let snap = log.compact(2).unwrap();
        let mut wiped = log.replica();
        wiped.wipe();
        assert_eq!(wiped.seq(), 0, "a wipe drops back to the base");
        wiped.bootstrap(&snap).unwrap();
        assert_eq!(wiped.seq(), 2);
        assert_eq!(wiped.epoch(), log.epoch_at(2).unwrap());
        for entry in log.entries_after(wiped.seq()).to_vec() {
            wiped.apply(&entry).unwrap();
        }

        // Byte-identical to the replay-from-zero replica at the head.
        assert_eq!(wiped.seq(), from_zero.seq());
        assert_eq!(wiped.epoch(), from_zero.epoch());
        assert_eq!(
            wiped.materialize(3).unwrap().canonical_bytes(),
            from_zero.materialize(3).unwrap().canonical_bytes()
        );

        // The bootstrapped replica's floor is the snapshot: reads below
        // it are typed (regression: no panic, no silent head state).
        assert_eq!(wiped.floor_seq(), 2);
        let err = wiped.materialize(1).unwrap_err();
        assert_eq!(err.kind(), "catalog-compacted");
        assert!(wiped.materialize(4).is_err(), "beyond the head refuses too");
    }

    #[test]
    fn tampered_snapshots_are_refused_and_bootstrap_never_rewinds() {
        let mut log = CatalogLog::new(base());
        log.grant(expr("b"), &schema()).unwrap();
        log.grant(expr("a"), &schema()).unwrap();
        let snap = log.compact(2).unwrap();

        let mut replica = log.replica();
        // Tampered hash.
        let mut forged = snap.clone();
        forged.hash ^= 1;
        assert!(!forged.verify());
        assert!(replica.bootstrap(&forged).is_err());
        assert_eq!(replica.seq(), 0, "a refused snapshot changes nothing");
        // Tampered content under the claimed hash.
        let mut forged = snap.clone();
        forged.live.pop();
        assert!(replica.bootstrap(&forged).is_err());
        // Tampered epoch (the chain anchor).
        let mut forged = snap.clone();
        forged.epoch ^= 1;
        assert!(replica.bootstrap(&forged).is_err());

        // The genuine snapshot installs; an older one then refuses.
        replica.bootstrap(&snap).unwrap();
        assert_eq!(replica.seq(), 2);
        let old = CatalogLog::new(base()).compact(0).unwrap();
        assert!(
            replica.bootstrap(&old).is_err(),
            "bootstrap must never rewind a replica"
        );
        assert_eq!(replica.seq(), 2);
    }
}
