//! The versioned policy-catalog log and its per-site replicas.
//!
//! Policies stop being a frozen set: every grant or revoke is an entry in
//! an append-only [`CatalogLog`], and each entry deterministically bumps
//! the *epoch* — a chain hash over the whole log prefix, seeded with the
//! base catalog's content hash. Chaining (rather than re-hashing content)
//! means revoke-then-regrant never returns to an old epoch, so nothing
//! keyed by epoch (checkpoints, the implication memo, the server's plan
//! cache) can ever be resurrected across a revocation.
//!
//! Epochs are hashes and therefore unordered; freshness is proven by the
//! monotone **sequence number**. A query pins `(seq, epoch)` at admission
//! ([`CatalogPin`]); a replica that has applied entries up to that
//! sequence — verifying the chain as it goes — can prove it has seen the
//! pinned catalog, and one that cannot must fail safe
//! (`GeoError::CatalogStale`).
//!
//! Grant entries carry their expression pre-validated and pre-expanded
//! (the attribute sets [`PolicyCatalog::register`] would compute), so
//! replaying a log prefix needs no schema access: coordinator and replica
//! materialize byte-identical snapshots from the same prefix.

use crate::catalog::{PolicyCatalog, RegisteredExpression};
use crate::expression::PolicyExpression;
use geoqp_common::{CatalogPin, GeoError, Result, Schema};
use std::collections::BTreeSet;
use std::fmt;

/// What one log entry does to the catalog.
///
/// Grants dwarf revocations by size, but logs are short-lived vectors
/// cloned whole during replica delivery — boxing the expression would
/// add an allocation per grant for no measurable win.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum CatalogAction {
    /// Add a policy expression. `attrs` / `table_attrs` are the
    /// validated expansions registration would compute, captured at
    /// append time so replay is schema-free.
    Grant {
        /// The stable policy id the grant creates.
        pid: u64,
        /// The expression itself.
        expr: PolicyExpression,
        /// `A_e`, fully expanded against the governed table's schema.
        attrs: BTreeSet<String>,
        /// All attributes of the governed table.
        table_attrs: BTreeSet<String>,
    },
    /// Remove the policy with the given stable id.
    Revoke {
        /// The policy id being revoked.
        pid: u64,
    },
}

/// One appended grant or revoke, with the chain epoch its prefix hashes
/// to.
#[derive(Debug, Clone, PartialEq)]
pub struct CatalogEntry {
    /// 1-based position in the log (0 is the base catalog).
    pub seq: u64,
    /// Chain epoch of the log prefix ending at this entry.
    pub epoch: u64,
    /// The change itself.
    pub action: CatalogAction,
}

impl CatalogEntry {
    /// The canonical line the chain hash folds in for this entry. Covers
    /// everything that affects materialization, so a replica verifying
    /// the chain has verified the content.
    fn canonical(&self) -> String {
        match &self.action {
            CatalogAction::Grant {
                pid,
                expr,
                attrs,
                table_attrs,
            } => {
                let csv = |s: &BTreeSet<String>| s.iter().cloned().collect::<Vec<_>>().join(",");
                format!(
                    "{}:grant:{}:{}|{}|{}",
                    self.seq,
                    pid,
                    expr,
                    csv(attrs),
                    csv(table_attrs)
                )
            }
            CatalogAction::Revoke { pid } => format!("{}:revoke:{}", self.seq, pid),
        }
    }

    /// Whether this entry revokes a policy.
    pub fn is_revocation(&self) -> bool {
        matches!(self.action, CatalogAction::Revoke { .. })
    }
}

impl fmt::Display for CatalogEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.action {
            CatalogAction::Grant { pid, expr, .. } => {
                write!(
                    f,
                    "#{} grant p{pid}: {expr} (epoch {:016x})",
                    self.seq, self.epoch
                )
            }
            CatalogAction::Revoke { pid } => {
                write!(f, "#{} revoke p{pid} (epoch {:016x})", self.seq, self.epoch)
            }
        }
    }
}

/// Fold one canonical entry line into the chain: FNV-1a seeded with the
/// previous epoch (perturbed so an empty line still moves the hash).
fn chain_epoch(prev: u64, line: &str) -> u64 {
    let mut h = prev ^ 0x9e37_79b9_7f4a_7c15;
    for b in line.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Replay `entries[..seq]` over the base catalog into a fresh snapshot
/// pinned at `epoch`. Shared by coordinator and replica so the two can
/// only ever disagree if the chain verification already failed.
fn replay(
    base: &PolicyCatalog,
    base_len: u64,
    entries: &[CatalogEntry],
    seq: u64,
    epoch: u64,
) -> Result<PolicyCatalog> {
    if seq > entries.len() as u64 {
        return Err(GeoError::Policy(format!(
            "catalog log has {} entries; cannot materialize seq {seq}",
            entries.len()
        )));
    }
    // Base expressions keep their registration ids as stable pids.
    let mut live: Vec<(u64, RegisteredExpression)> = base
        .expressions()
        .iter()
        .map(|e| (e.id as u64, e.clone()))
        .collect();
    debug_assert_eq!(live.len() as u64, base_len);
    for entry in &entries[..seq as usize] {
        match &entry.action {
            CatalogAction::Grant {
                pid,
                expr,
                attrs,
                table_attrs,
            } => live.push((
                *pid,
                RegisteredExpression {
                    id: 0, // renumbered below
                    expr: expr.clone(),
                    attrs: attrs.clone(),
                    table_attrs: table_attrs.clone(),
                },
            )),
            CatalogAction::Revoke { pid } => live.retain(|(p, _)| p != pid),
        }
    }
    let exprs = live
        .into_iter()
        .enumerate()
        .map(|(id, (_, mut e))| {
            e.id = id;
            e
        })
        .collect();
    let mut snapshot = PolicyCatalog::from_registered(exprs);
    snapshot.pin_epoch(epoch);
    Ok(snapshot)
}

/// The pids live (granted and not yet revoked) after `entries[..seq]`.
fn live_pids(base_len: u64, entries: &[CatalogEntry], seq: u64) -> BTreeSet<u64> {
    let mut live: BTreeSet<u64> = (0..base_len).collect();
    for entry in &entries[..seq as usize] {
        match &entry.action {
            CatalogAction::Grant { pid, .. } => {
                live.insert(*pid);
            }
            CatalogAction::Revoke { pid } => {
                live.remove(pid);
            }
        }
    }
    live
}

/// The coordinator's append-only catalog log: the base catalog at
/// sequence 0 plus every grant/revoke since, each bumping the chain
/// epoch deterministically.
#[derive(Debug, Clone)]
pub struct CatalogLog {
    base: PolicyCatalog,
    base_epoch: u64,
    entries: Vec<CatalogEntry>,
    next_pid: u64,
}

impl CatalogLog {
    /// Start a log from the deployment's base catalog. Sequence 0 *is*
    /// the base: its epoch is the base content hash, so a log that has
    /// seen no churn keys everything exactly as the frozen catalog did.
    pub fn new(base: PolicyCatalog) -> CatalogLog {
        let base_epoch = base.content_epoch();
        let next_pid = base.len() as u64;
        CatalogLog {
            base,
            base_epoch,
            entries: Vec::new(),
            next_pid,
        }
    }

    /// The current head: `(seq, epoch)` of the newest entry (or the base
    /// when the log is empty).
    pub fn head(&self) -> CatalogPin {
        CatalogPin::new(self.seq(), self.epoch())
    }

    /// Number of appended entries.
    pub fn seq(&self) -> u64 {
        self.entries.len() as u64
    }

    /// Chain epoch at the head.
    pub fn epoch(&self) -> u64 {
        self.entries.last().map_or(self.base_epoch, |e| e.epoch)
    }

    /// Chain epoch after `entries[..seq]`, if that prefix exists.
    pub fn epoch_at(&self, seq: u64) -> Option<u64> {
        if seq == 0 {
            Some(self.base_epoch)
        } else {
            self.entries.get(seq as usize - 1).map(|e| e.epoch)
        }
    }

    /// Every appended entry, in sequence order.
    pub fn entries(&self) -> &[CatalogEntry] {
        &self.entries
    }

    /// The entries a replica at `seq` still needs, in order.
    pub fn entries_after(&self, seq: u64) -> &[CatalogEntry] {
        &self.entries[(seq as usize).min(self.entries.len())..]
    }

    /// Append a grant: validate the expression against the governed
    /// table's schema (expanding `ship *` and capturing the table's
    /// attribute set, exactly as [`PolicyCatalog::register`] would),
    /// assign the next stable policy id, and bump the epoch. The new
    /// policy only affects queries admitted at or after the returned
    /// head — in-flight pins are undisturbed.
    pub fn grant(&mut self, expr: PolicyExpression, table_schema: &Schema) -> Result<CatalogPin> {
        let attrs = expr.validate(table_schema)?;
        let table_attrs = table_schema
            .fields()
            .iter()
            .map(|f| f.name.clone())
            .collect();
        let pid = self.next_pid;
        self.next_pid += 1;
        self.append(CatalogAction::Grant {
            pid,
            expr,
            attrs,
            table_attrs,
        })
    }

    /// Append a revocation of the live policy `pid` and bump the epoch.
    /// Unlike grants, revocations are pushed to in-flight queries via
    /// the churn signal: a query shipping on a now-revoked edge aborts
    /// and re-plans under the new epoch.
    pub fn revoke(&mut self, pid: u64) -> Result<CatalogPin> {
        if !live_pids(self.base.len() as u64, &self.entries, self.seq()).contains(&pid) {
            return Err(GeoError::Policy(format!(
                "cannot revoke p{pid}: no such live policy at catalog seq {}",
                self.seq()
            )));
        }
        self.append(CatalogAction::Revoke { pid })
    }

    fn append(&mut self, action: CatalogAction) -> Result<CatalogPin> {
        let seq = self.seq() + 1;
        let mut entry = CatalogEntry {
            seq,
            epoch: 0,
            action,
        };
        entry.epoch = chain_epoch(self.epoch(), &entry.canonical());
        let pin = CatalogPin::new(seq, entry.epoch);
        self.entries.push(entry);
        Ok(pin)
    }

    /// Materialize the catalog as of `entries[..seq]`, pinned to that
    /// prefix's chain epoch. `seq == 0` reproduces the base catalog
    /// (same expressions, same epoch).
    pub fn materialize(&self, seq: u64) -> Result<PolicyCatalog> {
        let epoch = self.epoch_at(seq).ok_or_else(|| {
            GeoError::Policy(format!(
                "catalog log head is seq {}; cannot materialize seq {seq}",
                self.seq()
            ))
        })?;
        replay(
            &self.base,
            self.base.len() as u64,
            &self.entries,
            seq,
            epoch,
        )
    }

    /// The live policies at `seq`: `(pid, display form)` pairs in pid
    /// order — the `\catalog` shell verb's listing.
    pub fn live_policies(&self, seq: u64) -> Vec<(u64, String)> {
        let live = live_pids(self.base.len() as u64, &self.entries, seq.min(self.seq()));
        let mut out = Vec::new();
        for e in self.base.expressions() {
            if live.contains(&(e.id as u64)) {
                out.push((e.id as u64, e.expr.to_string()));
            }
        }
        for entry in &self.entries[..seq.min(self.seq()) as usize] {
            if let CatalogAction::Grant { pid, expr, .. } = &entry.action {
                if live.contains(pid) {
                    out.push((*pid, expr.to_string()));
                }
            }
        }
        out.sort_by_key(|(pid, _)| *pid);
        out
    }

    /// A fresh replica of this log's base, at sequence 0, ready to apply
    /// entries as the replication transport delivers them.
    pub fn replica(&self) -> CatalogReplica {
        CatalogReplica {
            base: self.base.clone(),
            base_epoch: self.base_epoch,
            entries: Vec::new(),
        }
    }
}

/// A site's copy of the catalog log: applies entries strictly in
/// sequence order, re-deriving and verifying the chain epoch for each.
/// Because an entry that fails verification is refused, a replica can
/// never report an epoch it cannot reconstruct — `epoch()` always names
/// a prefix the replica holds in full.
#[derive(Debug, Clone)]
pub struct CatalogReplica {
    base: PolicyCatalog,
    base_epoch: u64,
    entries: Vec<CatalogEntry>,
}

impl CatalogReplica {
    /// Number of entries applied.
    pub fn seq(&self) -> u64 {
        self.entries.len() as u64
    }

    /// Chain epoch of the applied prefix.
    pub fn epoch(&self) -> u64 {
        self.entries.last().map_or(self.base_epoch, |e| e.epoch)
    }

    /// Whether this replica can prove it has seen log sequence `seq`.
    pub fn has_seen(&self, seq: u64) -> bool {
        self.seq() >= seq
    }

    /// Apply the next entry. Refuses gaps (entries must arrive in
    /// sequence) and chain mismatches (a tampered or corrupted entry
    /// hashes to the wrong epoch), leaving the replica unchanged.
    pub fn apply(&mut self, entry: &CatalogEntry) -> Result<()> {
        if entry.seq != self.seq() + 1 {
            return Err(GeoError::Policy(format!(
                "replica at seq {} cannot apply entry seq {} (gap)",
                self.seq(),
                entry.seq
            )));
        }
        let expected = chain_epoch(self.epoch(), &entry.canonical());
        if entry.epoch != expected {
            return Err(GeoError::Policy(format!(
                "entry seq {} fails chain verification: claims epoch {:016x}, \
                 chain derives {expected:016x}",
                entry.seq, entry.epoch
            )));
        }
        self.entries.push(entry.clone());
        Ok(())
    }

    /// Materialize the replica's catalog as of `seq` — must be a prefix
    /// the replica has applied. Byte-identical to the coordinator's
    /// [`CatalogLog::materialize`] at the same sequence.
    pub fn materialize(&self, seq: u64) -> Result<PolicyCatalog> {
        let epoch = if seq == 0 {
            self.base_epoch
        } else {
            self.entries
                .get(seq as usize - 1)
                .map(|e| e.epoch)
                .ok_or_else(|| {
                    GeoError::Policy(format!(
                        "replica has applied {} entries; cannot materialize seq {seq}",
                        self.seq()
                    ))
                })?
        };
        replay(
            &self.base,
            self.base.len() as u64,
            &self.entries,
            seq,
            epoch,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expression::ShipAttrs;
    use geoqp_common::{DataType, Field, LocationPattern, TableRef};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Str),
        ])
        .unwrap()
    }

    fn expr(attr: &str) -> PolicyExpression {
        PolicyExpression::basic(
            TableRef::bare("t"),
            ShipAttrs::list([attr]),
            LocationPattern::Star,
            None,
        )
    }

    fn base() -> PolicyCatalog {
        let mut cat = PolicyCatalog::new();
        cat.register(expr("a"), &schema()).unwrap();
        cat
    }

    #[test]
    fn grants_and_revokes_bump_the_epoch_deterministically() {
        let mut log1 = CatalogLog::new(base());
        let mut log2 = CatalogLog::new(base());
        assert_eq!(log1.head(), log2.head());
        assert_eq!(log1.epoch(), base().epoch(), "seq 0 is the base catalog");

        let p1 = log1.grant(expr("b"), &schema()).unwrap();
        let p2 = log2.grant(expr("b"), &schema()).unwrap();
        assert_eq!(p1, p2, "identical appends hash identically");
        assert_ne!(p1.epoch, log1.epoch_at(0).unwrap());

        log1.revoke(1).unwrap();
        log2.revoke(1).unwrap();
        assert_eq!(log1.head(), log2.head());
    }

    #[test]
    fn revoke_then_regrant_never_returns_to_an_old_epoch() {
        let mut log = CatalogLog::new(base());
        let after_grant = log.grant(expr("b"), &schema()).unwrap();
        log.revoke(1).unwrap();
        let after_regrant = log.grant(expr("b"), &schema()).unwrap();
        // Content at seq 3 equals content at seq 1 (modulo ids), but the
        // chain epoch remembers the history.
        assert_ne!(after_regrant.epoch, after_grant.epoch);
        let snap1 = log.materialize(1).unwrap();
        let snap3 = log.materialize(3).unwrap();
        assert_eq!(snap1.canonical_bytes(), snap3.canonical_bytes());
        assert_ne!(snap1.epoch(), snap3.epoch());
    }

    #[test]
    fn materialize_replays_grants_and_revokes() {
        let mut log = CatalogLog::new(base());
        log.grant(expr("b"), &schema()).unwrap(); // pid 1
        log.revoke(0).unwrap(); // drop the base policy
        let snap = log.materialize(2).unwrap();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap.epoch(), log.epoch());
        assert_eq!(log.live_policies(2), vec![(1, expr("b").to_string())]);
        // seq 0 reproduces the base, epoch included.
        let at0 = log.materialize(0).unwrap();
        assert_eq!(at0.canonical_bytes(), base().canonical_bytes());
        assert_eq!(at0.epoch(), base().epoch());
    }

    #[test]
    fn revoking_a_dead_or_unknown_pid_is_refused() {
        let mut log = CatalogLog::new(base());
        assert!(log.revoke(7).is_err());
        log.revoke(0).unwrap();
        assert!(log.revoke(0).is_err(), "already revoked");
    }

    #[test]
    fn replica_verifies_the_chain_and_matches_the_coordinator() {
        let mut log = CatalogLog::new(base());
        log.grant(expr("b"), &schema()).unwrap();
        log.revoke(0).unwrap();

        let mut replica = log.replica();
        for entry in log.entries() {
            replica.apply(entry).unwrap();
        }
        assert_eq!(replica.seq(), log.seq());
        assert_eq!(replica.epoch(), log.epoch());
        for seq in 0..=log.seq() {
            assert_eq!(
                replica.materialize(seq).unwrap().canonical_bytes(),
                log.materialize(seq).unwrap().canonical_bytes(),
            );
        }
    }

    #[test]
    fn replica_refuses_gaps_and_tampered_entries() {
        let mut log = CatalogLog::new(base());
        log.grant(expr("b"), &schema()).unwrap();
        log.grant(expr("a"), &schema()).unwrap();

        let mut replica = log.replica();
        // Gap: entry 2 before entry 1.
        assert!(replica.apply(&log.entries()[1]).is_err());
        assert_eq!(replica.seq(), 0);

        // Tampered epoch.
        let mut forged = log.entries()[0].clone();
        forged.epoch ^= 1;
        assert!(replica.apply(&forged).is_err());
        assert_eq!(
            replica.seq(),
            0,
            "a refused entry leaves the replica unchanged"
        );

        // Tampered content under the original epoch.
        let mut forged = log.entries()[0].clone();
        if let CatalogAction::Grant { pid, .. } = &mut forged.action {
            *pid += 10;
        }
        assert!(replica.apply(&forged).is_err());

        replica.apply(&log.entries()[0]).unwrap();
        replica.apply(&log.entries()[1]).unwrap();
        assert!(replica.has_seen(2));
    }
}
