//! `geoqp` — an interactive shell for compliant geo-distributed query
//! processing.
//!
//! ```bash
//! cargo run -p geoqp-cli --bin geoqp-shell        # starts with \demo carco
//! echo 'SELECT ...' | cargo run -p geoqp-cli --bin geoqp-shell -- --demo tpch
//! # inject deterministic faults (see \help for the spec grammar):
//! ... -- --demo tpch --faults 'seed=7; crash:L2@0..6; flaky:L1-L3:0.2'
//! # run queries on the concurrent pipelined runtime:
//! ... -- --demo tpch --runtime parallel
//! # run queries on the vectorized columnar engine:
//! ... -- --demo tpch --columnar
//! # morsel-parallel kernels: 4 workers per site (implies --columnar):
//! ... -- --demo tpch --runtime parallel --columnar --workers 4
//! # give every query a simulated-clock completion budget:
//! ... -- --demo tpch --deadline-ms 500
//! # defend against gray failures with hedged backup transfers:
//! ... -- --demo tpch --faults 'degrade:L1-L4:4x' --hedge
//! ```

use geoqp_cli::Shell;
use std::io::{self, BufRead, Write};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let demo = args
        .iter()
        .position(|a| a == "--demo")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
        .unwrap_or("carco");

    let mut shell = Shell::new();
    match shell.run_command(&format!("\\demo {demo}")) {
        Ok(out) => print!("{out}"),
        Err(e) => eprintln!("error: {e}"),
    }
    if let Some(spec) = args
        .iter()
        .position(|a| a == "--faults")
        .and_then(|i| args.get(i + 1))
    {
        match shell.run_command(&format!("\\faults {spec}")) {
            Ok(out) => print!("{out}"),
            Err(e) => eprintln!("error: {e}"),
        }
    }
    if let Some(mode) = args
        .iter()
        .position(|a| a == "--runtime")
        .and_then(|i| args.get(i + 1))
    {
        match shell.run_command(&format!("\\runtime {mode}")) {
            Ok(out) => print!("{out}"),
            Err(e) => eprintln!("error: {e}"),
        }
    }
    if args.iter().any(|a| a == "--columnar") {
        match shell.run_command("\\columnar on") {
            Ok(out) => print!("{out}"),
            Err(e) => eprintln!("error: {e}"),
        }
    }
    if let Some(n) = args
        .iter()
        .position(|a| a == "--workers")
        .and_then(|i| args.get(i + 1))
    {
        match shell.run_command(&format!("\\workers {n}")) {
            Ok(out) => print!("{out}"),
            Err(e) => eprintln!("error: {e}"),
        }
    }
    if let Some(ms) = args
        .iter()
        .position(|a| a == "--deadline-ms")
        .and_then(|i| args.get(i + 1))
    {
        match shell.run_command(&format!("\\deadline {ms}")) {
            Ok(out) => print!("{out}"),
            Err(e) => eprintln!("error: {e}"),
        }
    }
    if let Some(i) = args.iter().position(|a| a == "--hedge") {
        // `--hedge` alone uses the defaults; `--hedge <ms>` sets the
        // backup launch delay.
        let setting = args
            .get(i + 1)
            .filter(|v| v.parse::<f64>().is_ok())
            .map(|v| v.as_str())
            .unwrap_or("on");
        match shell.run_command(&format!("\\hedge {setting}")) {
            Ok(out) => print!("{out}"),
            Err(e) => eprintln!("error: {e}"),
        }
    }
    println!("type SQL, \\help for commands, \\quit to exit");

    let stdin = io::stdin();
    let interactive = args.iter().all(|a| a != "--batch");
    loop {
        if interactive {
            print!("geoqp> ");
            io::stdout().flush().ok();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("stdin error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == "\\quit" || line == "\\q" {
            break;
        }
        match shell.run_command(line) {
            Ok(out) => print!("{out}"),
            Err(e) => println!("error: {e}"),
        }
    }
}
