//! The `geoqp` shell: a line-oriented front end over the compliant query
//! processing engine. All state and command handling lives here so that
//! the shell is fully testable without a terminal.

use geoqp_common::{
    CancelToken, CatalogPin, GeoError, Location, QueryDeadline, Result, Rows, TableRef,
};
use geoqp_core::{
    CatalogService, ChurnOpts, Engine, FailoverOpts, HedgeConfig, LinkReport, OptimizerMode,
    ResilientResult, RuntimeConfig, RuntimeMetrics, RuntimeMode,
};
use geoqp_exec::RetryPolicy;
use geoqp_net::{FaultPlan, NetworkTopology};
use geoqp_policy::{expand_denials, PolicyCatalog};
use geoqp_server::{QueryRequest, QueryService, ServiceConfig, TenantConfig, TenantId};
use geoqp_storage::Catalog;
use geoqp_tpch::PolicyTemplate;
use std::fmt::Write as _;
use std::sync::Arc;

/// A multi-tenant [`QueryService`] attached to the session by `\server`,
/// kept alive so `\tenants` shows counters accumulated across bursts.
struct ServerSession {
    svc: QueryService,
    tenants: Vec<TenantId>,
}

/// Shell state: the loaded deployment plus session settings.
pub struct Shell {
    engine: Option<Engine>,
    mode: OptimizerMode,
    runtime: RuntimeMode,
    columnar: bool,
    /// Morsel workers per site for columnar parallel-runtime queries.
    workers: usize,
    result_location: Option<Location>,
    faults: Option<FaultPlan>,
    last_metrics: Option<RuntimeMetrics>,
    deadline: Option<QueryDeadline>,
    cancel: CancelToken,
    last_failover: Option<String>,
    hedge: Option<HedgeConfig>,
    last_health: Option<Vec<LinkReport>>,
    service: Option<ServerSession>,
    /// The deployment's replicated policy-catalog service: `\grant` and
    /// `\revoke` append to its log, `\catalog` renders it, and every
    /// resilient query pins its head epoch at admission.
    churn: Option<Arc<CatalogService>>,
}

impl Default for Shell {
    fn default() -> Shell {
        Shell::new()
    }
}

impl Shell {
    /// A shell with no deployment loaded.
    pub fn new() -> Shell {
        Shell {
            engine: None,
            mode: OptimizerMode::Compliant,
            runtime: RuntimeMode::Sequential,
            columnar: false,
            workers: 1,
            result_location: None,
            faults: None,
            last_metrics: None,
            deadline: None,
            cancel: CancelToken::new(),
            last_failover: None,
            hedge: None,
            last_health: None,
            service: None,
            churn: None,
        }
    }

    /// Execute one input line (a `\command` or SQL) and return the text to
    /// print.
    pub fn run_command(&mut self, line: &str) -> Result<String> {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix('\\') {
            self.meta_command(rest)
        } else {
            self.sql(line)
        }
    }

    fn engine(&self) -> Result<&Engine> {
        self.engine
            .as_ref()
            .ok_or_else(|| GeoError::Execution("no deployment loaded; try \\demo carco".into()))
    }

    fn meta_command(&mut self, rest: &str) -> Result<String> {
        let mut parts = rest.splitn(2, ' ');
        let cmd = parts.next().unwrap_or("");
        let arg = parts.next().unwrap_or("").trim();
        match cmd {
            "help" | "h" => Ok(HELP.to_string()),
            "demo" => self.load_demo(arg),
            "tables" => self.tables(),
            "locations" => {
                let eng = self.engine()?;
                Ok(format!("{}\n", eng.catalog().locations()))
            }
            "policies" => {
                let eng = self.engine()?;
                let mut out = String::new();
                for e in eng.policies().expressions() {
                    let _ = writeln!(out, "{e}");
                }
                if eng.policies().is_empty() {
                    out.push_str("(no policies — nothing may leave its site)\n");
                }
                Ok(out)
            }
            "policy" => self.add_policy(arg),
            "deny" => self.add_denial(arg),
            "grant" => self.grant(arg),
            "revoke" => self.revoke(arg),
            "catalog" => self.catalog_status(),
            "mode" => {
                self.mode = match arg {
                    "compliant" => OptimizerMode::Compliant,
                    "traditional" => OptimizerMode::Traditional,
                    other => {
                        return Err(GeoError::Execution(format!(
                            "unknown mode `{other}` (compliant|traditional)"
                        )))
                    }
                };
                Ok(format!("optimizer mode: {arg}\n"))
            }
            "at" => {
                if arg.is_empty() || arg == "anywhere" {
                    self.result_location = None;
                    Ok("result location: optimizer's choice\n".to_string())
                } else {
                    self.result_location = Some(Location::new(arg));
                    Ok(format!("result location: {arg}\n"))
                }
            }
            "runtime" => {
                self.runtime = match arg {
                    "" => {
                        let current = match self.runtime {
                            RuntimeMode::Sequential => "sequential",
                            RuntimeMode::Parallel => "parallel",
                        };
                        return Ok(format!("runtime: {current}\n"));
                    }
                    "sequential" => RuntimeMode::Sequential,
                    "parallel" => RuntimeMode::Parallel,
                    other => {
                        return Err(GeoError::Execution(format!(
                            "unknown runtime `{other}` (parallel|sequential)"
                        )))
                    }
                };
                Ok(format!("runtime: {arg}\n"))
            }
            "columnar" => {
                self.columnar = match arg {
                    "" => {
                        let current = if self.columnar { "on" } else { "off" };
                        return Ok(format!("columnar: {current}\n"));
                    }
                    "on" => true,
                    "off" => false,
                    other => {
                        return Err(GeoError::Execution(format!(
                            "unknown columnar setting `{other}` (on|off)"
                        )))
                    }
                };
                Ok(format!("columnar: {arg}\n"))
            }
            "workers" => {
                if arg.is_empty() {
                    return Ok(format!("workers: {}\n", self.workers));
                }
                let n: usize = arg.parse().map_err(|_| {
                    GeoError::Execution(format!("bad worker count `{arg}` (positive integer)"))
                })?;
                if n == 0 {
                    return Err(GeoError::Execution(
                        "bad worker count `0` (positive integer)".into(),
                    ));
                }
                self.workers = n;
                Ok(format!("workers: {n}\n"))
            }
            "metrics" => {
                let mut out = match &self.last_metrics {
                    Some(m) => format!("{m}"),
                    None => {
                        "no runtime metrics yet; run a query with \\runtime parallel\n".to_string()
                    }
                };
                if let Some(f) = &self.last_failover {
                    out.push_str(f);
                }
                if let Ok(eng) = self.engine() {
                    let memo = eng.implication_memo();
                    let _ = writeln!(
                        out,
                        "policy memo: {} hits, {} misses, {} cached verdicts",
                        memo.hits(),
                        memo.misses(),
                        memo.len(),
                    );
                }
                if let Some(svc) = &self.churn {
                    let h = svc.health();
                    let _ = writeln!(
                        out,
                        "catalog plane: head seq {}, floor {} ({} compactions), \
                         lag p50 {} max {}, {} bootstraps, {} wipes, {} chain rejects",
                        h.head.seq,
                        h.floor_seq,
                        h.compactions,
                        h.lag_p50,
                        h.lag_max,
                        h.bootstraps,
                        h.wipes,
                        h.chain_rejects,
                    );
                }
                Ok(out)
            }
            "explain" => self.explain(arg),
            "adhoc" => self.adhoc(arg),
            "server" => self.server_burst(arg),
            "tenants" => self.tenants_table(),
            "faults" => self.set_faults(arg),
            "hedge" => self.set_hedge(arg),
            "health" => self.health(),
            "deadline" => self.set_deadline(arg),
            "cancel" => {
                self.cancel.cancel();
                Ok(
                    "cancellation armed: the next statement unwinds with a typed \
                    `cancelled` error\n"
                        .to_string(),
                )
            }
            other => Err(GeoError::Execution(format!(
                "unknown command `\\{other}`; try \\help"
            ))),
        }
    }

    fn load_demo(&mut self, which: &str) -> Result<String> {
        let mut parts = which.split_whitespace();
        let name = parts.next().unwrap_or("carco");
        match name {
            "carco" => {
                self.service = None;
                self.engine = Some(demo::carco()?);
                self.attach_catalog();
                Ok(
                    "loaded CarCo demo: customer@N, orders@E, supply@A with P_N/P_E/P_A\n"
                        .to_string(),
                )
            }
            "tpch" => {
                let sf: f64 = parts
                    .next()
                    .map(|s| s.parse().unwrap_or(0.002))
                    .unwrap_or(0.002);
                self.service = None;
                self.engine = Some(demo::tpch(sf)?);
                self.attach_catalog();
                Ok(format!(
                    "loaded TPC-H demo at SF {sf}: Table 2 distribution over L1–L5, CR+A policies\n"
                ))
            }
            other => Err(GeoError::Execution(format!(
                "unknown demo `{other}` (carco|tpch [sf])"
            ))),
        }
    }

    fn tables(&self) -> Result<String> {
        let eng = self.engine()?;
        let mut out = String::new();
        for db in eng.catalog().databases() {
            let _ = writeln!(out, "{} @ {}", db.name, db.location);
            for t in db.tables() {
                let rows = t
                    .data()
                    .map(|d| format!("{} rows", d.row_count()))
                    .unwrap_or_else(|| format!("~{} rows (stats only)", t.stats.row_count));
                let _ = writeln!(out, "  {} {} — {rows}", t.table.table, t.schema);
            }
        }
        Ok(out)
    }

    fn add_policy(&mut self, text: &str) -> Result<String> {
        let expr = geoqp_parser::parse_policy(text)?;
        let eng = self.engine()?;
        let entries = eng.catalog().resolve(&expr.table);
        let entry = entries
            .first()
            .ok_or_else(|| GeoError::Policy(format!("unknown table `{}`", expr.table)))?;
        // Policies are registered into a rebuilt catalog (the engine holds
        // them immutably).
        let mut policies = PolicyCatalog::new();
        for e in eng.policies().expressions() {
            let sch = eng
                .catalog()
                .resolve(&e.expr.table)
                .first()
                .map(|t| t.schema.as_ref().clone())
                .ok_or_else(|| GeoError::Policy("stale policy table".into()))?;
            policies.register(e.expr.clone(), &sch)?;
        }
        policies.register(expr, &entry.schema)?;
        self.swap_policies(policies)?;
        Ok("policy registered\n".to_string())
    }

    fn add_denial(&mut self, text: &str) -> Result<String> {
        let full = format!("deny {text}");
        let denial = geoqp_parser::parse_denial(if text.starts_with("deny") {
            text
        } else {
            &full
        })?;
        let eng = self.engine()?;
        let entries = eng.catalog().resolve(&denial.table);
        let entry = entries
            .first()
            .ok_or_else(|| GeoError::Policy(format!("unknown table `{}`", denial.table)))?;
        let grants = expand_denials(
            &TableRef::bare(&denial.table.table),
            &entry.schema,
            &[denial],
            eng.catalog().locations(),
        )?;
        let mut policies = PolicyCatalog::new();
        for e in eng.policies().expressions() {
            let sch = eng
                .catalog()
                .resolve(&e.expr.table)
                .first()
                .map(|t| t.schema.as_ref().clone())
                .ok_or_else(|| GeoError::Policy("stale policy table".into()))?;
            policies.register(e.expr.clone(), &sch)?;
        }
        let mut out = String::new();
        for g in grants {
            let _ = writeln!(out, "expanded grant: {g}");
            policies.register(g, &entry.schema)?;
        }
        self.swap_policies(policies)?;
        Ok(out)
    }

    fn swap_policies(&mut self, policies: PolicyCatalog) -> Result<()> {
        let eng = self.engine()?;
        let catalog = Arc::clone(eng.catalog());
        let topology = eng.topology().clone();
        self.engine = Some(Engine::new(catalog, Arc::new(policies), topology));
        // `\policy` / `\deny` rewrite the whole catalog, so the log of
        // record restarts from the rewritten set as its new base.
        self.attach_catalog();
        Ok(())
    }

    /// (Re)build the replicated catalog service over the loaded engine's
    /// policies: the engine's policy set becomes log sequence 0 and
    /// every site's replica starts fresh at the head.
    fn attach_catalog(&mut self) {
        self.churn = self.engine.as_ref().map(|eng| {
            let coordinator = eng
                .catalog()
                .locations()
                .iter()
                .next()
                .cloned()
                .unwrap_or_else(|| Location::new("L0"));
            Arc::new(CatalogService::new(
                Arc::clone(eng.catalog()),
                (**eng.policies()).clone(),
                coordinator,
            ))
        });
    }

    fn catalog_service(&self) -> Result<Arc<CatalogService>> {
        self.churn
            .as_ref()
            .map(Arc::clone)
            .ok_or_else(|| GeoError::Execution("no deployment loaded; try \\demo carco".into()))
    }

    /// Re-admit the session under the catalog head `pin`: the engine is
    /// forked over the epoch-pinned snapshot (cold implication memo, same
    /// storage and topology), and every replica is brought fully up to
    /// date so no site refuses transfers as catalog-stale.
    fn refresh_engine(&mut self, svc: &CatalogService, pin: CatalogPin) -> Result<()> {
        svc.sync_full();
        let snapshot = svc.snapshot(pin.seq)?;
        let forked = self.engine()?.fork_with_policies(snapshot);
        self.engine = Some(forked);
        Ok(())
    }

    /// `\grant ship <attrs> from <table> to <locs> …` — append a grant to
    /// the catalog log. The new policy takes effect for queries admitted
    /// from the new head onward; it never interrupts in-flight work.
    fn grant(&mut self, text: &str) -> Result<String> {
        let expr = geoqp_parser::parse_policy(text)?;
        let display = expr.to_string();
        let svc = self.catalog_service()?;
        let pin = svc.grant(expr)?;
        self.refresh_engine(&svc, pin)?;
        let pid = svc
            .find_live(&display)
            .expect("the grant just appended is live at the head");
        Ok(format!(
            "granted p{pid}: {display}\ncatalog head: seq {}, epoch {:016x}\n",
            pin.seq, pin.epoch
        ))
    }

    /// `\revoke <pid>|<expression>` — append a revocation. Unlike grants,
    /// revocations reach in-flight queries: one caught shipping on a
    /// now-revoked edge re-plans under the new epoch or refuses typed.
    fn revoke(&mut self, arg: &str) -> Result<String> {
        if arg.is_empty() {
            return Err(GeoError::Execution(
                "usage: \\revoke <pid>|<policy expression>; \\catalog lists pids".into(),
            ));
        }
        let svc = self.catalog_service()?;
        let pid = match arg.parse::<u64>() {
            Ok(pid) => pid,
            Err(_) => {
                let display = geoqp_parser::parse_policy(arg)?.to_string();
                svc.find_live(&display).ok_or_else(|| {
                    GeoError::Policy(format!(
                        "no live policy matches `{display}`; \\catalog lists pids"
                    ))
                })?
            }
        };
        let pin = svc.revoke(pid)?;
        self.refresh_engine(&svc, pin)?;
        Ok(format!(
            "revoked p{pid}\ncatalog head: seq {}, epoch {:016x}; queries pinned to \
             earlier epochs re-plan or refuse typed\n",
            pin.seq, pin.epoch
        ))
    }

    /// `\catalog` — the replicated catalog's state: head pin, live
    /// policies with their stable pids, the append-only log, and each
    /// site replica's applied sequence.
    fn catalog_status(&self) -> Result<String> {
        let svc = self.catalog_service()?;
        let head = svc.head();
        let mut out = format!(
            "catalog head: seq {}, epoch {:016x} (coordinator {})\nlive policies:\n",
            head.seq,
            head.epoch,
            svc.coordinator()
        );
        let live = svc.live_policies();
        if live.is_empty() {
            out.push_str("  (none — nothing may leave its site)\n");
        }
        for (pid, expr) in live {
            let _ = writeln!(out, "  p{pid}: {expr}");
        }
        let history = svc.history();
        if !history.is_empty() {
            out.push_str("log:\n");
            for line in history {
                let _ = writeln!(out, "  {line}");
            }
        }
        let health = svc.health();
        out.push_str("replicas:\n");
        for r in &health.replicas {
            let lag = if r.unbounded {
                "∞ (severed)".to_string()
            } else {
                r.lag.to_string()
            };
            let _ = writeln!(
                out,
                "  {}: seq {}, lag {lag}{}",
                r.site,
                r.seq,
                if r.seq < head.seq { " (STALE)" } else { "" }
            );
        }
        let _ = writeln!(
            out,
            "plane: floor seq {} ({} compactions), lag p50 {} max {}, \
             {} bootstraps, {} wipes, {} chain rejects, \
             {} snapshot bytes, {} entry bytes",
            health.floor_seq,
            health.compactions,
            health.lag_p50,
            health.lag_max,
            health.bootstraps,
            health.wipes,
            health.chain_rejects,
            health.snapshot_bytes,
            health.entry_bytes,
        );
        Ok(out)
    }

    /// `\faults` shows the active plan, `\faults off` clears it, anything
    /// else is parsed as a fault spec (`crash:L2; flaky:L1-L3:0.5@..8`),
    /// optionally with a leading `seed=N;` element.
    fn set_faults(&mut self, arg: &str) -> Result<String> {
        if arg.is_empty() {
            return Ok(match &self.faults {
                None => "faults: off\n".to_string(),
                Some(f) => format!("faults: active (seed {})\n", f.seed()),
            });
        }
        if arg == "off" {
            self.faults = None;
            return Ok("faults: off\n".to_string());
        }
        let mut seed = 42u64;
        let spec: Vec<&str> = arg
            .split(';')
            .map(str::trim)
            .filter(|part| {
                if let Some(s) = part.strip_prefix("seed=") {
                    seed = s.trim().parse().unwrap_or(42);
                    false
                } else {
                    true
                }
            })
            .collect();
        let plan = FaultPlan::parse(&spec.join(";"), seed).map_err(GeoError::Execution)?;
        self.faults = Some(plan);
        Ok(format!("faults: active (seed {seed})\n"))
    }

    /// `\hedge` shows the current setting, `\hedge off` disables the
    /// gray-failure defense, `\hedge on` enables it with defaults, and
    /// `\hedge <ms>` enables it with an explicit backup-launch delay.
    fn set_hedge(&mut self, arg: &str) -> Result<String> {
        match arg {
            "" => Ok(match &self.hedge {
                None => "hedge: off\n".to_string(),
                Some(h) => format!(
                    "hedge: on (delay {:.1} ms, hedge ratio {:.2}, trip ratio {:.2})\n",
                    h.delay_ms, h.health.hedge_ratio, h.health.trip_ratio
                ),
            }),
            "off" => {
                self.hedge = None;
                Ok("hedge: off\n".to_string())
            }
            "on" => {
                self.hedge = Some(HedgeConfig::default());
                Ok("hedge: on (defaults)\n".to_string())
            }
            ms => {
                let delay: f64 = ms.parse().map_err(|_| {
                    GeoError::Execution(format!("bad hedge setting `{ms}` (on|off|<delay ms>)"))
                })?;
                if !delay.is_finite() || delay < 0.0 {
                    return Err(GeoError::Execution(format!(
                        "bad hedge setting `{ms}` (on|off|<delay ms>)"
                    )));
                }
                self.hedge = Some(HedgeConfig {
                    delay_ms: delay,
                    ..HedgeConfig::default()
                });
                Ok(format!("hedge: on (delay {delay:.1} ms)\n"))
            }
        }
    }

    /// `\health` renders the per-link-lane breaker states the last hedged
    /// query observed.
    fn health(&self) -> Result<String> {
        let Some(reports) = &self.last_health else {
            return Ok(
                "no link health yet; enable \\hedge and run a query under \\faults\n".to_string(),
            );
        };
        if reports.is_empty() {
            return Ok("link health: no cross-site transfers observed\n".to_string());
        }
        let mut out = String::new();
        for r in reports {
            let _ = writeln!(
                out,
                "{} -> {} (lane {}): breaker {}, ewma {:.2}x model, {} obs, \
                 {} consecutive failure(s), {} trip(s)",
                r.from,
                r.to,
                r.lane,
                r.state.breaker,
                r.state.ewma_ratio,
                r.state.observations,
                r.state.consecutive_failures,
                r.state.trips,
            );
        }
        Ok(out)
    }

    /// `\deadline` shows the active budget, `\deadline off` clears it,
    /// `\deadline <ms>` sets a simulated-clock completion budget enforced
    /// at batch granularity on every subsequent query.
    fn set_deadline(&mut self, arg: &str) -> Result<String> {
        if arg.is_empty() {
            return Ok(match self.deadline {
                None => "deadline: off\n".to_string(),
                Some(d) => format!("deadline: {:.1} ms simulated\n", d.budget_ms),
            });
        }
        if arg == "off" {
            self.deadline = None;
            return Ok("deadline: off\n".to_string());
        }
        let ms: f64 = arg
            .parse()
            .map_err(|_| GeoError::Execution(format!("bad deadline `{arg}` (milliseconds|off)")))?;
        if !ms.is_finite() || ms < 0.0 {
            return Err(GeoError::Execution(format!(
                "bad deadline `{arg}` (milliseconds|off)"
            )));
        }
        self.deadline = Some(QueryDeadline::new(ms));
        Ok(format!("deadline: {ms:.1} ms simulated\n"))
    }

    /// The failover knobs every controlled execution uses: resume from
    /// checkpoints, honor the session deadline, poll the session token.
    fn failover_opts(&self) -> FailoverOpts {
        FailoverOpts {
            max_replans: 4,
            resume: true,
            deadline: self.deadline,
            cancel: Some(self.cancel.clone()),
            hedge: self.hedge.clone(),
            columnar: self.columnar,
            workers_per_site: self.workers,
            // Every controlled query pins the catalog head at admission;
            // a mid-flight revocation re-plans it under the new epoch.
            churn: self.churn.as_ref().map(|svc| ChurnOpts {
                service: Arc::clone(svc),
                pin: svc.head(),
            }),
        }
    }

    /// Whether queries must run through the resilient path even without a
    /// fault plan (a deadline or an armed cancellation needs the control
    /// surface threaded through execution).
    fn needs_control(&self) -> bool {
        self.deadline.is_some() || self.cancel.is_cancelled() || self.hedge.is_some()
    }

    /// Record the failover counters for `\metrics` and render the summary
    /// fragment appended to the result line.
    fn note_failover(&mut self, result: &ResilientResult) -> String {
        let mut summary = format!(
            "failover: {} replans, excluded {}; checkpoints: {} hits, {} misses; \
             {} bytes resumed, {} bytes recomputed\n",
            result.replans,
            if result.excluded.is_empty() {
                "∅".to_string()
            } else {
                result.excluded.to_string()
            },
            result.checkpoint_hits,
            result.checkpoint_misses,
            result.resumed_bytes,
            result.recomputed_bytes,
        );
        if result.churn_replans > 0 || result.grant_retries > 0 {
            let _ = writeln!(
                summary,
                "churn: {} revocation re-plan(s), {} grant retry(ies){}",
                result.churn_replans,
                result.grant_retries,
                if result.grant_retries > 0 {
                    " — refused under the revoked pin, rescued under the head"
                } else {
                    ""
                },
            );
        }
        if result.hedges_launched > 0 || result.breaker_trips > 0 {
            let _ = writeln!(
                summary,
                "hedging: {} launched / {} won, {} relay(s), {} breaker trip(s)",
                result.hedges_launched, result.hedges_won, result.relays_used, result.breaker_trips,
            );
        }
        if !result.avoided_links.is_empty() {
            let links: Vec<String> = result
                .avoided_links
                .iter()
                .map(|(a, b)| format!("{a}->{b}"))
                .collect();
            let _ = writeln!(summary, "avoided gray link(s): {}", links.join(", "));
        }
        if !result.waived_links.is_empty() {
            let links: Vec<String> = result
                .waived_links
                .iter()
                .map(|(a, b)| format!("{a}->{b}"))
                .collect();
            let _ = writeln!(
                summary,
                "waived condemnation(s) (no compliant detour, riding the gray link): {}",
                links.join(", ")
            );
        }
        self.last_health = self.hedge.as_ref().map(|_| result.link_health.clone());
        self.last_failover = Some(summary);
        format!(
            "{} ckpt hits/{} misses, {} B resumed",
            result.checkpoint_hits, result.checkpoint_misses, result.resumed_bytes
        )
    }

    fn explain(&mut self, sql: &str) -> Result<String> {
        let eng = self.engine()?;
        let optimized = eng.optimize_sql(sql, self.mode, self.result_location.clone())?;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "annotated plan (ℰ = execution trait, 𝒮 = shipping trait):"
        );
        out.push_str(&geoqp_core::explain::display_annotated(
            &optimized.annotated,
        ));
        let _ = writeln!(
            out,
            "\nphysical plan (result at {}):",
            optimized.result_location
        );
        out.push_str(&geoqp_plan::display::display_physical(&optimized.physical));
        let audit = match eng.audit(&optimized.physical) {
            Ok(()) => "compliant".to_string(),
            Err(e) => format!("NON-COMPLIANT — {e}"),
        };
        let _ = writeln!(
            out,
            "\naudit: {audit}\noptimized in {:.2} ms (η = {}, {} memo groups)",
            optimized.stats.total_ms, optimized.stats.eta, optimized.stats.memo_groups
        );
        Ok(out)
    }

    /// `\adhoc [n [seed]]` — generate seeded ad-hoc queries over the
    /// loaded TPC-H deployment, show their SQL, and check that each one
    /// plans under the session's optimizer mode.
    fn adhoc(&mut self, arg: &str) -> Result<String> {
        let mut parts = arg.split_whitespace();
        let n: usize = match parts.next() {
            None => 5,
            Some(s) => s
                .parse()
                .map_err(|_| GeoError::Execution(format!("bad query count `{s}`")))?,
        };
        let seed: u64 = match parts.next() {
            None => 2021,
            Some(s) => s
                .parse()
                .map_err(|_| GeoError::Execution(format!("bad seed `{s}`")))?,
        };
        let eng = self.engine()?;
        let queries = geoqp_tpch::adhoc::generate_adhoc(eng.catalog(), n, seed)?;
        let mut out = format!("{n} ad-hoc queries (seed {seed}):\n");
        for q in &queries {
            let verdict = match eng.optimize(&q.plan, self.mode, self.result_location.clone()) {
                Ok(opt) => format!("plans, est ship {:.1} ms", opt.stats.est_ship_cost_ms),
                Err(e) => format!("REJECTED: {}", e.kind()),
            };
            let _ = writeln!(
                out,
                "  #{:<4} {}{} — {verdict}\n        {}",
                q.id,
                q.tables.join(" ⋈ "),
                if q.aggregated { " [agg]" } else { "" },
                q.sql
            );
        }
        Ok(out)
    }

    /// `\server [n [seed]]` — drive an `n`-query concurrent burst through
    /// a four-tenant [`QueryService`] over the loaded deployment. The
    /// service (one tenant per policy template, disjoint generation
    /// seeds) is created on first use and kept for the session, so
    /// repeated bursts accumulate counters and reuse the plan cache;
    /// `\tenants` renders them.
    fn server_burst(&mut self, arg: &str) -> Result<String> {
        let mut parts = arg.split_whitespace();
        let n: usize = match parts.next() {
            None => 8,
            Some(s) => s
                .parse()
                .map_err(|_| GeoError::Execution(format!("bad query count `{s}`")))?,
        };
        let seed: u64 = match parts.next() {
            None => 2021,
            Some(s) => s
                .parse()
                .map_err(|_| GeoError::Execution(format!("bad seed `{s}`")))?,
        };
        let eng = self.engine()?;
        let catalog = Arc::clone(eng.catalog());
        let queries = geoqp_tpch::adhoc::generate_adhoc(&catalog, n, seed)?;
        if self.service.is_none() {
            let topology = eng.topology().clone();
            let svc = QueryService::new(ServiceConfig {
                workers: 4,
                cache_capacity: 256,
                columnar: self.columnar,
                max_replans: 4,
            });
            let mut tenants = Vec::new();
            for (i, template) in [
                PolicyTemplate::T,
                PolicyTemplate::C,
                PolicyTemplate::CR,
                PolicyTemplate::CRA,
            ]
            .iter()
            .enumerate()
            {
                let policies =
                    geoqp_tpch::generate_policies(&catalog, *template, 10, 2021 ^ (i as u64 + 1))?;
                tenants.push(svc.add_tenant(
                    template.name(),
                    Arc::clone(&catalog),
                    Arc::new(policies),
                    topology.clone(),
                    TenantConfig {
                        max_inflight: 4,
                        max_queue: 4096,
                        quantum: 1,
                    },
                ));
            }
            self.service = Some(ServerSession { svc, tenants });
        }
        let session = self.service.as_ref().expect("service just created");
        // Submit the whole burst before waiting on any ticket: all n
        // queries are in flight together, contending through admission,
        // the DRR scheduler, and the shared plan cache.
        let mut tickets = Vec::with_capacity(queries.len());
        let (mut rejected, mut failed, mut cached) = (0u64, 0u64, 0u64);
        for (i, q) in queries.iter().enumerate() {
            let tenant = session.tenants[i % session.tenants.len()];
            match session.svc.submit(tenant, QueryRequest::new(&q.sql)) {
                Ok(t) => tickets.push(t),
                Err(e) if e.kind() == "admission" => rejected += 1,
                Err(e) => return Err(e),
            }
        }
        let mut completed = 0u64;
        for ticket in tickets {
            match ticket.wait() {
                Ok(reply) => {
                    completed += 1;
                    cached += u64::from(reply.cached);
                }
                Err(_) => failed += 1,
            }
        }
        let cs = session.svc.cache_stats();
        Ok(format!(
            "burst: {n} queries (seed {seed}) across {} tenants — {completed} completed, \
             {failed} failed, {rejected} rejected; {cached} served from the plan cache \
             (service hit rate {:.1}%); \\tenants for the per-tenant breakdown\n",
            session.tenants.len(),
            cs.hit_rate() * 100.0,
        ))
    }

    /// `\tenants` — the per-tenant service counters accumulated over
    /// every `\server` burst this session.
    fn tenants_table(&self) -> Result<String> {
        let Some(session) = &self.service else {
            return Ok("no service yet; run \\server <n> [seed] first\n".to_string());
        };
        let mut out = format!(
            "{:<8}{:>9}{:>9}{:>9}{:>8}{:>8}{:>11}{:>10}{:>10}\n",
            "tenant",
            "admitted",
            "rejected",
            "inflight",
            "queued",
            "done",
            "cache-hit",
            "p50 ms",
            "p99 ms",
        );
        for id in &session.tenants {
            let s = session.svc.tenant_stats(*id)?;
            let _ = writeln!(
                out,
                "{:<8}{:>9}{:>9}{:>9}{:>8}{:>8}{:>10.1}%{:>10.1}{:>10.1}",
                s.name,
                s.admitted,
                s.rejected,
                s.inflight,
                s.queued,
                s.completed,
                s.cache_hit_rate() * 100.0,
                s.p50_ms,
                s.p99_ms,
            );
        }
        let cs = session.svc.cache_stats();
        let _ = writeln!(
            out,
            "plan cache: {} hits, {} misses, {} evictions, {}/{} entries",
            cs.hits, cs.misses, cs.evictions, cs.len, cs.capacity,
        );
        Ok(out)
    }

    fn sql(&mut self, sql: &str) -> Result<String> {
        match self.runtime {
            RuntimeMode::Sequential => self.sql_sequential(sql),
            RuntimeMode::Parallel => self.sql_parallel(sql),
        }
    }

    fn sql_sequential(&mut self, sql: &str) -> Result<String> {
        let eng = self.engine()?;
        if self.faults.is_some() || self.needs_control() {
            // Each query replays the fault schedule from step 0, so a
            // given seed + spec is deterministic per statement. Without a
            // fault plan, an empty one threads the deadline/cancel
            // controls through the same resilient path.
            let no_faults = FaultPlan::new(0);
            let faults = self.faults.as_ref().unwrap_or(&no_faults);
            faults.reset_clock();
            let opts = self.failover_opts();
            let attempt = eng.run_sql_resilient_opts(
                sql,
                self.mode,
                self.result_location.clone(),
                faults,
                &RetryPolicy::default(),
                &opts,
            );
            // An armed cancellation consumes itself on the statement it
            // unwound, so the session keeps working afterwards.
            self.cancel.reset();
            let (optimized, result) = attempt?;
            let mut out = render_rows(&result.rows, &result.physical.schema.names());
            let audit = match eng.audit(&result.physical) {
                Ok(()) => "compliant",
                Err(_) => "NON-COMPLIANT",
            };
            let ckpt = self.note_failover(&result);
            let _ = writeln!(
                out,
                "({} rows at {}; {} transfers, {} bytes, {:.1} ms simulated WAN; \
                 {} faults, {} replans, excluded {}; {ckpt}; plan {audit})",
                result.rows.len(),
                optimized.result_location,
                result.transfers.transfer_count(),
                result.transfers.total_bytes(),
                result.transfers.total_cost_ms(),
                result.transfers.fault_count(),
                result.replans,
                if result.excluded.is_empty() {
                    "∅".to_string()
                } else {
                    result.excluded.to_string()
                },
            );
            return Ok(out);
        }
        let (optimized, result) = if self.columnar {
            eng.run_sql_columnar(sql, self.mode, self.result_location.clone())?
        } else {
            eng.run_sql(sql, self.mode, self.result_location.clone())?
        };
        let mut out = render_rows(&result.rows, &optimized.physical.schema.names());
        let audit = match eng.audit(&optimized.physical) {
            Ok(()) => "compliant",
            Err(_) => "NON-COMPLIANT",
        };
        let _ = writeln!(
            out,
            "({} rows at {}; {} transfers, {} bytes, {:.1} ms simulated WAN; plan {audit})",
            result.rows.len(),
            optimized.result_location,
            result.transfers.transfer_count(),
            result.transfers.total_bytes(),
            result.transfers.total_cost_ms(),
        );
        Ok(out)
    }

    fn sql_parallel(&mut self, sql: &str) -> Result<String> {
        let eng = self.engine()?;
        if self.faults.is_some() || self.needs_control() {
            let no_faults = FaultPlan::new(0);
            let faults = self.faults.as_ref().unwrap_or(&no_faults);
            faults.reset_clock();
            let opts = self.failover_opts();
            let attempt = eng.run_sql_resilient_parallel_opts(
                sql,
                self.mode,
                self.result_location.clone(),
                faults,
                &RetryPolicy::default(),
                &opts,
            );
            self.cancel.reset();
            let (optimized, result, metrics) = attempt?;
            let mut out = render_rows(&result.rows, &result.physical.schema.names());
            let audit = match eng.audit(&result.physical) {
                Ok(()) => "compliant",
                Err(_) => "NON-COMPLIANT",
            };
            let ckpt = self.note_failover(&result);
            let _ = writeln!(
                out,
                "({} rows at {}; {} transfers, {} bytes; pipelined completion \
                 {:.1} ms of {:.1} ms network; {} faults, {} replans, excluded {}; \
                 {ckpt}; plan {audit}; \\metrics for detail)",
                result.rows.len(),
                optimized.result_location,
                result.transfers.transfer_count(),
                result.transfers.total_bytes(),
                metrics.completion_ms,
                metrics.network_ms,
                result.transfers.fault_count(),
                result.replans,
                if result.excluded.is_empty() {
                    "∅".to_string()
                } else {
                    result.excluded.to_string()
                },
            );
            self.last_metrics = Some(metrics);
            return Ok(out);
        }
        let optimized = eng.optimize_sql(sql, self.mode, self.result_location.clone())?;
        let config = RuntimeConfig {
            columnar: self.columnar,
            workers_per_site: self.workers,
            ..RuntimeConfig::default()
        };
        let result =
            eng.execute_parallel_opts(&optimized.physical, None, &RetryPolicy::none(), &config)?;
        let mut out = render_rows(&result.rows, &optimized.physical.schema.names());
        let audit = match eng.audit(&optimized.physical) {
            Ok(()) => "compliant",
            Err(_) => "NON-COMPLIANT",
        };
        let _ = writeln!(
            out,
            "({} rows at {}; {} transfers, {} bytes; pipelined completion {:.1} ms \
             of {:.1} ms network ({:.2}x overlap); plan {audit}; \\metrics for detail)",
            result.rows.len(),
            optimized.result_location,
            result.transfers.transfer_count(),
            result.transfers.total_bytes(),
            result.metrics.completion_ms,
            result.metrics.network_ms,
            result.metrics.overlap_speedup(),
        );
        self.last_metrics = Some(result.metrics);
        Ok(out)
    }
}

/// Render rows as an aligned text table (capped at 40 rows).
pub fn render_rows(rows: &Rows, columns: &[&str]) -> String {
    const MAX: usize = 40;
    let mut cells: Vec<Vec<String>> = Vec::with_capacity(rows.len().min(MAX) + 1);
    cells.push(columns.iter().map(|c| c.to_string()).collect());
    for row in rows.iter().take(MAX) {
        cells.push(row.iter().map(|v| v.to_string()).collect());
    }
    let ncols = columns.len();
    let mut widths = vec![0usize; ncols];
    for row in &cells {
        for (i, c) in row.iter().enumerate() {
            widths[i] = widths[i].max(c.chars().count());
        }
    }
    let mut out = String::new();
    for (ri, row) in cells.iter().enumerate() {
        for (i, c) in row.iter().enumerate() {
            let _ = write!(out, "{:width$}  ", c, width = widths[i]);
        }
        out.push('\n');
        if ri == 0 {
            for w in &widths {
                let _ = write!(out, "{}  ", "-".repeat(*w));
            }
            out.push('\n');
        }
    }
    if rows.len() > MAX {
        let _ = writeln!(out, "… {} more rows", rows.len() - MAX);
    }
    out
}

const HELP: &str = "\
commands:
  \\demo carco | tpch [sf]   load a demo deployment
  \\tables                   list databases and tables
  \\locations                list sites
  \\policies                 list dataflow policies
  \\policy <expression>      register: ship <attrs> from <t> to <locs> …
  \\deny <expression>        register a denial (closed-world expansion)
  \\grant <expression>       append a grant to the replicated catalog log
                            (takes effect for queries admitted after it)
  \\revoke <pid|expression>  append a revocation (pushed to in-flight
                            queries: re-plan under the new epoch or a
                            typed refusal)
  \\catalog                  catalog head (seq + epoch), live policies
                            with pids, the log, per-site replica seqs
  \\mode compliant|traditional
  \\runtime parallel|sequential
                            choose the execution runtime (default sequential)
  \\columnar on|off          run queries on the vectorized columnar engine
  \\workers [n]              morsel workers per site (columnar parallel runtime)
                            (same rows, bytes, and audits; faster CPU path)
  \\metrics                  per-site/per-edge metrics of the last parallel
                            query, plus policy-memo hit/miss counters
  \\at <location>|anywhere   pin the result location
  \\explain <sql>            show annotated + physical plan
  \\adhoc [n [seed]]         generate seeded ad-hoc queries over the loaded
                            TPC-H deployment and show their SQL
  \\server [n [seed]]        drive an n-query concurrent burst through a
                            four-tenant query service (admission control,
                            fair scheduling, shared plan cache) over the
                            loaded deployment
  \\tenants                  per-tenant service counters (admitted,
                            rejected, cache-hit rate, p50/p99) accumulated
                            across \\server bursts
  \\faults <spec>|off        inject faults: crash:L2; drop:L1-L3@2..5;
                            flaky:L1-L2:0.3; delay:L1-L4:50ms;
                            degrade:L1-L4:3x@2..9; loss:L2-L3:0.4@..6;
                            partition:L1,L2@..9; seed=N
  \\hedge on|off|<ms>        gray-failure defense: link health scoring,
                            per-link circuit breakers, compliant hedged
                            backups (<ms> = backup launch delay)
  \\health                   per-link breaker/EWMA state of the last
                            hedged query
  \\deadline <ms>|off        simulated-clock completion budget per query
                            (typed `deadline` error past the budget)
  \\cancel                   cancel the next statement cooperatively
                            (typed `cancelled` error, all workers join)
  \\quit                     exit
anything else is executed as SQL\n";

mod demo {
    use super::*;
    use geoqp_common::{DataType, Field, LocationSet, Schema, Value};
    use geoqp_storage::{Table, TableStats};

    /// The paper's running example, with a little data.
    pub fn carco() -> Result<Engine> {
        let mut catalog = Catalog::new();
        catalog.add_database("db-n", Location::new("N"))?;
        catalog.add_database("db-e", Location::new("E"))?;
        catalog.add_database("db-a", Location::new("A"))?;
        let customer = catalog.add_table(
            "db-n",
            "customer",
            Schema::new(vec![
                Field::new("c_custkey", DataType::Int64),
                Field::new("c_name", DataType::Str),
                Field::new("c_acctbal", DataType::Float64),
            ])?,
            TableStats::new(3, 40.0),
        )?;
        let orders = catalog.add_table(
            "db-e",
            "orders",
            Schema::new(vec![
                Field::new("o_custkey", DataType::Int64),
                Field::new("o_ordkey", DataType::Int64),
                Field::new("o_totprice", DataType::Float64),
            ])?,
            TableStats::new(4, 24.0),
        )?;
        let supply = catalog.add_table(
            "db-a",
            "supply",
            Schema::new(vec![
                Field::new("s_ordkey", DataType::Int64),
                Field::new("s_quantity", DataType::Int64),
            ])?,
            TableStats::new(6, 16.0),
        )?;
        customer.set_data(Table::new(
            Arc::clone(&customer.schema),
            vec![
                vec![Value::Int64(1), Value::str("alice"), Value::Float64(120.0)],
                vec![Value::Int64(2), Value::str("bob"), Value::Float64(75.5)],
                vec![Value::Int64(3), Value::str("carol"), Value::Float64(310.0)],
            ],
        )?)?;
        orders.set_data(Table::new(
            Arc::clone(&orders.schema),
            vec![
                vec![Value::Int64(1), Value::Int64(10), Value::Float64(55.0)],
                vec![Value::Int64(2), Value::Int64(11), Value::Float64(25.0)],
                vec![Value::Int64(3), Value::Int64(12), Value::Float64(90.0)],
                vec![Value::Int64(1), Value::Int64(13), Value::Float64(42.0)],
            ],
        )?)?;
        supply.set_data(Table::new(
            Arc::clone(&supply.schema),
            vec![
                vec![Value::Int64(10), Value::Int64(5)],
                vec![Value::Int64(11), Value::Int64(9)],
                vec![Value::Int64(12), Value::Int64(4)],
                vec![Value::Int64(12), Value::Int64(2)],
                vec![Value::Int64(13), Value::Int64(7)],
                vec![Value::Int64(10), Value::Int64(1)],
            ],
        )?)?;
        let mut policies = PolicyCatalog::new();
        for text in [
            "ship c_custkey, c_name from db-n.customer to *",
            "ship o_totprice as aggregates sum from db-e.orders to A group by o_custkey, o_ordkey",
            "ship o_custkey, o_ordkey from db-e.orders to N, A",
            "ship s_quantity as aggregates sum from db-a.supply to E group by s_ordkey",
        ] {
            let e = geoqp_parser::parse_policy(text)?;
            let entry = catalog.resolve_one(&e.table)?;
            policies.register(e, &entry.schema)?;
        }
        let topo = NetworkTopology::uniform(LocationSet::from_iter(["N", "E", "A"]), 120.0, 100.0);
        Ok(Engine::new(Arc::new(catalog), Arc::new(policies), topo))
    }

    /// The paper's evaluation deployment, populated at a small scale.
    pub fn tpch(sf: f64) -> Result<Engine> {
        let catalog = Arc::new(geoqp_tpch::paper_catalog(sf));
        geoqp_tpch::populate(&catalog, sf, 7)?;
        let policies =
            geoqp_tpch::generate_policies(&catalog, geoqp_tpch::PolicyTemplate::CRA, 10, 2021)?;
        Ok(Engine::new(
            catalog,
            Arc::new(policies),
            NetworkTopology::paper_wan(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn carco_session_end_to_end() {
        let mut sh = Shell::new();
        assert!(
            sh.run_command("SELECT 1 FROM x").is_err(),
            "no deployment yet"
        );
        sh.run_command("\\demo carco").unwrap();
        let out = sh.run_command("\\tables").unwrap();
        assert!(out.contains("customer"));
        assert!(out.contains("db-a @ A"));

        let out = sh
            .run_command(
                "SELECT c_name, SUM(o_totprice) AS total FROM customer, orders \
                 WHERE c_custkey = o_custkey GROUP BY c_name ORDER BY c_name",
            )
            .unwrap();
        assert!(out.contains("alice"), "{out}");
        assert!(out.contains("plan compliant"));

        // Raw account balances cannot leave N: pin the result to E.
        sh.run_command("\\at E").unwrap();
        let err = sh
            .run_command("SELECT c_name, c_acctbal FROM customer")
            .unwrap_err();
        assert_eq!(err.kind(), "rejected");
        sh.run_command("\\at N").unwrap();
        assert!(sh
            .run_command("SELECT c_name, c_acctbal FROM customer")
            .is_ok());
    }

    #[test]
    fn explain_and_modes() {
        let mut sh = Shell::new();
        sh.run_command("\\demo carco").unwrap();
        let out = sh
            .run_command(
                "\\explain SELECT c_name FROM customer, orders WHERE c_custkey = o_custkey",
            )
            .unwrap();
        assert!(out.contains("ℰ="));
        assert!(out.contains("audit: compliant"));
        sh.run_command("\\mode traditional").unwrap();
        let out = sh
            .run_command(
                "\\explain SELECT c_name FROM customer, orders WHERE c_custkey = o_custkey",
            )
            .unwrap();
        assert!(out.contains("physical plan"));
    }

    #[test]
    fn adhoc_command_generates_and_plans() {
        let mut sh = Shell::new();
        assert!(sh.run_command("\\adhoc").is_err(), "no deployment yet");
        sh.run_command("\\demo tpch 0.001").unwrap();
        let out = sh.run_command("\\adhoc 3 7").unwrap();
        assert_eq!(out.matches("SELECT ").count(), 3, "{out}");
        assert!(out.contains("plans, est ship"), "{out}");
        assert_eq!(
            out,
            sh.run_command("\\adhoc 3 7").unwrap(),
            "same seed must print the same workload"
        );
        assert!(sh.run_command("\\adhoc nope").is_err());
        assert!(sh.run_command("\\help").unwrap().contains("\\adhoc"));
    }

    #[test]
    fn policies_can_be_added_live() {
        let mut sh = Shell::new();
        sh.run_command("\\demo carco").unwrap();
        // acctbal is not shippable...
        sh.run_command("\\at E").unwrap();
        assert!(sh.run_command("SELECT c_acctbal FROM customer").is_err());
        // ...until a policy grants it.
        sh.run_command("\\policy ship c_acctbal from customer to E")
            .unwrap();
        let out = sh.run_command("SELECT c_acctbal FROM customer").unwrap();
        assert!(out.contains("rows at E"));
        let listed = sh.run_command("\\policies").unwrap();
        assert!(listed.contains("c_acctbal"));
    }

    #[test]
    fn denials_expand_in_session() {
        let mut sh = Shell::new();
        sh.run_command("\\demo carco").unwrap();
        let out = sh
            .run_command("\\deny ship c_acctbal from customer to *")
            .unwrap();
        assert!(out.contains("expanded grant"), "{out}");
        // The expansion grants everything else everywhere, so the name
        // now flows freely...
        sh.run_command("\\at A").unwrap();
        assert!(sh.run_command("SELECT c_name FROM customer").is_ok());
        // ...but balances still do not.
        assert!(sh.run_command("SELECT c_acctbal FROM customer").is_err());
    }

    #[test]
    fn tpch_demo_loads_and_answers() {
        let mut sh = Shell::new();
        sh.run_command("\\demo tpch 0.001").unwrap();
        let out = sh
            .run_command(
                "SELECT n_name, COUNT(s_suppkey) AS n FROM nation, supplier \
                 WHERE n_nationkey = s_nationkey GROUP BY n_name ORDER BY n DESC LIMIT 3",
            )
            .unwrap();
        assert!(out.contains("rows at"), "{out}");
    }

    #[test]
    fn faults_inject_and_failover_in_session() {
        let mut sh = Shell::new();
        sh.run_command("\\demo carco").unwrap();
        assert_eq!(sh.run_command("\\faults").unwrap(), "faults: off\n");

        // A transient crash of A: retries ride out the window.
        let out = sh.run_command("\\faults seed=7; crash:A@0..2").unwrap();
        assert!(out.contains("seed 7"), "{out}");
        let out = sh
            .run_command("SELECT c_name FROM customer ORDER BY c_name")
            .unwrap();
        assert!(out.contains("alice"), "{out}");
        assert!(out.contains("plan compliant"), "{out}");

        sh.run_command("\\faults off").unwrap();
        assert_eq!(sh.run_command("\\faults").unwrap(), "faults: off\n");
        assert!(sh.run_command("\\faults crash:").is_err(), "malformed spec");
    }

    #[test]
    fn parallel_runtime_session_with_metrics() {
        let mut sh = Shell::new();
        sh.run_command("\\demo carco").unwrap();
        assert_eq!(
            sh.run_command("\\runtime").unwrap(),
            "runtime: sequential\n"
        );
        let out = sh.run_command("\\metrics").unwrap();
        assert!(out.contains("no runtime metrics yet"), "{out}");

        sh.run_command("\\runtime parallel").unwrap();
        let sql = "SELECT c_name, SUM(o_totprice) AS total FROM customer, orders \
                   WHERE c_custkey = o_custkey GROUP BY c_name ORDER BY c_name";
        let seq = {
            let mut s = Shell::new();
            s.run_command("\\demo carco").unwrap();
            s.run_command(sql).unwrap()
        };
        let par = sh.run_command(sql).unwrap();
        assert!(par.contains("alice"), "{par}");
        assert!(par.contains("pipelined completion"), "{par}");
        assert!(par.contains("plan compliant"), "{par}");
        // Same rows and same shipped bytes as the sequential runtime.
        let rows_of = |out: &str| {
            out.lines()
                .take_while(|l| !l.starts_with('('))
                .map(String::from)
                .collect::<Vec<_>>()
        };
        assert_eq!(rows_of(&par), rows_of(&seq));
        let bytes_of = |out: &str| {
            let tail = out
                .lines()
                .find(|l| l.starts_with('('))
                .unwrap()
                .to_string();
            let idx = tail.find(" bytes").unwrap();
            tail[..idx]
                .rsplit(' ')
                .next()
                .unwrap()
                .parse::<u64>()
                .unwrap()
        };
        assert_eq!(bytes_of(&par), bytes_of(&seq));

        let metrics = sh.run_command("\\metrics").unwrap();
        assert!(metrics.contains("completion"), "{metrics}");
        assert!(metrics.contains("site"), "{metrics}");

        // Faults + parallel runtime: transient crash rides out on retries.
        sh.run_command("\\faults seed=7; crash:A@0..2").unwrap();
        let out = sh
            .run_command("SELECT c_name FROM customer ORDER BY c_name")
            .unwrap();
        assert!(out.contains("alice"), "{out}");
        assert!(out.contains("plan compliant"), "{out}");

        sh.run_command("\\runtime sequential").unwrap();
        assert!(sh.run_command("\\runtime sideways").is_err());
    }

    #[test]
    fn columnar_session_matches_row_session() {
        let sql = "SELECT c_name, SUM(o_totprice) AS total FROM customer, orders \
                   WHERE c_custkey = o_custkey GROUP BY c_name ORDER BY c_name";
        let run = |commands: &[&str]| {
            let mut sh = Shell::new();
            sh.run_command("\\demo carco").unwrap();
            for c in commands {
                sh.run_command(c).unwrap();
            }
            sh.run_command(sql).unwrap()
        };
        // Sequential: byte-for-byte identical output (rows, order, bytes,
        // audit verdict) between the row and columnar engines.
        let row = run(&[]);
        let col = run(&["\\columnar on"]);
        assert!(col.contains("plan compliant"), "{col}");
        assert_eq!(col, row);
        // Parallel runtime too.
        let row_par = run(&["\\runtime parallel"]);
        let col_par = run(&["\\runtime parallel", "\\columnar on"]);
        assert_eq!(col_par, row_par);
        // Under faults (the resilient path) as well.
        let row_flt = run(&["\\faults seed=7; crash:A@0..2"]);
        let col_flt = run(&["\\faults seed=7; crash:A@0..2", "\\columnar on"]);
        assert_eq!(col_flt, row_flt);

        // The toggle round-trips and rejects junk.
        let mut sh = Shell::new();
        sh.run_command("\\demo carco").unwrap();
        assert_eq!(sh.run_command("\\columnar").unwrap(), "columnar: off\n");
        sh.run_command("\\columnar on").unwrap();
        assert_eq!(sh.run_command("\\columnar").unwrap(), "columnar: on\n");
        sh.run_command("\\columnar off").unwrap();
        assert!(sh.run_command("\\columnar sideways").is_err());
    }

    #[test]
    fn worker_count_is_invisible_in_session_output() {
        let sql = "SELECT c_name, SUM(o_totprice) AS total FROM customer, orders \
                   WHERE c_custkey = o_custkey GROUP BY c_name ORDER BY c_name";
        let run = |commands: &[&str]| {
            let mut sh = Shell::new();
            sh.run_command("\\demo carco").unwrap();
            for c in commands {
                sh.run_command(c).unwrap();
            }
            sh.run_command(sql).unwrap()
        };
        // Morsel workers change CPU scheduling only: the rendered rows,
        // transfer counts, bytes, and audit verdict are identical.
        let one = run(&["\\runtime parallel", "\\columnar on"]);
        let four = run(&["\\runtime parallel", "\\columnar on", "\\workers 4"]);
        assert!(four.contains("plan compliant"), "{four}");
        assert_eq!(four, one);
        // The resilient (faulted) path is worker-invariant too.
        let flt_one = run(&["\\faults seed=7; crash:A@0..2", "\\columnar on"]);
        let flt_four = run(&[
            "\\faults seed=7; crash:A@0..2",
            "\\columnar on",
            "\\workers 4",
        ]);
        assert_eq!(flt_four, flt_one);

        // The knob round-trips and rejects junk.
        let mut sh = Shell::new();
        sh.run_command("\\demo carco").unwrap();
        assert_eq!(sh.run_command("\\workers").unwrap(), "workers: 1\n");
        assert_eq!(sh.run_command("\\workers 4").unwrap(), "workers: 4\n");
        assert_eq!(sh.run_command("\\workers").unwrap(), "workers: 4\n");
        assert!(sh.run_command("\\workers 0").is_err());
        assert!(sh.run_command("\\workers many").is_err());
    }

    #[test]
    fn metrics_reports_policy_memo_counters() {
        let mut sh = Shell::new();
        sh.run_command("\\demo carco").unwrap();
        let sql = "SELECT c_name FROM customer, orders WHERE c_custkey = o_custkey";
        sh.run_command(sql).unwrap();
        let first = sh.run_command("\\metrics").unwrap();
        assert!(first.contains("policy memo:"), "{first}");
        // Re-optimizing the same query must be served from the memo.
        sh.run_command(sql).unwrap();
        let second = sh.run_command("\\metrics").unwrap();
        let hits = |out: &str| -> u64 {
            let line = out.lines().find(|l| l.starts_with("policy memo:")).unwrap();
            line.split_whitespace().nth(2).unwrap().parse().unwrap()
        };
        assert!(hits(&second) > hits(&first), "{second}");
    }

    #[test]
    fn deadline_and_cancel_in_session() {
        let mut sh = Shell::new();
        sh.run_command("\\demo carco").unwrap();
        assert_eq!(sh.run_command("\\deadline").unwrap(), "deadline: off\n");

        // An impossible budget: the first shipped batch trips it.
        sh.run_command("\\deadline 0.001").unwrap();
        let err = sh
            .run_command(
                "SELECT c_name, SUM(o_totprice) AS total FROM customer, orders \
                 WHERE c_custkey = o_custkey GROUP BY c_name",
            )
            .unwrap_err();
        assert_eq!(err.kind(), "deadline", "{err}");

        // A generous budget completes and reports checkpoint counters.
        sh.run_command("\\deadline 1e9").unwrap();
        let out = sh
            .run_command("SELECT c_name FROM customer ORDER BY c_name")
            .unwrap();
        assert!(out.contains("alice"), "{out}");
        assert!(out.contains("ckpt hits"), "{out}");
        let metrics = sh.run_command("\\metrics").unwrap();
        assert!(metrics.contains("failover:"), "{metrics}");

        // Cancellation unwinds exactly one statement, then the session
        // keeps working.
        sh.run_command("\\deadline off").unwrap();
        sh.run_command("\\cancel").unwrap();
        let err = sh.run_command("SELECT c_name FROM customer").unwrap_err();
        assert_eq!(err.kind(), "cancelled", "{err}");
        assert!(sh.run_command("SELECT c_name FROM customer").is_ok());

        // Both knobs work on the parallel runtime too.
        sh.run_command("\\runtime parallel").unwrap();
        sh.run_command("\\cancel").unwrap();
        let err = sh.run_command("SELECT c_name FROM customer").unwrap_err();
        assert_eq!(err.kind(), "cancelled", "{err}");
        sh.run_command("\\deadline 0.001").unwrap();
        let err = sh
            .run_command(
                "SELECT c_name, SUM(o_totprice) AS total FROM customer, orders \
                 WHERE c_custkey = o_custkey GROUP BY c_name",
            )
            .unwrap_err();
        assert_eq!(err.kind(), "deadline", "{err}");
        assert!(sh.run_command("\\deadline bogus").is_err());
    }

    #[test]
    fn server_burst_and_tenants_table() {
        let mut sh = Shell::new();
        assert!(sh.run_command("\\server 4").is_err(), "no deployment yet");
        sh.run_command("\\demo tpch 0.001").unwrap();
        assert!(
            sh.run_command("\\tenants")
                .unwrap()
                .contains("no service yet"),
            "tenants before any burst"
        );

        let out = sh.run_command("\\server 8 7").unwrap();
        assert!(out.contains("8 queries"), "{out}");
        assert!(out.contains("4 tenants"), "{out}");
        assert!(out.contains("8 completed, 0 failed, 0 rejected"), "{out}");

        let table = sh.run_command("\\tenants").unwrap();
        for tenant in ["T", "C", "CR", "CR+A"] {
            assert!(table.lines().any(|l| l.starts_with(tenant)), "{table}");
        }
        assert!(table.contains("plan cache:"), "{table}");

        // A second burst with the same seed reuses cached plans and
        // accumulates the admitted counters.
        let again = sh.run_command("\\server 8 7").unwrap();
        assert!(again.contains("8 served from the plan cache"), "{again}");
        let table = sh.run_command("\\tenants").unwrap();
        let admitted: u64 = table
            .lines()
            .skip(1)
            .take(4)
            .map(|l| l.split_whitespace().nth(1).unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(admitted, 16, "{table}");

        // Reloading a demo drops the service (its catalog is stale).
        sh.run_command("\\demo carco").unwrap();
        assert!(sh
            .run_command("\\tenants")
            .unwrap()
            .contains("no service yet"));

        assert!(sh.run_command("\\server nope").is_err());
        assert!(sh.run_command("\\server 4 nope").is_err());
        let help = sh.run_command("\\help").unwrap();
        assert!(help.contains("\\server"));
        assert!(help.contains("\\tenants"));
    }

    #[test]
    fn grant_revoke_and_catalog_verbs() {
        let mut sh = Shell::new();
        assert!(sh.run_command("\\catalog").is_err(), "no deployment yet");
        sh.run_command("\\demo carco").unwrap();

        // The base catalog is log sequence 0; its four policies are live.
        let out = sh.run_command("\\catalog").unwrap();
        assert!(out.contains("seq 0"), "{out}");
        assert_eq!(out.matches("\n  p").count(), 4, "{out}");
        assert!(!out.contains("STALE"), "{out}");

        // Balances cannot reach E until a grant appends the permission.
        sh.run_command("\\at E").unwrap();
        assert!(sh.run_command("SELECT c_acctbal FROM customer").is_err());
        let out = sh
            .run_command("\\grant ship c_acctbal from customer to E")
            .unwrap();
        assert!(out.contains("granted p4"), "{out}");
        assert!(out.contains("seq 1"), "{out}");
        assert!(sh.run_command("SELECT c_acctbal FROM customer").is_ok());
        let epoch_of = |out: &str| {
            let line = out.lines().find(|l| l.contains("epoch")).unwrap();
            line.split("epoch ").nth(1).unwrap()[..16].to_string()
        };
        let granted_epoch = epoch_of(&out);

        // The catalog shows the grant live, logged, and fully replicated,
        // with per-replica lag and the plane-health summary line.
        let listed = sh.run_command("\\catalog").unwrap();
        assert!(listed.contains("p4: ship c_acctbal"), "{listed}");
        assert!(listed.contains("#1 grant p4"), "{listed}");
        assert!(!listed.contains("STALE"), "{listed}");
        assert!(listed.contains("lag 0"), "{listed}");
        assert!(!listed.contains("severed"), "{listed}");
        assert!(
            listed.contains("plane: floor seq 0 (0 compactions)"),
            "{listed}"
        );
        assert!(listed.contains("0 chain rejects"), "{listed}");

        // Revoking by expression resolves the pid; the permission is gone
        // for later queries and the epoch never returns to an old value.
        let out = sh
            .run_command("\\revoke ship c_acctbal from customer to E")
            .unwrap();
        assert!(out.contains("revoked p4"), "{out}");
        assert!(out.contains("seq 2"), "{out}");
        assert_ne!(epoch_of(&out), granted_epoch);
        assert!(sh.run_command("SELECT c_acctbal FROM customer").is_err());

        // Revoking by pid works too, and dead pids are refused.
        assert!(sh.run_command("\\revoke 0").is_ok());
        assert!(sh.run_command("\\revoke 0").is_err(), "already revoked");
        assert!(sh.run_command("\\revoke").is_err(), "usage error");
        assert!(sh
            .run_command("\\revoke ship c_name from customer to N")
            .is_err());

        // Identical grant sequences replay to identical heads.
        let replay = |cmds: &[&str]| {
            let mut s = Shell::new();
            s.run_command("\\demo carco").unwrap();
            for c in cmds {
                s.run_command(c).unwrap();
            }
            s.run_command("\\catalog").unwrap()
        };
        let a = replay(&["\\grant ship c_acctbal from customer to E", "\\revoke 4"]);
        let b = replay(&["\\grant ship c_acctbal from customer to E", "\\revoke 4"]);
        assert_eq!(a, b, "identical histories hash to identical heads");

        let help = sh.run_command("\\help").unwrap();
        assert!(help.contains("\\grant"));
        assert!(help.contains("\\revoke"));
        assert!(help.contains("\\catalog"));
    }

    #[test]
    fn revocation_mid_flight_replans_or_refuses_typed() {
        // Arm a fault plan so queries run the resilient path (which pins
        // the catalog head at admission), then revoke between queries:
        // the session keeps answering under the new epoch.
        let mut sh = Shell::new();
        sh.run_command("\\demo carco").unwrap();
        sh.run_command("\\faults seed=7; crash:A@0..2").unwrap();
        let out = sh
            .run_command("SELECT c_name FROM customer ORDER BY c_name")
            .unwrap();
        assert!(out.contains("alice"), "{out}");
        sh.run_command("\\grant ship c_acctbal from customer to E")
            .unwrap();
        sh.run_command("\\at E").unwrap();
        assert!(sh.run_command("SELECT c_acctbal FROM customer").is_ok());
        sh.run_command("\\revoke 4").unwrap();
        let err = sh
            .run_command("SELECT c_acctbal FROM customer")
            .unwrap_err();
        assert_eq!(err.kind(), "rejected", "{err}");
    }

    #[test]
    fn unknown_commands_and_bad_sql_error_cleanly() {
        let mut sh = Shell::new();
        sh.run_command("\\demo carco").unwrap();
        assert!(sh.run_command("\\frobnicate").is_err());
        assert!(sh.run_command("SELEKT oops").is_err());
        assert!(sh.run_command("\\mode sideways").is_err());
        assert!(sh.run_command("\\demo nope").is_err());
    }

    #[test]
    fn row_rendering_aligns_and_caps() {
        let rows: Rows = (0..50)
            .map(|i| vec![geoqp_common::Value::Int64(i), geoqp_common::Value::str("x")])
            .collect();
        let out = render_rows(&rows, &["id", "v"]);
        assert!(out.contains("… 10 more rows"));
        assert!(out.lines().next().unwrap().starts_with("id"));
    }
}
