//! Morsel-driven parallelism capability for the columnar kernels.
//!
//! The vectorized operators in [`crate::columnar`] split their row-index
//! windows into fixed-size **morsels** and hand the per-morsel closures to
//! a [`MorselRunner`]. The runner decides *where* the closures run — the
//! trivial [`SerialRunner`] executes them inline in index order (the
//! sequential engine's behavior, bit-identical to the pre-morsel code),
//! while `geoqp-runtime` injects a work-stealing per-site worker pool so a
//! single fragment can saturate every core.
//!
//! Two rules make the parallelism observably invisible:
//!
//! * **Deterministic merge order** — every helper here returns per-morsel
//!   results indexed by morsel sequence number; callers concatenate them
//!   in that order, so output rows are a pure function of the input no
//!   matter which worker ran which morsel.
//! * **First-error-wins** — when morsel tasks can fail, the error from
//!   the lowest morsel index is reported. Rows are scanned in order
//!   within a morsel, so that is exactly the error the sequential
//!   row-at-a-time scan would have hit first. Later morsels may have run
//!   (their work is side-effect free), but their errors are discarded.

use geoqp_common::Result;
use std::mem::MaybeUninit;

/// Executes a batch of independent morsel tasks, identified by index.
///
/// Implementations must run every task index in `0..n_tasks` exactly once
/// before returning; tasks are pure CPU work over disjoint data and may
/// run in any order, on any thread.
pub trait MorselRunner: Sync {
    /// Worker threads participating in a dispatch, including the caller.
    /// `1` means tasks run inline on the calling thread.
    fn workers(&self) -> usize {
        1
    }

    /// Rows per morsel when a kernel splits an index window.
    fn morsel_rows(&self) -> usize {
        MORSEL_ROWS_DEFAULT
    }

    /// Run `task(t)` for every `t in 0..n_tasks`, returning once all have
    /// completed.
    fn dispatch(&self, n_tasks: usize, task: &(dyn Fn(usize) + Sync));
}

/// Default rows per morsel: large enough that per-morsel overhead
/// (dispatch, result slot, partition vectors) is noise, small enough that
/// a TPC-H-sized batch still splits into tens of morsels.
pub const MORSEL_ROWS_DEFAULT: usize = 2048;

/// The inline runner: tasks execute on the calling thread in index order.
#[derive(Debug, Default)]
pub struct SerialRunner;

impl MorselRunner for SerialRunner {
    fn dispatch(&self, n_tasks: usize, task: &(dyn Fn(usize) + Sync)) {
        for t in 0..n_tasks {
            task(t);
        }
    }
}

/// The shared inline runner, used wherever no pool was injected.
pub static SERIAL: SerialRunner = SerialRunner;

/// `[lo, hi)` bounds of each morsel over a window of `total` rows. Always
/// at least one morsel (possibly empty), so kernels never special-case
/// empty inputs.
pub fn morsel_bounds(total: usize, morsel_rows: usize) -> Vec<(usize, usize)> {
    let step = morsel_rows.max(1);
    let n = total.div_ceil(step).max(1);
    (0..n)
        .map(|m| ((m * step).min(total), ((m + 1) * step).min(total)))
        .collect()
}

/// A raw pointer to the write-once result slots. Tasks run on foreign
/// threads but each writes only its own index, so the accesses are
/// disjoint; the runner's completion barrier orders the writes before
/// the reads.
struct Slots<T>(*mut MaybeUninit<T>);

// SAFETY: every task writes a distinct slot exactly once, and
// `MorselRunner::dispatch` does not return until all tasks have finished
// (a happens-before edge from each write to the collective read).
unsafe impl<T: Send> Sync for Slots<T> {}

impl<T> Slots<T> {
    /// # Safety
    /// Each task index must be in bounds and written at most once, from
    /// at most one thread, with no other access to that slot.
    unsafe fn write(&self, t: usize, value: T) {
        self.0.add(t).write(MaybeUninit::new(value));
    }
}

/// Run `f(t)` for every morsel index in `0..n` on `runner`, collecting
/// the results **in morsel index order** — the deterministic merge order
/// everything downstream relies on.
pub fn parallel_map<T, F>(runner: &dyn MorselRunner, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    if runner.workers() <= 1 || n == 1 {
        return (0..n).map(f).collect();
    }
    let mut storage: Vec<MaybeUninit<T>> = Vec::with_capacity(n);
    storage.resize_with(n, MaybeUninit::uninit);
    let slots = Slots(storage.as_mut_ptr());
    let slots_ref = &slots;
    runner.dispatch(n, &move |t| {
        let value = f(t);
        // SAFETY: `t` is unique per task and in bounds (see `Slots`).
        unsafe {
            slots_ref.write(t, value);
        }
    });
    // SAFETY: dispatch returned, so every slot was initialized.
    storage
        .into_iter()
        .map(|s| unsafe { s.assume_init() })
        .collect()
}

/// Collapse per-morsel fallible results, reporting the error of the
/// lowest morsel index — the globally earliest failing row.
pub fn first_error<T>(parts: Vec<Result<T>>) -> Result<Vec<T>> {
    let mut out = Vec::with_capacity(parts.len());
    for p in parts {
        out.push(p?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoqp_common::GeoError;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn bounds_cover_the_window_without_overlap() {
        for (total, step) in [(0, 4), (1, 4), (4, 4), (5, 4), (1000, 7)] {
            let bounds = morsel_bounds(total, step);
            assert!(!bounds.is_empty());
            let mut next = 0;
            for (lo, hi) in &bounds {
                assert_eq!(*lo, next);
                assert!(hi - lo <= step);
                next = *hi;
            }
            assert_eq!(next, total);
        }
    }

    #[test]
    fn serial_map_preserves_index_order() {
        let ran = AtomicUsize::new(0);
        let out = parallel_map(&SERIAL, 10, |t| {
            ran.fetch_add(1, Ordering::Relaxed);
            t * t
        });
        assert_eq!(ran.load(Ordering::Relaxed), 10);
        assert_eq!(out, (0..10).map(|t| t * t).collect::<Vec<_>>());
    }

    #[test]
    fn first_error_reports_the_lowest_morsel() {
        let parts: Vec<Result<u32>> = vec![
            Ok(1),
            Err(GeoError::Execution("second".into())),
            Err(GeoError::Execution("third".into())),
        ];
        let err = first_error(parts).unwrap_err();
        assert!(err.to_string().contains("second"));
        assert_eq!(first_error::<u32>(vec![Ok(7), Ok(8)]).unwrap(), vec![7, 8]);
    }
}
