//! # geoqp-exec
//!
//! The local execution engine: a recursive interpreter for located
//! [`PhysicalPlan`](geoqp_plan::PhysicalPlan) trees.
//!
//! The engine is parameterized by two capabilities supplied by the caller:
//!
//! * a [`DataSource`] that materializes base-table scans at a site, and
//! * a [`ShipHandler`] invoked for every SHIP operator, which is where the
//!   distributed engine (in `geoqp-core`) serializes rows, charges the
//!   network simulator, and enforces runtime compliance accounting.
//!
//! Operators implemented: scan, filter, project, hash equi-join with
//! residual filters, hash aggregation (SUM/AVG/MIN/MAX/COUNT with SQL null
//! semantics), sort, limit, union, ship.
//!
//! SHIP and scan operations can additionally run under a [`RetryPolicy`]
//! with simulated exponential backoff, so transient site/link faults are
//! absorbed and permanent ones surface as typed
//! [`GeoError::SiteUnavailable`](geoqp_common::GeoError) errors.

pub mod aggregate;
pub mod columnar;
pub mod executor;
pub mod parallel;
pub mod retry;

pub use columnar::{execute_columnar, execute_fragment_columnar, ColBatch};
pub use executor::{
    execute, execute_fragment, DataSource, ExchangeSource, LocalShip, MapSource, NoExchange,
    ShipHandler,
};
pub use parallel::{morsel_bounds, MorselRunner, SerialRunner, MORSEL_ROWS_DEFAULT, SERIAL};
pub use retry::{Retried, RetryPolicy, RetryingShip, RetryingSource};
