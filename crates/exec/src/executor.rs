//! The recursive physical-plan interpreter.

use crate::aggregate::BoundAgg;
use geoqp_common::{
    ColumnarBatch, DataType, GeoError, Location, Result, Row, Rows, Schema, TableRef, Value,
};
use geoqp_expr::{bind, BoundExpr};
use geoqp_plan::{PhysOp, PhysicalPlan, SortKey};
use std::collections::HashMap;
use std::sync::Arc;

/// Supplies base-table rows for scans. Implemented by the distributed
/// engine over its per-site databases.
pub trait DataSource {
    /// Materialize the rows of `table` stored at `location`.
    fn scan(&self, table: &TableRef, location: &Location) -> Result<Rows>;

    /// Materialize a checkpointed intermediate result for a
    /// [`PhysOp::ResumeScan`] leaf: the retained output of fingerprint
    /// `fingerprint`, homed at `location`, decoded to `arity` columns.
    /// Sources without a checkpoint store refuse — the failover stitcher
    /// only emits resume leaves when the engine attached one.
    fn resume(&self, fingerprint: u64, location: &Location, arity: usize) -> Result<Rows> {
        let _ = arity;
        Err(GeoError::Execution(format!(
            "no checkpoint store attached: cannot resume fragment \
             {fingerprint:016x} at {location}"
        )))
    }

    /// Columnar twin of [`DataSource::scan`]. Sources that cache their
    /// tables in columnar form override this to hand out a shared
    /// `Arc<ColumnarBatch>` without copying a row; the default converts
    /// the row scan.
    fn scan_columnar(
        &self,
        table: &TableRef,
        location: &Location,
        arity: usize,
    ) -> Result<Arc<ColumnarBatch>> {
        let rows = self.scan(table, location)?;
        Ok(Arc::new(ColumnarBatch::from_rows(rows.rows(), arity)))
    }
}

/// Observes every SHIP operator. The distributed engine uses this hook to
/// serialize rows, account bytes against the network simulator, and audit
/// runtime compliance.
pub trait ShipHandler {
    /// Transfer `rows` (with `schema`) from `from` to `to`, returning the
    /// rows as they arrive at the destination.
    fn ship(&mut self, from: &Location, to: &Location, rows: Rows, schema: &Schema)
        -> Result<Rows>;

    /// Columnar twin of [`ShipHandler::ship`]: transfer a batch, charging
    /// exactly the bytes the row encoding of the same rows would cost.
    /// Handlers that account bytes from column metadata override this to
    /// skip the encode/decode round trip; the default converts through
    /// rows so every existing handler stays correct.
    fn ship_columnar(
        &mut self,
        from: &Location,
        to: &Location,
        batch: Arc<ColumnarBatch>,
        schema: &Schema,
    ) -> Result<Arc<ColumnarBatch>> {
        let arity = batch.arity();
        let shipped = self.ship(from, to, batch.to_rows(), schema)?;
        Ok(Arc::new(ColumnarBatch::from_rows(shipped.rows(), arity)))
    }
}

/// A ship handler that moves rows without cost accounting — useful for
/// single-site tests.
#[derive(Debug, Default)]
pub struct LocalShip;

impl ShipHandler for LocalShip {
    fn ship(
        &mut self,
        _from: &Location,
        _to: &Location,
        rows: Rows,
        _schema: &Schema,
    ) -> Result<Rows> {
        Ok(rows)
    }
}

/// Intercepts plan nodes that are evaluated *outside* the current
/// interpreter — the concurrent runtime's fragment boundaries. Before
/// recursing into any node, the interpreter asks the exchange whether the
/// node's rows are supplied externally (a SHIP whose producer subtree runs
/// on another site's worker thread); if so, the returned rows are used and
/// the subtree below is never visited here.
pub trait ExchangeSource {
    /// The externally produced rows for `node`, or `None` when the node is
    /// local to this interpreter.
    fn fetch(&self, node: &PhysicalPlan) -> Option<Result<Rows>>;

    /// Columnar twin of [`ExchangeSource::fetch`]: exchanges that carry
    /// `Arc<ColumnarBatch>` payloads override this to hand the batch
    /// through untouched; the default converts the row fetch.
    fn fetch_columnar(&self, node: &PhysicalPlan) -> Option<Result<Arc<ColumnarBatch>>> {
        let arity = node.schema.len();
        self.fetch(node)
            .map(|r| r.map(|rows| Arc::new(ColumnarBatch::from_rows(rows.rows(), arity))))
    }

    /// The morsel runner that CPU-bound columnar kernels dispatch on. The
    /// default is the inline serial runner; the concurrent runtime
    /// overrides this with its per-site work-stealing pool.
    fn runner(&self) -> &dyn crate::parallel::MorselRunner {
        &crate::parallel::SERIAL
    }
}

/// The trivial exchange: every node is local.
#[derive(Debug, Default)]
pub struct NoExchange;

impl ExchangeSource for NoExchange {
    fn fetch(&self, _node: &PhysicalPlan) -> Option<Result<Rows>> {
        None
    }
}

/// Execute a located physical plan, returning the result rows at the root
/// operator's location.
pub fn execute(
    plan: &PhysicalPlan,
    source: &dyn DataSource,
    ship: &mut dyn ShipHandler,
) -> Result<Rows> {
    execute_fragment(plan, source, ship, &NoExchange)
}

/// [`execute`] with fragment boundaries: nodes claimed by `exchange` are
/// not interpreted here — their rows come from the exchange (produced by
/// another site's worker in the concurrent runtime).
pub fn execute_fragment(
    plan: &PhysicalPlan,
    source: &dyn DataSource,
    ship: &mut dyn ShipHandler,
    exchange: &dyn ExchangeSource,
) -> Result<Rows> {
    if let Some(rows) = exchange.fetch(plan) {
        return rows;
    }
    match &plan.op {
        PhysOp::Scan { table } => source.scan(table, &plan.location),
        PhysOp::Filter { predicate } => {
            let input = &plan.inputs[0];
            let rows = execute_fragment(input, source, ship, exchange)?;
            let bound = bind(predicate, &input.schema)?;
            let mut out = Rows::new();
            for row in rows {
                if bound.eval(&row)?.is_true() {
                    out.push(row);
                }
            }
            Ok(out)
        }
        PhysOp::Project { exprs } => {
            let input = &plan.inputs[0];
            let rows = execute_fragment(input, source, ship, exchange)?;
            let bound: Vec<BoundExpr> = exprs
                .iter()
                .map(|(e, _)| bind(e, &input.schema))
                .collect::<Result<_>>()?;
            let mut out = Rows::new();
            for row in rows {
                let mut new_row = Vec::with_capacity(bound.len());
                for b in &bound {
                    new_row.push(b.eval(&row)?);
                }
                out.push(new_row);
            }
            Ok(out)
        }
        PhysOp::HashJoin {
            left_keys,
            right_keys,
            filter,
        } => execute_hash_join(
            plan,
            left_keys,
            right_keys,
            filter.as_ref(),
            source,
            ship,
            exchange,
        ),
        PhysOp::HashAggregate { group_by, aggs } => {
            execute_hash_aggregate(plan, group_by, aggs, source, ship, exchange)
        }
        PhysOp::Sort { keys } => {
            let input = &plan.inputs[0];
            let rows = execute_fragment(input, source, ship, exchange)?;
            let mut rows = rows.into_rows();
            let indices: Vec<(usize, bool)> = keys
                .iter()
                .map(|k: &SortKey| Ok((input.schema.require_index(&k.column)?, k.descending)))
                .collect::<Result<_>>()?;
            rows.sort_by(|a, b| {
                for (i, desc) in &indices {
                    let ord = a[*i].total_cmp(&b[*i]);
                    let ord = if *desc { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            Ok(Rows::from_rows(rows))
        }
        PhysOp::Limit { fetch } => {
            let rows = execute_fragment(&plan.inputs[0], source, ship, exchange)?;
            let mut rows = rows.into_rows();
            rows.truncate(*fetch);
            Ok(Rows::from_rows(rows))
        }
        PhysOp::Union => {
            let mut out = Rows::new();
            for input in &plan.inputs {
                for row in execute_fragment(input, source, ship, exchange)? {
                    out.push(row);
                }
            }
            Ok(out)
        }
        PhysOp::Ship => {
            let input = &plan.inputs[0];
            let rows = execute_fragment(input, source, ship, exchange)?;
            ship.ship(&input.location, &plan.location, rows, &input.schema)
        }
        PhysOp::ResumeScan { fingerprint, .. } => {
            source.resume(*fingerprint, &plan.location, plan.schema.len())
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn execute_hash_join(
    plan: &PhysicalPlan,
    left_keys: &[String],
    right_keys: &[String],
    filter: Option<&geoqp_expr::ScalarExpr>,
    source: &dyn DataSource,
    ship: &mut dyn ShipHandler,
    exchange: &dyn ExchangeSource,
) -> Result<Rows> {
    let (left, right) = (&plan.inputs[0], &plan.inputs[1]);
    let left_rows = execute_fragment(left, source, ship, exchange)?;
    let right_rows = execute_fragment(right, source, ship, exchange)?;

    let lidx: Vec<usize> = left_keys
        .iter()
        .map(|k| left.schema.require_index(k))
        .collect::<Result<_>>()?;
    let ridx: Vec<usize> = right_keys
        .iter()
        .map(|k| right.schema.require_index(k))
        .collect::<Result<_>>()?;
    let bound_filter = filter.map(|f| bind(f, &plan.schema)).transpose()?;

    // Build on the left input.
    let mut table: HashMap<Vec<Value>, Vec<&Row>> = HashMap::new();
    for row in left_rows.rows() {
        let key: Vec<Value> = lidx.iter().map(|i| row[*i].clone()).collect();
        // SQL semantics: NULL keys never join.
        if key.iter().any(Value::is_null) {
            continue;
        }
        table.entry(key).or_default().push(row);
    }

    let mut out = Rows::new();
    for rrow in right_rows.rows() {
        let key: Vec<Value> = ridx.iter().map(|i| rrow[*i].clone()).collect();
        if key.iter().any(Value::is_null) {
            continue;
        }
        // Cross-type numeric keys hash identically (Value's numeric-merged
        // Hash/Eq), so Int64 joins Float64 as SQL requires.
        if let Some(matches) = table.get(&key) {
            for lrow in matches {
                let mut joined: Row = Vec::with_capacity(lrow.len() + rrow.len());
                joined.extend_from_slice(lrow);
                joined.extend_from_slice(rrow);
                if let Some(f) = &bound_filter {
                    if !f.eval(&joined)?.is_true() {
                        continue;
                    }
                }
                out.push(joined);
            }
        }
    }
    Ok(out)
}

fn execute_hash_aggregate(
    plan: &PhysicalPlan,
    group_by: &[String],
    aggs: &[geoqp_expr::AggCall],
    source: &dyn DataSource,
    ship: &mut dyn ShipHandler,
    exchange: &dyn ExchangeSource,
) -> Result<Rows> {
    let input = &plan.inputs[0];
    let rows = execute_fragment(input, source, ship, exchange)?;
    let gidx: Vec<usize> = group_by
        .iter()
        .map(|g| input.schema.require_index(g))
        .collect::<Result<_>>()?;

    let bound: Vec<BoundAgg> = aggs
        .iter()
        .map(|a| {
            let arg = a.arg.as_ref().map(|e| bind(e, &input.schema)).transpose()?;
            let int_sum = match &a.arg {
                Some(e) => e.data_type(&input.schema)? == DataType::Int64,
                None => false,
            };
            Ok(BoundAgg {
                func: a.func,
                arg,
                int_sum,
            })
        })
        .collect::<Result<_>>()?;

    let mut groups: HashMap<Vec<Value>, Vec<crate::aggregate::Accumulator>> = HashMap::new();
    for row in rows.rows() {
        let key: Vec<Value> = gidx.iter().map(|i| row[*i].clone()).collect();
        let accs = groups
            .entry(key)
            .or_insert_with(|| bound.iter().map(BoundAgg::new_acc).collect());
        for (agg, acc) in bound.iter().zip(accs.iter_mut()) {
            agg.update(acc, row)?;
        }
    }

    // SQL: a global aggregate (no GROUP BY) over empty input yields one row.
    if groups.is_empty() && group_by.is_empty() {
        groups.insert(vec![], bound.iter().map(BoundAgg::new_acc).collect());
    }

    // Output ordering comes from one explicit final sort over the group
    // keys (Value's total order, NULL first) — never from map iteration
    // order, which a hashmap does not define.
    let mut entries: Vec<(Vec<Value>, Vec<crate::aggregate::Accumulator>)> =
        groups.into_iter().collect();
    sort_group_keys(&mut entries);

    let mut out = Rows::new();
    for (key, accs) in entries {
        let mut row: Row = key;
        for acc in &accs {
            row.push(acc.finish());
        }
        out.push(row);
    }
    Ok(out)
}

/// The single deterministic sort that fixes aggregate output order:
/// lexicographic over the group key under [`Value::total_cmp`]. Group
/// keys are distinct, so the order is total.
pub fn sort_group_keys<T>(entries: &mut [(Vec<Value>, T)]) {
    entries.sort_unstable_by(|(a, _), (b, _)| {
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| x.total_cmp(y))
            .find(|o| *o != std::cmp::Ordering::Equal)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
}

/// A [`DataSource`] backed by an in-memory map — the workhorse for tests.
#[derive(Debug, Default)]
pub struct MapSource {
    tables: HashMap<(TableRef, Location), Rows>,
}

impl MapSource {
    /// Empty source.
    pub fn new() -> MapSource {
        MapSource::default()
    }

    /// Register a table's rows at a location.
    pub fn insert(&mut self, table: TableRef, location: Location, rows: Rows) {
        self.tables.insert((table, location), rows);
    }
}

impl DataSource for MapSource {
    fn scan(&self, table: &TableRef, location: &Location) -> Result<Rows> {
        self.tables
            .get(&(table.clone(), location.clone()))
            .cloned()
            .ok_or_else(|| GeoError::Execution(format!("no data for {table} at {location}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoqp_common::Field;
    use geoqp_expr::{AggCall, AggFunc, ScalarExpr};
    use std::sync::Arc;

    fn loc(n: &str) -> Location {
        Location::new(n)
    }

    fn scan_node(table: &str, location: &str, fields: Vec<Field>) -> Arc<PhysicalPlan> {
        Arc::new(
            PhysicalPlan::new(
                PhysOp::Scan {
                    table: TableRef::bare(table),
                },
                Arc::new(Schema::new(fields).unwrap()),
                loc(location),
                vec![],
            )
            .unwrap(),
        )
    }

    fn source() -> MapSource {
        let mut s = MapSource::new();
        s.insert(
            TableRef::bare("customer"),
            loc("N"),
            Rows::from_rows(vec![
                vec![Value::Int64(1), Value::str("alice"), Value::Float64(100.0)],
                vec![Value::Int64(2), Value::str("bob"), Value::Float64(200.0)],
                vec![Value::Int64(3), Value::str("carol"), Value::Float64(300.0)],
            ]),
        );
        s.insert(
            TableRef::bare("orders"),
            loc("E"),
            Rows::from_rows(vec![
                vec![Value::Int64(1), Value::Float64(10.0)],
                vec![Value::Int64(1), Value::Float64(20.0)],
                vec![Value::Int64(2), Value::Float64(5.0)],
                vec![Value::Null, Value::Float64(99.0)],
            ]),
        );
        s
    }

    fn customer_scan() -> Arc<PhysicalPlan> {
        scan_node(
            "customer",
            "N",
            vec![
                Field::new("custkey", DataType::Int64),
                Field::new("name", DataType::Str),
                Field::new("acctbal", DataType::Float64),
            ],
        )
    }

    fn orders_scan() -> Arc<PhysicalPlan> {
        scan_node(
            "orders",
            "E",
            vec![
                Field::new("o_custkey", DataType::Int64),
                Field::new("o_price", DataType::Float64),
            ],
        )
    }

    #[test]
    fn filter_project_pipeline() {
        let scan = customer_scan();
        let schema = Arc::clone(&scan.schema);
        let filter = Arc::new(
            PhysicalPlan::new(
                PhysOp::Filter {
                    predicate: ScalarExpr::col("acctbal").gt(ScalarExpr::lit(150.0)),
                },
                schema,
                loc("N"),
                vec![scan],
            )
            .unwrap(),
        );
        let project = PhysicalPlan::new(
            PhysOp::Project {
                exprs: vec![(ScalarExpr::col("name"), "name".into())],
            },
            Arc::new(Schema::new(vec![Field::new("name", DataType::Str)]).unwrap()),
            loc("N"),
            vec![filter],
        )
        .unwrap();
        let rows = execute(&project, &source(), &mut LocalShip).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows.rows()[0][0], Value::str("bob"));
    }

    #[test]
    fn hash_join_with_ship_skips_null_keys() {
        let c = customer_scan();
        let o = orders_scan();
        let o_at_n = PhysicalPlan::ship(o, loc("N"));
        let schema = Arc::new(c.schema.join(&o_at_n.schema).unwrap());
        let join = PhysicalPlan::new(
            PhysOp::HashJoin {
                left_keys: vec!["custkey".into()],
                right_keys: vec!["o_custkey".into()],
                filter: None,
            },
            schema,
            loc("N"),
            vec![c, o_at_n],
        )
        .unwrap();
        let rows = execute(&join, &source(), &mut LocalShip).unwrap();
        // alice×2 + bob×1; the NULL-keyed order joins nothing.
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn join_residual_filter() {
        let c = customer_scan();
        let o = PhysicalPlan::ship(orders_scan(), loc("N"));
        let schema = Arc::new(c.schema.join(&o.schema).unwrap());
        let join = PhysicalPlan::new(
            PhysOp::HashJoin {
                left_keys: vec!["custkey".into()],
                right_keys: vec!["o_custkey".into()],
                filter: Some(ScalarExpr::col("o_price").gt(ScalarExpr::lit(15.0))),
            },
            schema,
            loc("N"),
            vec![c, o],
        )
        .unwrap();
        let rows = execute(&join, &source(), &mut LocalShip).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows.rows()[0][1], Value::str("alice"));
    }

    #[test]
    fn grouped_aggregate() {
        let o = orders_scan();
        let schema = Arc::new(
            Schema::new(vec![
                Field::new("o_custkey", DataType::Int64),
                Field::new("total", DataType::Float64),
                Field::new("n", DataType::Int64),
            ])
            .unwrap(),
        );
        let agg = PhysicalPlan::new(
            PhysOp::HashAggregate {
                group_by: vec!["o_custkey".into()],
                aggs: vec![
                    AggCall::new(AggFunc::Sum, ScalarExpr::col("o_price"), "total"),
                    AggCall::count_star("n"),
                ],
            },
            schema,
            loc("E"),
            vec![o],
        )
        .unwrap();
        let rows = execute(&agg, &source(), &mut LocalShip).unwrap();
        assert_eq!(rows.len(), 3); // keys: NULL, 1, 2 (NULL groups together)
                                   // Deterministic order: Null first.
        assert_eq!(rows.rows()[0][0], Value::Null);
        assert_eq!(rows.rows()[1][1], Value::Float64(30.0));
        assert_eq!(rows.rows()[1][2], Value::Int64(2));
    }

    /// The aggregate's output order must come from the one explicit final
    /// sort, not from any hash/insertion accident: every permutation of
    /// the input produces byte-identical output, already sorted by the
    /// group keys under `Value::total_cmp` (Null first).
    #[test]
    fn aggregate_order_is_explicit_sort_not_insertion_order() {
        let base: Vec<Row> = vec![
            vec![Value::Int64(2), Value::Float64(5.0)],
            vec![Value::Null, Value::Float64(99.0)],
            vec![Value::Int64(1), Value::Float64(10.0)],
            vec![Value::Int64(3), Value::Float64(7.0)],
            vec![Value::Int64(1), Value::Float64(20.0)],
        ];
        // A few distinct insertion orders (rotations) — group discovery
        // order differs, output order must not.
        let mut outputs = Vec::new();
        for rot in 0..base.len() {
            let mut rows = base.clone();
            rows.rotate_left(rot);
            let mut s = MapSource::new();
            s.insert(TableRef::bare("orders"), loc("E"), Rows::from_rows(rows));
            let agg = PhysicalPlan::new(
                PhysOp::HashAggregate {
                    group_by: vec!["o_custkey".into()],
                    aggs: vec![AggCall::count_star("n")],
                },
                Arc::new(
                    Schema::new(vec![
                        Field::new("o_custkey", DataType::Int64),
                        Field::new("n", DataType::Int64),
                    ])
                    .unwrap(),
                ),
                loc("E"),
                vec![orders_scan()],
            )
            .unwrap();
            outputs.push(execute(&agg, &s, &mut LocalShip).unwrap());
        }
        let first = &outputs[0];
        for out in &outputs[1..] {
            assert_eq!(first, out, "output order depends on insertion order");
        }
        // And that order is exactly the explicit sort's order.
        let mut entries: Vec<(Vec<Value>, ())> = first
            .rows()
            .iter()
            .map(|r| (vec![r[0].clone()], ()))
            .collect();
        let as_emitted = entries.clone();
        sort_group_keys(&mut entries);
        assert_eq!(entries, as_emitted, "output not sorted by group keys");
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let c = customer_scan();
        let schema = Arc::clone(&c.schema);
        let none = Arc::new(
            PhysicalPlan::new(
                PhysOp::Filter {
                    predicate: ScalarExpr::col("acctbal").lt(ScalarExpr::lit(0.0)),
                },
                schema,
                loc("N"),
                vec![c],
            )
            .unwrap(),
        );
        let agg = PhysicalPlan::new(
            PhysOp::HashAggregate {
                group_by: vec![],
                aggs: vec![
                    AggCall::new(AggFunc::Sum, ScalarExpr::col("acctbal"), "s"),
                    AggCall::count_star("n"),
                ],
            },
            Arc::new(
                Schema::new(vec![
                    Field::new("s", DataType::Float64),
                    Field::new("n", DataType::Int64),
                ])
                .unwrap(),
            ),
            loc("N"),
            vec![none],
        )
        .unwrap();
        let rows = execute(&agg, &source(), &mut LocalShip).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows.rows()[0][0], Value::Null);
        assert_eq!(rows.rows()[0][1], Value::Int64(0));
    }

    #[test]
    fn sort_and_limit() {
        let c = customer_scan();
        let schema = Arc::clone(&c.schema);
        let sort = Arc::new(
            PhysicalPlan::new(
                PhysOp::Sort {
                    keys: vec![SortKey::desc("acctbal")],
                },
                Arc::clone(&schema),
                loc("N"),
                vec![c],
            )
            .unwrap(),
        );
        let limit =
            PhysicalPlan::new(PhysOp::Limit { fetch: 2 }, schema, loc("N"), vec![sort]).unwrap();
        let rows = execute(&limit, &source(), &mut LocalShip).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows.rows()[0][1], Value::str("carol"));
        assert_eq!(rows.rows()[1][1], Value::str("bob"));
    }

    #[test]
    fn union_concatenates() {
        let a = customer_scan();
        let b = customer_scan();
        let schema = Arc::clone(&a.schema);
        let u = PhysicalPlan::new(PhysOp::Union, schema, loc("N"), vec![a, b]).unwrap();
        let rows = execute(&u, &source(), &mut LocalShip).unwrap();
        assert_eq!(rows.len(), 6);
    }

    #[test]
    fn missing_table_is_an_execution_error() {
        let ghost = scan_node("ghost", "N", vec![Field::new("x", DataType::Int64)]);
        let err = execute(&ghost, &source(), &mut LocalShip).unwrap_err();
        assert_eq!(err.kind(), "execution");
    }
}
