//! Retry with simulated exponential backoff for SHIP and scan operations.
//!
//! Distributed operators fail in two ways the engine must distinguish: a
//! *transient* fault (a dropped packet, a healing partition) that a retry
//! can outlast, and a *permanent* one (a crashed site) that only
//! re-planning can route around. [`RetryPolicy`] drives the first kind: it
//! re-invokes the operation with exponentially growing backoff until the
//! attempt budget or timeout is exhausted, then surfaces the last typed
//! error — which carries the failing link — unchanged.
//!
//! Backoff here is *simulated*: no thread sleeps. The accumulated backoff
//! milliseconds are returned so the network simulator can charge them to
//! the transfer's cost, keeping test runs instant and deterministic.

#[cfg(test)]
use geoqp_common::GeoError;
use geoqp_common::{Location, Result, Rows, Schema, TableRef};

use crate::executor::{DataSource, ShipHandler};

/// Attempt budget and backoff schedule for retryable operations.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Maximum attempts, including the first (`1` = never retry).
    pub max_attempts: u32,
    /// Simulated backoff before the second attempt, ms.
    pub base_backoff_ms: f64,
    /// Backoff growth factor per further attempt.
    pub multiplier: f64,
    /// Simulated time budget: once cumulative backoff would exceed this,
    /// the operation gives up even with attempts remaining.
    pub timeout_ms: f64,
}

impl Default for RetryPolicy {
    /// Four attempts, 10 ms → 20 ms → 40 ms backoff, no timeout.
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_ms: 10.0,
            multiplier: 2.0,
            timeout_ms: f64::INFINITY,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_backoff_ms: 0.0,
            multiplier: 1.0,
            timeout_ms: f64::INFINITY,
        }
    }

    /// Simulated backoff taken *before* `attempt` (1-based; the first
    /// attempt waits nothing, the second waits the base, and so on).
    pub fn backoff_before_ms(&self, attempt: u32) -> f64 {
        if attempt <= 1 {
            0.0
        } else {
            self.base_backoff_ms * self.multiplier.powi(attempt as i32 - 2)
        }
    }

    /// Run `op` under this policy. `op` receives the 1-based attempt
    /// number. Transient errors ([`GeoError::is_transient`]) are retried
    /// until the budget or timeout runs out; every other error — and the
    /// final transient one — is returned as-is, typed link/site details
    /// intact.
    pub fn run<T>(&self, mut op: impl FnMut(u32) -> Result<T>) -> Result<Retried<T>> {
        assert!(
            self.max_attempts >= 1,
            "retry policy needs at least one attempt"
        );
        let mut backoff_ms = 0.0;
        let mut attempt = 1;
        loop {
            match op(attempt) {
                Ok(value) => {
                    return Ok(Retried {
                        value,
                        attempts: attempt,
                        backoff_ms,
                    })
                }
                Err(e) => {
                    let next_backoff = self.backoff_before_ms(attempt + 1);
                    let budget_left =
                        attempt < self.max_attempts && backoff_ms + next_backoff <= self.timeout_ms;
                    if !e.is_transient() || !budget_left {
                        return Err(e);
                    }
                    backoff_ms += next_backoff;
                    attempt += 1;
                }
            }
        }
    }
}

/// A successful retried operation: the value plus what it cost to get.
#[derive(Debug, Clone, PartialEq)]
pub struct Retried<T> {
    /// The operation's result.
    pub value: T,
    /// Attempts taken (1 = first try).
    pub attempts: u32,
    /// Total simulated backoff spent, ms.
    pub backoff_ms: f64,
}

/// A [`ShipHandler`] decorator that retries transient failures of the
/// inner handler under a [`RetryPolicy`].
pub struct RetryingShip<H> {
    inner: H,
    policy: RetryPolicy,
}

impl<H> RetryingShip<H> {
    /// Wrap `inner` with `policy`.
    pub fn new(inner: H, policy: RetryPolicy) -> RetryingShip<H> {
        RetryingShip { inner, policy }
    }

    /// Unwrap the inner handler.
    pub fn into_inner(self) -> H {
        self.inner
    }
}

impl<H: ShipHandler> ShipHandler for RetryingShip<H> {
    fn ship(
        &mut self,
        from: &Location,
        to: &Location,
        rows: Rows,
        schema: &Schema,
    ) -> Result<Rows> {
        let inner = &mut self.inner;
        self.policy
            .run(|_| inner.ship(from, to, rows.clone(), schema))
            .map(|r| r.value)
    }
}

/// A [`DataSource`] decorator that retries transient scan failures.
pub struct RetryingSource<S> {
    inner: S,
    policy: RetryPolicy,
}

impl<S> RetryingSource<S> {
    /// Wrap `inner` with `policy`.
    pub fn new(inner: S, policy: RetryPolicy) -> RetryingSource<S> {
        RetryingSource { inner, policy }
    }
}

impl<S: DataSource> DataSource for RetryingSource<S> {
    fn scan(&self, table: &TableRef, location: &Location) -> Result<Rows> {
        self.policy
            .run(|_| self.inner.scan(table, location))
            .map(|r| r.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoqp_common::Location;

    fn transient(n: u32) -> GeoError {
        GeoError::link_down(
            Location::new("L1"),
            Location::new("L3"),
            true,
            format!("drop at attempt {n}"),
        )
    }

    #[test]
    fn backoff_grows_exponentially_from_the_second_attempt() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_before_ms(1), 0.0);
        assert_eq!(p.backoff_before_ms(2), 10.0);
        assert_eq!(p.backoff_before_ms(3), 20.0);
        assert_eq!(p.backoff_before_ms(4), 40.0);
    }

    #[test]
    fn transient_failures_under_the_budget_succeed() {
        let p = RetryPolicy::default();
        let mut calls = 0;
        let out = p
            .run(|attempt| {
                calls += 1;
                if attempt < 3 {
                    Err(transient(attempt))
                } else {
                    Ok(attempt)
                }
            })
            .unwrap();
        assert_eq!(calls, 3);
        assert_eq!(out.attempts, 3);
        assert_eq!(out.value, 3);
        assert_eq!(out.backoff_ms, 30.0); // 10 + 20
    }

    #[test]
    fn exhausted_budget_surfaces_the_typed_error_with_the_link() {
        let p = RetryPolicy::default();
        let err = p.run::<()>(|attempt| Err(transient(attempt))).unwrap_err();
        assert_eq!(err.kind(), "unavailable");
        assert!(err.is_transient());
        assert_eq!(
            err.failed_link(),
            Some((&Location::new("L1"), &Location::new("L3")))
        );
        // The error is the budget's last attempt.
        assert_eq!(err.message(), "drop at attempt 4");
    }

    #[test]
    fn permanent_errors_are_never_retried() {
        let p = RetryPolicy::default();
        let mut calls = 0;
        let err = p
            .run::<()>(|_| {
                calls += 1;
                Err(GeoError::site_down(Location::new("L2"), "crashed"))
            })
            .unwrap_err();
        assert_eq!(calls, 1);
        assert!(!err.is_transient());
        assert_eq!(err.failed_site(), Some(&Location::new("L2")));
    }

    #[test]
    fn non_availability_errors_pass_straight_through() {
        let p = RetryPolicy::default();
        let mut calls = 0;
        let err = p
            .run::<()>(|_| {
                calls += 1;
                Err(GeoError::Execution("logic bug".into()))
            })
            .unwrap_err();
        assert_eq!(calls, 1);
        assert_eq!(err.kind(), "execution");
    }

    #[test]
    fn timeout_caps_the_backoff_budget() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_backoff_ms: 10.0,
            multiplier: 2.0,
            timeout_ms: 35.0, // room for 10 + 20, not for +40 more
        };
        let mut calls = 0;
        let err = p
            .run::<()>(|attempt| {
                calls += 1;
                Err(transient(attempt))
            })
            .unwrap_err();
        assert_eq!(calls, 3);
        assert!(err.is_transient());
    }

    #[test]
    fn retrying_ship_recovers_a_flaky_handler() {
        struct Flaky {
            failures_left: u32,
        }
        impl ShipHandler for Flaky {
            fn ship(
                &mut self,
                from: &Location,
                to: &Location,
                rows: Rows,
                _schema: &Schema,
            ) -> Result<Rows> {
                if self.failures_left > 0 {
                    self.failures_left -= 1;
                    Err(GeoError::link_down(from.clone(), to.clone(), true, "drop"))
                } else {
                    Ok(rows)
                }
            }
        }
        let schema = geoqp_common::Schema::new(vec![geoqp_common::Field::new(
            "x",
            geoqp_common::DataType::Int64,
        )])
        .unwrap();
        let rows = Rows::from_rows(vec![vec![geoqp_common::Value::Int64(7)]]);

        let mut ok = RetryingShip::new(Flaky { failures_left: 2 }, RetryPolicy::default());
        let shipped = ok
            .ship(
                &Location::new("A"),
                &Location::new("B"),
                rows.clone(),
                &schema,
            )
            .unwrap();
        assert_eq!(shipped, rows);

        let mut dead = RetryingShip::new(Flaky { failures_left: 99 }, RetryPolicy::default());
        let err = dead
            .ship(&Location::new("A"), &Location::new("B"), rows, &schema)
            .unwrap_err();
        assert_eq!(err.kind(), "unavailable");
        assert_eq!(
            err.failed_link(),
            Some((&Location::new("A"), &Location::new("B")))
        );
    }
}
