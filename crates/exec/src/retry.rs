//! Retry with simulated exponential backoff for SHIP and scan operations.
//!
//! Distributed operators fail in two ways the engine must distinguish: a
//! *transient* fault (a dropped packet, a healing partition) that a retry
//! can outlast, and a *permanent* one (a crashed site) that only
//! re-planning can route around. [`RetryPolicy`] drives the first kind: it
//! re-invokes the operation with exponentially growing backoff until the
//! attempt budget or timeout is exhausted, then surfaces the last typed
//! error — which carries the failing link — unchanged.
//!
//! Backoff here is *simulated*: no thread sleeps. The accumulated backoff
//! milliseconds are returned so the network simulator can charge them to
//! the transfer's cost, keeping test runs instant and deterministic.
//!
//! Concurrent retries of the *same* schedule synchronize: after a shared
//! outage, every fragment worker would re-attempt at exactly the same
//! simulated instant and hammer the healing link together. [`RetryPolicy`]
//! therefore supports **seeded deterministic jitter**: each caller salts
//! the schedule with its identity (the runtime uses the fragment slot), so
//! concurrent backoffs spread out — while identically-seeded runs stay
//! byte-identical, because the jitter is a pure hash of
//! `(seed, salt, attempt)`, never of wall-clock or thread timing.

#[cfg(test)]
use geoqp_common::GeoError;
use geoqp_common::{Location, Result, Rows, Schema, TableRef};

use crate::executor::{DataSource, ShipHandler};

/// Attempt budget and backoff schedule for retryable operations.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Maximum attempts, including the first (`1` = never retry).
    pub max_attempts: u32,
    /// Simulated backoff before the second attempt, ms.
    pub base_backoff_ms: f64,
    /// Backoff growth factor per further attempt.
    pub multiplier: f64,
    /// Simulated time budget: once cumulative backoff would exceed this,
    /// the operation gives up even with attempts remaining.
    pub timeout_ms: f64,
    /// Jitter fraction in `[0, 1]`: each backoff is scaled by a
    /// deterministic factor in `[1 - jitter/2, 1 + jitter/2)`. Zero (the
    /// default) reproduces the exact exponential schedule.
    pub jitter: f64,
    /// Seed for the jitter hash; same seed, same salts → byte-identical
    /// backoff schedules.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    /// Four attempts, 10 ms → 20 ms → 40 ms backoff, no timeout, no jitter.
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_ms: 10.0,
            multiplier: 2.0,
            timeout_ms: f64::INFINITY,
            jitter: 0.0,
            jitter_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_backoff_ms: 0.0,
            multiplier: 1.0,
            timeout_ms: f64::INFINITY,
            jitter: 0.0,
            jitter_seed: 0,
        }
    }

    /// Enable seeded deterministic jitter (see the module docs).
    pub fn with_jitter(mut self, fraction: f64, seed: u64) -> RetryPolicy {
        self.jitter = fraction.clamp(0.0, 1.0);
        self.jitter_seed = seed;
        self
    }

    /// Simulated backoff taken *before* `attempt` (1-based; the first
    /// attempt waits nothing, the second waits the base, and so on),
    /// without jitter.
    pub fn backoff_before_ms(&self, attempt: u32) -> f64 {
        if attempt <= 1 {
            0.0
        } else {
            self.base_backoff_ms * self.multiplier.powi(attempt as i32 - 2)
        }
    }

    /// [`Self::backoff_before_ms`] scaled by the deterministic jitter
    /// factor for `salt` — a pure function of
    /// `(jitter_seed, salt, attempt)`, so every replay agrees.
    pub fn jittered_backoff_ms(&self, attempt: u32, salt: u64) -> f64 {
        let base = self.backoff_before_ms(attempt);
        if base == 0.0 || self.jitter == 0.0 {
            return base;
        }
        // splitmix64 over the seed/salt/attempt mix → uniform in [0, 1).
        let mut z = self
            .jitter_seed
            .wrapping_add(salt.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .wrapping_add((attempt as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let uniform = (z >> 11) as f64 / (1u64 << 53) as f64;
        base * (1.0 + self.jitter * (uniform - 0.5))
    }

    /// Run `op` under this policy. `op` receives the 1-based attempt
    /// number. Transient errors ([`GeoError::is_transient`]) are retried
    /// until the budget or timeout runs out; every other error — and the
    /// final transient one — is returned as-is, typed link/site details
    /// intact.
    pub fn run<T>(&self, op: impl FnMut(u32) -> Result<T>) -> Result<Retried<T>> {
        self.run_salted(0, op)
    }

    /// [`Self::run`] with a caller-identity `salt` desynchronizing the
    /// jittered backoff schedule from other concurrent callers.
    pub fn run_salted<T>(
        &self,
        salt: u64,
        mut op: impl FnMut(u32) -> Result<T>,
    ) -> Result<Retried<T>> {
        assert!(
            self.max_attempts >= 1,
            "retry policy needs at least one attempt"
        );
        let mut backoff_ms = 0.0;
        let mut attempt = 1;
        loop {
            match op(attempt) {
                Ok(value) => {
                    return Ok(Retried {
                        value,
                        attempts: attempt,
                        backoff_ms,
                    })
                }
                Err(e) => {
                    let next_backoff = self.jittered_backoff_ms(attempt + 1, salt);
                    let budget_left =
                        attempt < self.max_attempts && backoff_ms + next_backoff <= self.timeout_ms;
                    if !e.is_transient() || !budget_left {
                        return Err(e);
                    }
                    backoff_ms += next_backoff;
                    attempt += 1;
                }
            }
        }
    }
}

/// A successful retried operation: the value plus what it cost to get.
#[derive(Debug, Clone, PartialEq)]
pub struct Retried<T> {
    /// The operation's result.
    pub value: T,
    /// Attempts taken (1 = first try).
    pub attempts: u32,
    /// Total simulated backoff spent, ms.
    pub backoff_ms: f64,
}

/// A [`ShipHandler`] decorator that retries transient failures of the
/// inner handler under a [`RetryPolicy`].
pub struct RetryingShip<H> {
    inner: H,
    policy: RetryPolicy,
}

impl<H> RetryingShip<H> {
    /// Wrap `inner` with `policy`.
    pub fn new(inner: H, policy: RetryPolicy) -> RetryingShip<H> {
        RetryingShip { inner, policy }
    }

    /// Unwrap the inner handler.
    pub fn into_inner(self) -> H {
        self.inner
    }
}

impl<H: ShipHandler> ShipHandler for RetryingShip<H> {
    fn ship(
        &mut self,
        from: &Location,
        to: &Location,
        rows: Rows,
        schema: &Schema,
    ) -> Result<Rows> {
        let inner = &mut self.inner;
        self.policy
            .run(|_| inner.ship(from, to, rows.clone(), schema))
            .map(|r| r.value)
    }
}

/// A [`DataSource`] decorator that retries transient scan failures.
pub struct RetryingSource<S> {
    inner: S,
    policy: RetryPolicy,
}

impl<S> RetryingSource<S> {
    /// Wrap `inner` with `policy`.
    pub fn new(inner: S, policy: RetryPolicy) -> RetryingSource<S> {
        RetryingSource { inner, policy }
    }
}

impl<S: DataSource> DataSource for RetryingSource<S> {
    fn scan(&self, table: &TableRef, location: &Location) -> Result<Rows> {
        self.policy
            .run(|_| self.inner.scan(table, location))
            .map(|r| r.value)
    }

    fn resume(&self, fingerprint: u64, location: &Location, arity: usize) -> Result<Rows> {
        self.policy
            .run(|_| self.inner.resume(fingerprint, location, arity))
            .map(|r| r.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoqp_common::Location;

    fn transient(n: u32) -> GeoError {
        GeoError::link_down(
            Location::new("L1"),
            Location::new("L3"),
            true,
            format!("drop at attempt {n}"),
        )
    }

    #[test]
    fn backoff_grows_exponentially_from_the_second_attempt() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_before_ms(1), 0.0);
        assert_eq!(p.backoff_before_ms(2), 10.0);
        assert_eq!(p.backoff_before_ms(3), 20.0);
        assert_eq!(p.backoff_before_ms(4), 40.0);
    }

    #[test]
    fn transient_failures_under_the_budget_succeed() {
        let p = RetryPolicy::default();
        let mut calls = 0;
        let out = p
            .run(|attempt| {
                calls += 1;
                if attempt < 3 {
                    Err(transient(attempt))
                } else {
                    Ok(attempt)
                }
            })
            .unwrap();
        assert_eq!(calls, 3);
        assert_eq!(out.attempts, 3);
        assert_eq!(out.value, 3);
        assert_eq!(out.backoff_ms, 30.0); // 10 + 20
    }

    #[test]
    fn exhausted_budget_surfaces_the_typed_error_with_the_link() {
        let p = RetryPolicy::default();
        let err = p.run::<()>(|attempt| Err(transient(attempt))).unwrap_err();
        assert_eq!(err.kind(), "unavailable");
        assert!(err.is_transient());
        assert_eq!(
            err.failed_link(),
            Some((&Location::new("L1"), &Location::new("L3")))
        );
        // The error is the budget's last attempt.
        assert_eq!(err.message(), "drop at attempt 4");
    }

    #[test]
    fn permanent_errors_are_never_retried() {
        let p = RetryPolicy::default();
        let mut calls = 0;
        let err = p
            .run::<()>(|_| {
                calls += 1;
                Err(GeoError::site_down(Location::new("L2"), "crashed"))
            })
            .unwrap_err();
        assert_eq!(calls, 1);
        assert!(!err.is_transient());
        assert_eq!(err.failed_site(), Some(&Location::new("L2")));
    }

    #[test]
    fn non_availability_errors_pass_straight_through() {
        let p = RetryPolicy::default();
        let mut calls = 0;
        let err = p
            .run::<()>(|_| {
                calls += 1;
                Err(GeoError::Execution("logic bug".into()))
            })
            .unwrap_err();
        assert_eq!(calls, 1);
        assert_eq!(err.kind(), "execution");
    }

    #[test]
    fn timeout_caps_the_backoff_budget() {
        let p = RetryPolicy {
            max_attempts: 10,
            timeout_ms: 35.0, // room for 10 + 20, not for +40 more
            ..RetryPolicy::default()
        };
        let mut calls = 0;
        let err = p
            .run::<()>(|attempt| {
                calls += 1;
                Err(transient(attempt))
            })
            .unwrap_err();
        assert_eq!(calls, 3);
        assert!(err.is_transient());
    }

    #[test]
    fn jitter_is_bounded_deterministic_and_desynchronizing() {
        let p = RetryPolicy::default().with_jitter(0.5, 2021);
        // Bounded: within ±jitter/2 of the base schedule; first attempt
        // still waits nothing.
        assert_eq!(p.jittered_backoff_ms(1, 3), 0.0);
        for attempt in 2..=4 {
            for salt in 0..16u64 {
                let base = p.backoff_before_ms(attempt);
                let j = p.jittered_backoff_ms(attempt, salt);
                assert!(
                    (0.75 * base..1.25 * base).contains(&j),
                    "attempt {attempt} salt {salt}: {j} outside ±25% of {base}"
                );
                // Deterministic: a pure function of (seed, salt, attempt).
                assert_eq!(j, p.jittered_backoff_ms(attempt, salt));
            }
        }
        // Desynchronizing: different salts spread the schedule out.
        let distinct: std::collections::BTreeSet<u64> = (0..16u64)
            .map(|salt| p.jittered_backoff_ms(2, salt).to_bits())
            .collect();
        assert!(distinct.len() > 8, "salts barely moved the backoff");
        // Seeded: a different seed is a different schedule, the same seed
        // replays byte-identically.
        let q = RetryPolicy::default().with_jitter(0.5, 2022);
        assert_ne!(
            p.jittered_backoff_ms(2, 3).to_bits(),
            q.jittered_backoff_ms(2, 3).to_bits()
        );
        let r = RetryPolicy::default().with_jitter(0.5, 2021);
        assert_eq!(
            p.jittered_backoff_ms(2, 3).to_bits(),
            r.jittered_backoff_ms(2, 3).to_bits()
        );
    }

    #[test]
    fn salted_runs_charge_the_jittered_backoff() {
        let p = RetryPolicy::default().with_jitter(0.5, 7);
        let run = |salt: u64| {
            p.run_salted(salt, |attempt| {
                if attempt < 3 {
                    Err(transient(attempt))
                } else {
                    Ok(())
                }
            })
            .unwrap()
        };
        let expected = |salt: u64| p.jittered_backoff_ms(2, salt) + p.jittered_backoff_ms(3, salt);
        assert_eq!(run(0).backoff_ms, expected(0));
        assert_eq!(run(1).backoff_ms, expected(1));
        assert_ne!(run(0).backoff_ms.to_bits(), run(1).backoff_ms.to_bits());
        // Zero jitter keeps the legacy schedule regardless of salt.
        let plain = RetryPolicy::default();
        assert_eq!(
            plain
                .run_salted(9, |a| if a < 3 { Err(transient(a)) } else { Ok(()) })
                .unwrap()
                .backoff_ms,
            30.0
        );
    }

    #[test]
    fn retrying_ship_recovers_a_flaky_handler() {
        struct Flaky {
            failures_left: u32,
        }
        impl ShipHandler for Flaky {
            fn ship(
                &mut self,
                from: &Location,
                to: &Location,
                rows: Rows,
                _schema: &Schema,
            ) -> Result<Rows> {
                if self.failures_left > 0 {
                    self.failures_left -= 1;
                    Err(GeoError::link_down(from.clone(), to.clone(), true, "drop"))
                } else {
                    Ok(rows)
                }
            }
        }
        let schema = geoqp_common::Schema::new(vec![geoqp_common::Field::new(
            "x",
            geoqp_common::DataType::Int64,
        )])
        .unwrap();
        let rows = Rows::from_rows(vec![vec![geoqp_common::Value::Int64(7)]]);

        let mut ok = RetryingShip::new(Flaky { failures_left: 2 }, RetryPolicy::default());
        let shipped = ok
            .ship(
                &Location::new("A"),
                &Location::new("B"),
                rows.clone(),
                &schema,
            )
            .unwrap();
        assert_eq!(shipped, rows);

        let mut dead = RetryingShip::new(Flaky { failures_left: 99 }, RetryPolicy::default());
        let err = dead
            .ship(&Location::new("A"), &Location::new("B"), rows, &schema)
            .unwrap_err();
        assert_eq!(err.kind(), "unavailable");
        assert_eq!(
            err.failed_link(),
            Some((&Location::new("A"), &Location::new("B")))
        );
    }
}
