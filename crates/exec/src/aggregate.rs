//! Aggregate accumulators with SQL null semantics.

use geoqp_common::{GeoError, Result, Row, Value};
use geoqp_expr::{AggFunc, BoundExpr};

/// A single running aggregate.
#[derive(Debug, Clone)]
pub enum Accumulator {
    /// SUM over integers.
    SumInt {
        /// Running total.
        sum: i64,
        /// Any non-null input seen?
        seen: bool,
    },
    /// SUM over floats (also used for mixed numeric input).
    SumFloat {
        /// Running total.
        sum: f64,
        /// Any non-null input seen?
        seen: bool,
    },
    /// AVG.
    Avg {
        /// Running total.
        sum: f64,
        /// Non-null count.
        n: u64,
    },
    /// MIN.
    Min(Option<Value>),
    /// MAX.
    Max(Option<Value>),
    /// COUNT(expr) — non-null count — or COUNT(*) when `star`.
    Count {
        /// Running count.
        n: u64,
        /// COUNT(*)?
        star: bool,
    },
}

/// An aggregate call bound to its argument expression.
#[derive(Debug)]
pub struct BoundAgg {
    /// The function.
    pub func: AggFunc,
    /// Bound argument; `None` for COUNT(*).
    pub arg: Option<BoundExpr>,
    /// True when SUM should accumulate in integer space.
    pub int_sum: bool,
}

impl BoundAgg {
    /// A fresh accumulator for this call.
    pub fn new_acc(&self) -> Accumulator {
        match self.func {
            AggFunc::Sum if self.int_sum => Accumulator::SumInt {
                sum: 0,
                seen: false,
            },
            AggFunc::Sum => Accumulator::SumFloat {
                sum: 0.0,
                seen: false,
            },
            AggFunc::Avg => Accumulator::Avg { sum: 0.0, n: 0 },
            AggFunc::Min => Accumulator::Min(None),
            AggFunc::Max => Accumulator::Max(None),
            AggFunc::Count => Accumulator::Count {
                n: 0,
                star: self.arg.is_none(),
            },
        }
    }

    /// Feed one input row into an accumulator.
    pub fn update(&self, acc: &mut Accumulator, row: &Row) -> Result<()> {
        let value = match &self.arg {
            None => None, // COUNT(*)
            Some(e) => Some(e.eval(row)?),
        };
        self.apply(acc, value)
    }

    /// Feed one already-evaluated argument value into an accumulator
    /// (`None` = COUNT(*)'s argument-less case). The columnar engine
    /// evaluates arguments column-at-a-time and feeds them through here,
    /// so both engines share one set of null/overflow semantics.
    pub fn apply(&self, acc: &mut Accumulator, value: Option<Value>) -> Result<()> {
        match acc {
            Accumulator::Count { n, star } => {
                if *star || value.as_ref().is_some_and(|v| !v.is_null()) {
                    *n += 1;
                }
            }
            Accumulator::SumInt { sum, seen } => {
                if let Some(v) = value {
                    match v {
                        Value::Null => {}
                        Value::Int64(i) => {
                            *sum = sum.wrapping_add(i);
                            *seen = true;
                        }
                        other => {
                            return Err(GeoError::Execution(format!(
                                "SUM(int) got non-integer {other}"
                            )))
                        }
                    }
                }
            }
            Accumulator::SumFloat { sum, seen } => {
                if let Some(v) = value {
                    if v.is_null() {
                        return Ok(());
                    }
                    let f = v
                        .as_f64()
                        .ok_or_else(|| GeoError::Execution(format!("SUM got non-numeric {v}")))?;
                    *sum += f;
                    *seen = true;
                }
            }
            Accumulator::Avg { sum, n } => {
                if let Some(v) = value {
                    if v.is_null() {
                        return Ok(());
                    }
                    let f = v
                        .as_f64()
                        .ok_or_else(|| GeoError::Execution(format!("AVG got non-numeric {v}")))?;
                    *sum += f;
                    *n += 1;
                }
            }
            Accumulator::Min(cur) => {
                if let Some(v) = value {
                    if !v.is_null() {
                        match cur {
                            None => *cur = Some(v),
                            Some(c) => {
                                if v.total_cmp(c) == std::cmp::Ordering::Less {
                                    *cur = Some(v);
                                }
                            }
                        }
                    }
                }
            }
            Accumulator::Max(cur) => {
                if let Some(v) = value {
                    if !v.is_null() {
                        match cur {
                            None => *cur = Some(v),
                            Some(c) => {
                                if v.total_cmp(c) == std::cmp::Ordering::Greater {
                                    *cur = Some(v);
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

impl BoundAgg {
    /// True when this aggregate's result is independent of input order:
    /// COUNT, MIN, MAX (ties keep the first-seen value, preserved by
    /// merging partials in input order), and integer SUM (wrapping add is
    /// associative and commutative). Float SUM and AVG accumulate in
    /// non-associative `f64` adds, so their bit patterns depend on input
    /// order and they must be fed sequentially.
    pub fn order_insensitive(&self) -> bool {
        match self.func {
            AggFunc::Count | AggFunc::Min | AggFunc::Max => true,
            AggFunc::Sum => self.int_sum,
            AggFunc::Avg => false,
        }
    }
}

impl Accumulator {
    /// Fold `later` (a partial accumulator over a later input range) into
    /// `self`. For order-insensitive accumulators, merging partials in
    /// input-range order is exactly equivalent to sequential
    /// accumulation: MIN/MAX replace only on strict improvement, so ties
    /// keep the earlier range's first-seen value.
    pub fn merge(&mut self, later: Accumulator) {
        match (self, later) {
            (Accumulator::Count { n, .. }, Accumulator::Count { n: m, .. }) => *n += m,
            (
                Accumulator::SumInt { sum, seen },
                Accumulator::SumInt {
                    sum: s2,
                    seen: seen2,
                },
            ) => {
                *sum = sum.wrapping_add(s2);
                *seen |= seen2;
            }
            (
                Accumulator::SumFloat { sum, seen },
                Accumulator::SumFloat {
                    sum: s2,
                    seen: seen2,
                },
            ) => {
                *sum += s2;
                *seen |= seen2;
            }
            (Accumulator::Avg { sum, n }, Accumulator::Avg { sum: s2, n: m }) => {
                *sum += s2;
                *n += m;
            }
            (Accumulator::Min(cur), Accumulator::Min(other)) => {
                if let Some(v) = other {
                    match cur {
                        None => *cur = Some(v),
                        Some(c) => {
                            if v.total_cmp(c) == std::cmp::Ordering::Less {
                                *cur = Some(v);
                            }
                        }
                    }
                }
            }
            (Accumulator::Max(cur), Accumulator::Max(other)) => {
                if let Some(v) = other {
                    match cur {
                        None => *cur = Some(v),
                        Some(c) => {
                            if v.total_cmp(c) == std::cmp::Ordering::Greater {
                                *cur = Some(v);
                            }
                        }
                    }
                }
            }
            _ => unreachable!("merge of mismatched accumulator variants"),
        }
    }

    /// The final SQL value of this accumulator.
    pub fn finish(&self) -> Value {
        match self {
            Accumulator::SumInt { sum, seen } => {
                if *seen {
                    Value::Int64(*sum)
                } else {
                    Value::Null
                }
            }
            Accumulator::SumFloat { sum, seen } => {
                if *seen {
                    Value::Float64(*sum)
                } else {
                    Value::Null
                }
            }
            Accumulator::Avg { sum, n } => {
                if *n > 0 {
                    Value::Float64(sum / *n as f64)
                } else {
                    Value::Null
                }
            }
            Accumulator::Min(v) | Accumulator::Max(v) => v.clone().unwrap_or(Value::Null),
            Accumulator::Count { n, .. } => Value::Int64(*n as i64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoqp_common::{DataType, Field, Schema};
    use geoqp_expr::{bind, ScalarExpr};

    fn bound(func: AggFunc, int_sum: bool) -> BoundAgg {
        let schema = Schema::new(vec![Field::new("x", DataType::Float64)]).unwrap();
        BoundAgg {
            func,
            arg: Some(bind(&ScalarExpr::col("x"), &schema).unwrap()),
            int_sum,
        }
    }

    fn run(agg: &BoundAgg, inputs: &[Value]) -> Value {
        let mut acc = agg.new_acc();
        for v in inputs {
            agg.update(&mut acc, &vec![v.clone()]).unwrap();
        }
        acc.finish()
    }

    #[test]
    fn sum_skips_nulls_and_nulls_on_empty() {
        let agg = bound(AggFunc::Sum, false);
        assert_eq!(
            run(
                &agg,
                &[Value::Float64(1.5), Value::Null, Value::Float64(2.5)]
            ),
            Value::Float64(4.0)
        );
        assert_eq!(run(&agg, &[Value::Null]), Value::Null);
        assert_eq!(run(&agg, &[]), Value::Null);
    }

    #[test]
    fn avg_divides_by_non_null_count() {
        let agg = bound(AggFunc::Avg, false);
        assert_eq!(
            run(
                &agg,
                &[Value::Float64(2.0), Value::Null, Value::Float64(4.0)]
            ),
            Value::Float64(3.0)
        );
        assert_eq!(run(&agg, &[]), Value::Null);
    }

    #[test]
    fn min_max() {
        let min = bound(AggFunc::Min, false);
        let max = bound(AggFunc::Max, false);
        let vals = [Value::Float64(3.0), Value::Float64(-1.0), Value::Null];
        assert_eq!(run(&min, &vals), Value::Float64(-1.0));
        assert_eq!(run(&max, &vals), Value::Float64(3.0));
        assert_eq!(run(&min, &[Value::Null]), Value::Null);
    }

    #[test]
    fn count_expr_vs_star() {
        let c = bound(AggFunc::Count, false);
        assert_eq!(
            run(&c, &[Value::Float64(1.0), Value::Null]),
            Value::Int64(1)
        );
        let star = BoundAgg {
            func: AggFunc::Count,
            arg: None,
            int_sum: false,
        };
        let mut acc = star.new_acc();
        for _ in 0..3 {
            star.update(&mut acc, &vec![Value::Null]).unwrap();
        }
        assert_eq!(acc.finish(), Value::Int64(3));
    }

    #[test]
    fn merged_partials_match_sequential_accumulation() {
        // Split an input in half, accumulate each half, merge in range
        // order: every order-insensitive aggregate must match the
        // sequential result exactly — including MIN's tie-keeps-first
        // rule across the numeric domain (Int64(1) vs Float64(1.0)).
        let inputs = [
            Value::Int64(3),
            Value::Int64(1),
            Value::Null,
            Value::Float64(1.0),
            Value::Int64(2),
        ];
        for (func, int_sum) in [
            (AggFunc::Count, false),
            (AggFunc::Min, false),
            (AggFunc::Max, false),
            (AggFunc::Sum, true),
        ] {
            let agg = bound(func, int_sum);
            let sequential = {
                let mut acc = agg.new_acc();
                for v in &inputs {
                    if func != AggFunc::Sum || matches!(v, Value::Int64(_) | Value::Null) {
                        agg.apply(&mut acc, Some(v.clone())).unwrap();
                    }
                }
                acc
            };
            let merged = {
                let (a, b) = inputs.split_at(2);
                let mut left = agg.new_acc();
                let mut right = agg.new_acc();
                for v in a {
                    if func != AggFunc::Sum || matches!(v, Value::Int64(_) | Value::Null) {
                        agg.apply(&mut left, Some(v.clone())).unwrap();
                    }
                }
                for v in b {
                    if func != AggFunc::Sum || matches!(v, Value::Int64(_) | Value::Null) {
                        agg.apply(&mut right, Some(v.clone())).unwrap();
                    }
                }
                left.merge(right);
                left
            };
            let (s, m) = (sequential.finish(), merged.finish());
            assert_eq!(s, m, "{func:?}");
            // MIN's first-seen tie: Int64(1) arrives before Float64(1.0).
            if func == AggFunc::Min {
                assert!(matches!(m, Value::Int64(1)));
            }
            assert!(agg.order_insensitive());
        }
        assert!(!bound(AggFunc::Sum, false).order_insensitive());
        assert!(!bound(AggFunc::Avg, false).order_insensitive());
    }

    #[test]
    fn int_sum_stays_integer() {
        let schema = Schema::new(vec![Field::new("x", DataType::Int64)]).unwrap();
        let agg = BoundAgg {
            func: AggFunc::Sum,
            arg: Some(bind(&ScalarExpr::col("x"), &schema).unwrap()),
            int_sum: true,
        };
        let mut acc = agg.new_acc();
        agg.update(&mut acc, &vec![Value::Int64(2)]).unwrap();
        agg.update(&mut acc, &vec![Value::Int64(3)]).unwrap();
        assert_eq!(acc.finish(), Value::Int64(5));
    }
}
