//! The vectorized columnar interpreter.
//!
//! A drop-in twin of [`crate::executor::execute_fragment`] that runs the
//! same located physical plans over [`ColumnarBatch`]es instead of
//! row-major [`Rows`]. Three rules keep it observably identical to the
//! row engine:
//!
//! * **Same recursion, same order** — operators recurse into their
//!   inputs left to right exactly like the row interpreter, so the
//!   sequence of scan/ship side effects (fault-clock ticks, byte
//!   accounting, audits) is bit-identical.
//! * **Same semantics, vectorized where safe** — filters compile to
//!   selection vectors via typed column kernels for predicate shapes
//!   that provably cannot raise errors (comparisons of compatible typed
//!   columns/literals, `IN`, `BETWEEN`, `LIKE` on string columns,
//!   Kleene `AND`/`OR` over such masks); anything that may error falls
//!   back to a per-row scalar mirror of `BoundExpr::eval`, evaluated in
//!   row order so the first error matches the row engine's.
//! * **Same rows, same order** — joins probe in input order and emit
//!   matches in build-insertion order; aggregation feeds accumulators in
//!   row order (float sums are order-sensitive) and sorts its output
//!   with the row engine's one explicit final sort. Every operator is
//!   order-preserving, so SHIP payloads batch identically and shipped
//!   bytes match to the byte.
//!
//! Filters do not materialize: they return the input batch plus a
//! selection vector, which downstream kernels (project, join, aggregate)
//! consume positionally. Materialization happens only where physical
//! row identity matters — SHIP boundaries and the plan root.

use crate::aggregate::{Accumulator, BoundAgg};
use crate::executor::{sort_group_keys, DataSource, ExchangeSource, NoExchange, ShipHandler};
use geoqp_common::{
    columnar::mix_fingerprint, Column, ColumnarBatch, DataType, GeoError, Result, Rows, Value,
};
use geoqp_expr::{apply_cmp, as_tv, bind, eval_arith, like_match, BinaryOp, BoundExpr, UnaryOp};
use geoqp_plan::{PhysOp, PhysicalPlan, SortKey};
use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::Arc;

/// A batch with an optional selection vector: the unit flowing between
/// columnar operators. `sel` lists the surviving physical row indices in
/// order; `None` means all rows.
#[derive(Debug, Clone)]
pub struct ColBatch {
    /// The (shared, immutable) data.
    pub batch: Arc<ColumnarBatch>,
    /// Selected physical rows, in order; `None` = every row.
    pub sel: Option<Arc<Vec<u32>>>,
}

impl ColBatch {
    /// Wrap a batch with no selection.
    pub fn all(batch: Arc<ColumnarBatch>) -> ColBatch {
        ColBatch { batch, sel: None }
    }

    /// Number of logical (selected) rows.
    pub fn n_rows(&self) -> usize {
        match &self.sel {
            Some(s) => s.len(),
            None => self.batch.len(),
        }
    }

    /// Physical index of logical row `i`.
    #[inline]
    pub fn phys(&self, i: usize) -> usize {
        match &self.sel {
            Some(s) => s[i] as usize,
            None => i,
        }
    }

    /// The logical row indices as an explicit vector (identity when no
    /// selection is attached).
    fn indices(&self) -> Vec<u32> {
        match &self.sel {
            Some(s) => s.as_ref().clone(),
            None => (0..self.batch.len() as u32).collect(),
        }
    }

    /// Materialize the selection into a standalone batch (a cheap `Arc`
    /// clone when nothing is filtered out).
    pub fn materialize(&self) -> Arc<ColumnarBatch> {
        match &self.sel {
            None => Arc::clone(&self.batch),
            Some(s) => Arc::new(self.batch.gather(s)),
        }
    }

    /// Convert to row-major form.
    pub fn to_rows(&self) -> Rows {
        match &self.sel {
            None => self.batch.to_rows(),
            Some(s) => Rows::from_rows(s.iter().map(|&i| self.batch.row(i as usize)).collect()),
        }
    }
}

/// Execute a located physical plan on the columnar engine, returning the
/// result rows at the root operator's location. The row-major conversion
/// happens once, at the root.
pub fn execute_columnar(
    plan: &PhysicalPlan,
    source: &dyn DataSource,
    ship: &mut dyn ShipHandler,
) -> Result<Rows> {
    Ok(execute_fragment_columnar(plan, source, ship, &NoExchange)?.to_rows())
}

/// [`execute_columnar`] with fragment boundaries, mirroring
/// [`crate::executor::execute_fragment`]'s contract: nodes claimed by
/// `exchange` are not interpreted here.
pub fn execute_fragment_columnar(
    plan: &PhysicalPlan,
    source: &dyn DataSource,
    ship: &mut dyn ShipHandler,
    exchange: &dyn ExchangeSource,
) -> Result<ColBatch> {
    if let Some(batch) = exchange.fetch_columnar(plan) {
        return Ok(ColBatch::all(batch?));
    }
    match &plan.op {
        PhysOp::Scan { table } => Ok(ColBatch::all(source.scan_columnar(
            table,
            &plan.location,
            plan.schema.len(),
        )?)),
        PhysOp::Filter { predicate } => {
            let input = &plan.inputs[0];
            let in_batch = execute_fragment_columnar(input, source, ship, exchange)?;
            let bound = bind(predicate, &input.schema)?;
            let idx = in_batch.indices();
            let kept = filter_indices(&bound, &in_batch.batch, &idx)?;
            Ok(ColBatch {
                batch: in_batch.batch,
                sel: Some(Arc::new(kept)),
            })
        }
        PhysOp::Project { exprs } => {
            let input = &plan.inputs[0];
            let in_batch = execute_fragment_columnar(input, source, ship, exchange)?;
            let bound: Vec<BoundExpr> = exprs
                .iter()
                .map(|(e, _)| bind(e, &input.schema))
                .collect::<Result<_>>()?;
            let idx = in_batch.indices();
            let columns: Vec<Column> = bound
                .iter()
                .map(|b| eval_column(b, &in_batch.batch, &idx))
                .collect::<Result<_>>()?;
            let out = if columns.is_empty() {
                ColumnarBatch::from_rows(&vec![Vec::new(); idx.len()], 0)
            } else {
                ColumnarBatch::from_columns(columns)
            };
            Ok(ColBatch::all(Arc::new(out)))
        }
        PhysOp::HashJoin {
            left_keys,
            right_keys,
            filter,
        } => execute_hash_join_columnar(
            plan,
            left_keys,
            right_keys,
            filter.as_ref(),
            source,
            ship,
            exchange,
        ),
        PhysOp::HashAggregate { group_by, aggs } => {
            execute_hash_aggregate_columnar(plan, group_by, aggs, source, ship, exchange)
        }
        PhysOp::Sort { keys } => {
            let input = &plan.inputs[0];
            let in_batch = execute_fragment_columnar(input, source, ship, exchange)?;
            let cols: Vec<(usize, bool)> = keys
                .iter()
                .map(|k: &SortKey| Ok((input.schema.require_index(&k.column)?, k.descending)))
                .collect::<Result<_>>()?;
            let mut idx = in_batch.indices();
            // Stable, like the row engine's `sort_by`: ties keep input order.
            idx.sort_by(|&a, &b| {
                for (c, desc) in &cols {
                    let col = in_batch.batch.column(*c);
                    let ord = col.get(a as usize).total_cmp(&col.get(b as usize));
                    let ord = if *desc { ord.reverse() } else { ord };
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                Ordering::Equal
            });
            Ok(ColBatch {
                batch: in_batch.batch,
                sel: Some(Arc::new(idx)),
            })
        }
        PhysOp::Limit { fetch } => {
            let in_batch = execute_fragment_columnar(&plan.inputs[0], source, ship, exchange)?;
            let mut idx = in_batch.indices();
            idx.truncate(*fetch);
            Ok(ColBatch {
                batch: in_batch.batch,
                sel: Some(Arc::new(idx)),
            })
        }
        PhysOp::Union => {
            let mut parts = Vec::with_capacity(plan.inputs.len());
            for input in &plan.inputs {
                parts.push(execute_fragment_columnar(input, source, ship, exchange)?.materialize());
            }
            Ok(ColBatch::all(Arc::new(ColumnarBatch::concat(
                &parts,
                plan.schema.len(),
            ))))
        }
        PhysOp::Ship => {
            let input = &plan.inputs[0];
            let in_batch = execute_fragment_columnar(input, source, ship, exchange)?;
            let payload = in_batch.materialize();
            Ok(ColBatch::all(ship.ship_columnar(
                &input.location,
                &plan.location,
                payload,
                &input.schema,
            )?))
        }
        PhysOp::ResumeScan { fingerprint, .. } => {
            let rows = source.resume(*fingerprint, &plan.location, plan.schema.len())?;
            Ok(ColBatch::all(Arc::new(ColumnarBatch::from_rows(
                rows.rows(),
                plan.schema.len(),
            ))))
        }
    }
}

// ---------------------------------------------------------------------
// Scalar mirror of `BoundExpr::eval`, reading from columns.
// ---------------------------------------------------------------------

/// Evaluate `e` at physical row `i` of `b`, with semantics (including
/// short-circuiting, null propagation, and error cases) identical to
/// [`BoundExpr::eval`] over the materialized row.
fn eval_scalar(e: &BoundExpr, b: &ColumnarBatch, i: usize) -> Result<Value> {
    match e {
        BoundExpr::Column(c) => {
            if *c < b.arity() {
                Ok(b.get(i, *c))
            } else {
                Err(GeoError::Execution(format!("row too short for column {c}")))
            }
        }
        BoundExpr::Literal(v) => Ok(v.clone()),
        BoundExpr::Binary { op, lhs, rhs } => {
            if *op == BinaryOp::And || *op == BinaryOp::Or {
                return eval_logical_scalar(*op, lhs, rhs, b, i);
            }
            let l = eval_scalar(lhs, b, i)?;
            let r = eval_scalar(rhs, b, i)?;
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            if op.is_comparison() {
                let ord = l.sql_cmp(&r).ok_or_else(|| {
                    GeoError::Execution(format!("incomparable values {l} and {r}"))
                })?;
                Ok(Value::Bool(apply_cmp(*op, ord)))
            } else {
                eval_arith(*op, &l, &r)
            }
        }
        BoundExpr::Unary { op, expr } => {
            let v = eval_scalar(expr, b, i)?;
            match (op, v) {
                (_, Value::Null) => Ok(Value::Null),
                (UnaryOp::Not, Value::Bool(x)) => Ok(Value::Bool(!x)),
                (UnaryOp::Neg, Value::Int64(x)) => Ok(Value::Int64(-x)),
                (UnaryOp::Neg, Value::Float64(x)) => Ok(Value::Float64(-x)),
                (op, v) => Err(GeoError::Execution(format!("cannot apply {op:?} to {v}"))),
            }
        }
        BoundExpr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = eval_scalar(expr, b, i)?;
            match v {
                Value::Null => Ok(Value::Null),
                Value::Str(s) => Ok(Value::Bool(like_match(pattern, &s) != *negated)),
                other => Err(GeoError::Execution(format!("LIKE on non-string {other}"))),
            }
        }
        BoundExpr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval_scalar(expr, b, i)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let found = list.iter().any(|c| v.sql_cmp(c) == Some(Ordering::Equal));
            Ok(Value::Bool(found != *negated))
        }
        BoundExpr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = eval_scalar(expr, b, i)?;
            let lo = eval_scalar(low, b, i)?;
            let hi = eval_scalar(high, b, i)?;
            if v.is_null() || lo.is_null() || hi.is_null() {
                return Ok(Value::Null);
            }
            let ge_lo = matches!(
                v.sql_cmp(&lo),
                Some(Ordering::Greater) | Some(Ordering::Equal)
            );
            let le_hi = matches!(v.sql_cmp(&hi), Some(Ordering::Less) | Some(Ordering::Equal));
            Ok(Value::Bool((ge_lo && le_hi) != *negated))
        }
        BoundExpr::IsNull { expr, negated } => {
            let v = eval_scalar(expr, b, i)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
    }
}

fn eval_logical_scalar(
    op: BinaryOp,
    lhs: &BoundExpr,
    rhs: &BoundExpr,
    b: &ColumnarBatch,
    i: usize,
) -> Result<Value> {
    let l = eval_scalar(lhs, b, i)?;
    match (op, &l) {
        (BinaryOp::And, Value::Bool(false)) => return Ok(Value::Bool(false)),
        (BinaryOp::Or, Value::Bool(true)) => return Ok(Value::Bool(true)),
        _ => {}
    }
    let r = eval_scalar(rhs, b, i)?;
    let lb = as_tv(&l)?;
    let rb = as_tv(&r)?;
    Ok(match op {
        BinaryOp::And => match (lb, rb) {
            (Some(false), _) | (_, Some(false)) => Value::Bool(false),
            (Some(true), Some(true)) => Value::Bool(true),
            _ => Value::Null,
        },
        BinaryOp::Or => match (lb, rb) {
            (Some(true), _) | (_, Some(true)) => Value::Bool(true),
            (Some(false), Some(false)) => Value::Bool(false),
            _ => Value::Null,
        },
        _ => unreachable!("eval_logical_scalar only handles AND/OR"),
    })
}

// ---------------------------------------------------------------------
// Vectorized predicate masks.
// ---------------------------------------------------------------------

/// Three-valued mask over a row-index window: `Some(bool)` or `None`
/// (NULL), one entry per index.
type Mask = Vec<Option<bool>>;

/// Broad type class used to prove a comparison cannot error: `sql_cmp`
/// only returns `None` (→ "incomparable" error) across classes.
#[derive(PartialEq, Clone, Copy)]
enum Class {
    Num,
    Date,
    Str,
    Bool,
}

fn column_class(c: &Column) -> Option<Class> {
    match c {
        Column::Int64 { .. } | Column::Float64 { .. } => Some(Class::Num),
        Column::Date { .. } => Some(Class::Date),
        Column::Str { .. } => Some(Class::Str),
        Column::Bool { .. } => Some(Class::Bool),
        Column::Any { .. } => None,
    }
}

fn value_class(v: &Value) -> Option<Class> {
    match v {
        Value::Int64(_) | Value::Float64(_) => Some(Class::Num),
        Value::Date(_) => Some(Class::Date),
        Value::Str(_) => Some(Class::Str),
        Value::Bool(_) => Some(Class::Bool),
        Value::Null => None,
    }
}

/// One comparison operand: a typed column or a literal.
enum Operand<'a> {
    Col(&'a Column),
    Lit(&'a Value),
}

fn operand<'a>(e: &'a BoundExpr, b: &'a ColumnarBatch) -> Option<Operand<'a>> {
    match e {
        BoundExpr::Column(c) if *c < b.arity() => Some(Operand::Col(b.column(*c))),
        BoundExpr::Literal(v) => Some(Operand::Lit(v)),
        _ => None,
    }
}

/// Try to evaluate `e` as an error-free vectorized mask over the rows
/// `idx` of `b`. Returns `None` when `e` is not a shape this kernel can
/// prove error-free; the caller then falls back to the scalar mirror.
fn fast_mask(e: &BoundExpr, b: &ColumnarBatch, idx: &[u32]) -> Option<Mask> {
    match e {
        BoundExpr::Literal(Value::Bool(x)) => Some(vec![Some(*x); idx.len()]),
        BoundExpr::Literal(Value::Null) => Some(vec![None; idx.len()]),
        BoundExpr::Binary { op, lhs, rhs } if *op == BinaryOp::And || *op == BinaryOp::Or => {
            // Both sides error-free ⇒ full evaluation matches Kleene
            // logic with or without short-circuiting.
            let l = fast_mask(lhs, b, idx)?;
            let r = fast_mask(rhs, b, idx)?;
            Some(merge_kleene(*op, &l, &r))
        }
        BoundExpr::Binary { op, lhs, rhs } if op.is_comparison() => {
            cmp_mask(*op, operand(lhs, b)?, operand(rhs, b)?, idx)
        }
        BoundExpr::Unary {
            op: UnaryOp::Not,
            expr,
        } => {
            let m = fast_mask(expr, b, idx)?;
            Some(m.into_iter().map(|t| t.map(|x| !x)).collect())
        }
        BoundExpr::IsNull { expr, negated } => {
            if let BoundExpr::Column(c) = expr.as_ref() {
                if *c < b.arity() {
                    let col = b.column(*c);
                    return Some(
                        idx.iter()
                            .map(|&i| Some(col.is_null(i as usize) != *negated))
                            .collect(),
                    );
                }
            }
            None
        }
        BoundExpr::InList {
            expr,
            list,
            negated,
        } => {
            // `IN` over constants never errors (incomparable candidates
            // simply don't match), so any column shape is fair game.
            if let BoundExpr::Column(c) = expr.as_ref() {
                if *c < b.arity() {
                    let col = b.column(*c);
                    return Some(in_list_mask(col, list, *negated, idx));
                }
            }
            None
        }
        BoundExpr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            // BETWEEN never errors either: bounds that don't compare
            // yield `false` legs, not errors.
            match (expr.as_ref(), low.as_ref(), high.as_ref()) {
                (BoundExpr::Column(c), BoundExpr::Literal(lo), BoundExpr::Literal(hi))
                    if *c < b.arity() =>
                {
                    let col = b.column(*c);
                    Some(
                        idx.iter()
                            .map(|&i| {
                                let v = col.get(i as usize);
                                if v.is_null() || lo.is_null() || hi.is_null() {
                                    return None;
                                }
                                let ge_lo = matches!(
                                    v.sql_cmp(lo),
                                    Some(Ordering::Greater) | Some(Ordering::Equal)
                                );
                                let le_hi = matches!(
                                    v.sql_cmp(hi),
                                    Some(Ordering::Less) | Some(Ordering::Equal)
                                );
                                Some((ge_lo && le_hi) != *negated)
                            })
                            .collect(),
                    )
                }
                _ => None,
            }
        }
        BoundExpr::Like {
            expr,
            pattern,
            negated,
        } => {
            // Only string-typed columns are provably error-free (LIKE on
            // a non-string value is a runtime error in the row engine).
            if let BoundExpr::Column(c) = expr.as_ref() {
                if *c < b.arity() {
                    if let Column::Str {
                        dict, codes, valid, ..
                    } = b.column(*c)
                    {
                        // Match each distinct dictionary entry once.
                        let hits: Vec<bool> = dict
                            .iter()
                            .map(|s| like_match(pattern, s) != *negated)
                            .collect();
                        return Some(
                            idx.iter()
                                .map(|&i| {
                                    let i = i as usize;
                                    if valid[i] {
                                        Some(hits[codes[i] as usize])
                                    } else {
                                        None
                                    }
                                })
                                .collect(),
                        );
                    }
                }
            }
            None
        }
        _ => None,
    }
}

fn merge_kleene(op: BinaryOp, l: &Mask, r: &Mask) -> Mask {
    l.iter()
        .zip(r)
        .map(|(a, c)| match op {
            BinaryOp::And => match (a, c) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            },
            BinaryOp::Or => match (a, c) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            },
            _ => unreachable!(),
        })
        .collect()
}

fn in_list_mask(col: &Column, list: &[Value], negated: bool, idx: &[u32]) -> Mask {
    if let Column::Str {
        dict, codes, valid, ..
    } = col
    {
        // Evaluate membership once per distinct dictionary entry.
        let hits: Vec<bool> = dict
            .iter()
            .map(|s| {
                let v = Value::Str(Arc::clone(s));
                let found = list.iter().any(|c| v.sql_cmp(c) == Some(Ordering::Equal));
                found != negated
            })
            .collect();
        return idx
            .iter()
            .map(|&i| {
                let i = i as usize;
                if valid[i] {
                    Some(hits[codes[i] as usize])
                } else {
                    None
                }
            })
            .collect();
    }
    idx.iter()
        .map(|&i| {
            let v = col.get(i as usize);
            if v.is_null() {
                return None;
            }
            let found = list.iter().any(|c| v.sql_cmp(c) == Some(Ordering::Equal));
            Some(found != negated)
        })
        .collect()
}

/// Vectorized comparison of two operands, or `None` when the pair cannot
/// be proven error-free (mismatched classes, `Any` columns).
fn cmp_mask(op: BinaryOp, lhs: Operand<'_>, rhs: Operand<'_>, idx: &[u32]) -> Option<Mask> {
    // A NULL literal anywhere makes the whole comparison NULL — the row
    // engine checks nullness before comparability.
    if matches!(lhs, Operand::Lit(Value::Null)) || matches!(rhs, Operand::Lit(Value::Null)) {
        return Some(vec![None; idx.len()]);
    }
    match (&lhs, &rhs) {
        (Operand::Lit(a), Operand::Lit(b)) => {
            let class_a = value_class(a)?;
            if class_a != value_class(b)? {
                return None;
            }
            let ord = a.sql_cmp(b)?;
            Some(vec![Some(apply_cmp(op, ord)); idx.len()])
        }
        (Operand::Col(c), Operand::Lit(v)) => {
            if column_class(c)? != value_class(v)? {
                return None;
            }
            Some(col_lit_mask(op, c, v, idx, false))
        }
        (Operand::Lit(v), Operand::Col(c)) => {
            if column_class(c)? != value_class(v)? {
                return None;
            }
            Some(col_lit_mask(op, c, v, idx, true))
        }
        (Operand::Col(a), Operand::Col(b)) => {
            if column_class(a)? != column_class(b)? {
                return None;
            }
            Some(
                idx.iter()
                    .map(|&i| {
                        let i = i as usize;
                        if a.is_null(i) || b.is_null(i) {
                            return None;
                        }
                        let ord = a.get(i).sql_cmp(&b.get(i)).expect("same class compares");
                        Some(apply_cmp(op, ord))
                    })
                    .collect(),
            )
        }
    }
}

/// Column-vs-literal comparison with typed fast paths. `flipped` means
/// the literal is on the left (`lit OP col`), so the ordering reverses.
fn col_lit_mask(op: BinaryOp, col: &Column, lit: &Value, idx: &[u32], flipped: bool) -> Mask {
    let orient = |ord: Ordering| if flipped { ord.reverse() } else { ord };
    match (col, lit) {
        // Numeric columns vs numeric literal: sql_cmp merges the numeric
        // domain through f64 total_cmp — mirror that exactly.
        (Column::Int64 { values, valid }, _) => {
            let litf = lit.as_f64().expect("numeric class");
            idx.iter()
                .map(|&i| {
                    let i = i as usize;
                    if !valid[i] {
                        return None;
                    }
                    Some(apply_cmp(op, orient((values[i] as f64).total_cmp(&litf))))
                })
                .collect()
        }
        (Column::Float64 { values, valid }, _) => {
            let litf = lit.as_f64().expect("numeric class");
            idx.iter()
                .map(|&i| {
                    let i = i as usize;
                    if !valid[i] {
                        return None;
                    }
                    Some(apply_cmp(op, orient(values[i].total_cmp(&litf))))
                })
                .collect()
        }
        (Column::Date { values, valid }, Value::Date(d)) => idx
            .iter()
            .map(|&i| {
                let i = i as usize;
                if !valid[i] {
                    return None;
                }
                Some(apply_cmp(op, orient(values[i].cmp(d))))
            })
            .collect(),
        (
            Column::Str {
                dict, codes, valid, ..
            },
            Value::Str(s),
        ) => {
            // One comparison per distinct dictionary entry.
            let hits: Vec<bool> = dict
                .iter()
                .map(|e| apply_cmp(op, orient(e.as_ref().cmp(s.as_ref()))))
                .collect();
            idx.iter()
                .map(|&i| {
                    let i = i as usize;
                    if valid[i] {
                        Some(hits[codes[i] as usize])
                    } else {
                        None
                    }
                })
                .collect()
        }
        (Column::Bool { values, valid }, Value::Bool(x)) => idx
            .iter()
            .map(|&i| {
                let i = i as usize;
                if !valid[i] {
                    return None;
                }
                Some(apply_cmp(op, orient(values[i].cmp(x))))
            })
            .collect(),
        // Class check upstream makes this unreachable, but fall back to
        // the generic scalar comparison rather than panic.
        _ => idx
            .iter()
            .map(|&i| {
                let v = col.get(i as usize);
                if v.is_null() {
                    return None;
                }
                let ord = v.sql_cmp(lit).expect("same class compares");
                Some(apply_cmp(op, orient(ord)))
            })
            .collect(),
    }
}

/// Compute the surviving physical row indices for `predicate` over the
/// window `idx`, with error behavior matching the row engine's
/// row-by-row evaluation order.
pub(crate) fn filter_indices(
    predicate: &BoundExpr,
    b: &ColumnarBatch,
    idx: &[u32],
) -> Result<Vec<u32>> {
    if let Some(mask) = fast_mask(predicate, b, idx) {
        return Ok(idx
            .iter()
            .zip(&mask)
            .filter(|(_, m)| **m == Some(true))
            .map(|(&i, _)| i)
            .collect());
    }
    // Hybrid AND/OR: vectorize the error-free side, run the other side's
    // scalar mirror only on the rows where the row engine would have
    // evaluated it (Kleene short-circuit), preserving error order.
    if let BoundExpr::Binary { op, lhs, rhs } = predicate {
        if *op == BinaryOp::And || *op == BinaryOp::Or {
            if let Some(lmask) = fast_mask(lhs, b, idx) {
                return hybrid_filter(*op, &lmask, rhs, b, idx, true);
            }
            if let Some(rmask) = fast_mask(rhs, b, idx) {
                return hybrid_filter(*op, &rmask, lhs, b, idx, false);
            }
        }
    }
    let mut out = Vec::new();
    for &i in idx {
        if eval_scalar(predicate, b, i as usize)?.is_true() {
            out.push(i);
        }
    }
    Ok(out)
}

/// One side of an AND/OR is a precomputed error-free mask, the other is
/// evaluated row-at-a-time. `mask_is_lhs` tells which operand the mask
/// came from, which determines the short-circuit direction.
#[allow(clippy::needless_range_loop)]
fn hybrid_filter(
    op: BinaryOp,
    mask: &Mask,
    slow: &BoundExpr,
    b: &ColumnarBatch,
    idx: &[u32],
    mask_is_lhs: bool,
) -> Result<Vec<u32>> {
    let mut out = Vec::new();
    for k in 0..idx.len() {
        let i = idx[k] as usize;
        let m = mask[k];
        match (op, mask_is_lhs) {
            (BinaryOp::And, true) => {
                // Row engine: lhs false short-circuits; otherwise rhs is
                // evaluated (even under a NULL lhs) and may error.
                if m == Some(false) {
                    continue;
                }
                let r = eval_scalar(slow, b, i)?;
                let rb = as_tv(&r)?;
                if m == Some(true) && rb == Some(true) {
                    out.push(idx[k]);
                }
            }
            (BinaryOp::And, false) => {
                // Row engine evaluates lhs first; false short-circuits
                // before the (error-free) rhs would run.
                let l = eval_scalar(slow, b, i)?;
                if l == Value::Bool(false) {
                    continue;
                }
                let lb = as_tv(&l)?;
                if lb == Some(true) && m == Some(true) {
                    out.push(idx[k]);
                }
            }
            (BinaryOp::Or, true) => {
                // lhs true short-circuits; otherwise rhs decides.
                if m == Some(true) {
                    out.push(idx[k]);
                    continue;
                }
                let r = eval_scalar(slow, b, i)?;
                if as_tv(&r)? == Some(true) {
                    out.push(idx[k]);
                }
            }
            (BinaryOp::Or, false) => {
                let l = eval_scalar(slow, b, i)?;
                if l == Value::Bool(true) {
                    out.push(idx[k]);
                    continue;
                }
                let lb = as_tv(&l)?;
                if lb == Some(true) || m == Some(true) {
                    out.push(idx[k]);
                }
            }
            _ => unreachable!("hybrid_filter only handles AND/OR"),
        }
    }
    Ok(out)
}

/// Evaluate a projection expression into a column over the rows `idx`.
/// Plain column references gather (or share) the input column; anything
/// else goes through the scalar mirror and re-sniffs a typed layout.
fn eval_column(e: &BoundExpr, b: &ColumnarBatch, idx: &[u32]) -> Result<Column> {
    match e {
        BoundExpr::Column(c) if *c < b.arity() => {
            if idx.len() == b.len() && idx.iter().enumerate().all(|(k, &i)| k == i as usize) {
                Ok(b.column(*c).clone())
            } else {
                Ok(b.column(*c).gather(idx))
            }
        }
        BoundExpr::Literal(v) => Ok(Column::from_values(vec![v.clone(); idx.len()])),
        _ => {
            let mut values = Vec::with_capacity(idx.len());
            for &i in idx {
                values.push(eval_scalar(e, b, i as usize)?);
            }
            Ok(Column::from_values(values))
        }
    }
}

// ---------------------------------------------------------------------
// Join and aggregate kernels.
// ---------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn execute_hash_join_columnar(
    plan: &PhysicalPlan,
    left_keys: &[String],
    right_keys: &[String],
    filter: Option<&geoqp_expr::ScalarExpr>,
    source: &dyn DataSource,
    ship: &mut dyn ShipHandler,
    exchange: &dyn ExchangeSource,
) -> Result<ColBatch> {
    let (left, right) = (&plan.inputs[0], &plan.inputs[1]);
    let lbatch = execute_fragment_columnar(left, source, ship, exchange)?;
    let rbatch = execute_fragment_columnar(right, source, ship, exchange)?;

    let lidx: Vec<usize> = left_keys
        .iter()
        .map(|k| left.schema.require_index(k))
        .collect::<Result<_>>()?;
    let ridx: Vec<usize> = right_keys
        .iter()
        .map(|k| right.schema.require_index(k))
        .collect::<Result<_>>()?;
    let bound_filter = filter.map(|f| bind(f, &plan.schema)).transpose()?;

    // Build on the left input: fingerprint → physical left rows, in
    // input order. NULL keys never join (SQL semantics).
    let lb = &lbatch.batch;
    let mut table: HashMap<u64, Vec<u32>> = HashMap::new();
    for k in 0..lbatch.n_rows() {
        let i = lbatch.phys(k);
        if lidx.iter().any(|&c| lb.column(c).is_null(i)) {
            continue;
        }
        let fp = lb.key_fingerprint(&lidx, i);
        table.entry(fp).or_default().push(i as u32);
    }

    // Probe with the right input in order; fingerprint candidates are
    // verified with real value comparisons, so hash collisions cannot
    // produce wrong matches.
    let rb = &rbatch.batch;
    let mut out_left: Vec<u32> = Vec::new();
    let mut out_right: Vec<u32> = Vec::new();
    for k in 0..rbatch.n_rows() {
        let i = rbatch.phys(k);
        if ridx.iter().any(|&c| rb.column(c).is_null(i)) {
            continue;
        }
        let fp = rb.key_fingerprint(&ridx, i);
        if let Some(candidates) = table.get(&fp) {
            for &li in candidates {
                let matches = lidx
                    .iter()
                    .zip(&ridx)
                    .all(|(&lc, &rc)| lb.column(lc).get(li as usize) == rb.column(rc).get(i));
                if matches {
                    out_left.push(li);
                    out_right.push(i as u32);
                }
            }
        }
    }

    // Materialize the joined batch: left columns then right columns.
    let mut columns: Vec<Column> = Vec::with_capacity(lb.arity() + rb.arity());
    for c in lb.columns() {
        columns.push(c.gather(&out_left));
    }
    for c in rb.columns() {
        columns.push(c.gather(&out_right));
    }
    let joined = if columns.is_empty() {
        ColumnarBatch::from_rows(&vec![Vec::new(); out_left.len()], 0)
    } else {
        ColumnarBatch::from_columns(columns)
    };

    // Residual filter runs over the joined schema, like the row engine.
    let sel = match &bound_filter {
        None => None,
        Some(f) => {
            let idx: Vec<u32> = (0..joined.len() as u32).collect();
            Some(Arc::new(filter_indices(f, &joined, &idx)?))
        }
    };
    Ok(ColBatch {
        batch: Arc::new(joined),
        sel,
    })
}

fn execute_hash_aggregate_columnar(
    plan: &PhysicalPlan,
    group_by: &[String],
    aggs: &[geoqp_expr::AggCall],
    source: &dyn DataSource,
    ship: &mut dyn ShipHandler,
    exchange: &dyn ExchangeSource,
) -> Result<ColBatch> {
    let input = &plan.inputs[0];
    let in_batch = execute_fragment_columnar(input, source, ship, exchange)?;
    let gidx: Vec<usize> = group_by
        .iter()
        .map(|g| input.schema.require_index(g))
        .collect::<Result<_>>()?;

    let bound: Vec<BoundAgg> = aggs
        .iter()
        .map(|a| {
            let arg = a.arg.as_ref().map(|e| bind(e, &input.schema)).transpose()?;
            let int_sum = match &a.arg {
                Some(e) => e.data_type(&input.schema)? == DataType::Int64,
                None => false,
            };
            Ok(BoundAgg {
                func: a.func,
                arg,
                int_sum,
            })
        })
        .collect::<Result<_>>()?;

    // Evaluate every aggregate argument column-at-a-time up front.
    let idx = in_batch.indices();
    let b = &in_batch.batch;
    let args: Vec<Option<Column>> = bound
        .iter()
        .map(|agg| {
            agg.arg
                .as_ref()
                .map(|e| eval_column(e, b, &idx))
                .transpose()
        })
        .collect::<Result<_>>()?;

    // Group by key fingerprint; candidate slots are verified against the
    // stored key values. Accumulators see rows in input order, so
    // order-sensitive float sums match the row engine exactly.
    let mut slots: HashMap<u64, Vec<usize>> = HashMap::new();
    let mut groups: Vec<(Vec<Value>, Vec<Accumulator>)> = Vec::new();
    for (k, &i) in idx.iter().enumerate() {
        let i = i as usize;
        let fp = {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for &c in &gidx {
                h = mix_fingerprint(h, b.column(c).fingerprint_at(i));
            }
            h
        };
        let candidates = slots.entry(fp).or_default();
        let slot = candidates
            .iter()
            .copied()
            .find(|&s| {
                gidx.iter()
                    .enumerate()
                    .all(|(j, &c)| groups[s].0[j] == b.column(c).get(i))
            })
            .unwrap_or_else(|| {
                let key: Vec<Value> = gidx.iter().map(|&c| b.column(c).get(i)).collect();
                groups.push((key, bound.iter().map(BoundAgg::new_acc).collect()));
                candidates.push(groups.len() - 1);
                groups.len() - 1
            });
        let accs = &mut groups[slot].1;
        for (a, agg) in bound.iter().enumerate() {
            let value = args[a].as_ref().map(|col| col.get(k));
            agg.apply(&mut accs[a], value)?;
        }
    }

    // SQL: a global aggregate over empty input yields one row.
    if groups.is_empty() && group_by.is_empty() {
        groups.push((vec![], bound.iter().map(BoundAgg::new_acc).collect()));
    }

    // The same single explicit final sort as the row engine.
    sort_group_keys(&mut groups);

    let rows: Vec<Vec<Value>> = groups
        .into_iter()
        .map(|(mut key, accs)| {
            key.extend(accs.iter().map(Accumulator::finish));
            key
        })
        .collect();
    Ok(ColBatch::all(Arc::new(ColumnarBatch::from_rows(
        &rows,
        plan.schema.len(),
    ))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{execute, LocalShip, MapSource};
    use geoqp_common::{Field, Location, Schema, TableRef};
    use geoqp_expr::ScalarExpr;

    fn loc(n: &str) -> Location {
        Location::new(n)
    }

    fn scan_node(table: &str, location: &str, fields: Vec<Field>) -> Arc<PhysicalPlan> {
        Arc::new(
            PhysicalPlan::new(
                PhysOp::Scan {
                    table: TableRef::bare(table),
                },
                Arc::new(Schema::new(fields).unwrap()),
                loc(location),
                vec![],
            )
            .unwrap(),
        )
    }

    fn source() -> MapSource {
        let mut s = MapSource::new();
        s.insert(
            TableRef::bare("customer"),
            loc("N"),
            Rows::from_rows(vec![
                vec![Value::Int64(1), Value::str("alice"), Value::Float64(100.0)],
                vec![Value::Int64(2), Value::str("bob"), Value::Float64(200.0)],
                vec![Value::Int64(3), Value::str("carol"), Value::Float64(300.0)],
                vec![Value::Null, Value::str("nobody"), Value::Null],
            ]),
        );
        s.insert(
            TableRef::bare("orders"),
            loc("N"),
            Rows::from_rows(vec![
                vec![Value::Int64(1), Value::Float64(10.0)],
                vec![Value::Int64(1), Value::Float64(20.0)],
                vec![Value::Int64(2), Value::Float64(5.0)],
                vec![Value::Null, Value::Float64(99.0)],
            ]),
        );
        s
    }

    fn customer_scan() -> Arc<PhysicalPlan> {
        scan_node(
            "customer",
            "N",
            vec![
                Field::new("custkey", DataType::Int64),
                Field::new("name", DataType::Str),
                Field::new("acctbal", DataType::Float64),
            ],
        )
    }

    fn orders_scan() -> Arc<PhysicalPlan> {
        scan_node(
            "orders",
            "N",
            vec![
                Field::new("o_custkey", DataType::Int64),
                Field::new("o_price", DataType::Float64),
            ],
        )
    }

    /// Row engine and columnar engine must agree row-for-row (order
    /// included) on every plan in these tests.
    fn assert_engines_agree(plan: &PhysicalPlan) {
        let row = execute(plan, &source(), &mut LocalShip).unwrap();
        let col = execute_columnar(plan, &source(), &mut LocalShip).unwrap();
        assert_eq!(row, col);
    }

    #[test]
    fn filter_produces_selection_not_materialization() {
        let scan = customer_scan();
        let schema = Arc::clone(&scan.schema);
        let plan = PhysicalPlan::new(
            PhysOp::Filter {
                predicate: ScalarExpr::col("acctbal").gt(ScalarExpr::lit(150.0)),
            },
            schema,
            loc("N"),
            vec![scan],
        )
        .unwrap();
        let out = execute_fragment_columnar(&plan, &source(), &mut LocalShip, &NoExchange).unwrap();
        assert!(out.sel.is_some(), "filter must return a selection vector");
        assert_eq!(out.n_rows(), 2);
        assert_engines_agree(&plan);
    }

    #[test]
    fn join_and_residual_filter_agree_with_row_engine() {
        let c = customer_scan();
        let o = orders_scan();
        let schema = Arc::new(c.schema.join(&o.schema).unwrap());
        let join = PhysicalPlan::new(
            PhysOp::HashJoin {
                left_keys: vec!["custkey".into()],
                right_keys: vec!["o_custkey".into()],
                filter: Some(ScalarExpr::col("o_price").gt(ScalarExpr::lit(9.0))),
            },
            schema,
            loc("N"),
            vec![c, o],
        )
        .unwrap();
        assert_engines_agree(&join);
    }

    #[test]
    fn aggregate_ordering_matches_row_engine_sort() {
        let o = orders_scan();
        let schema = Arc::new(
            Schema::new(vec![
                Field::new("o_custkey", DataType::Int64),
                Field::new("total", DataType::Float64),
                Field::new("n", DataType::Int64),
            ])
            .unwrap(),
        );
        let agg = PhysicalPlan::new(
            PhysOp::HashAggregate {
                group_by: vec!["o_custkey".into()],
                aggs: vec![
                    geoqp_expr::AggCall::new(
                        geoqp_expr::AggFunc::Sum,
                        ScalarExpr::col("o_price"),
                        "total",
                    ),
                    geoqp_expr::AggCall::count_star("n"),
                ],
            },
            schema,
            loc("N"),
            vec![o],
        )
        .unwrap();
        assert_engines_agree(&agg);
    }

    #[test]
    fn sort_limit_union_project_agree() {
        let c = customer_scan();
        let schema = Arc::clone(&c.schema);
        let sort = Arc::new(
            PhysicalPlan::new(
                PhysOp::Sort {
                    keys: vec![SortKey::desc("acctbal")],
                },
                Arc::clone(&schema),
                loc("N"),
                vec![c],
            )
            .unwrap(),
        );
        let limit = Arc::new(
            PhysicalPlan::new(
                PhysOp::Limit { fetch: 2 },
                Arc::clone(&schema),
                loc("N"),
                vec![sort],
            )
            .unwrap(),
        );
        let union = Arc::new(
            PhysicalPlan::new(
                PhysOp::Union,
                Arc::clone(&schema),
                loc("N"),
                vec![Arc::clone(&limit), customer_scan()],
            )
            .unwrap(),
        );
        let project = PhysicalPlan::new(
            PhysOp::Project {
                exprs: vec![
                    (ScalarExpr::col("name"), "name".into()),
                    (
                        ScalarExpr::col("acctbal").mul(ScalarExpr::lit(2.0)),
                        "dbl".into(),
                    ),
                ],
            },
            Arc::new(
                Schema::new(vec![
                    Field::new("name", DataType::Str),
                    Field::new("dbl", DataType::Float64),
                ])
                .unwrap(),
            ),
            loc("N"),
            vec![union],
        )
        .unwrap();
        assert_engines_agree(&project);
    }

    #[test]
    fn complex_predicates_agree_including_nulls() {
        // Exercises fast masks (cmp, IN, BETWEEN, LIKE, IS NULL, AND/OR)
        // and the hybrid fallback, over a table with NULL keys.
        let preds = vec![
            ScalarExpr::col("acctbal")
                .gt(ScalarExpr::lit(50.0))
                .and(ScalarExpr::col("custkey").lt(ScalarExpr::lit(3i64))),
            ScalarExpr::col("name").like("%o%"),
            ScalarExpr::col("custkey").in_list(vec![Value::Int64(1), Value::Int64(3)]),
            ScalarExpr::col("acctbal").between(ScalarExpr::lit(150.0), ScalarExpr::lit(350.0)),
            ScalarExpr::col("acctbal").is_null(),
            ScalarExpr::col("acctbal")
                .is_null()
                .or(ScalarExpr::col("name").eq(ScalarExpr::lit(Value::str("bob")))),
            // Arithmetic forces the scalar fallback path.
            ScalarExpr::col("acctbal")
                .add(ScalarExpr::lit(1.0))
                .gt(ScalarExpr::lit(200.0)),
            // Hybrid: fast lhs, slow rhs.
            ScalarExpr::col("custkey").gt(ScalarExpr::lit(0i64)).and(
                ScalarExpr::col("acctbal")
                    .mul(ScalarExpr::lit(2.0))
                    .lt(ScalarExpr::lit(500.0)),
            ),
        ];
        for p in preds {
            let scan = customer_scan();
            let schema = Arc::clone(&scan.schema);
            let plan = PhysicalPlan::new(
                PhysOp::Filter {
                    predicate: p.clone(),
                },
                schema,
                loc("N"),
                vec![scan],
            )
            .unwrap();
            let row = execute(&plan, &source(), &mut LocalShip).unwrap();
            let col = execute_columnar(&plan, &source(), &mut LocalShip).unwrap();
            assert_eq!(row, col, "predicate {p:?} diverged");
        }
    }

    #[test]
    fn division_by_zero_errors_in_both_engines() {
        let scan = customer_scan();
        let schema = Arc::clone(&scan.schema);
        let plan = PhysicalPlan::new(
            PhysOp::Filter {
                predicate: ScalarExpr::col("custkey")
                    .div(ScalarExpr::lit(0i64))
                    .gt(ScalarExpr::lit(0i64)),
            },
            schema,
            loc("N"),
            vec![scan],
        )
        .unwrap();
        let row = execute(&plan, &source(), &mut LocalShip).unwrap_err();
        let col = execute_columnar(&plan, &source(), &mut LocalShip).unwrap_err();
        assert_eq!(row.to_string(), col.to_string());
    }
}
